"""Sharded sweeps, single-flight parallel builds, and shard-file merging.

Two guarantees from the parallel-harness rework are pinned here:

* ``merge_shards()`` over *any* partition of a sweep is byte-identical
  (reports **and** failures) to the unsharded run — including when grid
  points fail deterministically inside workers.
* A cold-cache parallel sweep builds each study artifact exactly once
  (the ``artifacts.build`` counter equals the number of ``.pkl`` files
  on disk), i.e. the thundering-herd duplicate simulation is gone.
"""

from __future__ import annotations

import importlib
import json
import pickle

import pytest
from hypothesis import given, settings, strategies as st

# ``repro.core`` re-exports the sweep *function*, which shadows the
# submodule attribute — resolve the module itself for monkeypatching.
sweep_module = importlib.import_module("repro.core.sweep")
from repro.core import artifacts
from repro.core.metrics import METRICS
from repro.core.sweep import (
    FailureReport,
    SweepResult,
    effective_jobs,
    merge_shard_files,
    merge_shards,
    shard_span,
    sweep,
    sweep_many,
    write_shard_file,
)
from repro.errors import ConfigurationError

#: A small but non-trivial grid: 2 cache sizes x 2 memories = 4 points.
AXES = dict(cache_sizes=(256, 512), memories=("eprom", "burst_eprom"))

#: Same grid with a deterministically-failing memory model injected:
#: "nosuch" passes config construction (memory resolves lazily) and
#: raises ConfigurationError at metrics() time, per grid point.
FAILING_AXES = dict(cache_sizes=(256, 512), memories=("eprom", "nosuch"))


def _force_pool(monkeypatch, cpus: int = 2) -> None:
    """Pretend this machine has ``cpus`` CPUs so effective_jobs > 1.

    The test container may be pinned to one core, which would silently
    collapse every ``jobs=N`` request to a serial run and leave the
    pool code paths untested.
    """
    monkeypatch.setattr(sweep_module, "available_cpus", lambda: cpus)


# ----------------------------------------------------------------------
# shard_span arithmetic
# ----------------------------------------------------------------------


class TestShardSpan:
    @given(
        total=st.integers(min_value=0, max_value=200),
        count=st.integers(min_value=1, max_value=12),
    )
    @settings(max_examples=100, deadline=None)
    def test_partition_is_exact_and_balanced(self, total, count):
        spans = [shard_span(total, (index, count)) for index in range(count)]
        # Contiguous cover of range(total), in order, no gaps or overlap.
        assert spans[0][0] == 0
        assert spans[-1][1] == total
        for (_, stop), (start, _) in zip(spans, spans[1:]):
            assert stop == start
        sizes = [stop - start for start, stop in spans]
        assert sum(sizes) == total
        assert max(sizes) - min(sizes) <= 1

    def test_rejects_bad_shards(self):
        with pytest.raises(ConfigurationError):
            shard_span(10, (0, 0))
        with pytest.raises(ConfigurationError):
            shard_span(10, (3, 3))
        with pytest.raises(ConfigurationError):
            shard_span(10, (-1, 3))
        with pytest.raises(ConfigurationError):
            shard_span(10, "0/3")


# ----------------------------------------------------------------------
# Partition identity: merge of shards == unsharded run, byte for byte
# ----------------------------------------------------------------------


class TestShardPartitionIdentity:
    @pytest.fixture(scope="class")
    def unsharded(self):
        return sweep("eightq", **AXES)

    @pytest.fixture(scope="class")
    def unsharded_failing(self):
        return sweep("eightq", **FAILING_AXES)

    @given(count=st.integers(min_value=1, max_value=6))
    @settings(max_examples=12, deadline=None)
    def test_clean_sweep_merges_byte_identical(self, count, unsharded):
        shards = [sweep("eightq", shard=(i, count), **AXES) for i in range(count)]
        merged = merge_shards(shards)
        assert merged == unsharded
        assert pickle.dumps(merged) == pickle.dumps(unsharded)

    @given(count=st.integers(min_value=1, max_value=6))
    @settings(max_examples=12, deadline=None)
    def test_failing_grid_points_merge_byte_identical(
        self, count, unsharded_failing
    ):
        # Half the grid fails (unknown memory, raised lazily inside the
        # sweep) — the failures must land in the same order, with the
        # same attempt counts and tracebacks, as the unsharded run.
        assert len(unsharded_failing.failures) == 2
        shards = [
            sweep("eightq", shard=(i, count), **FAILING_AXES) for i in range(count)
        ]
        merged = merge_shards(shards)
        assert merged.failures == unsharded_failing.failures
        assert pickle.dumps(merged) == pickle.dumps(unsharded_failing)

    def test_sweep_many_shards_across_workloads(self):
        axes = dict(cache_sizes=(256, 512), memories=("eprom",))
        unsharded = sweep_many(("eightq", "lloop01"), **axes)
        # 3 shards over 2 workloads x 2 grid points: shard boundaries
        # intentionally do not line up with workload boundaries.
        shards = [
            sweep_many(("eightq", "lloop01"), shard=(i, 3), **axes)
            for i in range(3)
        ]
        assert sum(len(shard) for shard in shards) == len(unsharded)
        merged = merge_shards(shards)
        assert merged == unsharded
        assert pickle.dumps(merged) == pickle.dumps(unsharded)

    def test_sweep_many_shard_can_be_empty(self):
        axes = dict(cache_sizes=(256,), memories=("eprom",))
        # 2 tasks over 3 shards: the middle slice is empty but valid.
        sizes = [
            len(sweep_many(("eightq", "lloop01"), shard=(i, 3), **axes))
            for i in range(3)
        ]
        assert sum(sizes) == 2
        assert 0 in sizes

    def test_parallel_run_matches_serial_including_failures(self, monkeypatch):
        _force_pool(monkeypatch)
        serial = sweep("eightq", **FAILING_AXES)
        parallel = sweep("eightq", jobs=2, **FAILING_AXES)
        assert parallel.reports == serial.reports
        assert parallel.failures == serial.failures

    def test_unknown_workload_fails_once_per_covering_shard(self):
        result = sweep("no-such-workload", **AXES)
        assert result.reports == ()
        assert len(result.failures) == 1
        failure = result.failures[0]
        assert failure.detail == "study build (4 grid points)"
        assert failure.attempts == 1


# ----------------------------------------------------------------------
# Shard files: round trip + validation
# ----------------------------------------------------------------------


def _spec(**overrides) -> dict:
    spec = {"workloads": ["eightq"], "axes": dict(AXES)}
    spec.update(overrides)
    return spec


class TestShardFiles:
    def test_round_trip_merges_in_any_order(self, tmp_path):
        unsharded = sweep("eightq", **AXES)
        paths = []
        for index in range(3):
            result = sweep("eightq", shard=(index, 3), **AXES)
            paths.append(
                write_shard_file(
                    tmp_path / f"s{index}.pkl", result, (index, 3), _spec()
                )
            )
        merged = merge_shard_files([paths[2], paths[0], paths[1]])
        assert merged == unsharded
        # Byte-identity across a *file* round trip is asserted on the
        # deterministic JSON export (what ``cmp`` checks in CI); raw
        # pickles legitimately differ in object-sharing layout.
        from repro.tools.sweep import result_payload

        assert json.dumps(result_payload(merged), sort_keys=True) == json.dumps(
            result_payload(unsharded), sort_keys=True
        )

    def test_missing_file_is_a_configuration_error(self, tmp_path):
        with pytest.raises(ConfigurationError, match="not found"):
            merge_shard_files([tmp_path / "nope.pkl"])

    def test_garbage_file_is_a_configuration_error(self, tmp_path):
        path = tmp_path / "garbage.pkl"
        path.write_bytes(b"not a pickle")
        with pytest.raises(ConfigurationError, match="unreadable"):
            merge_shard_files([path])

    def test_wrong_schema_is_rejected(self, tmp_path):
        path = tmp_path / "wrong.pkl"
        path.write_bytes(pickle.dumps({"schema": "something-else/9"}))
        with pytest.raises(ConfigurationError, match="shard file"):
            merge_shard_files([path])

    def test_incomplete_partition_is_rejected(self, tmp_path):
        empty = SweepResult(reports=())
        a = write_shard_file(tmp_path / "a.pkl", empty, (0, 3), _spec())
        b = write_shard_file(tmp_path / "b.pkl", empty, (2, 3), _spec())
        with pytest.raises(ConfigurationError, match="incomplete"):
            merge_shard_files([a, b])

    def test_duplicate_indices_are_rejected(self, tmp_path):
        empty = SweepResult(reports=())
        a = write_shard_file(tmp_path / "a.pkl", empty, (0, 2), _spec())
        b = write_shard_file(tmp_path / "b.pkl", empty, (0, 2), _spec())
        with pytest.raises(ConfigurationError, match="incomplete"):
            merge_shard_files([a, b])

    def test_mismatched_spec_is_rejected(self, tmp_path):
        empty = SweepResult(reports=())
        a = write_shard_file(tmp_path / "a.pkl", empty, (0, 2), _spec())
        b = write_shard_file(
            tmp_path / "b.pkl", empty, (1, 2), _spec(workloads=["lloop01"])
        )
        with pytest.raises(ConfigurationError, match="different sweep"):
            merge_shard_files([a, b])

    def test_mismatched_counts_are_rejected(self, tmp_path):
        empty = SweepResult(reports=())
        a = write_shard_file(tmp_path / "a.pkl", empty, (0, 2), _spec())
        b = write_shard_file(tmp_path / "b.pkl", empty, (1, 3), _spec())
        with pytest.raises(ConfigurationError, match="shard count"):
            merge_shard_files([a, b])

    def test_no_files_is_rejected(self):
        with pytest.raises(ConfigurationError, match="no shard files"):
            merge_shard_files([])


# ----------------------------------------------------------------------
# Single-flight: a cold parallel sweep builds each artifact exactly once
# ----------------------------------------------------------------------


class TestSingleFlightBuilds:
    def _cold_sweep_builds(self, monkeypatch, cache_dir, jobs):
        monkeypatch.setenv(artifacts.ENV_CACHE_DIR, str(cache_dir))
        artifacts.clear()
        before = METRICS.counter("artifacts.build")
        result = sweep("eightq", jobs=jobs, **AXES)
        assert result.ok and len(result) == 4
        return METRICS.counter("artifacts.build") - before

    def test_parallel_cold_cache_builds_each_artifact_once(
        self, tmp_path, monkeypatch
    ):
        """The thundering-herd regression test.

        Before the single-flight pre-warm, a cold ``jobs=N`` sweep
        re-simulated the study in every worker: N trace builds, N image
        builds... all for identical cache keys.  Now the build counter
        must equal the number of distinct artifacts on disk.
        """
        _force_pool(monkeypatch)
        # Prime the in-memory LRUs (workload load, standard code, trace
        # memo) into a throwaway cache dir so the parallel and serial
        # cold-disk runs below start from identical in-memory state and
        # their build counts are comparable.
        self._cold_sweep_builds(monkeypatch, tmp_path / "prime", None)
        parallel_dir = tmp_path / "parallel"
        parallel_builds = self._cold_sweep_builds(monkeypatch, parallel_dir, 2)
        # "superops" is excluded: it is an incremental accumulate-and-store
        # cache the executor writes outside get_or_compute (no build count).
        stored = len([
            path
            for path in parallel_dir.rglob("*.pkl")
            if path.parent.name != "superops"
        ])
        assert stored > 0
        assert parallel_builds == stored

        # And the parallel cold run does no more building than a serial
        # cold run of the same sweep into a fresh cache.
        serial_builds = self._cold_sweep_builds(
            monkeypatch, tmp_path / "serial", None
        )
        assert parallel_builds == serial_builds

    def test_parallel_warm_cache_builds_nothing(self, tmp_path, monkeypatch):
        _force_pool(monkeypatch)
        cache_dir = tmp_path / "warm"
        self._cold_sweep_builds(monkeypatch, cache_dir, 2)
        artifacts.clear()  # drop the in-memory study, keep the disk cache
        before = METRICS.counter("artifacts.build")
        result = sweep("eightq", jobs=2, **AXES)
        assert result.ok
        assert METRICS.counter("artifacts.build") == before

    def test_parallel_reports_match_serial(self, monkeypatch):
        _force_pool(monkeypatch)
        serial = sweep("eightq", **AXES)
        parallel = sweep("eightq", jobs=2, **AXES)
        assert parallel == serial


# ----------------------------------------------------------------------
# effective_jobs / worker-count plumbing
# ----------------------------------------------------------------------


class TestEffectiveJobs:
    def test_prefers_scheduler_affinity_over_cpu_count(self, monkeypatch):
        monkeypatch.setattr(
            sweep_module.os, "sched_getaffinity", lambda pid: {0}, raising=False
        )
        monkeypatch.setattr(sweep_module.os, "cpu_count", lambda: 64)
        assert sweep_module.available_cpus() == 1
        assert effective_jobs(8, 100) == 1

    def test_falls_back_to_cpu_count(self, monkeypatch):
        monkeypatch.delattr(
            sweep_module.os, "sched_getaffinity", raising=False
        )
        monkeypatch.setattr(sweep_module.os, "cpu_count", lambda: 3)
        assert sweep_module.available_cpus() == 3
        assert effective_jobs(8, 100) == 3

    def test_clamps_to_tasks_and_request(self, monkeypatch):
        _force_pool(monkeypatch, cpus=16)
        assert effective_jobs(None, 100) == 1
        assert effective_jobs(4, 2) == 2
        assert effective_jobs(4, 100) == 4
        assert effective_jobs(0, 100) == 1

    def test_sweep_records_workers_gauge(self, monkeypatch):
        _force_pool(monkeypatch)
        sweep("eightq", jobs=2, **AXES)
        assert METRICS.gauge_value("sweep.workers") == 2
        sweep("eightq", jobs=1, **AXES)
        assert METRICS.gauge_value("sweep.workers") == 1

    def test_serial_sweep_records_no_gauge(self):
        METRICS.reset()
        sweep("eightq", **AXES)
        assert "sweep.workers" not in METRICS.snapshot()["gauges"]


# ----------------------------------------------------------------------
# sweep_many whole-workload fallback: true attempt counts
# ----------------------------------------------------------------------


def _exploding_sweep_one(workload, axes):
    raise RuntimeError(f"worker for {workload} exploded")


class TestRecoverWorkload:
    def test_reports_true_attempts_and_honors_retries(self, monkeypatch):
        calls = []

        def always_failing(workload, **axes):
            calls.append(workload)
            raise RuntimeError("still broken")

        monkeypatch.setattr(sweep_module, "sweep", always_failing)
        before = METRICS.counter("sweep.retries")
        reports, failures = sweep_module._recover_workload(
            "eightq", {}, 3, RuntimeError("pool died"), False
        )
        assert reports == ()
        assert len(failures) == 1
        failure = failures[0]
        assert failure.detail == "whole-workload sweep"
        assert failure.error_type == "RuntimeError"
        assert failure.message == "still broken"
        assert failure.attempts == 4  # 1 pooled attempt + 3 re-runs
        assert len(calls) == 3
        assert METRICS.counter("sweep.retries") - before == 3

    def test_zero_retries_reports_the_original_error(self, monkeypatch):
        monkeypatch.setattr(
            sweep_module,
            "sweep",
            lambda workload, **axes: pytest.fail("must not re-run"),
        )
        reports, failures = sweep_module._recover_workload(
            "eightq", {}, 0, RuntimeError("pool died"), False
        )
        assert reports == ()
        assert failures[0].attempts == 1
        assert failures[0].message == "pool died"

    def test_successful_retry_returns_the_result(self, monkeypatch):
        sentinel = SweepResult(reports=(), failures=())
        monkeypatch.setattr(
            sweep_module, "sweep", lambda workload, **axes: sentinel
        )
        reports, failures = sweep_module._recover_workload(
            "eightq", {}, 1, RuntimeError("pool died"), False
        )
        assert reports == sentinel.reports
        assert failures == ()

    def test_strict_reraises_annotated(self):
        with pytest.raises(RuntimeError, match="workload 'eightq'"):
            sweep_module._recover_workload(
                "eightq", {}, 1, RuntimeError("pool died"), True
            )

    def test_pool_death_recovers_in_parent(self, monkeypatch):
        """A dead whole-workload worker falls back to an in-process run."""
        _force_pool(monkeypatch)
        monkeypatch.setattr(sweep_module, "_sweep_one", _exploding_sweep_one)
        axes = dict(cache_sizes=(256,), memories=("eprom",))
        result = sweep_many(("eightq", "lloop01"), jobs=2, **axes)
        serial = sweep_many(("eightq", "lloop01"), **axes)
        assert result.ok
        assert result == serial


# ----------------------------------------------------------------------
# ccrp-sweep CLI: shard round trip is byte-identical, merge validation
# ----------------------------------------------------------------------


class TestSweepCLI:
    BASE = [
        "eightq",
        "lloop01",
        "--cache-sizes", "256", "512",
        "--memories", "eprom",
    ]

    def _main(self, argv):
        from repro.tools.sweep import main

        return main(argv)

    def test_shard_merge_byte_identical_to_serial(self, tmp_path, capsys):
        serial_json = tmp_path / "serial.json"
        assert self._main(self.BASE + ["--json", str(serial_json)]) == 0
        shard_paths = []
        for index in range(3):
            path = tmp_path / f"shard{index}.pkl"
            assert (
                self._main(
                    self.BASE
                    + ["--shard", f"{index}/3", "--emit-shard", str(path)]
                )
                == 0
            )
            shard_paths.append(path)
        merged_json = tmp_path / "merged.json"
        # Scrambled order: the merge sorts shards by index.
        merge_argv = [
            "--merge",
            str(shard_paths[2]),
            str(shard_paths[0]),
            str(shard_paths[1]),
            "--json",
            str(merged_json),
        ]
        assert self._main(merge_argv) == 0
        assert merged_json.read_bytes() == serial_json.read_bytes()
        payload = json.loads(merged_json.read_text())
        assert payload["schema"] == "ccrp-sweep/1"
        assert len(payload["reports"]) == 4
        assert payload["failures"] == []

    def test_emit_shard_defaults_to_whole_sweep(self, tmp_path, capsys):
        path = tmp_path / "whole.pkl"
        assert self._main(self.BASE + ["--emit-shard", str(path)]) == 0
        merged = merge_shard_files([path])
        assert len(merged) == 4

    def test_failures_exit_nonzero_but_write_results(self, tmp_path, capsys):
        out = tmp_path / "partial.json"
        argv = [
            "eightq",
            "--cache-sizes", "256",
            "--memories", "eprom", "nosuch",
            "--json", str(out),
        ]
        assert self._main(argv) == 1
        payload = json.loads(out.read_text())
        assert len(payload["reports"]) == 1
        assert len(payload["failures"]) == 1
        assert payload["failures"][0]["error_type"] == "ConfigurationError"

    def test_merge_of_wrong_specs_exits_2(self, tmp_path, capsys):
        empty = SweepResult(reports=())
        a = write_shard_file(tmp_path / "a.pkl", empty, (0, 2), _spec())
        b = write_shard_file(
            tmp_path / "b.pkl", empty, (1, 2), _spec(workloads=["other"])
        )
        assert self._main(["--merge", str(a), str(b)]) == 2

    @pytest.mark.parametrize(
        "argv",
        [
            ["eightq", "--merge", "x.pkl"],  # merge + workloads
            [],  # neither
            ["eightq", "--jobs", "0"],
            ["eightq", "--retries", "-1"],
            ["eightq", "--shard", "3"],  # not I/N
        ],
    )
    def test_usage_errors_exit_2(self, argv, capsys):
        with pytest.raises(SystemExit) as excinfo:
            self._main(argv)
        assert excinfo.value.code == 2

    def test_metrics_export_includes_workers_gauge(
        self, tmp_path, monkeypatch, capsys
    ):
        _force_pool(monkeypatch)
        metrics_path = tmp_path / "metrics.json"
        argv = self.BASE + [
            "--jobs", "2",
            "--metrics", str(metrics_path),
        ]
        assert self._main(argv) == 0
        payload = json.loads(metrics_path.read_text())
        assert payload["gauges"]["sweep.workers"] == 2
        assert payload["jobs"] == 2
