"""Tests for the two-pass assembler and the disassembler."""

from __future__ import annotations

import pytest

from repro.errors import AssemblerError
from repro.isa import Assembler, Instruction, decode, disassemble
from repro.isa.assembler import DEFAULT_DATA_BASE
from repro.isa.decoding import decode_program
from repro.isa.disassembler import disassemble_program


def assemble(source: str):
    return Assembler().assemble(source)


class TestBasicAssembly:
    def test_single_instruction(self):
        program = assemble("addu $v0, $a0, $a1")
        assert decode_program(program.text) == [Instruction.make("addu", rd=2, rs=4, rt=5)]

    def test_numeric_registers(self):
        program = assemble("addu $2, $4, $5")
        assert decode_program(program.text) == [Instruction.make("addu", rd=2, rs=4, rt=5)]

    def test_comments_and_blank_lines(self):
        program = assemble(
            """
            # leading comment
            addu $v0, $a0, $a1   # trailing comment

            """
        )
        assert program.size == 4

    def test_label_and_branch_backward(self):
        program = assemble(
            """
            loop: addiu $t0, $t0, -1
                  bne $t0, $zero, loop
            """
        )
        branch = decode_program(program.text)[1]
        assert branch.mnemonic == "bne"
        assert branch.imm_signed == -2  # back to loop from delay-slot PC

    def test_branch_forward(self):
        program = assemble(
            """
            beq $zero, $zero, done
            nop
            nop
            done: nop
            """
        )
        branch = decode_program(program.text)[0]
        assert branch.imm_signed == 2

    def test_jump_targets_are_word_addresses(self):
        program = assemble(
            """
            main: j main
            """
        )
        jump = decode_program(program.text)[0]
        assert jump.target == program.text_base >> 2

    def test_entry_defaults_to_main(self):
        program = assemble(
            """
            nop
            main: nop
            """
        )
        assert program.entry == program.text_base + 4

    def test_entry_without_main_is_text_base(self):
        program = assemble("nop")
        assert program.entry == program.text_base

    def test_memory_operand_forms(self):
        program = assemble(
            """
            lw $t0, 8($sp)
            lw $t1, -4($sp)
            lw $t2, ($sp)
            sw $t0, 0x10($gp)
            """
        )
        decoded = decode_program(program.text)
        assert [i.imm_signed for i in decoded] == [8, -4, 0, 16]

    def test_label_on_same_line_as_instruction(self):
        program = assemble("start: nop")
        assert program.labels["start"] == program.text_base


class TestPseudoInstructions:
    def test_nop_is_zero_word(self):
        assert assemble("nop").text == b"\x00\x00\x00\x00"

    def test_move(self):
        decoded = decode_program(assemble("move $t0, $t1").text)
        assert decoded == [Instruction.make("addu", rd=8, rs=9)]

    def test_li_small_positive(self):
        decoded = decode_program(assemble("li $t0, 42").text)
        assert decoded == [Instruction.make("addiu", rt=8, imm=42)]

    def test_li_negative(self):
        decoded = decode_program(assemble("li $t0, -5").text)
        assert decoded == [Instruction.make("addiu", rt=8, imm=-5)]

    def test_li_16bit_unsigned_uses_ori(self):
        decoded = decode_program(assemble("li $t0, 0xFFFF").text)
        assert decoded == [Instruction.make("ori", rt=8, imm=0xFFFF)]

    def test_li_large_uses_lui_ori(self):
        decoded = decode_program(assemble("li $t0, 0x12345678").text)
        assert decoded == [
            Instruction.make("lui", rt=8, imm=0x1234),
            Instruction.make("ori", rt=8, rs=8, imm=0x5678),
        ]

    def test_la_resolves_data_label(self):
        program = assemble(
            """
            .data
            buffer: .space 16
            .text
            la $t0, buffer
            """
        )
        decoded = decode_program(program.text)
        address = (decoded[0].imm_unsigned << 16) | decoded[1].imm_unsigned
        assert address == DEFAULT_DATA_BASE

    def test_unconditional_b(self):
        decoded = decode_program(assemble("target: b target").text)
        assert decoded[0].mnemonic == "beq"
        assert decoded[0].rs == 0 and decoded[0].rt == 0

    def test_beqz_bnez(self):
        decoded = decode_program(
            assemble(
                """
                top: beqz $t0, top
                     bnez $t1, top
                """
            ).text
        )
        assert decoded[0].mnemonic == "beq" and decoded[0].rs == 8
        assert decoded[1].mnemonic == "bne" and decoded[1].rs == 9

    def test_blt_expands_to_slt_bne(self):
        decoded = decode_program(
            assemble(
                """
                top: nop
                     blt $t0, $t1, top
                """
            ).text
        )
        assert decoded[1].mnemonic == "slt"
        assert decoded[1].rd == 1  # $at
        assert decoded[2].mnemonic == "bne"
        # Branch back to `top` from the bne at offset 8: delta = 0 - 12 = -3.
        assert decoded[2].imm_signed == -3

    def test_bge_expands_to_slt_beq(self):
        decoded = decode_program(assemble("top: bge $t0, $t1, top").text)
        assert decoded[0].mnemonic == "slt"
        assert decoded[1].mnemonic == "beq"

    def test_bgt_swaps_operands(self):
        decoded = decode_program(assemble("top: bgt $t0, $t1, top").text)
        slt = decoded[0]
        assert (slt.rs, slt.rt) == (9, 8)

    def test_mul_expands_to_mult_mflo(self):
        decoded = decode_program(assemble("mul $t0, $t1, $t2").text)
        assert [i.mnemonic for i in decoded] == ["mult", "mflo"]

    def test_ld_sd_expand_to_word_pairs(self):
        decoded = decode_program(
            assemble(
                """
                l.d $f2, 8($t0)
                s.d $f2, 16($t0)
                """
            ).text
        )
        assert [i.mnemonic for i in decoded] == ["lwc1", "lwc1", "swc1", "swc1"]
        assert [i.imm_signed for i in decoded] == [8, 12, 16, 20]
        assert [i.rt for i in decoded] == [2, 3, 2, 3]


class TestDataDirectives:
    def test_word_values(self):
        program = assemble(
            """
            .data
            values: .word 1, 2, -1
            """
        )
        assert program.data == b"\x00\x00\x00\x01\x00\x00\x00\x02\xff\xff\xff\xff"

    def test_word_label_reference(self):
        program = assemble(
            """
            .data
            ptr: .word target
            .text
            target: nop
            """
        )
        assert int.from_bytes(program.data, "big") == program.labels["target"]

    def test_space_zero_filled(self):
        program = assemble(
            """
            .data
            buf: .space 8
            tail: .word 5
            """
        )
        assert program.data[:8] == bytes(8)
        assert program.labels["tail"] == DEFAULT_DATA_BASE + 8

    def test_byte_and_half(self):
        program = assemble(
            """
            .data
            b: .byte 1, 2
            .align 1
            h: .half 0x1234
            """
        )
        assert program.data == b"\x01\x02\x12\x34"

    def test_float_and_double(self):
        program = assemble(
            """
            .data
            f: .float 1.0
            d: .double 2.0
            """
        )
        assert program.data[:4] == b"\x3f\x80\x00\x00"
        assert program.data[8:16] == b"\x40\x00\x00\x00\x00\x00\x00\x00"

    def test_asciiz(self):
        program = assemble(
            """
            .data
            s: .asciiz "hi"
            """
        )
        assert program.data == b"hi\x00"

    def test_align_in_data(self):
        program = assemble(
            """
            .data
            a: .byte 1
            .align 2
            w: .word 7
            """
        )
        assert program.labels["w"] == DEFAULT_DATA_BASE + 4


class TestAssemblerErrors:
    @pytest.mark.parametrize(
        "source",
        [
            "frobnicate $t0",
            "addu $t0, $t1",  # wrong operand count
            "addu $t9, $t1, $nope",
            "sll $t0, $t1, 32",  # shift out of range
            "addiu $t0, $t1, 0x8000",  # signed imm overflow
            "lw $t0, 0x8000($sp)",  # offset overflow
            "beq $t0, $t1, nowhere",
            ".data\n.word\n.text\nnop\n.weird",
            "x: nop\nx: nop",  # duplicate label
            ".data\nnop",  # instruction in data section
        ],
    )
    def test_bad_source_raises(self, source):
        with pytest.raises(AssemblerError):
            assemble(source)

    def test_error_reports_line_number(self):
        with pytest.raises(AssemblerError, match="line 3"):
            assemble("nop\nnop\nbogus $t0\n")

    def test_unaligned_text_base_rejected(self):
        with pytest.raises(AssemblerError):
            Assembler(text_base=2)


class TestDisassembler:
    def test_round_trip_through_text(self):
        source = """
        main:
            li   $t0, 100
            li   $t1, 0
        loop:
            addu $t1, $t1, $t0
            addiu $t0, $t0, -1
            bnez $t0, loop
            nop
            jr   $ra
            nop
        """
        program = assemble(source)
        listing = [
            disassemble(instr, address=program.text_base + 4 * i)
            for i, instr in enumerate(program.instructions)
        ]
        reassembled = assemble("\n".join(listing))
        # Branch operands disassemble as raw offsets, so compare via decode.
        assert [i.mnemonic for i in decode_program(reassembled.text)] == [
            i.mnemonic for i in program.instructions
        ]

    def test_disassemble_program_lists_addresses(self):
        program = assemble("nop\nnop")
        lines = disassemble_program(program.text, base=program.text_base)
        assert lines[0].startswith("000000:")
        assert "nop" in lines[0]

    def test_branch_target_rendering_with_address(self):
        program = assemble("top: nop\nbne $t0, $zero, top")
        rendered = disassemble(program.instructions[1], address=4)
        assert rendered.endswith("0x0")

    def test_fp_rendering(self):
        program = assemble("add.d $f4, $f2, $f0")
        assert disassemble(program.instructions[0]) == "add.d $f4, $f2, $f0"
