"""Tests for the artifact cache, the study cache, and the metrics layer."""

from __future__ import annotations

import pickle

import pytest

from repro.core import artifacts
from repro.core.artifacts import ArtifactCache, get_study
from repro.core.config import SystemConfig
from repro.core.metrics import METRICS, MetricsRegistry
from repro.core.standard import standard_code
from repro.core.study import ProgramStudy, compare
from repro.workloads.suite import load


@pytest.fixture(autouse=True)
def _fresh_study_cache():
    artifacts.clear()
    yield
    artifacts.clear()


def _race_one_artifact(root: str, marker: str) -> None:
    """Child-process body for the cross-process single-flight test."""
    import time

    cache = ArtifactCache(root=root)

    def compute():
        time.sleep(0.2)
        with open(marker, "a") as handle:
            handle.write("built\n")
        return 42

    assert cache.get_or_compute("kind", compute, "contended-key") == 42


class TestFingerprints:
    def test_bytes_fingerprint_is_stable_and_content_sensitive(self):
        assert artifacts.fingerprint_bytes(b"abc") == artifacts.fingerprint_bytes(b"abc")
        assert artifacts.fingerprint_bytes(b"abc") != artifacts.fingerprint_bytes(b"abd")
        assert len(artifacts.fingerprint_bytes(b"abc")) == 16

    def test_code_fingerprint_distinguishes_codes(self):
        bounded = standard_code()
        shorter = standard_code(max_length=12)
        assert artifacts.code_fingerprint(bounded) != artifacts.code_fingerprint(shorter)
        assert artifacts.code_fingerprint(bounded) == artifacts.code_fingerprint(bounded)


class TestArtifactCache:
    def test_round_trip(self, tmp_path):
        cache = ArtifactCache(root=tmp_path)
        cache.store("kind", {"x": 1}, "key", 42)
        found, value = cache.load("kind", "key", 42)
        assert found and value == {"x": 1}

    def test_missing_key(self, tmp_path):
        cache = ArtifactCache(root=tmp_path)
        found, value = cache.load("kind", "nothing")
        assert not found and value is None

    def test_keys_are_kind_and_part_sensitive(self, tmp_path):
        cache = ArtifactCache(root=tmp_path)
        cache.store("a", 1, "k")
        assert not cache.load("b", "k")[0]
        assert not cache.load("a", "k", "extra")[0]

    def test_get_or_compute_computes_once(self, tmp_path):
        cache = ArtifactCache(root=tmp_path)
        calls = []

        def compute():
            calls.append(1)
            return "value"

        assert cache.get_or_compute("kind", compute, "k") == "value"
        assert cache.get_or_compute("kind", compute, "k") == "value"
        assert len(calls) == 1

    def test_hit_and_miss_counters(self, tmp_path):
        cache = ArtifactCache(root=tmp_path)
        hits, misses = METRICS.counter("artifacts.hit"), METRICS.counter("artifacts.miss")
        cache.get_or_compute("kind", lambda: 1, "counted")
        assert METRICS.counter("artifacts.miss") == misses + 1
        cache.get_or_compute("kind", lambda: 1, "counted")
        assert METRICS.counter("artifacts.hit") == hits + 1

    def test_corrupt_entry_evicted_and_recomputed(self, tmp_path):
        cache = ArtifactCache(root=tmp_path)
        cache.store("kind", [1, 2, 3], "k")
        path = cache.path_for("kind", "k")
        path.write_bytes(b"not a pickle")
        assert cache.get_or_compute("kind", lambda: [4], "k") == [4]
        with path.open("rb") as handle:
            assert pickle.load(handle) == [4]

    def test_corrupt_entry_counts_eviction(self, tmp_path):
        cache = ArtifactCache(root=tmp_path)
        cache.store("kind", "value", "k")
        cache.path_for("kind", "k").write_bytes(b"garbage")
        evictions = METRICS.counter("artifacts.evict")
        found, value = cache.load("kind", "k")
        assert not found and value is None
        assert METRICS.counter("artifacts.evict") == evictions + 1
        # A clean miss is not an eviction.
        cache.load("kind", "never-stored")
        assert METRICS.counter("artifacts.evict") == evictions + 1

    def test_atomic_writes_leave_no_temp_files(self, tmp_path):
        cache = ArtifactCache(root=tmp_path)
        for index in range(5):
            cache.store("kind", bytes(1000), "k", index)
        leftovers = [p for p in tmp_path.rglob("*") if p.suffix == ".tmp"]
        assert leftovers == []

    def test_disabled_cache_never_touches_disk(self, tmp_path):
        cache = ArtifactCache(root=tmp_path)
        artifacts.set_cache_enabled(False)
        try:
            calls = []

            def compute():
                calls.append(1)
                return 7

            assert cache.get_or_compute("kind", compute, "k") == 7
            assert cache.get_or_compute("kind", compute, "k") == 7
            assert len(calls) == 2
            assert list(tmp_path.rglob("*.pkl")) == []
        finally:
            artifacts.set_cache_enabled(None)

    def test_cache_disabled_context_restores_state(self):
        before = artifacts.cache_enabled()
        with artifacts.cache_disabled():
            assert not artifacts.cache_enabled()
        assert artifacts.cache_enabled() == before

    def test_env_var_disables(self, monkeypatch):
        monkeypatch.setenv(artifacts.ENV_NO_CACHE, "1")
        assert not artifacts.cache_enabled()
        monkeypatch.setenv(artifacts.ENV_NO_CACHE, "0")
        assert artifacts.cache_enabled()

    def test_cache_root_honours_env(self, monkeypatch, tmp_path):
        monkeypatch.setenv(artifacts.ENV_CACHE_DIR, str(tmp_path / "elsewhere"))
        assert artifacts.cache_root() == tmp_path / "elsewhere"
        assert ArtifactCache().root == tmp_path / "elsewhere"

    def test_build_counter_counts_computes(self, tmp_path):
        cache = ArtifactCache(root=tmp_path)
        builds = METRICS.counter("artifacts.build")
        cache.get_or_compute("kind", lambda: 1, "fresh")
        assert METRICS.counter("artifacts.build") == builds + 1
        cache.get_or_compute("kind", lambda: 1, "fresh")
        # A hit is not a build.
        assert METRICS.counter("artifacts.build") == builds + 1

    def test_lost_build_race_coalesces(self, tmp_path, monkeypatch):
        # Simulate losing the single-flight race: the first (pre-lock)
        # load misses, and by the time the lock arrives another "process"
        # has stored the artifact.  We must load the winner's value, never
        # run compute, and count it as coalesced work.
        cache = ArtifactCache(root=tmp_path)
        real_load = cache.load
        state = {"calls": 0}

        def racy_load(kind, *key_parts):
            state["calls"] += 1
            if state["calls"] == 1:
                return False, None
            cache.store(kind, "winner", *key_parts)
            return real_load(kind, *key_parts)

        monkeypatch.setattr(cache, "load", racy_load)
        coalesced = METRICS.counter("artifacts.coalesced")
        builds = METRICS.counter("artifacts.build")
        value = cache.get_or_compute("kind", lambda: "loser", "contended")
        assert value == "winner"
        assert METRICS.counter("artifacts.coalesced") == coalesced + 1
        assert METRICS.counter("artifacts.build") == builds

    def test_concurrent_processes_build_once(self, tmp_path):
        # Two real processes race on one cold key with a slow compute;
        # the flock single-flight must let exactly one build through.
        import multiprocessing

        context = multiprocessing.get_context("fork")
        marker = tmp_path / "builds.log"
        workers = [
            context.Process(
                target=_race_one_artifact, args=(str(tmp_path), str(marker))
            )
            for _ in range(2)
        ]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join(timeout=60)
        assert all(worker.exitcode == 0 for worker in workers)
        assert marker.read_text().count("built") == 1


class TestStudyCache:
    def test_same_parameters_share_a_study(self):
        first = get_study("eightq", max_instructions=1_000_000)
        second = get_study("eightq", max_instructions=1_000_000)
        assert first is second

    def test_key_includes_max_instructions(self):
        # Regression: the old compare() cache keyed only on
        # (workload, alignment), so a different instruction cap silently
        # reused the wrong trace.
        short = get_study("eightq", max_instructions=1_000_000)
        long = get_study("eightq", max_instructions=2_000_000)
        assert short is not long
        assert short.max_instructions == 1_000_000

    def test_key_includes_code(self):
        default = get_study("eightq", max_instructions=1_000_000)
        custom = get_study(
            "eightq", code=standard_code(max_length=12), max_instructions=1_000_000
        )
        assert default is not custom

    def test_key_includes_alignment(self):
        byte_aligned = get_study("eightq", max_instructions=1_000_000)
        word_aligned = get_study("eightq", block_alignment=4, max_instructions=1_000_000)
        assert byte_aligned is not word_aligned

    def test_clear_resets(self):
        first = get_study("eightq", max_instructions=1_000_000)
        artifacts.clear()
        assert get_study("eightq", max_instructions=1_000_000) is not first

    def test_lru_bound_respected(self, monkeypatch):
        monkeypatch.setattr(artifacts, "MAX_CACHED_STUDIES", 1)
        first = get_study("eightq", max_instructions=1_000_000)
        get_study("eightq", max_instructions=3_000_000)  # evicts `first`
        assert len(artifacts._STUDIES) == 1
        assert get_study("eightq", max_instructions=1_000_000) is not first

    def test_adhoc_workloads_bypass_the_shared_cache(self):
        workload = load("eightq")
        study = get_study(workload, max_instructions=1_000_000)
        assert isinstance(study, ProgramStudy)
        assert len(artifacts._STUDIES) == 0

    def test_compare_goes_through_study_cache(self):
        report = compare("eightq", SystemConfig(cache_bytes=256))
        again = compare("eightq", SystemConfig(cache_bytes=256))
        assert report == again
        assert len(artifacts._STUDIES) == 1


class TestStudyArtifacts:
    def test_disk_artifacts_reproduce_identical_reports(self, monkeypatch, tmp_path):
        monkeypatch.setenv(artifacts.ENV_CACHE_DIR, str(tmp_path))
        config = SystemConfig(cache_bytes=256, memory="eprom")
        cold = ProgramStudy("eightq", max_instructions=1_000_000)
        cold_report = cold.metrics(config)
        stored = list(tmp_path.rglob("*.pkl"))
        assert stored, "expected trace/image/miss-stream artifacts on disk"

        hits_before = METRICS.counter("artifacts.hit")
        warm = ProgramStudy("eightq", max_instructions=1_000_000)
        warm_report = warm.metrics(config)
        assert METRICS.counter("artifacts.hit") > hits_before
        assert warm_report == cold_report

    def test_distinct_instruction_caps_get_distinct_artifacts(
        self, monkeypatch, tmp_path
    ):
        monkeypatch.setenv(artifacts.ENV_CACHE_DIR, str(tmp_path))
        ProgramStudy("eightq", max_instructions=1_000_000)
        first = len(list(tmp_path.rglob("*.pkl")))
        ProgramStudy("eightq", max_instructions=2_000_000)
        # The cap is part of the trace key, so the second study must not
        # alias the first study's artifacts.
        assert len(list(tmp_path.rglob("*.pkl"))) > first


class TestMetricsRegistry:
    def test_stage_accumulates(self):
        registry = MetricsRegistry()
        for _ in range(3):
            with registry.stage("work"):
                pass
        stats = registry.stage_stats("work")
        assert stats.calls == 3
        assert stats.wall_seconds >= 0.0

    def test_counters(self):
        registry = MetricsRegistry()
        registry.count("events")
        registry.count("events", 4)
        assert registry.counter("events") == 5
        assert registry.counter("never") == 0

    def test_snapshot_and_merge(self):
        a = MetricsRegistry()
        b = MetricsRegistry()
        with a.stage("s"):
            pass
        a.count("c", 2)
        with b.stage("s"):
            pass
        b.count("c", 3)
        a.merge(b.snapshot())
        assert a.stage_stats("s").calls == 2
        assert a.counter("c") == 5

    def test_reset(self):
        registry = MetricsRegistry()
        registry.count("c")
        registry.gauge("g", 4)
        with registry.stage("s"):
            pass
        registry.observe("o", 1.5)
        registry.reset()
        assert registry.snapshot() == {
            "stages": {},
            "counters": {},
            "gauges": {},
            "observations": {},
        }

    def test_gauges_record_last_value_and_merge_by_max(self):
        registry = MetricsRegistry()
        registry.gauge("sweep.workers", 4)
        registry.gauge("sweep.workers", 2)
        assert registry.gauge_value("sweep.workers") == 2
        assert registry.gauge_value("never", default=7) == 7
        other = MetricsRegistry()
        other.gauge("sweep.workers", 8)
        registry.merge(other.snapshot())
        assert registry.gauge_value("sweep.workers") == 8

    def test_write_json_schema(self, tmp_path):
        import json

        registry = MetricsRegistry()
        registry.count("c", 9)
        registry.gauge("g", 3)
        path = registry.write_json(tmp_path / "m.json", extra={"jobs": 2})
        payload = json.loads(path.read_text())
        assert payload["schema"] == "ccrp-metrics/2"
        assert payload["jobs"] == 2
        assert payload["counters"] == {"c": 9}
        assert payload["gauges"] == {"g": 3}
        assert payload["stages"] == {}
        assert payload["observations"] == {}

    def test_observations_summarise_percentiles(self):
        registry = MetricsRegistry()
        for value in range(1, 101):  # 1..100, uniform
            registry.observe("latency.x", float(value))
        summary = registry.snapshot()["observations"]["latency.x"]
        assert summary["count"] == 100
        assert summary["min"] == 1.0
        assert summary["max"] == 100.0
        assert summary["mean"] == pytest.approx(50.5)
        assert summary["p50"] == pytest.approx(50.0, abs=1.0)
        assert summary["p99"] == pytest.approx(99.0, abs=1.0)
        assert summary["p50"] <= summary["p99"] <= summary["max"]

    def test_observation_window_is_bounded(self):
        from repro.core.metrics import MAX_SAMPLES

        registry = MetricsRegistry()
        for value in range(MAX_SAMPLES + 500):
            registry.observe("o", float(value))
        summary = registry.snapshot()["observations"]["o"]
        # Oldest samples aged out: the window keeps the newest ones.
        assert summary["count"] == MAX_SAMPLES
        assert summary["min"] == 500.0

    def test_merge_leaves_local_observations_alone(self):
        a = MetricsRegistry()
        b = MetricsRegistry()
        a.observe("o", 1.0)
        b.observe("o", 99.0)
        a.merge(b.snapshot())
        # Percentiles are not combinable from summaries; merge must not
        # fabricate samples out of the remote summary.
        assert a.snapshot()["observations"]["o"]["count"] == 1

    def test_snapshot_and_merge_are_safe_under_concurrent_recording(self):
        """Threaded stress: readers see consistent copies, never racing dicts.

        Writer threads hammer every recording surface (stages, counters,
        gauges, observations) while reader threads snapshot and merge
        concurrently.  Before snapshot/merge copied under the lock this
        raced with ``RuntimeError: dictionary changed size during
        iteration`` (or silently lost updates); now every error in any
        thread is collected and the final totals must be exact.
        """
        import threading

        registry = MetricsRegistry()
        sink = MetricsRegistry()
        start = threading.Barrier(8)
        errors = []
        rounds = 400

        def writer(name):
            try:
                start.wait()
                for i in range(rounds):
                    registry.count(f"count.{name}")
                    registry.count("count.shared")
                    registry.gauge(f"gauge.{name}", i)
                    registry.observe(f"latency.{name}", float(i % 17))
                    with registry.stage(f"stage.{name}"):
                        pass
            except Exception as error:  # pragma: no cover - the failure mode
                errors.append(error)

        def reader():
            try:
                start.wait()
                for _ in range(rounds):
                    snapshot = registry.snapshot()
                    # A snapshot is internally consistent JSON material.
                    assert set(snapshot) == {
                        "stages",
                        "counters",
                        "gauges",
                        "observations",
                    }
                    sink.merge(snapshot)
            except Exception as error:  # pragma: no cover - the failure mode
                errors.append(error)

        threads = [
            threading.Thread(target=writer, args=(f"w{i}",)) for i in range(4)
        ] + [threading.Thread(target=reader) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(120)
        assert errors == []
        final = registry.snapshot()
        assert final["counters"]["count.shared"] == 4 * rounds
        for i in range(4):
            assert final["counters"][f"count.w{i}"] == rounds
            assert final["observations"][f"latency.w{i}"]["count"] == rounds
            assert final["stages"][f"stage.w{i}"]["calls"] == rounds
