"""Resilience tests: deadlines, retries, the durable response cache,
typed errors, payload limits, and leak-free disconnects.

Same discipline as the concurrency suite: synchronisation is structural
(FIFO gates, bounded stats round trips), never a bare sleep.  The one
place wall-clock time appears — waiting for a queued job's deadline to
pass — it is bounded by live stats round trips against the test's own
monotonic clock, not by guessing.
"""

from __future__ import annotations

import socket
import threading
import time

import pytest

from repro.core.metrics import MetricsRegistry
from repro.errors import ProtocolError, ServiceError
from repro.service import protocol
from repro.service.client import ServiceClient, idempotency_key
from repro.service.protocol import HEADER_STRUCT, FrameDecoder, encode_frame

from service_harness import LiveService

TEXT = bytes(range(64)) * 48 + b"\x00" * 256

SIM = {"workload": "eightq", "cache_bytes": 512, "clb_entries": 8}


@pytest.fixture()
def fresh_cache(tmp_path, monkeypatch):
    """A cold artifact + response cache shared by server restarts."""
    from repro.core import artifacts

    cache_dir = tmp_path / "cache"
    monkeypatch.setenv("CCRP_CACHE_DIR", str(cache_dir))
    artifacts.clear()
    yield cache_dir
    artifacts.clear()


class TestDeadlines:
    def test_expired_on_arrival_is_refused_without_dispatch(
        self, tmp_path, fresh_cache
    ):
        with LiveService(str(tmp_path), workers=1) as live:
            with live.client() as client:
                # send() skips the client-side budget check, so this
                # exercises the *server's* admission refusal.
                client.send("simulate", dict(SIM), deadline_ms=0)
                _, header, _ = client.recv()
                assert not header["ok"]
                assert header["error"]["code"] == "deadline_exceeded"
                assert "not dispatched" in header["error"]["message"]
                stats = client.stats()
        assert stats["counters"]["service.deadline_exceeded"] == 1
        # Refused on arrival: no batch was ever formed for it.
        assert stats["counters"].get("service.batched_jobs", 0) == 0

    def test_deadline_counter_survives_snapshot_merge(self, tmp_path, fresh_cache):
        with LiveService(str(tmp_path), workers=1) as live:
            with live.client() as client:
                client.send("simulate", dict(SIM), deadline_ms=-5)
                client.recv()
                stats = client.stats()
        # Counters add on merge, so the refusal survives aggregation
        # into any downstream registry (the sweep/bench pattern).
        downstream = MetricsRegistry()
        downstream.count("service.deadline_exceeded", 2)
        downstream.merge(stats)
        assert downstream.counter("service.deadline_exceeded") == 3

    def test_queued_job_is_shed_at_dispatch(self, tmp_path, fresh_cache):
        deadline_ms = 40.0
        with LiveService(
            str(tmp_path), workers=1, debug=True, response_cache=False
        ) as live:
            # Warm the single worker's in-process code cache so the
            # gated job finishes promptly once released.
            with live.client(name="warmup") as warm:
                warm.compress(b"w" * 64)
            gate = live.gate()
            blocker = live.client(name="blocker")
            victim = live.client(name="victim")
            results: list = []
            # The gated job occupies the only worker chunk slot...
            blocker.send("compress", {"_gate": gate.params}, b"g" * 128)
            gate.wait_entered()
            # ... so the victim's job waits in the queue while its
            # deadline runs out.
            victim_thread = threading.Thread(
                target=lambda: results.append(
                    _request_error(victim, "simulate", dict(SIM), deadline_ms)
                )
            )
            victim_thread.start()
            live.wait_stats(
                lambda s: s["counters"].get("requests.simulate", 0) == 1,
                what="victim admitted",
            )
            # Let the deadline lapse — bounded stats round trips against
            # our own clock, not a sleep.
            lapse = time.monotonic() + deadline_ms / 1000.0 + 0.05
            live.wait_stats(
                lambda s: time.monotonic() >= lapse, what="deadline lapsed"
            )
            gate.release_job()
            victim_thread.join(60)
            assert not victim_thread.is_alive()
            _, header, _ = blocker.recv()
            assert header["ok"]
            blocker.close()
            victim.close()
            stats = live.wait_stats(
                lambda s: s["counters"].get("service.deadline_exceeded", 0) >= 1,
                what="shed counted",
            )
        (error,) = results
        assert isinstance(error, ServiceError)
        assert error.code == "deadline_exceeded"
        assert "shed before dispatch" in str(error)
        # Only the warm-up and the gated job ever reached a worker
        # batch; the shed job never did.
        assert stats["counters"]["service.batched_jobs"] == 2

    def test_client_side_budget_exhaustion_is_local(self, tmp_path, fresh_cache):
        with LiveService(str(tmp_path), workers=1) as live:
            with live.client() as client:
                before = client.stats()["counters"].get("requests.simulate", 0)
                with pytest.raises(ServiceError) as caught:
                    client.request("simulate", dict(SIM), deadline_ms=-1)
                after = client.stats()["counters"].get("requests.simulate", 0)
        assert caught.value.code == "deadline_exceeded"
        assert caught.value.attempts == 0
        assert caught.value.op == "simulate"
        # The request never left the client.
        assert before == after == 0


def _request_error(client: ServiceClient, op: str, params: dict, deadline_ms):
    try:
        return client.request(op, params, deadline_ms=deadline_ms)
    except ServiceError as error:
        return error


class TestDurableResponseCache:
    def test_repeat_hits_cache_without_new_batches(self, tmp_path, fresh_cache):
        with LiveService(str(tmp_path), workers=1) as live:
            with live.client() as client:
                first = client.compress(TEXT)
                second = client.compress(TEXT)
                stats = client.stats()
        assert first == second
        assert stats["counters"]["service.cache.miss"] == 1
        assert stats["counters"]["service.cache.hit"] == 1
        assert stats["counters"]["service.cache.store"] == 1
        assert stats["counters"]["service.batched_jobs"] == 1

    def test_restarted_server_replays_byte_identically(self, tmp_path, fresh_cache):
        (tmp_path / "a").mkdir()
        (tmp_path / "b").mkdir()
        with LiveService(str(tmp_path / "a"), workers=1) as live_a:
            with live_a.client() as client:
                original = client.compress(TEXT)
        # Same CCRP_CACHE_DIR, brand-new server process state.
        with LiveService(str(tmp_path / "b"), workers=1) as live_b:
            with live_b.client() as client:
                replay = client.compress(TEXT)
                stats = client.stats()
        assert replay == original
        assert stats["counters"]["service.cache.hit"] == 1
        # Zero new executions: the replay never formed a worker batch.
        assert stats["counters"].get("service.batched_jobs", 0) == 0
        assert stats["counters"].get("service.batches", 0) == 0

    def test_corrupt_cache_entry_is_evicted_and_recomputed(
        self, tmp_path, fresh_cache
    ):
        from repro.core.artifacts import SERVICE_RESPONSE_KIND

        (tmp_path / "a").mkdir()
        (tmp_path / "b").mkdir()
        with LiveService(str(tmp_path / "a"), workers=1) as live_a:
            with live_a.client() as client:
                original = client.compress(TEXT)
        entries = list(fresh_cache.rglob(f"{SERVICE_RESPONSE_KIND}/*.pkl"))
        assert len(entries) == 1
        entries[0].write_bytes(b"not a pickle at all")
        with LiveService(str(tmp_path / "b"), workers=1) as live_b:
            with live_b.client() as client:
                recomputed = client.compress(TEXT)
                stats = client.stats()
        # Served correct bytes by recomputing, never the corrupt entry.
        assert recomputed == original
        assert stats["counters"]["service.cache.miss"] == 1
        assert stats["counters"]["service.batched_jobs"] == 1

    def test_responses_carry_a_verified_crc(self, tmp_path, fresh_cache):
        with LiveService(str(tmp_path), workers=1) as live:
            with live.client() as client:
                client.send("compress", {}, TEXT)
                _, header, payload = client.recv()
        assert header["ok"]
        assert header["crc32"] == protocol.payload_digest(payload)
        # The client-side verification catches a damaged payload.
        with pytest.raises(ProtocolError, match="CRC-32"):
            ServiceClient.verify_payload(header, payload + b"\x00")

    def test_gated_and_crash_ops_never_cached(self, tmp_path, fresh_cache):
        with LiveService(str(tmp_path), workers=1, debug=True) as live:
            gate = live.gate()
            with live.client() as client:
                client.send("compress", {"_gate": gate.params}, b"h" * 64)
                gate.wait_entered()
                gate.release_job()
                _, header, _ = client.recv()
                assert header["ok"]
                stats = client.stats()
        assert "service.cache.store" not in stats["counters"]
        assert "service.cache.miss" not in stats["counters"]


class TestRetries:
    def test_seeded_backoff_schedule_is_deterministic(self, tmp_path, fresh_cache):
        def schedule(seed: int) -> list[float]:
            recorded: list[float] = []
            with LiveService(str(tmp_path), workers=1) as live:
                client = live.client(
                    retries=4, backoff_base=0.05, backoff_max=0.2, backoff_seed=seed
                )
                original_sleep = time.sleep
                time.sleep = recorded.append
                try:
                    for attempt in range(5):
                        client._backoff(attempt, budget=None)
                finally:
                    time.sleep = original_sleep
                client.close()
            return recorded

        first = schedule(1234)
        second = schedule(1234)
        different = schedule(4321)
        assert first == second
        assert first != different
        # Capped exponential shape: delays never exceed the cap, and the
        # pre-jitter envelope doubles until it hits it.
        assert all(0 <= delay <= 0.2 for delay in first)

    def test_retry_after_worker_crash_is_transparent(self, tmp_path, fresh_cache):
        with LiveService(str(tmp_path), workers=1, debug=True) as live:
            expected = None
            with live.client() as reference:
                expected = reference.compress(TEXT)
            with live.client(
                retries=2, backoff_base=0.0, backoff_seed=1
            ) as client:
                # Crash the pool, then immediately request work: the
                # crash error is retryable and the retry succeeds.
                with pytest.raises(ServiceError):
                    client.request("crash")
                assert client.compress(TEXT) == expected

    def test_unavailable_endpoint_is_a_typed_error(self, tmp_path):
        with pytest.raises(ServiceError) as caught:
            ServiceClient(f"unix:{tmp_path}/nowhere.sock")
        error = caught.value
        assert error.code == "unavailable"
        assert error.op == "connect"
        assert error.attempts == 1
        assert str(tmp_path) in error.address

    def test_idempotency_key_matches_content_not_identity(self):
        key = idempotency_key("compress", {"alignment": 1}, b"abc")
        assert key == idempotency_key("compress", {"alignment": 1}, b"abc")
        assert key != idempotency_key("compress", {"alignment": 2}, b"abc")
        assert key != idempotency_key("compress", {"alignment": 1}, b"abd")

    def test_requests_carry_the_idempotency_key(self, tmp_path, fresh_cache):
        # Snoop the wire: the client stamps every request header.
        captured: dict = {}
        original = encode_frame

        def snoop(header, payload=b""):
            captured.update(header)
            return original(header, payload)

        import repro.service.client as client_module

        with LiveService(str(tmp_path), workers=1) as live:
            client_module.encode_frame = snoop
            try:
                with live.client() as client:
                    client.ping()
            finally:
                client_module.encode_frame = original
        assert captured["idempotency"] == idempotency_key("ping", {}, b"")


class TestPayloadLimits:
    def test_client_refuses_oversized_payload_before_sending(
        self, tmp_path, fresh_cache, monkeypatch
    ):
        with LiveService(str(tmp_path), workers=1) as live:
            with live.client() as client:
                monkeypatch.setattr(protocol, "MAX_PAYLOAD_BYTES", 1024)
                with pytest.raises(ServiceError) as caught:
                    client.compress(b"x" * 2048)
                monkeypatch.undo()
                # Nothing was sent: the connection is still usable.
                assert client.ping()
        error = caught.value
        assert error.code == "too_large"
        assert "1024-byte" in str(error)
        assert error.op == "compress"

    def test_server_refuses_oversized_declaration_and_keeps_serving(
        self, tmp_path, fresh_cache, monkeypatch
    ):
        monkeypatch.setattr(protocol, "MAX_PAYLOAD_BYTES", 4096)
        with LiveService(str(tmp_path), workers=1) as live:
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.settimeout(60)
            sock.connect(live.socket_path)
            try:
                # Hand-craft a frame declaring a payload past the limit
                # (the client would refuse to send this itself).
                header_bytes = b'{"id":1,"op":"ping","params":{}}'
                sock.sendall(
                    HEADER_STRUCT.pack(
                        protocol.MAGIC, protocol.VERSION, 0, len(header_bytes), 5000
                    )
                    + header_bytes
                    + b"y" * 5000
                )
                decoder = FrameDecoder()
                refusal = None
                while refusal is None:
                    decoder.feed(sock.recv(1 << 16))
                    refusal = decoder.next_frame()
                error = refusal[0]["error"]
                assert error["code"] == "too_large"
                assert error["limit"] == 4096
                assert error["declared"] == 5000
                assert "4096-byte limit" in error["message"]
                # The declared body was drained: the same connection
                # still serves the next (valid) frame.
                sock.sendall(encode_frame({"id": 2, "op": "ping", "params": {}}))
                pong = None
                while pong is None:
                    decoder.feed(sock.recv(1 << 16))
                    pong = decoder.next_frame()
                assert pong[0]["ok"] and pong[0]["result"]["pong"]
            finally:
                sock.close()
            stats = live.wait_stats(
                lambda s: s["counters"].get("service.too_large", 0) == 1,
                what="too_large counted",
            )
        assert stats["counters"]["service.too_large"] == 1


class TestDisconnectHygiene:
    def test_mid_frame_disconnect_releases_everything(self, tmp_path, fresh_cache):
        with LiveService(str(tmp_path), workers=1) as live:
            # A client that dies mid-frame: half a prefix, then gone.
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.connect(live.socket_path)
            sock.sendall(encode_frame({"id": 1, "op": "ping", "params": {}})[:7])
            sock.close()
            stats = live.wait_stats(
                lambda s: s["counters"].get("service.protocol_errors", 0) == 1,
                what="torn frame observed",
            )
            assert stats["server"]["pending"] == 0
            assert stats["server"]["inflight"] == 0

    def test_disconnect_with_job_in_flight_leaks_nothing(
        self, tmp_path, fresh_cache
    ):
        with LiveService(
            str(tmp_path), workers=1, debug=True, response_cache=False
        ) as live:
            # Warm the single worker's in-process code cache so the
            # doomed job finishes promptly once released.
            with live.client(name="warmup") as warm:
                warm.compress(b"w" * 64)
            gate = live.gate()
            doomed = live.client(name="doomed")
            doomed.send("compress", {"_gate": gate.params}, b"k" * 256)
            gate.wait_entered()
            before = live.wait_stats(
                lambda s: s["server"]["inflight"] == 1, what="job in flight"
            )
            assert before["server"]["pending"] == 1
            # The client vanishes while its job is running...
            doomed.close()
            gate.release_job()
            # ... and the server still completes the job, drops the
            # response, and releases every slot and registration.
            after = live.wait_stats(
                lambda s: s["counters"].get("service.dropped_responses", 0) == 1
                and s["server"]["pending"] == 0
                and s["server"]["inflight"] == 0,
                what="slots and registrations released",
            )
            # The queue is fully available again: a burst the exact size
            # of the limit is admitted without one 'overloaded'.
            with live.client() as probe:
                assert probe.compress(b"m" * 64)[0]["original_size"] == 64
            assert "service.overloaded" not in after["counters"]


class TestCommandLine:
    def test_unreachable_endpoint_is_one_line_and_exit_1(self, tmp_path, capsys):
        from repro.tools.client import main

        assert main([f"unix:{tmp_path}/nowhere.sock", "ping"]) == 1
        lines = capsys.readouterr().err.strip().splitlines()
        assert len(lines) == 1
        assert "[unavailable]" in lines[0]
        assert "op=connect" in lines[0]
        assert "attempts=1" in lines[0]
        assert f"{tmp_path}/nowhere.sock" in lines[0]

    def test_resilience_flags_reach_the_client(self, tmp_path, fresh_cache, capsys):
        from repro.tools.client import main

        with LiveService(str(tmp_path), workers=1) as live:
            assert (
                main(
                    [
                        live.address,
                        "--retries",
                        "2",
                        "--backoff-seed",
                        "7",
                        "--deadline-ms",
                        "60000",
                        "ping",
                    ]
                )
                == 0
            )
        assert capsys.readouterr().out.strip() == "pong"

    def test_serve_flag_disables_response_cache(self):
        from repro.tools.serve import build_parser

        args = build_parser().parse_args(["unix:/tmp/x.sock", "--no-response-cache"])
        assert args.no_response_cache
