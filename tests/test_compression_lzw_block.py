"""Tests for the LZW (compress-style) codec and block-bounded compression."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import CompressionError
from repro.compression.block import (
    BYTE_ALIGNED,
    WORD_ALIGNED,
    BlockCompressor,
)
from repro.compression.histogram import byte_histogram
from repro.compression.huffman import HuffmanCode
from repro.compression.lzw import (
    HEADER_BYTES,
    lzw_compress,
    lzw_decompress,
)


class TestLZW:
    def test_round_trip_text(self):
        data = b"tobeornottobetobeornottobe" * 20
        assert lzw_decompress(lzw_compress(data)) == data

    def test_round_trip_binary(self):
        data = bytes(random.Random(7).randbytes(5000))
        assert lzw_decompress(lzw_compress(data)) == data

    def test_round_trip_repetitive_kwkwk_case(self):
        data = b"aaaaaaaaaaaaaaaaaaaaaaaa"
        assert lzw_decompress(lzw_compress(data)) == data

    def test_empty_input(self):
        blob = lzw_compress(b"")
        assert len(blob) == HEADER_BYTES
        assert lzw_decompress(blob) == b""

    def test_single_byte(self):
        assert lzw_decompress(lzw_compress(b"x")) == b"x"

    def test_compresses_repetitive_data(self):
        data = b"abcd" * 1000
        assert len(lzw_compress(data)) < len(data) // 4

    def test_random_data_does_not_explode(self):
        data = bytes(random.Random(8).randbytes(4096))
        # LZW on incompressible data costs at most ~ 2x in the 9-bit region.
        assert len(lzw_compress(data)) < len(data) * 2

    def test_header_charged(self):
        assert lzw_compress(b"a") != lzw_compress(b"a")[HEADER_BYTES:]

    def test_max_bits_validation(self):
        with pytest.raises(CompressionError):
            lzw_compress(b"abc", max_bits=5)

    def test_round_trip_beyond_table_freeze(self):
        # Force dictionary saturation at a small width to hit the frozen path.
        data = bytes(random.Random(9).randbytes(3000))
        blob = lzw_compress(data, max_bits=9)
        assert lzw_decompress(blob, max_bits=9) == data

    @settings(max_examples=30, deadline=None)
    @given(st.binary(min_size=0, max_size=2000))
    def test_property_round_trip(self, data):
        assert lzw_decompress(lzw_compress(data)) == data


def _code_for(data: bytes, max_length: int = 16) -> HuffmanCode:
    return HuffmanCode.from_frequencies(
        byte_histogram(data), max_length=max_length, cover_all_symbols=True
    )


class TestBlockCompressor:
    def test_round_trip_program(self):
        data = bytes(random.Random(10).choices(range(32), k=4096))
        compressor = BlockCompressor(_code_for(data))
        blocks = compressor.compress_program(data)
        assert compressor.decompress_program(blocks) == data

    def test_tail_padding(self):
        data = b"\x01" * 40  # 1.25 lines
        compressor = BlockCompressor(_code_for(data))
        blocks = compressor.compress_program(data)
        assert len(blocks) == 2
        restored = compressor.decompress_program(blocks)
        assert restored[:40] == data
        assert restored[40:] == bytes(24)

    def test_compressible_line_shrinks(self):
        data = b"\x00" * 32
        compressor = BlockCompressor(_code_for(b"\x00" * 100 + bytes(range(256))))
        block = compressor.compress_line(data)
        assert block.is_compressed
        assert block.stored_size < 32
        assert 1 <= block.stored_size <= 31

    def test_incompressible_line_bypassed(self):
        line = bytes(range(32))
        # A code trained on different data gives these bytes long codes.
        histogram = [0] * 256
        histogram[255] = 10_000
        code = HuffmanCode.from_frequencies(histogram, max_length=16, cover_all_symbols=True)
        block = BlockCompressor(code).compress_line(line)
        assert not block.is_compressed
        assert block.data == line
        assert block.stored_size == 32

    def test_no_block_ever_grows(self):
        rng = random.Random(11)
        code = _code_for(bytes(rng.randbytes(512)))
        compressor = BlockCompressor(code)
        for _ in range(50):
            line = bytes(rng.randbytes(32))
            assert compressor.compress_line(line).stored_size <= 32

    def test_word_alignment_pads_to_multiple_of_four(self):
        data = b"\x00" * 320
        code = _code_for(data + bytes(range(256)))
        blocks = BlockCompressor(code, alignment=WORD_ALIGNED).compress_program(data)
        assert all(block.stored_size % 4 == 0 for block in blocks)

    def test_byte_alignment_never_larger_than_word_alignment(self):
        data = bytes(random.Random(12).choices(range(64), k=2048))
        code = _code_for(data)
        byte_blocks = BlockCompressor(code, alignment=BYTE_ALIGNED).compress_program(data)
        word_blocks = BlockCompressor(code, alignment=WORD_ALIGNED).compress_program(data)
        byte_size = sum(block.stored_size for block in byte_blocks)
        word_size = sum(block.stored_size for block in word_blocks)
        assert byte_size <= word_size

    def test_symbol_bits_present_only_when_compressed(self):
        data = b"\x00" * 32
        code = _code_for(b"\x00" * 100)
        block = BlockCompressor(code).compress_line(data)
        assert block.symbol_bits is not None
        assert len(block.symbol_bits) == 32
        assert sum(block.symbol_bits) == block.bit_length

    def test_wrong_line_size_rejected(self):
        code = _code_for(b"\x00\x01")
        with pytest.raises(CompressionError):
            BlockCompressor(code).compress_line(b"\x00" * 16)

    def test_bad_line_size_config_rejected(self):
        code = _code_for(b"\x00\x01")
        with pytest.raises(CompressionError):
            BlockCompressor(code, line_size=33)

    def test_bad_alignment_rejected(self):
        code = _code_for(b"\x00\x01")
        with pytest.raises(CompressionError):
            BlockCompressor(code, alignment=2)

    def test_compressed_size_accounting(self):
        data = b"\x00" * 128
        code = _code_for(b"\x00" * 100)
        compressor = BlockCompressor(code)
        blocks = compressor.compress_program(data)
        assert compressor.compressed_size(blocks) == sum(b.stored_size for b in blocks)

    @settings(max_examples=20, deadline=None)
    @given(st.binary(min_size=1, max_size=512))
    def test_property_round_trip_any_data(self, data):
        code = _code_for(data)
        compressor = BlockCompressor(code)
        blocks = compressor.compress_program(data)
        restored = compressor.decompress_program(blocks)
        assert restored[: len(data)] == data
        assert all(block.stored_size <= 32 for block in blocks)
