"""The shipped examples must actually run (deliverable guard).

Each example is executed in-process with its module namespace isolated,
so a refactor that breaks the public API surface the examples use fails
the suite, not the first user.
"""

from __future__ import annotations

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"

EXAMPLES = [
    ("quickstart.py", ["eightq"]),
    ("compression_explorer.py", []),
    ("design_space.py", ["eightq"]),
    ("custom_program.py", []),
    ("paging_and_profiling.py", ["eightq"]),
]


@pytest.mark.parametrize("script, args", EXAMPLES, ids=lambda value: str(value))
def test_example_runs(script, args, capsys, monkeypatch):
    if not isinstance(script, str) or not script.endswith(".py"):
        pytest.skip("id param")
    path = EXAMPLES_DIR / script
    monkeypatch.setattr(sys, "argv", [str(path), *args])
    runpy.run_path(str(path), run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip(), f"{script} produced no output"


def test_quickstart_reports_comparison(capsys, monkeypatch):
    monkeypatch.setattr(sys, "argv", ["quickstart.py", "eightq"])
    runpy.run_path(str(EXAMPLES_DIR / "quickstart.py"), run_name="__main__")
    out = capsys.readouterr().out
    assert "T_CCRP/T_std" in out
    assert "compressed image" in out


def test_custom_program_verifies_sieve(capsys, monkeypatch):
    monkeypatch.setattr(sys, "argv", ["custom_program.py"])
    runpy.run_path(str(EXAMPLES_DIR / "custom_program.py"), run_name="__main__")
    out = capsys.readouterr().out
    assert "168 primes" in out
    assert "verified" in out


def test_example_rejects_unknown_workload(monkeypatch):
    monkeypatch.setattr(sys, "argv", ["quickstart.py", "doom"])
    with pytest.raises(SystemExit):
        runpy.run_path(str(EXAMPLES_DIR / "quickstart.py"), run_name="__main__")
