"""End-to-end integration: the paper's transparency claim, proven.

"Code in the instruction cache appears to the processor as standard RISC
instructions."  These tests run real workloads, then fetch the same
dynamic instruction stream through the *functional* code-expanding cache
(which walks the serialised LAT and really Huffman-decodes each block)
and require bit-identical words — across compression, layout, LAT
addressing, CLB, and decode.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cache import simulate_trace
from repro.ccrp import ExpandingInstructionCache, ProgramCompressor
from repro.core.standard import standard_code
from repro.workloads import SIMULATION_PROGRAMS, load


@pytest.fixture(scope="module")
def compressor():
    return ProgramCompressor(standard_code())


class TestWholeProgramRoundTrip:
    @pytest.mark.parametrize("name", SIMULATION_PROGRAMS)
    def test_every_program_decompresses_exactly(self, name, compressor):
        text = load(name).text
        image = compressor.compress(text)
        restored = compressor.block_compressor.decompress_program(list(image.blocks))
        assert restored[: len(text)] == text

    @pytest.mark.parametrize("name", ("eightq", "lloop01"))
    def test_memory_image_walk_reconstructs_program(self, name, compressor):
        """Read each line the way hardware would: LAT bytes -> block bytes
        -> decoder, all from the serialised memory image."""
        text = load(name).text
        image = compressor.compress(text)
        cache = ExpandingInstructionCache(image, cache_bytes=256)
        rebuilt = b"".join(
            cache.read_line(line * 32) for line in range(image.line_count)
        )
        assert rebuilt[: len(text)] == text


class TestTransparentExecution:
    @pytest.mark.parametrize("name", ("eightq", "lloop01", "nasa1"))
    def test_fetch_through_expanding_cache_matches_text(self, name, compressor):
        """Fetch the program's real dynamic instruction stream through the
        decompressing cache; every word must match the original text."""
        workload = load(name)
        image = compressor.compress(workload.text)
        cache = ExpandingInstructionCache(image, cache_bytes=512)
        text = workload.text
        addresses = workload.run().trace.addresses[:30_000]
        for address in np.unique(addresses):
            address = int(address)
            expected = int.from_bytes(text[address : address + 4], "big")
            assert cache.fetch_word(address) == expected

    def test_expanding_cache_miss_count_matches_analytic_simulator(self, compressor):
        """Two totally different implementations (functional refill walk
        vs vectorised trace simulation) must agree on the miss stream."""
        workload = load("eightq")
        image = compressor.compress(workload.text)
        addresses = workload.run().trace.addresses[:50_000]
        cache = ExpandingInstructionCache(image, cache_bytes=256)
        for address in addresses:
            cache.read_line(int(address))
        analytic = simulate_trace(addresses, 256)
        assert cache.misses == analytic.misses
        assert cache.hits == analytic.accesses - analytic.misses

    def test_clb_stats_exposed(self, compressor):
        workload = load("eightq")
        image = compressor.compress(workload.text)
        cache = ExpandingInstructionCache(image, cache_bytes=256, clb_entries=4)
        for address in workload.run().trace.addresses[:20_000]:
            cache.read_line(int(address))
        assert cache.clb.hits + cache.clb.misses == cache.misses


class TestImageProperties:
    @pytest.mark.parametrize("name", SIMULATION_PROGRAMS)
    def test_no_block_exceeds_line_size(self, name, compressor):
        image = compressor.compress(load(name).text)
        assert all(block.stored_size <= 32 for block in image.blocks)
        assert all(
            block.stored_size <= 31 for block in image.blocks if block.is_compressed
        )

    @pytest.mark.parametrize("name", SIMULATION_PROGRAMS)
    def test_lat_overhead_is_3_125_percent(self, name, compressor):
        image = compressor.compress(load(name).text)
        overhead = image.lat.storage_bytes / image.padded_original_size
        # Exactly 8/256 for full groups; the final partial group can add
        # up to one spare entry on small programs.
        assert 0.03125 <= overhead < 0.0325

    def test_every_simulation_program_compresses(self, compressor):
        for name in SIMULATION_PROGRAMS:
            image = compressor.compress(load(name).text)
            assert image.compression_ratio < 0.95, name

    def test_fpppp_is_the_compression_outlier(self, compressor):
        """Paper: fpppp's addressing constants defeat the preselected code."""
        ratios = {
            name: compressor.compress(load(name).text).compression_ratio
            for name in SIMULATION_PROGRAMS
        }
        assert ratios["fpppp"] == max(ratios.values())
