"""Tests for Line Address Table entries and the full table."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, strategies as st

from repro.errors import LATError
from repro.compression.block import BlockCompressor
from repro.compression.histogram import byte_histogram
from repro.compression.huffman import HuffmanCode
from repro.lat.entry import (
    ENTRY_BYTES,
    LINES_PER_ENTRY,
    LATEntry,
    UNCOMPRESSED_BYTES,
)
from repro.lat.table import LineAddressTable


def make_entry(base=0x1000, lengths=(10, 20, 32, 5, 31, 1, 12, 8)) -> LATEntry:
    return LATEntry(base=base, lengths=tuple(lengths))


class TestLATEntry:
    def test_encode_is_eight_bytes(self):
        assert len(make_entry().encode()) == ENTRY_BYTES

    def test_encode_decode_round_trip(self):
        entry = make_entry()
        assert LATEntry.decode(entry.encode()) == entry

    def test_base_occupies_first_three_bytes(self):
        raw = make_entry(base=0xABCDEF).encode()
        assert raw[:3] == b"\xab\xcd\xef"

    def test_uncompressed_encodes_as_zero(self):
        entry = make_entry(lengths=(32,) * 8)
        packed = int.from_bytes(entry.encode()[3:], "big")
        assert packed == 0

    def test_block_address_sums_preceding_lengths(self):
        entry = make_entry(base=100, lengths=(10, 20, 32, 5, 31, 1, 12, 8))
        assert entry.block_address(0) == 100
        assert entry.block_address(1) == 110
        assert entry.block_address(2) == 130
        assert entry.block_address(3) == 162  # 32-byte raw block counted fully
        assert entry.block_address(7) == 100 + 10 + 20 + 32 + 5 + 31 + 1 + 12

    def test_block_size_and_compressed_flag(self):
        entry = make_entry(lengths=(10, 32, 31, 1, 2, 3, 4, 5))
        assert entry.block_size(0) == 10
        assert entry.is_compressed(0)
        assert entry.block_size(1) == UNCOMPRESSED_BYTES
        assert not entry.is_compressed(1)

    def test_group_bytes(self):
        entry = make_entry(lengths=(1,) * 8)
        assert entry.group_bytes == 8

    def test_invalid_base_rejected(self):
        with pytest.raises(LATError):
            make_entry(base=1 << 24)

    def test_invalid_length_rejected(self):
        with pytest.raises(LATError):
            make_entry(lengths=(0, 1, 2, 3, 4, 5, 6, 7))
        with pytest.raises(LATError):
            make_entry(lengths=(33, 1, 2, 3, 4, 5, 6, 7))

    def test_wrong_length_count_rejected(self):
        with pytest.raises(LATError):
            LATEntry(base=0, lengths=(1, 2, 3))

    def test_slot_bounds_checked(self):
        entry = make_entry()
        with pytest.raises(LATError):
            entry.block_address(8)
        with pytest.raises(LATError):
            entry.block_size(-1)

    def test_decode_wrong_size_rejected(self):
        with pytest.raises(LATError):
            LATEntry.decode(b"\x00" * 7)

    @given(
        st.integers(0, (1 << 24) - 1),
        st.lists(st.integers(1, 32), min_size=8, max_size=8),
    )
    def test_property_round_trip(self, base, lengths):
        entry = LATEntry(base=base, lengths=tuple(lengths))
        assert LATEntry.decode(entry.encode()) == entry


def _compress(data: bytes, code_base: int = 0x100):
    code = HuffmanCode.from_frequencies(
        byte_histogram(data), max_length=16, cover_all_symbols=True
    )
    blocks = BlockCompressor(code).compress_program(data)
    return blocks, LineAddressTable(blocks, code_base=code_base)


class TestLATEntryFuzz:
    """Property tests: encode/decode is a bijection over valid entries."""

    lengths_strategy = st.tuples(
        *[st.integers(min_value=1, max_value=UNCOMPRESSED_BYTES)] * LINES_PER_ENTRY
    )

    @given(
        base=st.integers(min_value=0, max_value=(1 << 24) - 1),
        lengths=lengths_strategy,
    )
    def test_encode_decode_round_trip(self, base, lengths):
        entry = LATEntry(base=base, lengths=lengths)
        raw = entry.encode()
        assert len(raw) == ENTRY_BYTES
        assert LATEntry.decode(raw) == entry

    @given(
        base=st.integers(min_value=0, max_value=(1 << 24) - 1),
        lengths=lengths_strategy,
    )
    def test_round_trip_preserves_addresses(self, base, lengths):
        entry = LATEntry.decode(LATEntry(base=base, lengths=lengths).encode())
        for slot in range(LINES_PER_ENTRY):
            assert entry.block_address(slot) == base + sum(lengths[:slot])
            assert entry.block_size(slot) == lengths[slot]

    @given(raw=st.binary(min_size=ENTRY_BYTES, max_size=ENTRY_BYTES))
    def test_decode_encode_round_trip_any_bytes(self, raw):
        # Every 8-byte pattern is a decodable entry (length code 0 means
        # "uncompressed"), and re-encoding reproduces the exact bytes.
        assert LATEntry.decode(raw).encode() == raw


class TestLineAddressTable:
    def test_entry_count(self):
        blocks, lat = _compress(bytes(20 * 32))  # 20 lines -> 3 entries
        assert len(lat.entries) == 3
        assert lat.storage_bytes == 24

    def test_overhead_is_3_125_percent_for_full_groups(self):
        blocks, lat = _compress(bytes(64 * 32))
        assert lat.overhead_ratio() == pytest.approx(8 / 256)

    def test_naive_overhead_is_12_5_percent(self):
        blocks, lat = _compress(bytes(64 * 32))
        assert lat.naive_overhead_bytes / (64 * 32) == pytest.approx(4 / 32)

    def test_locate_matches_layout(self):
        rng = random.Random(20)
        data = bytes(rng.choices(range(48), k=40 * 32))
        blocks, lat = _compress(data, code_base=0x2000)
        expected_address = 0x2000
        for line_number, block in enumerate(blocks):
            location = lat.locate(line_number)
            assert location.address == expected_address
            assert location.stored_size == block.stored_size
            assert location.is_compressed == block.is_compressed
            expected_address += block.stored_size

    def test_locate_out_of_range(self):
        blocks, lat = _compress(bytes(8 * 32))
        with pytest.raises(LATError):
            lat.locate(8)
        with pytest.raises(LATError):
            lat.locate(-1)

    def test_entry_index(self):
        blocks, lat = _compress(bytes(20 * 32))
        assert lat.entry_index(0) == 0
        assert lat.entry_index(7) == 0
        assert lat.entry_index(8) == 1

    def test_serialize_round_trip(self):
        blocks, lat = _compress(bytes(20 * 32))
        raw = lat.serialize()
        assert len(raw) == lat.storage_bytes
        for index, entry in enumerate(lat.entries):
            chunk = raw[index * ENTRY_BYTES : (index + 1) * ENTRY_BYTES]
            assert LineAddressTable.entry_from_memory(chunk) == entry

    def test_partial_tail_group_padded(self):
        blocks, lat = _compress(bytes(10 * 32))  # 2 lines in last group
        tail = lat.entries[-1]
        assert all(
            length == UNCOMPRESSED_BYTES for length in tail.lengths[2:]
        )

    def test_entries_chain_addresses(self):
        rng = random.Random(21)
        data = bytes(rng.choices(range(64), k=24 * 32))
        blocks, lat = _compress(data, code_base=0)
        for previous, current in zip(lat.entries, lat.entries[1:]):
            assert current.base == previous.base + sum(
                block.stored_size
                for block in blocks[
                    lat.entries.index(previous) * LINES_PER_ENTRY : lat.entries.index(previous) * LINES_PER_ENTRY + LINES_PER_ENTRY
                ]
            )

    def test_negative_code_base_rejected(self):
        with pytest.raises(LATError):
            LineAddressTable([], code_base=-1)
