"""Tests for the memory timing models (paper Section 4.2.1)."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.memsys import (
    BURST_EPROM,
    EPROM,
    MEMORY_MODELS,
    SC_DRAM,
    MemoryModel,
    get_memory_model,
)


class TestPaperTimings:
    """The paper's headline numbers for an 8-word (32-byte) line refill."""

    def test_eprom_line_refill_is_24_cycles(self):
        assert EPROM.burst_read_cycles(8) == 24

    def test_burst_eprom_line_refill_is_10_cycles(self):
        assert BURST_EPROM.burst_read_cycles(8) == 10

    def test_sc_dram_line_refill_is_13_cycles(self):
        # 4 + 7*1 + 2 precharge
        assert SC_DRAM.burst_read_cycles(8) == 13

    def test_eprom_single_word_is_3_cycles(self):
        assert EPROM.burst_read_cycles(1) == 3

    def test_dram_single_word_includes_precharge(self):
        assert SC_DRAM.burst_read_cycles(1) == 6

    def test_lat_entry_read_costs(self):
        # Two-word burst: the CLB-miss penalty per memory model.
        assert EPROM.burst_read_cycles(2) == 6
        assert BURST_EPROM.burst_read_cycles(2) == 4
        assert SC_DRAM.burst_read_cycles(2) == 7


class TestWordArrivals:
    def test_eprom_arrivals(self):
        assert EPROM.word_arrival_times(4) == [3, 6, 9, 12]

    def test_burst_eprom_arrivals(self):
        assert BURST_EPROM.word_arrival_times(4) == [3, 4, 5, 6]

    def test_dram_arrivals_exclude_precharge(self):
        assert SC_DRAM.word_arrival_times(3) == [4, 5, 6]

    def test_zero_words_rejected(self):
        with pytest.raises(ConfigurationError):
            EPROM.word_arrival_times(0)


class TestRegistry:
    def test_all_three_models_registered(self):
        assert set(MEMORY_MODELS) == {"eprom", "burst_eprom", "sc_dram"}

    def test_lookup_by_name(self):
        assert get_memory_model("eprom") is EPROM

    def test_passthrough_instance(self):
        assert get_memory_model(BURST_EPROM) is BURST_EPROM

    def test_unknown_name_rejected(self):
        with pytest.raises(ConfigurationError):
            get_memory_model("flash")

    def test_invalid_model_parameters_rejected(self):
        with pytest.raises(ConfigurationError):
            MemoryModel(name="bad", first_word_cycles=0, next_word_cycles=1)
        with pytest.raises(ConfigurationError):
            MemoryModel(name="bad", first_word_cycles=1, next_word_cycles=1, post_burst_cycles=-1)
