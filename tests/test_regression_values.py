"""Golden-value regression pins.

Every workload, trace, and model in this library is deterministic, so the
headline experiment numbers can be pinned exactly.  If a change moves one
of these values, that is not necessarily a bug — but it *is* a change to
the reproduction's published numbers (EXPERIMENTS.md), and this test makes
it impossible to do silently.  Update the constants and EXPERIMENTS.md
together, deliberately.
"""

from __future__ import annotations

import pytest

from repro.core import SystemConfig, compare
from repro.workloads import load

#: (program, memory, cache_bytes) -> expected relative execution time.
PINNED_RELATIVE_TIME = {
    ("nasa7", "eprom", 256): 0.952,
    ("nasa7", "burst_eprom", 256): 1.191,
    ("espresso", "eprom", 256): 0.955,
    ("espresso", "burst_eprom", 256): 1.358,
    ("espresso", "burst_eprom", 4096): 1.208,
    ("eightq", "eprom", 256): 0.892,
    ("eightq", "burst_eprom", 256): 1.285,
    ("fpppp", "eprom", 1024): 0.978,
    ("fpppp", "burst_eprom", 2048): 1.001,
}

#: (program, cache_bytes) -> expected miss rate (percent, 2 dp).
PINNED_MISS_RATE = {
    ("nasa7", 256): 10.33,
    ("espresso", 256): 13.02,
    ("espresso", 4096): 5.71,
    ("fpppp", 1024): 11.67,
    ("fpppp", 2048): 0.05,
    ("eightq", 256): 6.42,
    ("lloop01", 256): 0.00,
}

#: Dynamic instruction counts of the executable suite.
PINNED_DYNAMIC_COUNTS = {
    "eightq": 614_917,
    "matrix25a": 138_440,
    "lloop01": 464_842,
}

#: Exit codes proving the algorithms really ran.
PINNED_EXIT_CODES = {
    "eightq": 92,
    "fib": 6765,
    "qsort": 255,
}


@pytest.mark.parametrize(
    "key, expected", sorted(PINNED_RELATIVE_TIME.items()), ids=lambda v: str(v)
)
def test_relative_time_pinned(key, expected):
    if not isinstance(key, tuple):
        pytest.skip("id param")
    program, memory, cache_bytes = key
    report = compare(program, SystemConfig(cache_bytes=cache_bytes, memory=memory))
    assert report.relative_execution_time == pytest.approx(expected, abs=5e-4)


@pytest.mark.parametrize(
    "key, expected", sorted(PINNED_MISS_RATE.items()), ids=lambda v: str(v)
)
def test_miss_rate_pinned(key, expected):
    if not isinstance(key, tuple):
        pytest.skip("id param")
    program, cache_bytes = key
    report = compare(program, SystemConfig(cache_bytes=cache_bytes, memory="eprom"))
    assert round(100 * report.miss_rate, 2) == pytest.approx(expected, abs=0.005)


@pytest.mark.parametrize("name, expected", sorted(PINNED_DYNAMIC_COUNTS.items()))
def test_dynamic_counts_pinned(name, expected):
    assert load(name).run().instructions_executed == expected


@pytest.mark.parametrize("name, expected", sorted(PINNED_EXIT_CODES.items()))
def test_exit_codes_pinned(name, expected):
    assert load(name).run().exit_code == expected


def test_figure5_weighted_averages_pinned():
    from repro.experiments.figure5 import run_figure5

    weighted = run_figure5().weighted
    assert weighted.unix_compress == pytest.approx(0.510, abs=0.002)
    assert weighted.traditional_huffman == pytest.approx(0.733, abs=0.002)
    assert weighted.preselected_huffman == pytest.approx(0.734, abs=0.002)


def test_standard_code_fingerprint():
    """The hard-wired decoder's code table must never drift silently."""
    from repro.core.standard import standard_code

    code = standard_code()
    assert code.lengths[0x00] == 2  # the zero byte dominates RISC code
    assert sum(code.lengths) == 2588
