"""Tests for the A32-like re-encoder and the cross-ISA experiment."""

from __future__ import annotations

import pytest

from repro.isa import Instruction
from repro.isa.altisa import reencode_instruction, reencode_program
from repro.isa.encoding import encode_program
from repro.workloads import load


class TestReencoder:
    def test_output_same_length(self):
        text = load("eightq").text
        assert len(reencode_program(text)) == len(text)

    def test_condition_nibble_always_present(self):
        text = reencode_program(load("eightq").text)
        # Every word starts with a legal A32 condition nibble: AL for
        # everything except conditional branches, which carry their own.
        legal = {0xE, 0x0, 0x1, 0xA, 0xB, 0xC, 0xD, 0x6, 0x7, 0x8}
        assert all(text[offset] >> 4 in legal for offset in range(0, len(text), 4))
        assert sum(text[offset] >> 4 == 0xE for offset in range(0, len(text), 4)) > 0

    def test_distinct_instructions_stay_distinct(self):
        samples = [
            Instruction.make("addu", rd=2, rs=3, rt=4),
            Instruction.make("addu", rd=2, rs=4, rt=3),
            Instruction.make("subu", rd=2, rs=3, rt=4),
            Instruction.make("addiu", rt=2, rs=3, imm=5),
            Instruction.make("addiu", rt=2, rs=3, imm=6),
            Instruction.make("lw", rt=2, rs=3, imm=8),
            Instruction.make("sw", rt=2, rs=3, imm=8),
            Instruction.make("lw", rt=2, rs=3, imm=-8),
            Instruction.make("beq", rs=1, rt=0, imm=4),
            Instruction.make("jal", target=64),
            Instruction.make("j", target=64),
            Instruction.make("jr", rs=31),
            Instruction.make("mult", rs=2, rt=3),
            Instruction.make("mflo", rd=2),
            Instruction.make("add.d", shamt=2, rd=4, rt=6),
            Instruction.make("lui", rt=2, imm=0x1234),
            Instruction.make("syscall"),
        ]
        words = [reencode_instruction(instruction) for instruction in samples]
        assert len(set(words)) == len(words)

    def test_lui_high_nibble_preserved(self):
        low = reencode_instruction(Instruction.make("lui", rt=2, imm=0x0234))
        high = reencode_instruction(Instruction.make("lui", rt=2, imm=0xF234))
        assert low != high

    def test_byte_statistics_differ_from_mips(self):
        from repro.compression.histogram import byte_histogram

        text = load("espresso").text
        mips = byte_histogram(text)
        alt = byte_histogram(reencode_program(text))
        # The encodings must be statistically different for the experiment
        # to mean anything: compare top-byte distributions.
        difference = sum(abs(a - b) for a, b in zip(mips, alt))
        assert difference > len(text) // 4

    def test_deterministic(self):
        text = load("eightq").text
        assert reencode_program(text) == reencode_program(text)


class TestCrossISAExperiment:
    @pytest.fixture(scope="class")
    def result(self):
        from repro.experiments.cross_isa import run_cross_isa

        return run_cross_isa(programs=("eightq", "yacc", "espresso"))

    def test_both_isas_compress_with_own_codes(self, result):
        """The CCRP approach generalises across instruction sets."""
        assert result.weighted.mips_own_code < 0.85
        assert result.weighted.alt_own_code < 0.85

    def test_own_codes_within_a_few_points(self, result):
        assert abs(result.weighted.mips_own_code - result.weighted.alt_own_code) < 0.06

    def test_cross_trained_codes_lose(self, result):
        """A hard-wired decoder must match its architecture."""
        assert result.weighted.mips_with_alt_code > result.weighted.mips_own_code + 0.05
        assert result.weighted.alt_with_mips_code > result.weighted.alt_own_code + 0.05

    def test_render(self, result):
        assert "Cross-ISA" in result.render()
