"""Tests for the compressed demand-paging extension (paper future work)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.ccrp.paging import (
    CompressedPageStore,
    PagedMemorySimulator,
)
from repro.core.standard import standard_code
from repro.memsys import EPROM, SC_DRAM
from repro.workloads import load


@pytest.fixture(scope="module")
def store():
    return CompressedPageStore(load("espresso").text, standard_code())


class TestCompressedPageStore:
    def test_page_count_and_padding(self):
        store = CompressedPageStore(b"\x00" * 1500, standard_code())
        assert store.page_count == 2
        assert store.original_size == 2048

    def test_pages_round_trip(self, store):
        text = load("espresso").text
        for index in range(0, store.page_count, 17):
            page = store.read_page(index)
            start = index * store.page_bytes
            expected = text[start : start + store.page_bytes]
            assert page[: len(expected)] == expected

    def test_storage_reduced(self, store):
        assert store.compression_ratio < 0.85

    def test_incompressible_page_bypassed(self):
        import random

        data = bytes(random.Random(50).randbytes(1024))
        histogram = [0] * 256
        histogram[0] = 1_000_000
        from repro.compression.huffman import HuffmanCode

        code = HuffmanCode.from_frequencies(histogram, max_length=16, cover_all_symbols=True)
        store = CompressedPageStore(data, code)
        assert not store.pages[0].is_compressed
        assert store.read_page(0) == data

    def test_bad_page_size_rejected(self):
        with pytest.raises(ConfigurationError):
            CompressedPageStore(b"\x00" * 64, standard_code(), page_bytes=1000)


class TestPagedMemorySimulator:
    def test_fault_count_basic_lru(self, store):
        simulator = PagedMemorySimulator(store, frames=2)
        # Pages 0, 1, 0, 2, 0 with 2 LRU frames:
        # fault 0 -> [0]; fault 1 -> [0,1]; hit 0 -> [1,0];
        # fault 2 evicts 1 -> [0,2]; hit 0.
        addresses = np.array([0, 1024, 0, 2048, 0], dtype=np.uint32)
        result = simulator.simulate(addresses)
        assert result.faults == 3
        assert result.references == 5

    def test_compressed_faults_cheaper_on_slow_memory(self, store):
        simulator = PagedMemorySimulator(store, frames=4, memory=EPROM)
        addresses = (np.arange(0, 40_000, 16) % store.original_size).astype(np.uint32)
        compressed, baseline = simulator.compare(addresses)
        assert compressed.faults == baseline.faults
        assert compressed.fault_cycles < baseline.fault_cycles
        assert compressed.storage_bytes < baseline.storage_bytes

    def test_fast_memory_decode_bound(self, store):
        """On fast DRAM the expansion rate, not bandwidth, limits faults."""
        simulator = PagedMemorySimulator(store, frames=4, memory=SC_DRAM)
        page = next(p for p in store.pages if p.is_compressed)
        cycles = simulator.fault_cycles_for(page)
        decode_floor = SC_DRAM.first_word_cycles + store.page_bytes // 2
        assert cycles == decode_floor  # fetch is faster than decode here

    def test_more_frames_fewer_faults(self, store):
        rng = np.random.default_rng(9)
        addresses = (rng.integers(0, store.page_count * 4, size=5000) * 256).astype(
            np.uint32
        )
        faults = [
            PagedMemorySimulator(store, frames=frames).simulate(addresses).faults
            for frames in (2, 4, 8, 16)
        ]
        assert faults == sorted(faults, reverse=True)

    def test_fault_rate_property(self, store):
        simulator = PagedMemorySimulator(store, frames=2)
        result = simulator.simulate(np.array([0], dtype=np.uint32))
        assert result.fault_rate == 1.0
        empty = simulator.simulate(np.array([], dtype=np.uint32))
        assert empty.fault_rate == 0.0

    def test_invalid_frames_rejected(self, store):
        with pytest.raises(ConfigurationError):
            PagedMemorySimulator(store, frames=0)

    def test_real_trace_end_to_end(self):
        """Run espresso's real instruction stream through paged memory."""
        workload = load("espresso")
        store = CompressedPageStore(workload.text, standard_code())
        addresses = workload.run().trace.addresses
        simulator = PagedMemorySimulator(store, frames=16, memory=EPROM)
        compressed, baseline = simulator.compare(addresses)
        assert compressed.faults > 0
        assert compressed.fault_cycles < baseline.fault_cycles
        saving = 1 - compressed.storage_bytes / baseline.storage_bytes
        assert saving > 0.15
