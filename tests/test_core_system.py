"""Tests for the core system model: configs, metrics, and comparisons."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.cache.datacache import DataCacheModel
from repro.ccrp.decoder import DecoderModel
from repro.core import ProgramStudy, SystemConfig, compare, standard_code
from repro.core.performance import SystemMetrics


class TestSystemConfig:
    def test_defaults_match_paper_section3(self):
        config = SystemConfig()
        assert config.cache_bytes == 1024
        assert config.line_size == 32
        assert config.clb_entries == 16
        assert config.decoder.bytes_per_cycle == 2
        assert config.data_cache.miss_rate == 1.0

    def test_with_options(self):
        config = SystemConfig().with_options(cache_bytes=256, memory="sc_dram")
        assert config.cache_bytes == 256
        assert config.memory == "sc_dram"

    def test_invalid_geometry_rejected(self):
        with pytest.raises(ConfigurationError):
            SystemConfig(cache_bytes=16)

    def test_invalid_alignment_rejected(self):
        with pytest.raises(ConfigurationError):
            SystemConfig(block_alignment=3)

    def test_invalid_clb_rejected(self):
        with pytest.raises(ConfigurationError):
            SystemConfig(clb_entries=0)


class TestSystemMetrics:
    def test_total_cycles_sums_components(self):
        metrics = SystemMetrics(
            base_cycles=100,
            refill_cycles=20,
            data_cycles=30,
            instruction_traffic_bytes=64,
            misses=2,
            accesses=100,
        )
        assert metrics.total_cycles == 150
        assert metrics.miss_rate == pytest.approx(0.02)
        assert metrics.cpi == pytest.approx(1.5)


class TestStandardCode:
    def test_cached_instance(self):
        assert standard_code() is standard_code()

    def test_covers_all_bytes_within_bound(self):
        code = standard_code()
        assert all(0 < length <= 16 for length in code.lengths)

    def test_common_code_bytes_have_short_codes(self):
        code = standard_code()
        # 0x00 dominates RISC code (nop bytes, zero fields).
        assert code.lengths[0x00] <= 4


class TestCompare:
    def test_eightq_structure(self):
        report = compare("eightq", SystemConfig(cache_bytes=256, memory="eprom"))
        assert report.program == "eightq"
        assert report.cache_bytes == 256
        assert report.memory == "eprom"
        assert 0 < report.miss_rate < 0.5
        assert report.baseline.misses == report.ccrp.misses

    def test_eprom_ccrp_wins_at_high_miss_rate(self):
        report = compare("eightq", SystemConfig(cache_bytes=256, memory="eprom"))
        assert report.relative_execution_time < 1.0
        assert report.speedup > 1.0

    def test_burst_eprom_ccrp_loses_at_high_miss_rate(self):
        report = compare("espresso", SystemConfig(cache_bytes=256, memory="burst_eprom"))
        assert report.relative_execution_time > 1.0

    def test_zero_miss_configuration_is_neutral(self):
        report = compare("lloop01", SystemConfig(cache_bytes=4096, memory="burst_eprom"))
        assert report.relative_execution_time == pytest.approx(1.0, abs=0.01)

    def test_traffic_always_reduced(self):
        for memory in ("eprom", "burst_eprom", "sc_dram"):
            report = compare("espresso", SystemConfig(cache_bytes=512, memory=memory))
            assert report.memory_traffic_ratio < 1.0

    def test_dram_results_between_models(self):
        reports = {
            memory: compare("espresso", SystemConfig(cache_bytes=512, memory=memory))
            for memory in ("eprom", "burst_eprom", "sc_dram")
        }
        assert (
            reports["eprom"].relative_execution_time
            < reports["sc_dram"].relative_execution_time
            <= reports["burst_eprom"].relative_execution_time * 1.05
        )

    def test_miss_rate_independent_of_memory_model(self):
        a = compare("nasa1", SystemConfig(cache_bytes=512, memory="eprom"))
        b = compare("nasa1", SystemConfig(cache_bytes=512, memory="burst_eprom"))
        assert a.miss_rate == b.miss_rate

    def test_data_cache_dilutes_ccrp_effect(self):
        """Paper 4.2.4: higher data-cache miss rate shrinks the CCRP delta."""
        no_data = compare(
            "nasa7",
            SystemConfig(cache_bytes=1024, memory="burst_eprom",
                         data_cache=DataCacheModel(miss_rate=0.0)),
        )
        all_data = compare(
            "nasa7",
            SystemConfig(cache_bytes=1024, memory="burst_eprom",
                         data_cache=DataCacheModel(miss_rate=1.0)),
        )
        assert abs(all_data.relative_execution_time - 1) < abs(
            no_data.relative_execution_time - 1
        )

    def test_compression_ratio_reported(self):
        report = compare("espresso", SystemConfig())
        assert 0.5 < report.compression_ratio < 1.0


class TestProgramStudy:
    def test_cache_stats_cached(self):
        study = ProgramStudy("eightq")
        assert study.cache_stats(256) is study.cache_stats(256)

    def test_clb_monotonic_in_entries(self):
        study = ProgramStudy("espresso")
        misses = [study.clb_miss_count(256, entries) for entries in (4, 8, 16)]
        assert misses == sorted(misses, reverse=True)

    def test_refill_engine_cached_per_memory(self):
        study = ProgramStudy("eightq")
        decoder = DecoderModel()
        assert study.refill_engine("eprom", decoder) is study.refill_engine("eprom", decoder)
        assert study.refill_engine("eprom", decoder) is not study.refill_engine(
            "burst_eprom", decoder
        )

    def test_metrics_consistent_with_compare(self):
        study = ProgramStudy("eightq")
        config = SystemConfig(cache_bytes=512, memory="eprom")
        direct = study.metrics(config)
        cached = compare("eightq", config)
        assert direct.relative_execution_time == pytest.approx(
            cached.relative_execution_time
        )

    def test_custom_code_accepted(self):
        from repro.compression.histogram import byte_histogram
        from repro.compression.huffman import HuffmanCode
        from repro.workloads import load

        text = load("eightq").text
        code = HuffmanCode.from_frequencies(
            byte_histogram(text), max_length=16, cover_all_symbols=True
        )
        study = ProgramStudy("eightq", code=code)
        report = study.metrics(SystemConfig(cache_bytes=256))
        # A per-program code compresses at least as well as the corpus code.
        assert report.compression_ratio <= ProgramStudy("eightq").metrics(
            SystemConfig(cache_bytes=256)
        ).compression_ratio + 0.02

    def test_word_alignment_increases_traffic(self):
        byte_aligned = ProgramStudy("espresso", block_alignment=1)
        word_aligned = ProgramStudy("espresso", block_alignment=4)
        config = SystemConfig(cache_bytes=512, memory="eprom")
        assert (
            word_aligned.metrics(config.with_options(block_alignment=4)).compression_ratio
            >= byte_aligned.metrics(config).compression_ratio
        )
