"""Concurrency-grade tests for the compression service.

Every test synchronises on *observable structure*, never on elapsed
time: named-FIFO rendezvous prove a job is inside a worker, and
bounded ``stats`` round trips prove the server reached a state.  There
is not a single ``sleep`` in this file.

Covered contracts:

* single-flight coalescing — N identical concurrent ``simulate``
  requests execute once, coalesce N−1 times, and build each disk
  artifact exactly once;
* backpressure — past ``queue_limit`` pending jobs, new requests are
  answered ``overloaded`` immediately, never buffered;
* graceful shutdown — in-flight work completes and its response is
  delivered, while new connections are refused;
* worker crash — an injected worker death errors *that* request with a
  :class:`~repro.core.sweep.FailureReport`-style attribution, the pool
  restarts, and the next request succeeds.
"""

from __future__ import annotations

import socket
import time
from pathlib import Path

import pytest

from repro.core import artifacts
from repro.errors import ProtocolError, ServiceError

from service_harness import LiveService


@pytest.fixture()
def fresh_cache(tmp_path, monkeypatch):
    """A cold artifact cache the forked workers inherit."""
    cache_dir = tmp_path / "cache"
    monkeypatch.setenv("CCRP_CACHE_DIR", str(cache_dir))
    artifacts.clear()
    yield cache_dir
    artifacts.clear()


def _pkl_count(cache_dir: Path) -> int:
    """Disk artifacts built, excluding the shared superops sub-cache."""
    return sum(
        1
        for path in cache_dir.rglob("*.pkl")
        if "superops" not in path.parts
    )


SIM = {"workload": "eightq", "cache_bytes": 512, "clb_entries": 8}


class TestCoalescing:
    def test_identical_inflight_simulates_run_once(self, tmp_path, fresh_cache):
        clients = 5
        with LiveService(
            str(tmp_path), workers=2, batch_max=4, queue_limit=16, debug=True
        ) as live:
            gate = live.gate()
            params = dict(SIM, _gate=gate.params)
            first = live.client(name="c0")
            first.send("simulate", params)
            # The worker is now provably inside the gated job.
            gate.wait_entered()
            others = [live.client(name=f"c{i}") for i in range(1, clients)]
            for client in others:
                client.send("simulate", params)
            # All five requests admitted: four coalesced onto the one
            # in-flight execution while it is still gated.
            live.wait_stats(
                lambda s: s["counters"].get("requests.simulate", 0) == clients
                and s["counters"].get("service.coalesced", 0) == clients - 1,
                what="5 simulates with 4 coalesced",
            )
            gate.release_job()
            results = []
            for client in [first, *others]:
                _, header, _ = client.recv()
                assert header["ok"], header
                results.append(header["result"])
                client.close()
            # Everyone saw the same execution's answer.
            assert all(result == results[0] for result in results)
            stats = live.wait_stats(
                lambda s: s["server"]["pending"] == 0, what="drained"
            )
        # One execution total — not one per request.
        assert stats["counters"]["service.batched_jobs"] == 1
        assert stats["counters"]["service.coalesced"] == clients - 1
        # ... and each artifact hit the disk cache exactly once.
        builds = stats["counters"]["artifacts.build"]
        assert builds >= 1
        assert builds == _pkl_count(fresh_cache)

    def test_sequential_identical_requests_do_not_coalesce(self, tmp_path, fresh_cache):
        # Coalescing is an *in-flight* property: back-to-back repeats
        # execute separately (hitting warm caches instead).  The durable
        # response cache would answer the repeat without a batch, so it
        # is disabled to observe the coalescing layer in isolation.
        with LiveService(
            str(tmp_path), workers=1, debug=True, response_cache=False
        ) as live:
            with live.client() as client:
                first = client.simulate(**SIM)
                second = client.simulate(**SIM)
            assert first == second
            stats = live.wait_stats(
                lambda s: s["counters"].get("requests.simulate", 0) == 2,
                what="2 simulates",
            )
        assert stats["counters"].get("service.coalesced", 0) == 0
        assert stats["counters"]["service.batched_jobs"] == 2


class TestBackpressure:
    def test_overloaded_instead_of_unbounded_queue(self, tmp_path, fresh_cache):
        with LiveService(
            str(tmp_path), workers=1, batch_max=1, queue_limit=2, debug=True
        ) as live:
            gate = live.gate()
            running = live.client(name="running")
            running.send("compress", {"_gate": gate.params}, b"a" * 256)
            gate.wait_entered()
            queued = live.client(name="queued")
            queued.send("compress", {}, b"b" * 256)
            live.wait_stats(
                lambda s: s["server"]["pending"] == 2, what="2 pending jobs"
            )
            # The admission gate is full: an immediate, explicit refusal.
            with live.client(name="refused") as refused:
                with pytest.raises(ServiceError) as excinfo:
                    refused.request("compress", {}, b"c" * 256)
            assert excinfo.value.code == "overloaded"
            # Refusal did not disturb admitted work.
            gate.release_job()
            for client in (running, queued):
                _, header, _ = client.recv()
                assert header["ok"], header
                client.close()
            stats = live.wait_stats(
                lambda s: s["server"]["pending"] == 0, what="drained"
            )
        assert stats["counters"]["service.overloaded"] == 1
        assert stats["counters"]["requests.compress"] == 3


class TestGracefulShutdown:
    def test_inflight_completes_and_new_connections_refused(self, tmp_path, fresh_cache):
        live = LiveService(str(tmp_path), workers=1, debug=True).start()
        try:
            gate = live.gate()
            inflight = live.client(name="inflight")
            bystander = live.client(name="bystander")
            inflight.send("compress", {"_gate": gate.params}, b"d" * 512)
            gate.wait_entered()
            stopping = live.stop_async()
            # The listener closes before the drain: new connections get
            # refused while the gated job is still running.  (The loop
            # is a liveness bound on observing the close, not a timing
            # assertion — the outcome is required, whenever it happens.)
            deadline = time.monotonic() + 60
            refused = False
            while time.monotonic() < deadline:
                probe = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
                try:
                    probe.connect(live.socket_path)
                except (ConnectionRefusedError, FileNotFoundError):
                    refused = True
                    break
                finally:
                    probe.close()
            assert refused, "listener still accepting during shutdown"
            assert not stopping.done(), "stop() finished with a job in flight"
            # Already-connected clients submitting NEW jobs are turned
            # away explicitly...
            with pytest.raises(ServiceError) as excinfo:
                bystander.request("compress", {}, b"e" * 64)
            assert excinfo.value.code == "shutting_down"
            bystander.close()
            # ... while the in-flight job finishes and its response is
            # delivered before the connection closes.
            gate.release_job()
            _, header, payload = inflight.recv()
            assert header["ok"], header
            assert header["result"]["original_size"] == 512
            stopping.result(timeout=120)
            # After the drain the server closes the connection cleanly.
            with pytest.raises(ProtocolError):
                inflight.recv()
            inflight.close()
        finally:
            live.end_loop()


class TestWorkerCrash:
    def test_crash_is_attributed_and_pool_recovers(self, tmp_path, fresh_cache):
        with LiveService(
            str(tmp_path), workers=2, batch_max=1, queue_limit=16, debug=True
        ) as live:
            with live.client(name="victim") as victim:
                with pytest.raises(ServiceError) as excinfo:
                    victim.request("crash", {})
                error = excinfo.value
                assert error.code == "worker_crash"
                # The FailureReport discipline: structured attribution,
                # not a bare string.
                assert error.failure["error_type"] == "BrokenProcessPool"
                assert error.failure["detail"].startswith("crash")
                assert error.failure["attempts"] == 1
                # The victim's *connection* survives; only the request
                # failed.
                assert victim.ping()
            live.wait_stats(
                lambda s: s["counters"].get("service.worker_restarts", 0) == 1
                and s["server"]["pool_generation"] == 1,
                what="pool restart",
            )
            # The restarted pool serves real work.
            with live.client(name="survivor") as survivor:
                text = bytes(range(128)) * 4
                meta, blob = survivor.compress(text)
                assert survivor.decompress(meta, blob) == text
            stats = live.wait_stats(
                lambda s: s["server"]["pending"] == 0, what="drained"
            )
        assert stats["counters"]["service.worker_crashes"] == 1
        assert stats["counters"]["requests.crash"] == 1

    def test_crash_does_not_fail_other_connections_requests(self, tmp_path, fresh_cache):
        # A client whose request is admitted *after* the crash never
        # sees it: the pool-ready gate holds new chunks during restart.
        with LiveService(
            str(tmp_path), workers=1, batch_max=1, queue_limit=16, debug=True
        ) as live:
            crasher = live.client(name="crasher")
            crasher.send("crash", {})
            innocent = live.client(name="innocent")
            innocent.send("compress", {}, b"f" * 300)
            _, crash_header, _ = crasher.recv()
            assert crash_header["ok"] is False
            assert crash_header["error"]["code"] == "worker_crash"
            _, ok_header, payload = innocent.recv()
            assert ok_header["ok"], ok_header
            crasher.close()
            innocent.close()
