"""Fault injection, integrity layer, blast radius, and harness degradation."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.ccrp.compressor import ProgramCompressor
from repro.ccrp.expanding_cache import ExpandingInstructionCache
from repro.compression.block import DEFAULT_LINE_SIZE, BlockCompressor
from repro.compression.histogram import byte_histogram
from repro.compression.huffman import HuffmanCode
from repro.core.metrics import METRICS
from repro.core.standard import standard_code
from repro.core.sweep import FailureReport, sweep, sweep_many
from repro.errors import ConfigurationError, IntegrityError, ReproError
from repro.faults import (
    FAULT_MODELS,
    FaultInjector,
    add_integrity,
    blast_baseline,
    blast_block_codec,
    blast_lzw,
    crc8,
    diff_lines,
    line_crcs,
    refill_survey,
    validate_fault_model,
    validate_integrity_policy,
)

PROGRAM = bytes(range(256)) * 8  # 2 KiB, 64 lines, every byte value


def _codes():
    histogram = byte_histogram(PROGRAM)
    return {
        "traditional": HuffmanCode.from_frequencies(histogram),
        "bounded": HuffmanCode.from_frequencies(histogram, max_length=16),
        "preselected": standard_code(),
    }


class TestInjector:
    def test_same_seed_same_faults(self):
        data = bytes(range(64))
        for model in FAULT_MODELS:
            first = FaultInjector(7).inject(data, model)
            second = FaultInjector(7).inject(data, model)
            assert first == second

    def test_different_seeds_diverge(self):
        data = bytes(256)
        records = {FaultInjector(seed).inject(data, "bit_flip")[1] for seed in range(16)}
        assert len(records) > 1

    def test_fault_always_changes_data(self):
        data = bytes(64)
        injector = FaultInjector(3)
        for model in FAULT_MODELS:
            for _ in range(20):
                corrupted, record = injector.inject(data, model)
                assert corrupted != data
                assert len(corrupted) == len(data)
                # The record is a replayable description of the fault.
                assert record.apply(data) == corrupted

    def test_bit_flip_touches_one_bit(self):
        corrupted, record = FaultInjector(11).inject(bytes(32), "bit_flip")
        diff = [a ^ b for a, b in zip(bytes(32), corrupted)]
        changed = [d for d in diff if d]
        assert len(changed) == 1 and bin(changed[0]).count("1") == 1
        assert record.model == "bit_flip"

    def test_unknown_model_rejected(self):
        with pytest.raises(ConfigurationError):
            validate_fault_model("gamma_ray")
        with pytest.raises(ConfigurationError):
            FaultInjector(1).inject(b"\x00" * 8, "gamma_ray")


class TestIntegrity:
    def test_crc8_known_properties(self):
        assert crc8(b"") == 0
        assert crc8(b"123456789") == 0xF4  # CRC-8/ATM check value

    def test_crc8_catches_every_single_bit_flip(self):
        data = bytes(range(32))
        golden = crc8(data)
        for byte_index in range(len(data)):
            for bit in range(8):
                mutated = bytearray(data)
                mutated[byte_index] ^= 1 << bit
                assert crc8(bytes(mutated)) != golden

    def test_policy_validation(self):
        for policy in ("strict", "detect", "off"):
            validate_integrity_policy(policy)
        with pytest.raises(ConfigurationError):
            validate_integrity_policy("maybe")

    def test_add_integrity_and_overhead(self):
        image = ProgramCompressor(standard_code()).compress(PROGRAM)
        assert image.line_crcs is None
        assert image.integrity_bytes == 0
        checked = add_integrity(image)
        assert checked.line_crcs == line_crcs(checked.blocks)
        assert checked.integrity_bytes == checked.line_count
        # One CRC byte per 32-byte line: the LAT's own 3.125% class.
        assert checked.integrity_overhead_ratio == pytest.approx(1 / 32)
        # Protection costs real stored bytes; the would-be quote on the
        # unprotected image matches what the protected one actually pays.
        assert checked.total_ratio_with_lat > image.total_ratio_with_lat
        assert image.total_ratio_with_integrity == pytest.approx(
            checked.total_ratio_with_lat
        )

    def test_compressor_integrity_flag(self):
        image = ProgramCompressor(standard_code(), integrity=True).compress(PROGRAM)
        assert image.line_crcs is not None
        assert len(image.line_crcs) == image.line_count


class TestExpandingCacheIntegrity:
    def _image_and_memory(self):
        image = ProgramCompressor(standard_code(), integrity=True).compress(PROGRAM)
        return image, image.memory_image()

    def _corrupt_code(self, image, memory, seed=5):
        lat_bytes = image.lat.storage_bytes
        region, _ = FaultInjector(seed).inject(memory[lat_bytes:], "bit_flip", "code")
        return memory[:lat_bytes] + region

    def test_clean_image_raises_no_events(self):
        image, _ = self._image_and_memory()
        cache, errors = refill_survey(image, "detect")
        assert cache.integrity_events == [] and errors == []

    def test_detect_records_and_continues(self):
        image, memory = self._image_and_memory()
        before = METRICS.counter("integrity.detected")
        cache, _ = refill_survey(image, "detect", self._corrupt_code(image, memory))
        assert len(cache.integrity_events) >= 1
        assert METRICS.counter("integrity.detected") > before

    def test_strict_raises_with_line_number(self):
        image, memory = self._image_and_memory()
        with pytest.raises(IntegrityError) as excinfo:
            refill_survey(image, "strict", self._corrupt_code(image, memory))
        assert excinfo.value.line_number is not None

    def test_lat_corruption_detected(self):
        image, memory = self._image_and_memory()
        lat_bytes = image.lat.storage_bytes
        region, _ = FaultInjector(9).inject(memory[:lat_bytes], "bit_flip", "lat")
        cache, _ = refill_survey(image, "detect", region + memory[lat_bytes:])
        assert cache.integrity_events

    def test_off_policy_ignores_corruption(self):
        image, memory = self._image_and_memory()
        cache = ExpandingInstructionCache(
            image, integrity="off", memory_image=self._corrupt_code(image, memory)
        )
        base = image.text_base
        for line in range(image.line_count):
            try:
                cache.read_line(base + line * image.line_size)
            except ReproError as error:
                assert not isinstance(error, IntegrityError)
        assert cache.integrity_events == []

    def test_strict_requires_crcs(self):
        image = ProgramCompressor(standard_code()).compress(PROGRAM)
        with pytest.raises(ConfigurationError):
            ExpandingInstructionCache(image, integrity="strict")


class TestBatchedRefillAttribution:
    """A corrupt blob must fail with *its own* line number, and only there.

    The pristine-store refill path serves lines from the image's one
    batched ``decode_lines`` pass.  An image rebuilt from corrupted
    storage (corrupt ``blocks``, original CRC table) used to poison that
    whole batch: refilling any *healthy* line J raised the corrupt blob
    K's bare ``CompressionError`` — no line number, wrong line, and the
    strict policy's ``IntegrityError`` for K never surfaced with its
    attribution.  Now the batch leaves K's slot empty and the scalar
    fallback attributes the failure to exactly the line that owns it.
    """

    def _corrupted_image(self):
        """An integrity image whose middle compressed block no longer decodes.

        The corrupt bytes replace the block data (same length, so the
        LAT layout still matches) while ``line_crcs`` keeps the pristine
        table — corruption-after-attestation, the case integrity exists
        for.  The mutation is searched deterministically until the
        scalar decoder provably rejects it.
        """
        import dataclasses

        from repro.errors import CompressionError

        # Zero-heavy "program": compresses well under the preselected
        # code, so the image has real compressed blocks to corrupt.
        program = (bytes(range(0, 64, 2)) + bytes(32)) * 32
        image = ProgramCompressor(standard_code(), integrity=True).compress(program)
        compressed = [
            index for index, block in enumerate(image.blocks) if block.is_compressed
        ]
        assert compressed, "test program must produce compressed blocks"
        target = compressed[len(compressed) // 2]
        original = image.blocks[target].data
        for position in range(len(original)):
            for mask in (0xFF, 0x80, 0x01):
                mutated = bytearray(original)
                mutated[position] ^= mask
                try:
                    image.code.decode_fast(bytes(mutated), image.line_size)
                except CompressionError:
                    blocks = list(image.blocks)
                    blocks[target] = dataclasses.replace(
                        blocks[target], data=bytes(mutated)
                    )
                    return dataclasses.replace(image, blocks=tuple(blocks)), target
        raise AssertionError("no mutation made the block undecodable")

    def test_strict_attributes_the_corrupt_line_only(self):
        image, target = self._corrupted_image()
        cache = ExpandingInstructionCache(image, integrity="strict")
        base = image.text_base
        for line in range(image.line_count):
            address = base + line * image.line_size
            if line == target:
                with pytest.raises(IntegrityError) as excinfo:
                    cache.read_line(address)
                assert excinfo.value.line_number == target
            else:
                # Healthy lines refill normally — the corrupt blob no
                # longer poisons the batch they are served from.
                assert len(cache.read_line(address)) == image.line_size

    def test_detect_mode_scalar_fallback_names_the_line(self):
        from repro.errors import CompressionError

        image, target = self._corrupted_image()
        cache = ExpandingInstructionCache(image, integrity="detect")
        base = image.text_base
        for line in range(image.line_count):
            address = base + line * image.line_size
            if line == target:
                # detect records the CRC event and hands the line on to
                # the decoder, whose failure carries the attribution.
                with pytest.raises(CompressionError, match=f"line {target}"):
                    cache.read_line(address)
            else:
                cache.read_line(address)
        assert [event[0] for event in cache.integrity_events] == [target]

    def test_expanded_lines_reports_corrupt_slot_as_none(self):
        image, target = self._corrupted_image()
        lines = image.expanded_lines()
        assert lines[target] is None
        healthy = [line for index, line in enumerate(lines) if index != target]
        assert all(line is not None for line in healthy)


class TestBlastRadius:
    def test_single_bit_flip_corrupts_exactly_one_line(self):
        """The golden property: one flipped bit, one damaged 32-byte line."""
        for name, code in _codes().items():
            injector = FaultInjector(1234)
            for _ in range(25):
                report = blast_block_codec(code, PROGRAM, injector, "bit_flip", name)
                assert report.blast_radius <= 1, (name, report.record)
                assert report.span <= 1
                assert report.detected

    def test_byte_fault_bounded_and_detected(self):
        code = standard_code()
        injector = FaultInjector(77)
        for _ in range(25):
            report = blast_block_codec(code, PROGRAM, injector, "byte")
            assert report.blast_radius <= 1

    def test_burst_bounded_by_straddled_blocks(self):
        from repro.faults.injector import DEFAULT_BURST_BYTES

        code = standard_code()
        injector = FaultInjector(42)
        for _ in range(25):
            report = blast_block_codec(code, PROGRAM, injector, "burst")
            assert report.blast_radius <= DEFAULT_BURST_BYTES

    def test_baseline_damage_is_bytes_touched(self):
        injector = FaultInjector(6)
        report = blast_baseline(PROGRAM, injector, "bit_flip")
        assert report.codec == "raw"
        assert report.blast_radius == 1
        assert not report.detected

    def test_lzw_is_not_line_bounded(self):
        injector = FaultInjector(2024)
        spans = [blast_lzw(PROGRAM, injector, "byte").span for _ in range(40)]
        assert max(spans) > 1  # corruption spreads past the faulted line

    def test_diff_counts_missing_tail_lines(self):
        golden = bytes(96)
        truncated = bytes(40)  # covers line 0, part of line 1
        assert diff_lines(golden, truncated) == (1, 2)


class TestCorruptedDecodeFuzz:
    @settings(max_examples=60, deadline=None)
    @given(st.data())
    def test_corrupted_block_decode_terminates(self, data):
        """Decoding any corrupted bitstream returns bytes or raises a
        ReproError — it never hangs and never leaks a foreign exception."""
        codes = _codes()
        name = data.draw(st.sampled_from(sorted(codes)))
        code = codes[name]
        compressor = BlockCompressor(code)
        blocks = compressor.compress_program(PROGRAM[: 32 * 8])
        block = blocks[data.draw(st.integers(0, len(blocks) - 1))]
        mutation = data.draw(
            st.one_of(
                st.binary(min_size=0, max_size=len(block.data)),
                st.just(block.data[: data.draw(st.integers(0, len(block.data)))]),
            )
        )
        if not block.is_compressed:
            return
        try:
            decoded = code.decode_fast(mutation, DEFAULT_LINE_SIZE)
        except ReproError:
            return
        assert isinstance(decoded, bytes)
        assert len(decoded) == DEFAULT_LINE_SIZE


class TestHarnessDegradation:
    AXES = dict(cache_sizes=(512,), memories=("eprom",))

    def test_sweep_unknown_workload_graceful(self):
        result = sweep("no-such-program", **self.AXES)
        assert result.reports == ()
        assert len(result.failures) == 1
        failure = result.failures[0]
        assert isinstance(failure, FailureReport)
        assert failure.workload == "no-such-program"
        assert "unknown workload" in failure.message
        assert "no-such-program" in failure.render()

    def test_sweep_strict_raises_annotated(self):
        with pytest.raises(ConfigurationError) as excinfo:
            sweep("no-such-program", strict=True, **self.AXES)
        assert "no-such-program" in str(excinfo.value)

    def test_sweep_many_partial_results_serial(self):
        result = sweep_many(["eightq", "no-such-program"], **self.AXES)
        assert len(result.reports) == 1
        assert len(result.failures) == 1
        assert result.failures[0].workload == "no-such-program"
        assert not result.ok

    def test_sweep_many_partial_results_parallel(self):
        result = sweep_many(["eightq", "no-such-program"], jobs=2, **self.AXES)
        assert len(result.reports) == 1
        assert len(result.failures) == 1
        assert result.failures[0].workload == "no-such-program"

    def test_sweep_many_strict_parallel_fails_fast(self):
        with pytest.raises(ConfigurationError) as excinfo:
            sweep_many(["eightq", "no-such-program"], jobs=2, strict=True, **self.AXES)
        assert "no-such-program" in str(excinfo.value)

    def test_failure_counters(self):
        before = METRICS.counter("sweep.failures")
        sweep("no-such-program", **self.AXES)
        assert METRICS.counter("sweep.failures") > before


class TestFaultStudyAndCLI:
    def test_smoke_study_properties_hold(self):
        from repro.experiments.fault_study import run_fault_study

        result = run_fault_study(programs=("eightq",), trials_per_case=2, seed=3)
        assert result.violations() == []
        table = result.render()
        assert "preselected" in table and "lzw" in table
        # Determinism: same seed reproduces the tables bit for bit.
        again = run_fault_study(programs=("eightq",), trials_per_case=2, seed=3)
        assert again == result

    def test_cli_smoke(self, capsys):
        from repro.tools.faults import main

        assert main(["--smoke", "--programs", "eightq"]) == 0
        out = capsys.readouterr().out
        assert "blast radius" in out and "Refill-path" in out

    def test_cli_strict_demo_fails_fast(self, capsys):
        from repro.tools.faults import main

        code = main(
            ["--trials", "1", "--programs", "eightq",
             "--inject-worker-failure", "--strict", "--jobs", "1"]
        )
        assert code == 1
        assert "failed fast" in capsys.readouterr().err

    def test_cli_output_file(self, tmp_path, capsys):
        from repro.tools.faults import main

        target = tmp_path / "faults.txt"
        assert main(["--trials", "1", "--programs", "eightq",
                     "--output", str(target)]) == 0
        assert "blast radius" in target.read_text()
