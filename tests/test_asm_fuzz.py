"""Fuzz round trips: instruction -> disassembly -> assembly -> same word.

Complements the encode/decode round-trip tests by pushing the textual
pipeline (disassembler output must reassemble to identical bytes) over
randomly generated instructions of every format.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.isa import Assembler, Instruction, SPECS, disassemble, encode
from repro.isa.opcodes import InstructionFormat

# Specs whose disassembly is context-free (branches and jumps need an
# address to render absolute targets, handled separately below).
_PLAIN_SPECS = [
    spec
    for spec in SPECS
    if "rel" not in spec.operands and spec.operands != "target"
]

_BRANCH_SPECS = [spec for spec in SPECS if "rel" in spec.operands]


def _instruction_for(spec, data) -> Instruction:
    """Draw random legal fields for ``spec``."""
    fields = {}
    signature = spec.operands
    draw_reg = lambda: data.draw(st.integers(0, 31))  # noqa: E731
    if signature in ("rd,rs,rt", "rd,rt,rs"):
        fields = dict(rd=draw_reg(), rs=draw_reg(), rt=draw_reg())
    elif signature == "rd,rt,sha":
        fields = dict(rd=draw_reg(), rt=draw_reg(), shamt=data.draw(st.integers(0, 31)))
    elif signature == "rs":
        fields = dict(rs=draw_reg())
    elif signature == "rd,rs":
        fields = dict(rd=draw_reg(), rs=draw_reg())
    elif signature == "rd":
        fields = dict(rd=draw_reg())
    elif signature == "rs,rt":
        fields = dict(rs=draw_reg(), rt=draw_reg())
    elif signature in ("rt,rs,imm",):
        fields = dict(rt=draw_reg(), rs=draw_reg(), imm=data.draw(st.integers(-0x8000, 0x7FFF)))
    elif signature in ("rt,rs,uimm",):
        fields = dict(rt=draw_reg(), rs=draw_reg(), imm=data.draw(st.integers(0, 0xFFFF)))
    elif signature == "rt,uimm":
        fields = dict(rt=draw_reg(), imm=data.draw(st.integers(0, 0xFFFF)))
    elif signature in ("rt,off(rs)", "ft,off(rs)"):
        fields = dict(rt=draw_reg(), rs=draw_reg(), imm=data.draw(st.integers(-0x8000, 0x7FFF)))
    elif signature == "fd,fs,ft":
        fields = dict(shamt=draw_reg(), rd=draw_reg(), rt=draw_reg())
    elif signature == "fd,fs":
        fields = dict(shamt=draw_reg(), rd=draw_reg())
    elif signature == "fs,ft":
        fields = dict(rd=draw_reg(), rt=draw_reg())
    elif signature == "rt,fs":
        fields = dict(rt=draw_reg(), rd=draw_reg())
    return Instruction(spec, **fields)


@settings(max_examples=200, deadline=None)
@given(st.data())
def test_plain_instruction_text_round_trip(data):
    spec = data.draw(st.sampled_from(_PLAIN_SPECS))
    instruction = _instruction_for(spec, data)
    text = disassemble(instruction)
    if text == "nop":  # canonical nop renders without operands
        assert encode(instruction) == 0
        return
    program = Assembler().assemble(text)
    assert program.text == encode(instruction).to_bytes(4, "big")


@settings(max_examples=100, deadline=None)
@given(st.data())
def test_branch_text_round_trip_with_addresses(data):
    """Branches render absolute targets when given their own address; a
    reassembly at the same address must reproduce the offset."""
    spec = data.draw(st.sampled_from(_BRANCH_SPECS))
    # Place the branch at word 16 and keep the target inside a small window.
    offset = data.draw(st.integers(-16, 15))
    fields = {"imm": offset}
    if spec.operands == "rs,rt,rel":
        fields.update(rs=data.draw(st.integers(0, 31)), rt=data.draw(st.integers(0, 31)))
    elif spec.operands == "rs,rel":
        fields.update(rs=data.draw(st.integers(0, 31)))
    instruction = Instruction(spec, **fields)
    address = 64
    rendered = disassemble(instruction, address=address)
    # Reassemble with padding so the branch sits at the same address.
    source = "\n".join(["nop"] * (address // 4)) + f"\n{rendered}\n" + "nop\n" * 40
    program = Assembler().assemble(source)
    word = program.text[address : address + 4]
    assert word == encode(instruction).to_bytes(4, "big")


@settings(max_examples=50, deadline=None)
@given(st.integers(0, (1 << 24) - 4))
def test_jump_text_round_trip(target_bytes):
    target_bytes &= ~3
    instruction = Instruction.make("j", target=target_bytes >> 2)
    rendered = disassemble(instruction)
    program = Assembler().assemble(rendered)
    assert program.text == encode(instruction).to_bytes(4, "big")
