"""Tests for the experiment harness: every table/figure regenerates and
shows the paper's qualitative results (who wins, where, by how much)."""

from __future__ import annotations

import pytest

from repro.experiments.ablations import run_ablations
from repro.experiments.figure5 import run_figure5
from repro.experiments.figure9 import run_figure9
from repro.experiments.formats import ascii_scatter, percent, render_table
from repro.experiments.tables1_8 import run_tables1_8
from repro.experiments.tables9_10 import CLB_ENTRIES, run_tables9_10
from repro.experiments.tables11_13 import DATA_MISS_RATES, run_tables11_13


# Module-scoped results: each experiment runs once for all its tests.
@pytest.fixture(scope="module")
def figure5():
    return run_figure5()


@pytest.fixture(scope="module")
def tables1_8():
    return run_tables1_8(programs=("nasa7", "espresso", "fpppp", "eightq"))


@pytest.fixture(scope="module")
def tables9_10():
    return run_tables9_10(cache_sizes=(256, 1024, 4096))


@pytest.fixture(scope="module")
def figure9():
    return run_figure9(
        programs=("nasa7", "espresso", "fpppp", "eightq", "nasa1"),
        cache_sizes=(256, 512, 1024, 4096),
    )


@pytest.fixture(scope="module")
def tables11_13():
    return run_tables11_13()


class TestFormats:
    def test_render_table_alignment(self):
        text = render_table("T", ("a", "b"), [("x", 1.5), ("long", 2.25)])
        assert "T" in text and "1.500" in text and "2.250" in text

    def test_percent(self):
        assert percent(0.0513) == "5.13%"

    def test_ascii_scatter_handles_empty(self):
        assert ascii_scatter([]) == "(no data)"

    def test_ascii_scatter_plots_markers(self):
        plot = ascii_scatter([(0.0, 0.0, "x"), (1.0, 1.0, "o")], width=10, height=5)
        assert "x" in plot and "o" in plot


class TestFigure5:
    def test_all_ten_programs_present(self, figure5):
        assert len(figure5.rows) == 10

    def test_every_method_compresses_the_large_programs(self, figure5):
        for row in figure5.rows:
            if row.original_bytes > 20_000:
                assert row.unix_compress < 1.0
                assert row.traditional_huffman < 1.0
                assert row.preselected_huffman < 1.0

    def test_weighted_average_ordering_matches_paper(self, figure5):
        """compress < traditional <= bounded; all Huffman variants close."""
        weighted = figure5.weighted
        assert weighted.unix_compress < weighted.traditional_huffman
        # Per-line byte padding and the bypass rule can flip the order by a
        # few bytes across a 660 KB corpus; allow that rounding slack.
        assert weighted.traditional_huffman <= weighted.bounded_huffman + 1e-4

    def test_bounded_nearly_as_good_as_traditional(self, figure5):
        weighted = figure5.weighted
        assert weighted.bounded_huffman - weighted.traditional_huffman < 0.02

    def test_preselected_nearly_as_good_as_bounded(self, figure5):
        """The paper's key claim: one fixed code is almost as effective."""
        weighted = figure5.weighted
        assert weighted.preselected_huffman - weighted.bounded_huffman < 0.03

    def test_huffman_family_in_paper_ballpark(self, figure5):
        """Preselected weighted average ~70-80% of original size."""
        assert 0.65 < figure5.weighted.preselected_huffman < 0.85

    def test_preselected_beats_per_program_code_on_small_programs(self, figure5):
        """Small programs cannot amortise the 256-byte code table."""
        eightq = next(row for row in figure5.rows if row.program == "eightq")
        assert eightq.preselected_huffman < eightq.traditional_huffman

    def test_render_includes_weighted_average(self, figure5):
        assert "Weighted Avg" in figure5.render()


class TestTables1To8:
    def test_eprom_ccrp_wins_at_small_caches(self, tables1_8):
        """Paper: 'given a slow memory model like the EPROM model,
        performance almost always is improved by using compressed code.'"""
        for program in ("nasa7", "espresso", "eightq"):
            table = tables1_8.table_for(program)
            row = next(
                r for r in table.rows if r.memory == "eprom" and r.cache_bytes == 256
            )
            assert row.relative_performance < 1.0

    def test_burst_eprom_ccrp_loses_moderately(self, tables1_8):
        """Faster memory: execution time increases, espresso worst."""
        espresso = tables1_8.table_for("espresso")
        for row in espresso.rows:
            if row.memory == "burst_eprom":
                assert 1.0 < row.relative_performance < 1.6

    def test_espresso_suffers_most_on_fast_memory(self, tables1_8):
        def worst(program):
            return max(
                row.relative_performance
                for row in tables1_8.table_for(program).rows
                if row.memory == "burst_eprom"
            )

        assert worst("espresso") > worst("nasa7")
        assert worst("espresso") > worst("fpppp")

    def test_memory_traffic_reduced_in_all_cases(self, tables1_8):
        """Paper conclusion: traffic is 'significantly reduced in all cases'.

        Rows with essentially no misses carry only start-up traffic, where
        a handful of LAT-entry reads can tip the ratio over 1; any row with
        real miss activity must show a reduction.
        """
        for table in tables1_8.tables:
            for row in table.rows:
                if row.miss_rate > 0.001:
                    assert row.memory_traffic < 1.0
                else:
                    assert row.memory_traffic < 1.1

    def test_miss_rate_decreases_with_cache_size(self, tables1_8):
        for table in tables1_8.tables:
            eprom_rows = [row for row in table.rows if row.memory == "eprom"]
            rates = [row.miss_rate for row in eprom_rows]
            assert rates == sorted(rates, reverse=True)

    def test_fpppp_cliff_between_1k_and_2k(self, tables1_8):
        fpppp = tables1_8.table_for("fpppp")
        by_size = {
            row.cache_bytes: row.miss_rate
            for row in fpppp.rows
            if row.memory == "eprom"
        }
        assert by_size[1024] > 0.05
        assert by_size[2048] < 0.005

    def test_dram_rows_only_for_first_program(self, tables1_8):
        memories = {row.memory for row in tables1_8.table_for("nasa7").rows}
        assert "sc_dram" in memories
        memories = {row.memory for row in tables1_8.table_for("espresso").rows}
        assert "sc_dram" not in memories

    def test_dram_similar_to_burst_eprom(self, tables1_8):
        """Paper: 'The DRAM memory model produces quite similar results
        to the Burst EPROM memory model.'"""
        nasa7 = tables1_8.table_for("nasa7")
        for cache_bytes in (256, 1024, 4096):
            burst = next(
                r.relative_performance
                for r in nasa7.rows
                if r.memory == "burst_eprom" and r.cache_bytes == cache_bytes
            )
            dram = next(
                r.relative_performance
                for r in nasa7.rows
                if r.memory == "sc_dram" and r.cache_bytes == cache_bytes
            )
            assert abs(burst - dram) < 0.08

    def test_render_mentions_program_and_clb(self, tables1_8):
        text = tables1_8.render()
        assert "Table 1: nasa7" in text
        assert "16 entry CLB" in text


class TestTables9To10:
    def test_minor_variation_with_clb_size(self, tables9_10):
        """Paper: 'only minor variations with respect to CLB size'."""
        for table in tables9_10.tables:
            for row in table.rows:
                values = [row.relative_performance[entries] for entries in CLB_ENTRIES]
                assert max(values) - min(values) < 0.05

    def test_smaller_clb_never_faster(self, tables9_10):
        for table in tables9_10.tables:
            for row in table.rows:
                assert (
                    row.relative_performance[16]
                    <= row.relative_performance[8] + 1e-9
                    <= row.relative_performance[4] + 2e-9
                )

    def test_covers_both_programs(self, tables9_10):
        assert {table.program for table in tables9_10.tables} == {"nasa7", "espresso"}
        assert {table.table_number for table in tables9_10.tables} == {9, 10}


class TestFigure9:
    def test_point_cloud_covers_all_models(self, figure9):
        for memory in ("eprom", "burst_eprom", "sc_dram"):
            assert len(figure9.points_for(memory)) >= 10

    def test_eprom_trend_improves_with_miss_rate(self, figure9):
        """Slow memory: higher miss rate -> CCRP wins more (slope < 0)."""
        assert figure9.trend_slope("eprom") < 0

    def test_fast_memory_trends_hurt_with_miss_rate(self, figure9):
        assert figure9.trend_slope("burst_eprom") > 0
        assert figure9.trend_slope("sc_dram") > 0

    def test_low_miss_rate_points_near_unity(self, figure9):
        for point in figure9.points:
            if point.miss_rate < 0.0005:
                assert point.relative_performance == pytest.approx(1.0, abs=0.02)

    def test_render_contains_plot_and_csv(self, figure9):
        text = figure9.render()
        assert "Figure 9" in text
        assert "program,memory,cache_bytes" in text


class TestTables11To13:
    def test_three_tables(self, tables11_13):
        assert {table.table_number for table in tables11_13.tables} == {11, 12, 13}

    def test_sweep_points_match_paper(self, tables11_13):
        assert DATA_MISS_RATES == (0.0, 0.02, 0.10, 0.25, 1.0)

    def test_data_cache_dilutes_ccrp_delta(self, tables11_13):
        """Paper: 'As the data cache miss rate increases, the effect of
        the CCRP on performance is reduced.'"""
        for table in tables11_13.tables:
            for memory in ("eprom", "burst_eprom"):
                rows = [row for row in table.rows if row.memory == memory]
                deltas = [abs(row.relative_performance - 1.0) for row in rows]
                assert deltas == sorted(deltas, reverse=True) or max(deltas) < 0.005

    def test_render(self, tables11_13):
        assert "Table 11" in tables11_13.render()


class TestAblations:
    @pytest.fixture(scope="class")
    def ablations(self):
        return run_ablations(programs=("espresso", "nasa7"))

    def test_lat_packing_saves_4x(self, ablations):
        for row in ablations.lat_rows:
            assert row.packed_overhead == pytest.approx(0.03125, abs=0.002)
            assert row.naive_overhead == pytest.approx(0.125, abs=0.002)

    def test_byte_alignment_compresses_better(self, ablations):
        for row in ablations.alignment_rows:
            assert row.byte_aligned_ratio <= row.word_aligned_ratio

    def test_faster_decoder_never_slower(self, ablations):
        for row in ablations.decoder_rows:
            assert (
                row.relative_performance[4]
                <= row.relative_performance[2] + 1e-9
                <= row.relative_performance[1] + 1e-9
            )

    def test_render_has_three_sections(self, ablations):
        text = ablations.render()
        assert "Ablation A" in text and "Ablation B" in text and "Ablation C" in text
