"""Engine equivalence: the basic-block superop engine vs the reference
per-instruction interpreter.

The superop engine must be *indistinguishable* from the reference loop —
same trace bytes, same registers, same output, same stall cycles — on
every workload, on random generated programs, and when the instruction
budget truncates execution mid-block.  These tests are the contract that
lets the engine be the default.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import artifacts
from repro.errors import ExecutionError
from repro.isa import Assembler
from repro.machine import BlockTrace, ExecutionTrace, Machine, default_block_mode
from repro.workloads.codegen import FP_PERSONALITY, CodeGenerator
from repro.workloads.suite import SIMULATION_PROGRAMS, load


def _run_both(program, max_instructions: int, stop_at_limit: bool = True):
    """The same program under both engines, disk cache bypassed."""
    with artifacts.cache_disabled():
        reference = Machine(program, block_mode=False).run(
            max_instructions=max_instructions, stop_at_limit=stop_at_limit
        )
        blocks = Machine(program, block_mode=True).run(
            max_instructions=max_instructions, stop_at_limit=stop_at_limit
        )
    return reference, blocks


def _assert_identical(reference, blocks) -> None:
    assert np.array_equal(reference.trace.addresses, blocks.trace.addresses)
    assert np.array_equal(
        reference.trace.execution_counts(), blocks.trace.execution_counts()
    )
    assert reference.registers == blocks.registers
    assert reference.output == blocks.output
    assert reference.stall_cycles == blocks.stall_cycles
    assert reference.exit_code == blocks.exit_code
    assert reference.instructions_executed == blocks.instructions_executed
    assert reference.data_accesses == blocks.data_accesses


# ----------------------------------------------------------------------
# The workload suite, both engines
# ----------------------------------------------------------------------


@pytest.mark.parametrize("name", SIMULATION_PROGRAMS)
def test_suite_workloads_equivalent(name):
    reference, blocks = _run_both(load(name).program, max_instructions=120_000)
    _assert_identical(reference, blocks)


@pytest.mark.parametrize("cap", [1, 7, 101, 4_096, 50_001])
def test_mid_block_truncation_equivalent(cap):
    """stop_at_limit must cut the trace at the same instruction."""
    program = load("lloop01").program
    reference, blocks = _run_both(program, max_instructions=cap)
    assert reference.instructions_executed == cap
    _assert_identical(reference, blocks)


def test_limit_without_stop_raises_in_both():
    program = load("lloop01").program
    for block_mode in (False, True):
        with artifacts.cache_disabled():
            with pytest.raises(ExecutionError):
                Machine(program, block_mode=block_mode).run(
                    max_instructions=1_000, stop_at_limit=False
                )


# ----------------------------------------------------------------------
# Escape hatches
# ----------------------------------------------------------------------


def test_env_var_selects_engine(monkeypatch):
    monkeypatch.setenv("CCRP_EXECUTOR", "simple")
    assert default_block_mode() is False
    assert Machine(load("lloop01").program).block_mode is False
    monkeypatch.setenv("CCRP_EXECUTOR", "block")
    assert default_block_mode() is True
    monkeypatch.delenv("CCRP_EXECUTOR")
    assert default_block_mode() is True


def test_block_mode_argument_overrides_env(monkeypatch):
    monkeypatch.setenv("CCRP_EXECUTOR", "simple")
    assert Machine(load("lloop01").program, block_mode=True).block_mode is True


def test_backings_differ_but_results_match():
    """The reference engine records flat; the superop engine, blocks."""
    reference, blocks = _run_both(load("lloop01").program, max_instructions=20_000)
    assert reference.trace.blocks is None
    assert blocks.trace.blocks is not None
    assert len(reference.trace) == len(blocks.trace)


# ----------------------------------------------------------------------
# Random generated programs (hypothesis)
# ----------------------------------------------------------------------


def _generated_program(seed: int, flavor: str):
    generator = CodeGenerator(f"superop-eq-{flavor}-{seed}")
    if flavor == "pool":
        source = generator.pool_program(
            functions=4, iterations=40, body_loops=2, body_words=24
        )
    else:
        generator.personality = FP_PERSONALITY
        source = generator.straightline_fp_program(block_words=48, iterations=6)
    return Assembler().assemble(source)


@settings(max_examples=6, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000), flavor=st.sampled_from(["pool", "fp"]))
def test_random_programs_equivalent(seed, flavor):
    program = _generated_program(seed, flavor)
    reference, blocks = _run_both(program, max_instructions=60_000)
    _assert_identical(reference, blocks)


@settings(max_examples=6, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    cap=st.integers(min_value=1, max_value=5_000),
)
def test_random_programs_truncated_equivalent(seed, cap):
    """Budget exhaustion anywhere — even mid-block — stays identical."""
    program = _generated_program(seed, "pool")
    reference, blocks = _run_both(program, max_instructions=cap)
    _assert_identical(reference, blocks)


# ----------------------------------------------------------------------
# BlockTrace unit behaviour
# ----------------------------------------------------------------------


def _toy_trace() -> BlockTrace:
    return BlockTrace(
        events=np.array([0, 1, 0, 2, 1, 1], dtype=np.int32),
        block_addresses=(
            np.array([0, 4], dtype=np.uint32),
            np.array([8], dtype=np.uint32),
            np.array([12, 16, 20], dtype=np.uint32),
        ),
        text_base=0,
        text_size=24,
    )


def test_blocktrace_materializes_event_order():
    trace = _toy_trace()
    expected = [0, 4, 8, 0, 4, 12, 16, 20, 8, 8]
    assert trace.materialize_addresses().tolist() == expected
    assert len(trace) == len(expected)


def test_blocktrace_counts_without_materializing():
    trace = _toy_trace()
    flat = trace.materialize_addresses()
    by_bincount = np.bincount(flat >> 2, minlength=6)
    assert trace.execution_counts(6).tolist() == by_bincount.tolist()


def test_blocktrace_empty():
    trace = BlockTrace(
        events=np.empty(0, dtype=np.int32),
        block_addresses=(),
        text_base=0,
        text_size=0,
    )
    assert len(trace) == 0
    assert trace.materialize_addresses().size == 0
    assert trace.execution_counts(4).tolist() == [0, 0, 0, 0]


def test_execution_trace_lazy_backing_queries():
    trace = ExecutionTrace(blocks=_toy_trace(), text_base=0, text_size=24)
    assert len(trace) == 10  # answered from block lengths, no materialise
    assert trace._addresses is None
    lines = trace.line_addresses(32)
    assert trace._addresses is not None  # materialised on demand
    assert lines.tolist() == [0] * 10
    assert trace.instruction_indices.tolist() == [0, 1, 2, 0, 1, 3, 4, 5, 2, 2]
