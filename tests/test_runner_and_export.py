"""Tests for the experiment CLI runner and the JSON/text export."""

from __future__ import annotations

import json

import pytest

from repro.experiments.export import export_result, result_to_dict
from repro.experiments.runner import main


class TestExport:
    def test_dataclass_tree_serialises(self):
        from repro.experiments.figure5 import CompressionRow, Figure5Result

        row = CompressionRow(
            program="x",
            original_bytes=100,
            unix_compress=0.5,
            traditional_huffman=0.7,
            bounded_huffman=0.7,
            preselected_huffman=0.72,
        )
        result = Figure5Result(rows=(row,), weighted=row)
        data = result_to_dict(result)
        assert data["rows"][0]["program"] == "x"
        assert data["weighted"]["unix_compress"] == 0.5

    def test_dict_keys_stringified(self):
        from repro.experiments.tables9_10 import CLBRow

        row = CLBRow(
            program="p", memory="eprom", cache_bytes=256,
            relative_performance={16: 1.0, 8: 1.01},
        )
        data = result_to_dict(row)
        assert data["relative_performance"] == {"16": 1.0, "8": 1.01}

    def test_numpy_scalars_handled(self):
        import numpy as np

        assert result_to_dict(np.float64(1.5)) == 1.5
        assert result_to_dict([np.int64(3)]) == [3]

    def test_export_writes_both_files(self, tmp_path):
        from repro.experiments.dense_isa import run_dense_isa

        result = run_dense_isa(programs=("eightq",))
        json_path, text_path = export_result(result, "dense-isa", tmp_path)
        payload = json.loads(json_path.read_text())
        assert payload["rows"][0]["program"] == "eightq"
        assert "Dense ISA" in text_path.read_text()


class TestRunnerCLI:
    def test_runs_named_experiment(self, capsys):
        assert main(["dense-isa"]) == 0
        out = capsys.readouterr().out
        assert "Dense-ISA alternative" in out
        assert "completed in" in out

    def test_output_dir(self, tmp_path, capsys):
        assert main(["dense-isa", "--output-dir", str(tmp_path)]) == 0
        assert (tmp_path / "dense-isa.json").exists()
        assert (tmp_path / "dense-isa.txt").exists()

    def test_rejects_unknown_experiment(self):
        with pytest.raises(SystemExit):
            main(["figure42"])
