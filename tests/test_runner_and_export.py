"""Tests for the experiment CLI runner and the JSON/text export."""

from __future__ import annotations

import json

import pytest

from repro.experiments.export import export_result, result_to_dict
from repro.experiments.runner import main


class TestExport:
    def test_dataclass_tree_serialises(self):
        from repro.experiments.figure5 import CompressionRow, Figure5Result

        row = CompressionRow(
            program="x",
            original_bytes=100,
            unix_compress=0.5,
            traditional_huffman=0.7,
            bounded_huffman=0.7,
            preselected_huffman=0.72,
        )
        result = Figure5Result(rows=(row,), weighted=row)
        data = result_to_dict(result)
        assert data["rows"][0]["program"] == "x"
        assert data["weighted"]["unix_compress"] == 0.5

    def test_dict_keys_stringified(self):
        from repro.experiments.tables9_10 import CLBRow

        row = CLBRow(
            program="p", memory="eprom", cache_bytes=256,
            relative_performance={16: 1.0, 8: 1.01},
        )
        data = result_to_dict(row)
        assert data["relative_performance"] == {"16": 1.0, "8": 1.01}

    def test_numpy_scalars_handled(self):
        import numpy as np

        assert result_to_dict(np.float64(1.5)) == 1.5
        assert result_to_dict([np.int64(3)]) == [3]

    def test_export_writes_both_files(self, tmp_path):
        from repro.experiments.dense_isa import run_dense_isa

        result = run_dense_isa(programs=("eightq",))
        json_path, text_path = export_result(result, "dense-isa", tmp_path)
        payload = json.loads(json_path.read_text())
        assert payload["rows"][0]["program"] == "eightq"
        assert "Dense ISA" in text_path.read_text()


class TestRunnerCLI:
    def test_runs_named_experiment(self, capsys):
        assert main(["dense-isa"]) == 0
        out = capsys.readouterr().out
        assert "Dense-ISA alternative" in out
        assert "completed in" in out

    def test_output_dir(self, tmp_path, capsys):
        assert main(["dense-isa", "--output-dir", str(tmp_path)]) == 0
        assert (tmp_path / "dense-isa.json").exists()
        assert (tmp_path / "dense-isa.txt").exists()

    def test_rejects_unknown_experiment(self):
        with pytest.raises(SystemExit):
            main(["figure42"])

    def test_duplicate_names_run_once(self, capsys):
        # Regression: duplicated CLI arguments used to run the same
        # experiment twice.
        assert main(["dense-isa", "dense-isa"]) == 0
        out = capsys.readouterr().out
        assert out.count("completed in") == 1

    def test_missing_output_dir_created(self, tmp_path, capsys):
        # Regression: a nonexistent --output-dir used to crash the run.
        nested = tmp_path / "does" / "not" / "exist"
        assert main(["dense-isa", "--output-dir", str(nested)]) == 0
        assert (nested / "dense-isa.json").exists()

    def test_rejects_bad_jobs(self):
        with pytest.raises(SystemExit):
            main(["dense-isa", "--jobs", "0"])

    def test_metrics_dump(self, tmp_path, capsys):
        metrics_path = tmp_path / "metrics.json"
        assert main(["dense-isa", "--metrics", str(metrics_path)]) == 0
        payload = json.loads(metrics_path.read_text())
        assert payload["schema"] == "ccrp-metrics/2"
        assert payload["jobs"] == 1
        assert "dense-isa" in payload["experiments"]
        assert payload["experiments"]["dense-isa"]["elapsed_seconds"] > 0
        assert "experiment.dense-isa" in payload["stages"]

    def test_no_cache_flag(self, tmp_path, capsys, monkeypatch):
        from repro.core import artifacts

        monkeypatch.setenv(artifacts.ENV_CACHE_DIR, str(tmp_path / "cache"))
        metrics_path = tmp_path / "metrics.json"
        assert main(["dense-isa", "--no-cache", "--metrics", str(metrics_path)]) == 0
        payload = json.loads(metrics_path.read_text())
        assert payload["cache"]["enabled"] is False
        assert not list((tmp_path / "cache").rglob("*.pkl"))
        assert artifacts.cache_enabled()  # restored after the run


class TestParallelRunner:
    def test_jobs_output_byte_identical_to_serial(self, tmp_path, capsys):
        serial_dir = tmp_path / "serial"
        parallel_dir = tmp_path / "parallel"
        metrics_path = tmp_path / "metrics.json"
        assert main(["figure5", "dense-isa", "--output-dir", str(serial_dir)]) == 0
        assert (
            main(
                [
                    "figure5",
                    "dense-isa",
                    "--jobs",
                    "2",
                    "--output-dir",
                    str(parallel_dir),
                    "--metrics",
                    str(metrics_path),
                ]
            )
            == 0
        )
        for name in ("figure5", "dense-isa"):
            serial = (serial_dir / f"{name}.json").read_bytes()
            parallel = (parallel_dir / f"{name}.json").read_bytes()
            assert serial == parallel
        out = capsys.readouterr().out
        # Output order follows the requested order, not completion order.
        assert out.index("figure5 completed") < out.index("dense-isa completed")
        payload = json.loads(metrics_path.read_text())
        assert payload["jobs"] == 2
        # Worker metrics were merged back into the parent registry.
        assert set(payload["experiments"]) == {"figure5", "dense-isa"}
        assert any(stage.startswith("experiment.") for stage in payload["stages"])
