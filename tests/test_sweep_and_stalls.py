"""Tests for the sweep API and the precise HI/LO stall model."""

from __future__ import annotations

import csv

import numpy as np
import pytest

from repro.core import SystemConfig, compare
from repro.core.sweep import CSV_COLUMNS, sweep, sweep_many
from repro.isa import Assembler
from repro.machine import Machine
from repro.machine.stalls import PreciseHiLoModel, R2000_STALLS, StallModel


class TestSweep:
    @pytest.fixture(scope="class")
    def result(self):
        return sweep("eightq", cache_sizes=(256, 512), memories=("eprom", "burst_eprom"))

    def test_cross_product_size(self, result):
        assert len(result) == 4

    def test_matches_compare(self, result):
        direct = compare("eightq", SystemConfig(cache_bytes=256, memory="eprom"))
        swept = result.filter(memory="eprom", cache_bytes=256).reports[0]
        assert swept.relative_execution_time == pytest.approx(
            direct.relative_execution_time
        )

    def test_filter(self, result):
        eprom = result.filter(memory="eprom")
        assert len(eprom) == 2
        assert all(report.memory == "eprom" for report in eprom.reports)

    def test_best_and_worst(self, result):
        assert result.best().relative_execution_time <= result.worst().relative_execution_time
        # For eightq the best point is the EPROM small-cache win.
        assert result.best().memory == "eprom"

    def test_best_of_empty_raises(self, result):
        with pytest.raises(ValueError):
            result.filter(memory="flash").best()

    def test_rows_schema(self, result):
        rows = result.rows()
        assert set(rows[0]) == set(CSV_COLUMNS)

    def test_to_csv(self, result, tmp_path):
        path = result.to_csv(tmp_path / "sweep.csv")
        with path.open() as handle:
            rows = list(csv.DictReader(handle))
        assert len(rows) == len(result)
        assert float(rows[0]["relative_execution_time"]) > 0

    def test_sweep_many_concatenates(self):
        result = sweep_many(
            ("eightq", "lloop01"), cache_sizes=(256,), memories=("eprom",)
        )
        assert {report.program for report in result.reports} == {"eightq", "lloop01"}

    def test_parallel_sweep_matches_serial(self, result):
        parallel = sweep(
            "eightq",
            cache_sizes=(256, 512),
            memories=("eprom", "burst_eprom"),
            jobs=2,
        )
        assert parallel.reports == result.reports

    def test_parallel_sweep_many_matches_serial(self):
        axes = dict(cache_sizes=(256,), memories=("eprom", "burst_eprom"))
        serial = sweep_many(("eightq", "lloop01"), **axes)
        parallel = sweep_many(("eightq", "lloop01"), jobs=2, **axes)
        assert parallel.reports == serial.reports

    def test_clb_and_data_axes(self):
        result = sweep(
            "eightq",
            cache_sizes=(256,),
            memories=("eprom",),
            clb_entries=(4, 16),
            data_miss_rates=(0.0, 1.0),
        )
        assert len(result) == 4
        assert {report.clb_entries for report in result.reports} == {4, 16}
        assert {report.data_cache_miss_rate for report in result.reports} == {0.0, 1.0}


def run_program(source: str):
    program = Assembler().assemble(source)
    result = Machine(program).run()
    return program, result


class TestPreciseHiLoModel:
    def test_immediate_read_charges_full_latency(self):
        program, result = run_program(
            "main: li $t0, 3\nli $t1, 4\nmult $t0, $t1\nmflo $t2\nli $v0, 10\nsyscall"
        )
        precise = PreciseHiLoModel().stall_cycles(
            result.trace.instruction_indices, program.instructions
        )
        # mflo is 1 slot after mult: stall = 12 - 1 = 11.
        assert precise == 11

    def test_distant_read_absorbs_latency(self):
        filler = "\n".join(["addu $t3, $t3, $t0"] * 20)
        program, result = run_program(
            f"main: li $t0, 3\nli $t1, 4\nmult $t0, $t1\n{filler}\nmflo $t2\nli $v0, 10\nsyscall"
        )
        precise = PreciseHiLoModel().stall_cycles(
            result.trace.instruction_indices, program.instructions
        )
        assert precise == 0  # 20 independent instructions hide 12 cycles

    def test_partial_overlap(self):
        filler = "\n".join(["addu $t3, $t3, $t0"] * 5)
        program, result = run_program(
            f"main: li $t0, 3\nli $t1, 4\nmult $t0, $t1\n{filler}\nmflo $t2\nli $v0, 10\nsyscall"
        )
        precise = PreciseHiLoModel().stall_cycles(
            result.trace.instruction_indices, program.instructions
        )
        assert precise == 12 - 6  # read six slots after issue

    def test_divide_latency(self):
        program, result = run_program(
            "main: li $t0, 9\nli $t1, 2\ndiv $t0, $t1\nmflo $t2\nli $v0, 10\nsyscall"
        )
        precise = PreciseHiLoModel().stall_cycles(
            result.trace.instruction_indices, program.instructions
        )
        assert precise == 34

    def test_unread_result_costs_nothing(self):
        program, result = run_program(
            "main: li $t0, 3\nmult $t0, $t0\nli $v0, 10\nsyscall"
        )
        precise = PreciseHiLoModel().stall_cycles(
            result.trace.instruction_indices, program.instructions
        )
        assert precise == 0

    def test_never_exceeds_flat_model(self):
        """The flat model is a strict upper bound on HI/LO stalls."""
        from repro.workloads import load

        for name in ("tomcatv", "eightq", "qsort"):
            workload = load(name)
            result = workload.run()
            flat = R2000_STALLS.stall_cycles(
                result.trace.instruction_indices, workload.program.instructions
            )
            precise = PreciseHiLoModel().stall_cycles(
                result.trace.instruction_indices, workload.program.instructions
            )
            assert precise <= flat

    def test_fp_latencies_still_charged(self):
        program, result = run_program(
            """
            main:
                mtc1 $zero, $f0
                mtc1 $zero, $f1
                add.d $f2, $f0, $f0
                li $v0, 10
                syscall
            """
        )
        precise = PreciseHiLoModel().stall_cycles(
            result.trace.instruction_indices, program.instructions
        )
        assert precise == 1  # add.d flat extra

    def test_custom_flat_model_override(self):
        model = StallModel(extra_cycles={"mult": 5})
        program, result = run_program(
            "main: li $t0, 3\nmult $t0, $t0\nli $v0, 10\nsyscall"
        )
        assert (
            model.stall_cycles(result.trace.instruction_indices, program.instructions)
            == 5
        )
