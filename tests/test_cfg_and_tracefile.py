"""Tests for static CFG construction and trace persistence."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ReproError
from repro.isa import Assembler
from repro.isa.cfg import build_cfg
from repro.machine import Machine
from repro.machine.tracefile import load_trace, save_trace

SOURCE = """
main:
    li   $t0, 3
loop:
    addiu $t0, $t0, -1
    bnez $t0, loop
    nop
    jal  helper
    nop
    b    done
    nop
helper:
    jr   $ra
    nop
done:
    li $v0, 10
    syscall
"""


@pytest.fixture(scope="module")
def program():
    return Assembler().assemble(SOURCE)


class TestControlFlowGraph:
    def test_leaders_found(self, program):
        cfg = build_cfg(program.text)
        assert program.labels["loop"] in cfg.blocks
        assert program.labels["helper"] in cfg.blocks
        assert program.labels["done"] in cfg.blocks

    def test_loop_back_edge(self, program):
        cfg = build_cfg(program.text)
        loop = cfg.blocks[program.labels["loop"]]
        assert program.labels["loop"] in loop.successors  # taken
        assert loop.end in loop.successors  # fall-through
        assert loop.terminator == "bne"

    def test_delay_slot_belongs_to_branch_block(self, program):
        cfg = build_cfg(program.text)
        loop = cfg.blocks[program.labels["loop"]]
        # addiu + bnez + nop = 3 instructions in the loop block
        assert loop.instruction_count == 3

    def test_call_block_falls_through(self, program):
        cfg = build_cfg(program.text)
        call_block = cfg.block_at(program.labels["loop"] + 12)
        assert call_block.terminator == "jal"
        assert call_block.successors == (call_block.end,)

    def test_unconditional_b_has_single_successor(self, program):
        cfg = build_cfg(program.text)
        jump_block = next(
            block for block in cfg.blocks.values() if block.terminator == "beq"
        )
        assert jump_block.successors == (program.labels["done"],)

    def test_jr_block_has_no_successors(self, program):
        cfg = build_cfg(program.text)
        helper = cfg.blocks[program.labels["helper"]]
        assert helper.terminator == "jr"
        assert helper.successors == ()

    def test_block_at_interior_address(self, program):
        cfg = build_cfg(program.text)
        loop_start = program.labels["loop"]
        assert cfg.block_at(loop_start + 4).start == loop_start
        with pytest.raises(KeyError):
            cfg.block_at(len(program.text) + 64)

    def test_reachability(self, program):
        cfg = build_cfg(program.text)
        reachable = cfg.reachable_from(0)
        assert program.labels["loop"] in reachable
        assert program.labels["done"] in reachable
        # helper is only reached via jal (a call edge is fall-through in
        # this CFG), so it is not in the *jump* reachability set.
        assert program.labels["helper"] not in reachable

    def test_blocks_partition_text(self, program):
        cfg = build_cfg(program.text)
        covered = sorted(
            (block.start, block.end) for block in cfg.blocks.values()
        )
        position = 0
        for start, end in covered:
            assert start == position
            position = end
        assert position == len(program.text)

    def test_stats_helpers(self, program):
        cfg = build_cfg(program.text)
        assert cfg.block_count == len(cfg.blocks)
        assert cfg.average_block_bytes() > 0

    def test_workload_cfg_smoke(self):
        from repro.workloads import load

        cfg = build_cfg(load("eightq").text)
        assert cfg.block_count > 50
        assert 8 <= cfg.average_block_bytes() < 200

    def test_empty_text(self):
        cfg = build_cfg(b"")
        assert cfg.block_count == 0


class TestTraceFile:
    def test_round_trip(self, program, tmp_path):
        trace = Machine(program).run().trace
        path = save_trace(trace, tmp_path / "run")
        assert path.suffix == ".npz"
        loaded = load_trace(path)
        assert np.array_equal(loaded.addresses, trace.addresses)
        assert loaded.text_base == trace.text_base
        assert loaded.text_size == trace.text_size

    def test_loaded_trace_drives_cache_simulation(self, program, tmp_path):
        from repro.cache import simulate_trace

        trace = Machine(program).run().trace
        path = save_trace(trace, tmp_path / "run.npz")
        loaded = load_trace(path)
        original = simulate_trace(trace.addresses, 256)
        replayed = simulate_trace(loaded.addresses, 256)
        assert original.misses == replayed.misses

    def test_bad_file_rejected(self, tmp_path):
        bogus = tmp_path / "bogus.npz"
        bogus.write_bytes(b"not a trace")
        with pytest.raises(ReproError):
            load_trace(bogus)

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(ReproError):
            load_trace(tmp_path / "nope.npz")

    def test_block_trace_round_trip(self, program, tmp_path):
        """A block-backed trace survives save/load without materialising."""
        trace = Machine(program).run().trace
        assert trace.blocks is not None  # the superop engine records blocks
        path = save_trace(trace, tmp_path / "blocks")
        loaded = load_trace(path)
        assert loaded.blocks is not None
        assert np.array_equal(loaded.blocks.events, trace.blocks.events)
        assert len(loaded.blocks.block_addresses) == len(trace.blocks.block_addresses)
        for ours, theirs in zip(
            loaded.blocks.block_addresses, trace.blocks.block_addresses
        ):
            assert np.array_equal(ours, theirs)
        assert np.array_equal(loaded.addresses, trace.addresses)
        assert len(loaded) == len(trace)

    def test_v1_flat_file_still_loads(self, program, tmp_path):
        """Format-version-1 archives (flat only) stay readable."""
        trace = Machine(program).run().trace
        path = tmp_path / "v1.npz"
        np.savez_compressed(
            path,
            addresses=trace.addresses,
            meta=np.array([1, trace.text_base, trace.text_size], dtype=np.int64),
        )
        loaded = load_trace(path)
        assert loaded.blocks is None
        assert np.array_equal(loaded.addresses, trace.addresses)

    def test_future_version_rejected(self, program, tmp_path):
        trace = Machine(program).run().trace
        path = tmp_path / "v9.npz"
        np.savez_compressed(
            path,
            addresses=trace.addresses,
            meta=np.array([9, trace.text_base, trace.text_size], dtype=np.int64),
        )
        with pytest.raises(ReproError, match="version 9"):
            load_trace(path)

    def test_corrupt_block_lengths_rejected(self, program, tmp_path):
        trace = Machine(program).run().trace
        path = save_trace(trace, tmp_path / "blocks")
        with np.load(path) as archive:
            arrays = {name: archive[name] for name in archive.files}
        arrays["block_lengths"] = arrays["block_lengths"] + 1
        np.savez_compressed(path, **arrays)
        with pytest.raises(ReproError, match="corrupt"):
            load_trace(path)
