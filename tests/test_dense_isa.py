"""Tests for the dense-ISA (Thumb-style) re-encoding analysis."""

from __future__ import annotations

import pytest

from repro.isa import Instruction
from repro.isa.dense import (
    DenseEncodingReport,
    analyze_dense_encoding,
    is_dense_encodable,
)
from repro.isa.encoding import encode_program


class TestClassifier:
    def test_two_address_alu_low_regs(self):
        assert is_dense_encodable(Instruction.make("addu", rd=2, rs=2, rt=3))

    def test_three_address_alu_rejected(self):
        assert not is_dense_encodable(Instruction.make("addu", rd=2, rs=3, rt=4))

    def test_high_register_rejected(self):
        assert not is_dense_encodable(Instruction.make("addu", rd=16, rs=16, rt=3))

    def test_shift_immediate(self):
        assert is_dense_encodable(Instruction.make("sll", rd=2, rt=3, shamt=4))
        assert not is_dense_encodable(Instruction.make("sll", rd=16, rt=3, shamt=4))

    def test_small_immediate_add(self):
        assert is_dense_encodable(Instruction.make("addiu", rt=2, rs=2, imm=7))
        assert not is_dense_encodable(Instruction.make("addiu", rt=2, rs=2, imm=300))
        assert not is_dense_encodable(Instruction.make("addiu", rt=2, rs=3, imm=7))

    def test_load_immediate(self):
        assert is_dense_encodable(Instruction.make("addiu", rt=2, rs=0, imm=200))
        assert not is_dense_encodable(Instruction.make("addiu", rt=2, rs=0, imm=-5))

    def test_stack_adjust(self):
        assert is_dense_encodable(Instruction.make("addiu", rt=29, rs=29, imm=-32))
        assert not is_dense_encodable(Instruction.make("addiu", rt=29, rs=29, imm=-516))

    def test_word_load_store(self):
        assert is_dense_encodable(Instruction.make("lw", rt=2, rs=3, imm=64))
        assert not is_dense_encodable(Instruction.make("lw", rt=2, rs=3, imm=66))  # unaligned
        assert not is_dense_encodable(Instruction.make("lw", rt=2, rs=3, imm=128))  # too far
        assert is_dense_encodable(Instruction.make("lw", rt=2, rs=29, imm=512))  # sp-relative
        assert not is_dense_encodable(Instruction.make("sw", rt=16, rs=3, imm=0))

    def test_byte_and_half_loads(self):
        assert is_dense_encodable(Instruction.make("lbu", rt=2, rs=3, imm=31))
        assert not is_dense_encodable(Instruction.make("lbu", rt=2, rs=3, imm=32))
        assert is_dense_encodable(Instruction.make("lhu", rt=2, rs=3, imm=62))
        assert not is_dense_encodable(Instruction.make("lhu", rt=2, rs=3, imm=63))

    def test_short_branches(self):
        assert is_dense_encodable(Instruction.make("bne", rs=2, rt=0, imm=30))
        assert not is_dense_encodable(Instruction.make("bne", rs=2, rt=0, imm=100))
        assert not is_dense_encodable(Instruction.make("bne", rs=2, rt=3, imm=10))
        assert is_dense_encodable(Instruction.make("bltz", rs=2, imm=-20))

    def test_unconditional_short_jump(self):
        assert is_dense_encodable(Instruction.make("beq", rs=0, rt=0, imm=400))

    def test_always_32_bit_forms(self):
        assert not is_dense_encodable(Instruction.make("jal", target=64))
        assert not is_dense_encodable(Instruction.make("lui", rt=2, imm=0x40))
        assert not is_dense_encodable(Instruction.make("mult", rs=2, rt=3))
        assert not is_dense_encodable(Instruction.make("add.d", shamt=2, rd=4, rt=6))

    def test_jr_is_dense(self):
        assert is_dense_encodable(Instruction.make("jr", rs=31))

    def test_hilo_moves(self):
        assert is_dense_encodable(Instruction.make("mflo", rd=2))
        assert not is_dense_encodable(Instruction.make("mflo", rd=16))


class TestReport:
    def test_ratio_arithmetic(self):
        report = DenseEncodingReport(instructions=100, dense_count=50)
        assert report.original_bytes == 400
        assert report.dense_bytes == 300
        assert report.size_ratio == pytest.approx(0.75)
        assert report.dense_fraction == pytest.approx(0.5)

    def test_empty_program(self):
        report = DenseEncodingReport(instructions=0, dense_count=0)
        assert report.size_ratio == 1.0

    def test_analyze_counts_correctly(self):
        instructions = [
            Instruction.make("addu", rd=2, rs=2, rt=3),  # dense
            Instruction.make("addu", rd=2, rs=3, rt=4),  # not
            Instruction.make("jr", rs=31),  # dense
            Instruction.make("jal", target=4),  # not
        ]
        report = analyze_dense_encoding(encode_program(instructions))
        assert report.instructions == 4
        assert report.dense_count == 2

    def test_corpus_analysis_plausible(self):
        from repro.workloads import load

        report = analyze_dense_encoding(load("espresso").text)
        # Realistic MIPS code: a meaningful minority fits 16 bits.
        assert 0.15 < report.dense_fraction < 0.70
        assert 0.65 < report.size_ratio < 0.95


class TestExperiment:
    def test_dense_isa_experiment(self):
        from repro.experiments.dense_isa import run_dense_isa

        result = run_dense_isa(programs=("eightq", "espresso"))
        assert len(result.rows) == 2
        for row in result.rows:
            assert 0.5 < row.dense_ratio < 1.0
        assert "Dense ISA" in result.render()
