"""Property-based validation of the functional simulator.

Random operands are pushed through real assembled-and-executed MIPS
programs and compared against an independent Python model of two's-
complement 32-bit semantics.  This pins the executor down far beyond the
hand-picked cases in test_machine_executor.py.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.isa import Assembler
from repro.machine import Machine

WORD = 0xFFFFFFFF

u32 = st.integers(0, WORD)


def run_binary_op(op_line: str, a: int, b: int) -> int:
    """Execute `op $t2, $t0, $t1`-shaped code with $t0=a, $t1=b."""
    source = f"""
    main:
        lui $t0, {a >> 16:#x}
        ori $t0, $t0, {a & 0xFFFF:#x}
        lui $t1, {b >> 16:#x}
        ori $t1, $t1, {b & 0xFFFF:#x}
        {op_line}
        move $a0, $t2
        li $v0, 10
        syscall
    """
    return Machine(Assembler().assemble(source)).run().exit_code


def signed(value: int) -> int:
    return value - (1 << 32) if value & 0x8000_0000 else value


@settings(max_examples=30, deadline=None)
@given(u32, u32)
def test_addu_matches_python(a, b):
    assert run_binary_op("addu $t2, $t0, $t1", a, b) == (a + b) & WORD


@settings(max_examples=30, deadline=None)
@given(u32, u32)
def test_subu_matches_python(a, b):
    assert run_binary_op("subu $t2, $t0, $t1", a, b) == (a - b) & WORD


@settings(max_examples=30, deadline=None)
@given(u32, u32)
def test_logic_ops_match_python(a, b):
    assert run_binary_op("and $t2, $t0, $t1", a, b) == a & b
    assert run_binary_op("or $t2, $t0, $t1", a, b) == a | b
    assert run_binary_op("xor $t2, $t0, $t1", a, b) == a ^ b
    assert run_binary_op("nor $t2, $t0, $t1", a, b) == ~(a | b) & WORD


@settings(max_examples=30, deadline=None)
@given(u32, u32)
def test_comparisons_match_python(a, b):
    assert run_binary_op("slt $t2, $t0, $t1", a, b) == (1 if signed(a) < signed(b) else 0)
    assert run_binary_op("sltu $t2, $t0, $t1", a, b) == (1 if a < b else 0)


@settings(max_examples=25, deadline=None)
@given(u32, st.integers(0, 31))
def test_shifts_match_python(a, shamt):
    assert run_binary_op(f"sll $t2, $t0, {shamt}", a, 0) == (a << shamt) & WORD
    assert run_binary_op(f"srl $t2, $t0, {shamt}", a, 0) == a >> shamt
    assert run_binary_op(f"sra $t2, $t0, {shamt}", a, 0) == (signed(a) >> shamt) & WORD


@settings(max_examples=25, deadline=None)
@given(u32, u32)
def test_multu_matches_python(a, b):
    source_result = run_binary_op("multu $t0, $t1\nmflo $t2", a, b)
    assert source_result == (a * b) & WORD


@settings(max_examples=25, deadline=None)
@given(u32, u32)
def test_multu_high_word(a, b):
    source_result = run_binary_op("multu $t0, $t1\nmfhi $t2", a, b)
    assert source_result == ((a * b) >> 32) & WORD


@settings(max_examples=25, deadline=None)
@given(u32, u32)
def test_mult_signed_matches_python(a, b):
    product = signed(a) * signed(b)
    assert run_binary_op("mult $t0, $t1\nmflo $t2", a, b) == product & WORD
    assert run_binary_op("mult $t0, $t1\nmfhi $t2", a, b) == (product >> 32) & WORD


@settings(max_examples=25, deadline=None)
@given(u32, u32.filter(lambda value: value != 0))
def test_divu_matches_python(a, b):
    assert run_binary_op("divu $t0, $t1\nmflo $t2", a, b) == a // b
    assert run_binary_op("divu $t0, $t1\nmfhi $t2", a, b) == a % b


@settings(max_examples=25, deadline=None)
@given(u32, u32.filter(lambda value: value != 0))
def test_div_truncates_toward_zero(a, b):
    dividend, divisor = signed(a), signed(b)
    quotient = int(dividend / divisor)
    remainder = dividend - quotient * divisor
    assert run_binary_op("div $t0, $t1\nmflo $t2", a, b) == quotient & WORD
    assert run_binary_op("div $t0, $t1\nmfhi $t2", a, b) == remainder & WORD


@settings(max_examples=30, deadline=None)
@given(u32, st.integers(-0x8000, 0x7FFF))
def test_addiu_matches_python(a, imm):
    source = f"""
    main:
        lui $t0, {a >> 16:#x}
        ori $t0, $t0, {a & 0xFFFF:#x}
        addiu $t2, $t0, {imm}
        move $a0, $t2
        li $v0, 10
        syscall
    """
    result = Machine(Assembler().assemble(source)).run().exit_code
    assert result == (a + imm) & WORD


@settings(max_examples=20, deadline=None)
@given(u32)
def test_store_load_word_identity(value):
    source = f"""
    main:
        lui $t0, {value >> 16:#x}
        ori $t0, $t0, {value & 0xFFFF:#x}
        la  $t1, slot
        sw  $t0, 0($t1)
        lw  $a0, 0($t1)
        li  $v0, 10
        syscall
    .data
    slot: .space 4
    """
    assert Machine(Assembler().assemble(source)).run().exit_code == value
