"""Tests for the workload suite and the synthetic code generator."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.isa import Assembler
from repro.isa.decoding import decode_program
from repro.machine import Machine
from repro.workloads import (
    FIGURE5_PROGRAMS,
    SIMULATION_PROGRAMS,
    load,
    load_figure5_corpus,
)
from repro.workloads.codegen import (
    CodeGenerator,
    FP_PERSONALITY,
    FPPPP_PERSONALITY,
    INTEGER_PERSONALITY,
)
from repro.workloads.kernels.livermore import expected_exit
from repro.workloads.kernels.matrix import expected_checksum
from repro.workloads.rng import rng_for, seed_for, weighted_choice
from repro.workloads.suite import available_workloads


class TestRng:
    def test_seed_is_stable(self):
        assert seed_for("espresso") == seed_for("espresso")

    def test_seed_differs_across_names(self):
        assert seed_for("espresso") != seed_for("spim")

    def test_rng_reproducible(self):
        assert rng_for("x").random() == rng_for("x").random()

    def test_weighted_choice_respects_zero_weight(self):
        rng = rng_for("w")
        weights = {"a": 0.0, "b": 1.0}
        assert all(weighted_choice(rng, weights) == "b" for _ in range(50))


class TestCodeGenerator:
    def test_static_program_exact_size(self):
        source = CodeGenerator("gen-test").static_program(8192)
        program = Assembler().assemble(source)
        assert program.size == 8192

    def test_static_program_decodes_entirely(self):
        source = CodeGenerator("gen-test2").static_program(4096)
        program = Assembler().assemble(source)
        decode_program(program.text)  # every word must be a valid instruction

    def test_deterministic_output(self):
        first = CodeGenerator("same-seed").static_program(2048)
        second = CodeGenerator("same-seed").static_program(2048)
        assert first == second

    def test_different_names_differ(self):
        a = CodeGenerator("name-a").static_program(2048)
        b = CodeGenerator("name-b").static_program(2048)
        assert a != b

    def test_personalities_change_instruction_mix(self):
        integer = Assembler().assemble(CodeGenerator("mix", INTEGER_PERSONALITY).static_program(16384))
        fp = Assembler().assemble(CodeGenerator("mix", FP_PERSONALITY).static_program(16384))
        fp_count = lambda prog: sum(  # noqa: E731
            1 for i in prog.instructions if i.spec.is_fp
        )
        assert fp_count(fp) > 2 * fp_count(integer)

    def test_fpppp_personality_floods_constants(self):
        normal = Assembler().assemble(CodeGenerator("c", INTEGER_PERSONALITY).static_program(16384))
        wild = Assembler().assemble(CodeGenerator("c", FPPPP_PERSONALITY).static_program(16384))
        lui_count = lambda prog: sum(  # noqa: E731
            1 for i in prog.instructions if i.mnemonic == "lui"
        )
        assert lui_count(wild) > 2 * lui_count(normal)

    def test_pool_program_requires_power_of_two(self):
        with pytest.raises(ValueError):
            CodeGenerator("p").pool_program(functions=48)

    def test_pool_program_executes_to_completion(self):
        source = CodeGenerator("pool-test").pool_program(functions=8, iterations=50)
        result = Machine(Assembler().assemble(source)).run(max_instructions=1_000_000)
        assert result.exit_code == 0
        assert result.instructions_executed > 50

    def test_straightline_program_executes(self):
        source = CodeGenerator("fp-test", FPPPP_PERSONALITY).straightline_fp_program(
            block_words=100, iterations=5
        )
        result = Machine(Assembler().assemble(source)).run(max_instructions=500_000)
        assert result.exit_code == 0

    def test_padding_reaches_target(self):
        source = CodeGenerator("pad-test").pool_program(
            functions=8, iterations=10, static_pad_bytes=65536
        )
        assert Assembler().assemble(source).size == 65536


class TestSuite:
    def test_figure5_corpus_sizes_match_paper(self):
        corpus = load_figure5_corpus()
        expected = {
            "tex": 53172,
            "pswarp": 61364,
            "yacc": 49076,
            "who": 65940,
            "eightq": 4020,
            "matrix25a": 36768,  # paper says 36766; word aligned here
            "lloop01": 4020,
            "xlisp": 65940,
            "espresso": 176052,
            "spim": 147360,
        }
        assert {name: len(text) for name, text in corpus.items()} == expected

    def test_corpus_order_matches_figure(self):
        assert list(load_figure5_corpus()) == list(FIGURE5_PROGRAMS)

    def test_unknown_workload_rejected(self):
        with pytest.raises(ConfigurationError):
            load("doom")

    def test_static_workload_refuses_to_run(self):
        with pytest.raises(ConfigurationError):
            load("tex").run()

    def test_load_is_cached(self):
        assert load("eightq") is load("eightq")

    def test_available_workloads_superset(self):
        names = available_workloads()
        assert set(FIGURE5_PROGRAMS) <= set(names)
        assert set(SIMULATION_PROGRAMS) <= set(names)

    @pytest.mark.parametrize("name", SIMULATION_PROGRAMS)
    def test_simulation_programs_execute(self, name):
        result = load(name).run()
        assert result.instructions_executed > 10_000
        assert len(result.trace) == result.instructions_executed

    def test_eightq_finds_92_solutions(self):
        assert load("eightq").run().exit_code == 92

    def test_matrix25a_checksum(self):
        assert load("matrix25a").run().exit_code == expected_checksum() & 0xFFFFFFFF

    def test_lloop01_result(self):
        assert load("lloop01").run().exit_code == expected_exit() & 0xFFFFFFFF

    def test_fpppp_thrashes_small_caches_and_fits_2k(self):
        from repro.cache import simulate_trace

        trace = load("fpppp").run().trace.addresses
        small = simulate_trace(trace, 1024).miss_rate
        large = simulate_trace(trace, 2048).miss_rate
        assert small > 0.05
        assert large < 0.01  # the paper's cliff between 1 KB and 2 KB

    def test_espresso_miss_rate_declines_slowly(self):
        from repro.cache import simulate_trace

        trace = load("espresso").run().trace.addresses
        rates = [simulate_trace(trace, size).miss_rate for size in (256, 1024, 4096)]
        assert rates[0] > rates[1] > rates[2] > 0.01

    def test_traces_stay_inside_text_segment(self):
        result = load("eightq").run()
        assert int(result.trace.addresses.max()) < load("eightq").size


class TestExtraValidationWorkloads:
    """Real algorithms with independently computed expected results."""

    def test_qsort_fully_sorts(self):
        result = load("qsort").run()
        assert result.exit_code == 255  # all 255 adjacent pairs ordered

    def test_crc32_matches_zlib(self):
        from repro.workloads.kernels.extra import crc32_expected

        result = load("crc32").run()
        assert result.exit_code == crc32_expected()

    def test_fib_20(self):
        result = load("fib").run()
        assert result.exit_code == 6765

    def test_extras_compress_and_round_trip(self):
        from repro.ccrp import ProgramCompressor
        from repro.core.standard import standard_code

        compressor = ProgramCompressor(standard_code())
        for name in ("qsort", "crc32", "fib"):
            text = load(name).text
            image = compressor.compress(text)
            restored = compressor.block_compressor.decompress_program(list(image.blocks))
            assert restored[: len(text)] == text
            assert image.compression_ratio < 0.9
