"""Equivalence suites for the vectorized memory-system timeline.

Every array kernel in this PR keeps its scalar predecessor as a golden
reference; these tests pin them together:

* stack-distance miss curves vs the stateful :class:`repro.ccrp.clb.CLB`
  (all capacities, dense and merge-count paths, chunk seams);
* :meth:`DecoderModel.refill_cycles_table` vs the per-block
  :meth:`DecoderModel.refill_cycles` loop (three memories, both fidelity
  levels, swept decode rates, widened buses);
* the exact-integer detailed recurrence vs the old float-accumulation
  formula it replaced;
* :meth:`HuffmanCode.decode_lines` vs :meth:`HuffmanCode.decode_fast`
  (byte identity, error-message identity, bypass, truncation, the
  ``errors="none"`` protocol, and the >16-bit-code scalar fallback);
* the study/cache wiring: ``clb_miss_counts``, the
  ``CCRP_MEMSYS_REFERENCE`` escape hatch, the batch refill path of
  :class:`ExpandingInstructionCache`, and the single-serialization
  guarantee.
"""

from __future__ import annotations

import random

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

import repro.ccrp.stackdist as stackdist
from repro.ccrp.clb import CLB
from repro.ccrp.compressor import ProgramCompressor
from repro.ccrp.decoder import DecoderModel
from repro.ccrp.expanding_cache import ExpandingInstructionCache
from repro.ccrp.refill import RefillEngine
from repro.ccrp.stackdist import lru_miss_count, lru_miss_curve, stack_distances
from repro.compression.block import BlockCompressor, build_block_arrays
from repro.compression.histogram import byte_histogram
from repro.compression.huffman import HuffmanCode
from repro.errors import CompressionError
from repro.memsys import BURST_EPROM, EPROM, SC_DRAM, MemoryModel


def make_code(data: bytes) -> HuffmanCode:
    return HuffmanCode.from_frequencies(
        byte_histogram(data), max_length=16, cover_all_symbols=True
    )


def sample_text(lines: int = 40, seed: int = 30) -> bytes:
    rng = random.Random(seed)
    # Skewed byte distribution, like machine code.
    return bytes(rng.choices(range(256), weights=[400] + [4] * 63 + [1] * 192, k=lines * 32))


def reference_distances(probes: list[int]) -> list[int]:
    """Textbook LRU stack walk (0 = cold)."""
    stack: list[int] = []
    out = []
    for probe in probes:
        if probe in stack:
            depth = stack.index(probe) + 1
            stack.remove(probe)
        else:
            depth = 0
        stack.insert(0, probe)
        out.append(depth)
    return out


# ----------------------------------------------------------------------
# Stack distances vs the stateful CLB
# ----------------------------------------------------------------------


class TestStackDistances:
    @given(
        probes=st.lists(st.integers(min_value=0, max_value=30), max_size=300),
    )
    @settings(max_examples=60, deadline=None)
    def test_distances_match_reference_walk(self, probes):
        got = stack_distances(np.array(probes, dtype=np.int64))
        assert got.tolist() == reference_distances(probes)

    @given(
        probes=st.lists(st.integers(min_value=-(2**40), max_value=2**40), max_size=120),
    )
    @settings(max_examples=40, deadline=None)
    def test_arbitrary_values_match_reference_walk(self, probes):
        got = stack_distances(np.array(probes, dtype=np.int64))
        assert got.tolist() == reference_distances(probes)

    @given(
        seed=st.integers(min_value=0, max_value=2**32 - 1),
        alphabet=st.sampled_from([1, 2, 3, 40, 127, 128, 129, 200]),
        length=st.integers(min_value=0, max_value=600),
        capacity=st.integers(min_value=1, max_value=40),
    )
    @settings(max_examples=60, deadline=None)
    def test_curve_matches_stateful_clb(self, seed, alphabet, length, capacity):
        rng = random.Random(seed)
        probes = [rng.randrange(alphabet) for _ in range(length)]
        curve = lru_miss_curve(np.array(probes, dtype=np.int64))
        reference = CLB(entries=capacity).simulate(probes)
        assert lru_miss_count(curve, capacity) == reference

    def test_merge_count_path_matches_clb(self):
        # > _DENSE_ALPHABET_LIMIT distinct values forces the merge path.
        rng = random.Random(5)
        probes = [rng.randrange(400) for _ in range(5000)]
        curve = lru_miss_curve(np.array(probes, dtype=np.int64))
        for capacity in (1, 4, 16, 64, 300, 500):
            assert lru_miss_count(curve, capacity) == CLB(entries=capacity).simulate(probes)

    def test_chunk_seams_preserve_distances(self, monkeypatch):
        monkeypatch.setattr(stackdist, "_DENSE_CHUNK_CELLS", 64)
        monkeypatch.setattr(stackdist, "_SCALAR_LIMIT", 0)
        rng = random.Random(11)
        probes = [rng.randrange(7) for _ in range(1000)]
        got = stack_distances(np.array(probes, dtype=np.int64))
        assert got.tolist() == reference_distances(probes)

    def test_empty_and_degenerate_streams(self):
        assert stack_distances(np.array([], dtype=np.int64)).size == 0
        assert lru_miss_curve(np.array([], dtype=np.int64)).tolist() == [0]
        # A lone cold miss persists at every capacity.
        assert lru_miss_curve(np.array([9], dtype=np.int64)).tolist() == [1]
        assert lru_miss_count(lru_miss_curve(np.array([9], dtype=np.int64)), 64) == 1

    def test_two_dimensional_probes_rejected(self):
        with pytest.raises(ValueError):
            stack_distances(np.zeros((2, 2), dtype=np.int64))

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            lru_miss_count(np.array([3, 1]), -1)


class TestRandomPolicyEviction:
    def test_random_victim_stream_matches_materialised_choice(self):
        """The islice walk must consume the RNG exactly like the old
        ``random.choice(list(lru))`` implementation."""

        class OldCLB(CLB):
            def access(self, lat_index: int) -> bool:  # old eviction, verbatim
                lru = self._lru
                if lat_index in lru:
                    self.hits += 1
                    return True
                self.misses += 1
                if len(lru) >= self.entries:
                    victim = self._rng.choice(list(lru))
                    del lru[victim]
                lru[lat_index] = None
                return False

        rng = random.Random(77)
        probes = [rng.randrange(12) for _ in range(3000)]
        new = CLB(entries=4, policy="random")
        old = OldCLB(entries=4, policy="random")
        assert new.simulate(probes) == old.simulate(probes)
        assert list(new._lru) == list(old._lru)


# ----------------------------------------------------------------------
# Refill tables vs the per-block loop
# ----------------------------------------------------------------------

WIDE_EPROM = MemoryModel("eprom64", 3, 3, bus_bytes=8)
MEMORIES = (EPROM, BURST_EPROM, SC_DRAM, WIDE_EPROM)


class TestRefillTables:
    @pytest.fixture(scope="class")
    def image(self):
        text = sample_text(lines=60, seed=8)
        return ProgramCompressor(make_code(text)).compress(text)

    @pytest.mark.parametrize("memory", MEMORIES, ids=lambda m: m.name)
    @pytest.mark.parametrize("detailed", (False, True), ids=("paper", "detailed"))
    @pytest.mark.parametrize("rate", (1, 2, 3, 4))
    def test_table_matches_per_block_loop(self, image, memory, detailed, rate):
        decoder = DecoderModel(bytes_per_cycle=rate, detailed=detailed)
        arrays = image.block_arrays()
        assert arrays is not None
        table = decoder.refill_cycles_table(arrays, memory)
        expected = [decoder.refill_cycles(block, memory) for block in image.blocks]
        assert table.tolist() == expected

    @pytest.mark.parametrize("memory", MEMORIES, ids=lambda m: m.name)
    def test_engine_arms_build_identical_tables(self, image, memory):
        decoder = DecoderModel(detailed=True)
        reference = RefillEngine(image, memory, decoder, vectorized=False)
        vectorized = RefillEngine(image, memory, decoder, vectorized=True)
        assert np.array_equal(reference.ccrp_refill_cycles, vectorized.ccrp_refill_cycles)
        assert np.array_equal(
            reference.fetched_bytes_per_line, vectorized.fetched_bytes_per_line
        )

    def test_reference_env_forces_scalar_build(self, image, monkeypatch):
        monkeypatch.setenv("CCRP_MEMSYS_REFERENCE", "1")
        forced = RefillEngine(image, EPROM)
        monkeypatch.delenv("CCRP_MEMSYS_REFERENCE")
        default = RefillEngine(image, EPROM)
        assert np.array_equal(forced.ccrp_refill_cycles, default.ccrp_refill_cycles)


class TestDetailedIntegerArithmetic:
    """The integer recurrence must agree with the old float formula."""

    @staticmethod
    def float_reference(symbol_bits, arrivals, rate) -> int:
        import math

        finished = 0.0
        bits_consumed = 0
        for bits in symbol_bits:
            bits_consumed += bits
            input_byte = -(-bits_consumed // 8)
            available = arrivals[input_byte - 1]
            finished = max(finished, float(available)) + 1.0 / rate
        return math.ceil(finished - 1e-9)

    @given(
        lengths=st.lists(st.integers(min_value=1, max_value=16), min_size=1, max_size=32),
        rate=st.integers(min_value=1, max_value=4),
        memory=st.sampled_from(MEMORIES),
    )
    @settings(max_examples=120, deadline=None)
    def test_integer_decode_done_matches_float(self, lengths, rate, memory):
        total_bytes = -(-sum(lengths) // 8)
        arrivals = memory.byte_arrival_times(total_bytes)
        finished_steps = 0
        bits_consumed = 0
        for bits in lengths:
            bits_consumed += bits
            input_byte = -(-bits_consumed // 8)
            finished_steps = max(finished_steps, arrivals[input_byte - 1] * rate) + 1
        integer = -(-finished_steps // rate)
        assert integer == self.float_reference(lengths, arrivals, rate)


# ----------------------------------------------------------------------
# Batch line decode vs decode_fast
# ----------------------------------------------------------------------


class TestDecodeLines:
    @pytest.fixture(scope="class")
    def code_and_blobs(self):
        text = sample_text(lines=50, seed=3)
        code = make_code(text)
        compressor = BlockCompressor(code)
        blocks = compressor.compress_program(text)
        blobs = [block.data for block in blocks if block.is_compressed]
        assert blobs, "sample corpus must compress"
        return code, blobs, blocks

    def test_byte_identity_with_decode_fast(self, code_and_blobs):
        code, blobs, _ = code_and_blobs
        assert code.decode_lines(blobs, 32) == [code.decode_fast(b, 32) for b in blobs]

    def test_decompress_program_round_trips_through_batch(self, code_and_blobs):
        code, _, blocks = code_and_blobs
        text = sample_text(lines=50, seed=3)
        assert BlockCompressor(code).decompress_program(blocks) == text

    def test_truncated_blob_message_matches_decode_fast(self, code_and_blobs):
        code, blobs, _ = code_and_blobs
        truncated = blobs[0][:1]
        with pytest.raises(CompressionError) as scalar:
            code.decode_fast(truncated, 32)
        with pytest.raises(CompressionError) as batch:
            code.decode_lines([truncated], 32)
        assert str(batch.value) == str(scalar.value)

    def test_garbage_blobs_classify_like_decode_fast(self, code_and_blobs):
        code, blobs, _ = code_and_blobs
        rng = random.Random(123)
        for _ in range(40):
            garbage = bytes(rng.randrange(256) for _ in range(rng.randrange(1, 20)))
            try:
                expected = code.decode_fast(garbage, 32)
            except CompressionError as error:
                with pytest.raises(CompressionError) as batch:
                    code.decode_lines([garbage], 32)
                assert str(batch.value) == str(error)
            else:
                assert code.decode_lines([garbage], 32) == [expected]

    def test_errors_none_yields_none_slots(self, code_and_blobs):
        code, blobs, _ = code_and_blobs
        mixed = [blobs[0], blobs[0][:1], blobs[1]]
        out = code.decode_lines(mixed, 32, errors="none")
        assert out[0] == code.decode_fast(blobs[0], 32)
        assert out[1] is None
        assert out[2] == code.decode_fast(blobs[1], 32)

    def test_invalid_errors_mode_rejected(self, code_and_blobs):
        code, blobs, _ = code_and_blobs
        with pytest.raises(CompressionError):
            code.decode_lines(blobs, 32, errors="ignore")

    def test_empty_inputs(self, code_and_blobs):
        code, blobs, _ = code_and_blobs
        assert code.decode_lines([], 32) == []
        assert code.decode_lines([blobs[0]], 0) == [b""]

    def test_long_code_fallback_matches_scalar(self):
        # Fibonacci frequencies build a maximally lopsided Huffman tree,
        # pushing the rarest codes past the 16-bit window limit and
        # forcing the scalar fallback path.
        frequencies = [0] * 256
        frequencies[0], frequencies[1] = 1, 1
        for symbol in range(2, 28):
            frequencies[symbol] = frequencies[symbol - 1] + frequencies[symbol - 2]
        code = HuffmanCode.from_frequencies(
            frequencies, max_length=None, cover_all_symbols=True
        )
        assert code.max_length > 16
        rng = random.Random(9)
        text = bytes(rng.choices(range(28), weights=frequencies[:28], k=12 * 32))
        blocks = BlockCompressor(code).compress_program(text)
        blobs = [block.data for block in blocks if block.is_compressed]
        assert code.decode_lines(blobs, 32) == [code.decode_fast(b, 32) for b in blobs]

    @given(seed=st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=20, deadline=None)
    def test_random_corpora_round_trip(self, seed):
        rng = random.Random(seed)
        text = bytes(
            rng.choices(range(256), weights=[300] + [3] * 127 + [1] * 128, k=12 * 32)
        )
        code = make_code(text)
        blocks = BlockCompressor(code).compress_program(text)
        blobs = [block.data for block in blocks if block.is_compressed]
        if blobs:
            assert code.decode_lines(blobs, 32) == [code.decode_fast(b, 32) for b in blobs]


# ----------------------------------------------------------------------
# Image plumbing and the functional cache
# ----------------------------------------------------------------------


class TestImageBatchPlumbing:
    @pytest.fixture(scope="class")
    def image(self):
        text = sample_text(lines=48, seed=21)
        return ProgramCompressor(make_code(text)).compress(text)

    def test_memory_image_is_memoised(self, image):
        assert image.memory_image() is image.memory_image()

    def test_block_arrays_match_blocks(self, image):
        arrays = image.block_arrays()
        assert arrays is not None
        assert arrays.stored_sizes.tolist() == [b.stored_size for b in image.blocks]
        assert arrays.compressed.tolist() == [b.is_compressed for b in image.blocks]
        rows = iter(arrays.symbol_bits)
        for block in image.blocks:
            if block.is_compressed:
                assert next(rows).tolist() == list(block.symbol_bits)

    def test_expanded_lines_match_scalar_decode(self, image):
        lines = image.expanded_lines()
        for block, line in zip(image.blocks, lines):
            if block.is_compressed:
                assert line == image.code.decode_fast(block.data, image.line_size)
            else:
                assert line == block.data

    def test_build_block_arrays_rejects_missing_symbol_bits(self, image):
        blocks = list(image.blocks)
        stripped = [
            type(b)(
                data=b.data,
                is_compressed=b.is_compressed,
                bit_length=b.bit_length,
                symbol_bits=None,
            )
            if b.is_compressed
            else b
            for b in blocks
        ]
        assert build_block_arrays(stripped, image.line_size) is None

    def test_pickle_drops_lazy_caches(self, image):
        import pickle

        image.memory_image()
        image.expanded_lines()
        image.block_arrays()
        revived = pickle.loads(pickle.dumps(image))
        assert not any(key.endswith("_cache") for key in revived.__dict__)
        assert revived.memory_image() == image.memory_image()


class TestStudyWiring:
    """The grid-facing API: curves, counts, and the reference escape hatch."""

    @pytest.fixture(scope="class")
    def study(self):
        from repro.core.artifacts import get_study

        return get_study("eightq", max_instructions=1_000_000)

    def test_clb_miss_counts_pin_to_stateful_clb(self, study):
        from repro.lat.entry import LINES_PER_ENTRY

        stream = study.cache_stats(512).miss_lines // LINES_PER_ENTRY
        counts = study.clb_miss_counts(512)
        for entries in (1, 2, 4, 8, 16):
            expected = CLB(entries=entries).simulate(stream)
            assert counts[min(entries, max(counts))] == expected
            assert study.clb_miss_count(512, entries) == expected

    def test_reference_env_matches_vectorized_metrics(self, study, monkeypatch):
        from repro.core.config import SystemConfig

        config = SystemConfig(cache_bytes=512, memory="eprom", clb_entries=8)
        vectorized = study.metrics(config)
        monkeypatch.setenv("CCRP_MEMSYS_REFERENCE", "1")
        study._engines.clear()  # cached engines were built vectorized
        reference = study.metrics(config)
        assert reference == vectorized


class TestExpandingCacheBatchPath:
    @pytest.fixture(scope="class")
    def image(self):
        text = sample_text(lines=48, seed=4)
        return ProgramCompressor(make_code(text)).compress(text, text_base=0)

    def test_batch_and_scalar_paths_fetch_identical_lines(self, image):
        batch = ExpandingInstructionCache(image, cache_bytes=256)
        # Passing the serialised image explicitly disables the batch path.
        scalar = ExpandingInstructionCache(
            image, cache_bytes=256, memory_image=image.memory_image()
        )
        assert batch._use_batch and not scalar._use_batch
        for line in range(image.line_count):
            address = line * image.line_size
            assert batch.read_line(address) == scalar.read_line(address)

    def test_reference_env_disables_batch_path(self, image, monkeypatch):
        monkeypatch.setenv("CCRP_MEMSYS_REFERENCE", "yes")
        cache = ExpandingInstructionCache(image, cache_bytes=256)
        assert not cache._use_batch
        assert cache.read_line(0) == image.expanded_lines()[image.line_index(0)]

    def test_init_serialises_at_most_once(self, image, monkeypatch):
        import repro.ccrp.image as image_module

        fresh = ProgramCompressor(make_code(sample_text(lines=8, seed=5))).compress(
            sample_text(lines=8, seed=5)
        )
        calls = {"count": 0}
        original = image_module.CompressedImage.memory_image

        def counting(self):
            calls["count"] += 1
            return original(self)

        monkeypatch.setattr(image_module.CompressedImage, "memory_image", counting)
        ExpandingInstructionCache(fresh, cache_bytes=256)
        assert calls["count"] == 1
