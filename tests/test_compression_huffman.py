"""Tests for bitstream I/O and the Huffman code family."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import CompressionError
from repro.compression.bitstream import BitReader, BitWriter
from repro.compression.histogram import byte_histogram, corpus_histogram, merge_histograms
from repro.compression.huffman import HuffmanCode
from repro.compression.preselected import build_preselected_code


class TestBitstream:
    def test_write_read_single_bits(self):
        writer = BitWriter()
        for bit in (1, 0, 1, 1, 0):
            writer.write(bit, 1)
        reader = BitReader(writer.getvalue())
        assert [reader.read_bit() for _ in range(5)] == [1, 0, 1, 1, 0]

    def test_multibit_codes_msb_first(self):
        writer = BitWriter()
        writer.write(0b101, 3)
        writer.write(0b01, 2)
        assert writer.getvalue() == bytes([0b10101000])

    def test_bit_length_tracks_exactly(self):
        writer = BitWriter()
        writer.write(0x7, 3)
        writer.write(0x1FF, 9)
        assert writer.bit_length == 12

    def test_cross_byte_boundary(self):
        writer = BitWriter()
        writer.write(0xABC, 12)
        writer.write(0xDE, 8)
        reader = BitReader(writer.getvalue())
        assert reader.read(12) == 0xABC
        assert reader.read(8) == 0xDE

    def test_code_wider_than_value_rejected(self):
        with pytest.raises(CompressionError):
            BitWriter().write(0b100, 2)

    def test_zero_length_rejected(self):
        with pytest.raises(CompressionError):
            BitWriter().write(0, 0)

    def test_reading_past_end_raises(self):
        reader = BitReader(b"\xff")
        reader.read(8)
        with pytest.raises(CompressionError):
            reader.read_bit()

    def test_remaining_and_position(self):
        reader = BitReader(b"\x00\x00")
        reader.read(5)
        assert reader.position == 5
        assert reader.remaining == 11

    @given(st.lists(st.tuples(st.integers(1, 24), st.data()), min_size=1, max_size=50))
    def test_round_trip_random_codes(self, raw):
        pairs = []
        writer = BitWriter()
        for length, data in raw:
            value = data.draw(st.integers(0, (1 << length) - 1))
            pairs.append((value, length))
            writer.write(value, length)
        reader = BitReader(writer.getvalue())
        for value, length in pairs:
            assert reader.read(length) == value


class TestHistogram:
    def test_byte_histogram_counts(self):
        histogram = byte_histogram(b"\x00\x00\x01\xff")
        assert histogram[0] == 2
        assert histogram[1] == 1
        assert histogram[255] == 1
        assert sum(histogram) == 4

    def test_merge(self):
        merged = merge_histograms([byte_histogram(b"\x00"), byte_histogram(b"\x00\x01")])
        assert merged[0] == 2 and merged[1] == 1

    def test_merge_rejects_wrong_shape(self):
        with pytest.raises(ValueError):
            merge_histograms([[1, 2, 3]])

    def test_corpus_histogram(self):
        histogram = corpus_histogram([b"\x10", b"\x10\x20"])
        assert histogram[0x10] == 2 and histogram[0x20] == 1


class TestTraditionalHuffman:
    def test_two_symbols_get_one_bit_each(self):
        frequencies = [0] * 256
        frequencies[65], frequencies[66] = 10, 3
        code = HuffmanCode.from_frequencies(frequencies)
        assert code.lengths[65] == 1 and code.lengths[66] == 1

    def test_skewed_distribution_gives_short_code_to_common_symbol(self):
        frequencies = [0] * 256
        frequencies[0] = 1000
        for symbol in range(1, 17):
            frequencies[symbol] = 1
        code = HuffmanCode.from_frequencies(frequencies)
        assert code.lengths[0] == 1
        assert all(code.lengths[s] > 1 for s in range(1, 17))

    def test_single_symbol_gets_length_one(self):
        frequencies = [0] * 256
        frequencies[7] = 42
        code = HuffmanCode.from_frequencies(frequencies)
        assert code.lengths[7] == 1

    def test_empty_histogram_rejected(self):
        with pytest.raises(CompressionError):
            HuffmanCode.from_frequencies([0] * 256)

    def test_negative_frequency_rejected(self):
        frequencies = [0] * 256
        frequencies[0] = -1
        with pytest.raises(CompressionError):
            HuffmanCode.from_frequencies(frequencies)

    def test_kraft_equality_for_full_tree(self):
        data = bytes(random.Random(1).randbytes(4096))
        code = HuffmanCode.from_frequencies(byte_histogram(data))
        kraft = sum(2.0 ** -l for l in code.lengths if l)
        assert kraft == pytest.approx(1.0)

    def test_round_trip(self):
        data = b"the quick brown fox jumps over the lazy dog" * 10
        code = HuffmanCode.from_frequencies(byte_histogram(data))
        blob, bits = code.encode(data)
        assert len(blob) == (bits + 7) // 8
        assert code.decode(blob, len(data)) == data

    def test_encoding_unknown_symbol_raises(self):
        frequencies = [0] * 256
        frequencies[65] = 1
        frequencies[66] = 1
        code = HuffmanCode.from_frequencies(frequencies)
        with pytest.raises(CompressionError):
            code.encode(b"C")

    def test_optimality_beats_fixed_width(self):
        # Huffman on skewed data must beat the 8-bit fixed encoding.
        data = b"\x00" * 900 + bytes(range(100))
        code = HuffmanCode.from_frequencies(byte_histogram(data))
        assert code.encoded_bit_length(data) < 8 * len(data)

    def test_matches_entropy_bound(self):
        import math

        data = bytes(random.Random(2).choices(range(8), weights=[64, 32, 16, 8, 4, 2, 1, 1], k=8192))
        histogram = byte_histogram(data)
        code = HuffmanCode.from_frequencies(histogram)
        entropy_bits = -sum(
            count * math.log2(count / len(data)) for count in histogram if count
        )
        encoded_bits = code.encoded_bit_length(data)
        assert entropy_bits <= encoded_bits <= entropy_bits + len(data)  # within 1 bit/symbol


class TestBoundedHuffman:
    def test_respects_length_bound(self):
        # Fibonacci-like frequencies force very skewed traditional codes.
        frequencies = [0] * 256
        a, b = 1, 1
        for symbol in range(30):
            frequencies[symbol] = a
            a, b = b, a + b
        traditional = HuffmanCode.from_frequencies(frequencies)
        bounded = HuffmanCode.from_frequencies(frequencies, max_length=16)
        assert traditional.max_length > 16
        assert bounded.max_length <= 16

    def test_bound_costs_little(self):
        data = bytes(random.Random(3).randbytes(8192))
        histogram = byte_histogram(data)
        traditional = HuffmanCode.from_frequencies(histogram)
        bounded = HuffmanCode.from_frequencies(histogram, max_length=16)
        cost = bounded.encoded_bit_length(data) / traditional.encoded_bit_length(data)
        assert 1.0 <= cost < 1.05

    def test_matches_traditional_when_bound_is_loose(self):
        frequencies = [0] * 256
        for symbol in range(16):
            frequencies[symbol] = 5  # uniform: all lengths 4
        traditional = HuffmanCode.from_frequencies(frequencies)
        bounded = HuffmanCode.from_frequencies(frequencies, max_length=16)
        assert traditional.lengths == bounded.lengths

    def test_kraft_satisfied(self):
        frequencies = [0] * 256
        a, b = 1, 1
        for symbol in range(40):
            frequencies[symbol] = a
            a, b = b, a + b if a + b < 10**9 else a
        bounded = HuffmanCode.from_frequencies(frequencies, max_length=12)
        kraft = sum(2.0 ** -l for l in bounded.lengths if l)
        assert kraft <= 1.0 + 1e-12

    def test_round_trip_bounded(self):
        data = bytes(random.Random(4).randbytes(2048))
        code = HuffmanCode.from_frequencies(byte_histogram(data), max_length=16)
        blob, _ = code.encode(data)
        assert code.decode(blob, len(data)) == data

    def test_impossible_bound_rejected(self):
        frequencies = [1] * 256
        with pytest.raises(CompressionError):
            HuffmanCode.from_frequencies(frequencies, max_length=7)

    def test_bound_exactly_feasible(self):
        frequencies = [1] * 256
        code = HuffmanCode.from_frequencies(frequencies, max_length=8)
        assert all(length == 8 for length in code.lengths)

    @settings(max_examples=25, deadline=None)
    @given(st.binary(min_size=2, max_size=512), st.integers(10, 16))
    def test_property_round_trip_and_bound(self, data, max_length):
        code = HuffmanCode.from_frequencies(byte_histogram(data), max_length=max_length)
        assert code.max_length <= max_length
        blob, bits = code.encode(data)
        assert code.decode(blob, len(data)) == data
        assert bits == code.encoded_bit_length(data)


class TestPreselectedCode:
    def test_covers_all_symbols(self):
        code = build_preselected_code([b"\x00\x01\x02" * 100])
        assert all(length > 0 for length in code.lengths)
        assert code.max_length <= 16

    def test_encodes_bytes_outside_corpus(self):
        code = build_preselected_code([b"\x00" * 64])
        blob, _ = code.encode(b"\xde\xad\xbe\xef")
        assert code.decode(blob, 4) == b"\xde\xad\xbe\xef"

    def test_common_corpus_bytes_get_short_codes(self):
        corpus = [b"\x00" * 1000 + bytes(range(256))]
        code = build_preselected_code(corpus)
        assert code.lengths[0] < code.lengths[0xAB]


class TestCanonicalCodes:
    def test_canonical_ordering(self):
        frequencies = [0] * 256
        frequencies[10], frequencies[20], frequencies[30] = 8, 4, 4
        code = HuffmanCode.from_frequencies(frequencies)
        # Same-length codes must be ordered by symbol.
        assert code.codes[20] < code.codes[30]
        assert code.lengths[20] == code.lengths[30]

    def test_from_lengths_round_trip(self):
        frequencies = [0] * 256
        for symbol in range(12):
            frequencies[symbol] = 1 + symbol * symbol
        original = HuffmanCode.from_frequencies(frequencies, max_length=16)
        rebuilt = HuffmanCode.from_lengths(list(original.lengths))
        assert rebuilt == original

    def test_from_lengths_rejects_kraft_violation(self):
        lengths = [1] * 3 + [0] * 253
        with pytest.raises(CompressionError):
            HuffmanCode.from_lengths(lengths)

    def test_table_storage_bytes(self):
        frequencies = [0] * 256
        frequencies[0] = frequencies[1] = 1
        assert HuffmanCode.from_frequencies(frequencies).table_storage_bytes == 256

    def test_prefix_free(self):
        data = bytes(random.Random(5).randbytes(4096))
        code = HuffmanCode.from_frequencies(byte_histogram(data), max_length=16)
        words = [
            (code.lengths[s], code.codes[s]) for s in range(256) if code.lengths[s]
        ]
        for length_a, code_a in words:
            for length_b, code_b in words:
                if (length_a, code_a) == (length_b, code_b):
                    continue
                if length_a <= length_b:
                    assert code_b >> (length_b - length_a) != code_a

    def test_symbol_bit_lengths(self):
        frequencies = [0] * 256
        frequencies[65], frequencies[66] = 3, 1
        code = HuffmanCode.from_frequencies(frequencies)
        assert code.symbol_bit_lengths(b"AAB") == [1, 1, 1]

    def test_decode_invalid_stream_raises(self):
        frequencies = [0] * 256
        frequencies[0], frequencies[1] = 1, 1  # codes: 0 and 1, both length 1
        code = HuffmanCode.from_frequencies(frequencies)
        # Any bit decodes, so ask for more symbols than the stream holds.
        with pytest.raises(CompressionError):
            code.decode(b"", 1)


class TestFastDecoder:
    """decode_fast must be byte-identical to the bit-by-bit decoder."""

    def _random_code(self, seed: int, max_length: int | None = 16) -> HuffmanCode:
        data = bytes(random.Random(seed).randbytes(4096))
        return HuffmanCode.from_frequencies(
            byte_histogram(data), max_length=max_length, cover_all_symbols=True
        )

    def test_matches_reference_decoder(self):
        code = self._random_code(60)
        data = bytes(random.Random(61).randbytes(2000))
        blob, _ = code.encode(data)
        assert code.decode_fast(blob, len(data)) == code.decode(blob, len(data)) == data

    def test_handles_long_codes_past_fast_bits(self):
        # Fibonacci frequencies force codes longer than the 10-bit table.
        frequencies = [0] * 256
        a, b = 1, 1
        for symbol in range(24):
            frequencies[symbol] = a
            a, b = b, a + b
        code = HuffmanCode.from_frequencies(frequencies, max_length=16)
        assert code.max_length > 10
        data = bytes(range(24)) * 20
        blob, _ = code.encode(data)
        assert code.decode_fast(blob, len(data)) == data

    def test_exhausted_stream_raises(self):
        code = self._random_code(62)
        with pytest.raises(CompressionError):
            code.decode_fast(b"", 1)

    def test_short_final_symbol_at_stream_edge(self):
        # A single symbol padded into one byte must still decode.
        frequencies = [0] * 256
        frequencies[65], frequencies[66] = 3, 1
        code = HuffmanCode.from_frequencies(frequencies)
        blob, _ = code.encode(b"ABBA")
        assert code.decode_fast(blob, 4) == b"ABBA"

    @settings(max_examples=40, deadline=None)
    @given(st.binary(min_size=1, max_size=400), st.integers(0, 10_000))
    def test_property_equivalence(self, data, seed):
        code = self._random_code(seed)
        blob, _ = code.encode(data)
        assert code.decode_fast(blob, len(data)) == data

    def test_exhaustion_mid_accumulator_matches_reference(self):
        # A code whose every word is 9 bits: one blob byte leaves 8 bits
        # in the accumulator — fewer than any code word — so the fast
        # decoder must fail exactly like the bit-by-bit one, not emit a
        # phantom symbol from the partial accumulator.
        code = HuffmanCode.from_lengths([9] * 256)
        blob, _ = code.encode(bytes([1, 2]))
        assert code.decode_fast(blob, 2) == bytes([1, 2])
        with pytest.raises(CompressionError):
            code.decode_fast(blob[:1], 2)
        with pytest.raises(CompressionError):
            code.decode(blob[:1], 2)

    def test_truncated_stream_matches_reference(self):
        code = self._random_code(63)
        data = bytes(random.Random(64).randbytes(300))
        blob, _ = code.encode(data)
        truncated = blob[: len(blob) // 2]
        with pytest.raises(CompressionError):
            code.decode_fast(truncated, len(data))
        with pytest.raises(CompressionError):
            code.decode(truncated, len(data))

    def test_max_length_code_words_decode(self):
        # Exponential frequencies push the least-frequent symbols to the
        # 16-bit bound; those maximal words must decode through the
        # long-code fallback identically to the reference decoder.
        frequencies = [0] * 256
        for symbol in range(32):
            frequencies[symbol] = 1 << symbol
        code = HuffmanCode.from_frequencies(frequencies, max_length=16)
        assert code.max_length == 16
        maximal = [symbol for symbol in range(32) if code.lengths[symbol] == 16]
        assert maximal
        data = bytes(maximal) * 5 + bytes(range(32)) * 3 + bytes(maximal)
        blob, _ = code.encode(data)
        assert code.decode_fast(blob, len(data)) == code.decode(blob, len(data)) == data

    def test_bypass_blocks_skip_the_decoder_entirely(self):
        # Incompressible lines take the bypass path: stored verbatim with
        # no symbol timings; compressed lines must still round-trip
        # through both decoders.
        from repro.compression.block import BlockCompressor

        code = self._random_code(65)
        rng = random.Random(66)
        compressible = bytes(rng.choices(range(8), k=64))
        incompressible = bytes(rng.randbytes(32))
        blocks = BlockCompressor(code).compress_program(compressible + incompressible)
        assert any(not block.is_compressed for block in blocks)
        offset = 0
        for block in blocks:
            line = (compressible + incompressible)[offset : offset + 32]
            if block.is_compressed:
                assert code.decode_fast(block.data, len(line)) == line
                assert code.decode(block.data, len(line)) == line
            else:
                assert block.data == line
                assert block.symbol_bits is None
            offset += 32


class TestFastDecoderTableBoundary:
    """Code words at, just under, and just past the 10-bit probe table."""

    @pytest.mark.parametrize("length", [9, 10, 11])
    def test_uniform_lengths_around_fast_bits(self, length):
        assert HuffmanCode._FAST_BITS == 10
        code = HuffmanCode.from_lengths([length] * 256)
        data = bytes(range(256)) * 4
        blob, _ = code.encode(data)
        assert code.decode_fast(blob, len(data)) == code.decode(blob, len(data)) == data

    def test_code_straddling_fast_bits(self):
        # Half the symbols resolve in the probe table, half overflow to
        # the long-code fallback — exercised within the same stream.
        code = HuffmanCode.from_lengths([9] * 128 + [11] * 128)
        data = bytes(random.Random(77).randbytes(3000))
        blob, _ = code.encode(data)
        assert code.decode_fast(blob, len(data)) == code.decode(blob, len(data)) == data

    @settings(max_examples=25, deadline=None)
    @given(st.binary(min_size=1, max_size=200), st.sampled_from([9, 10, 11]))
    def test_property_boundary_round_trip(self, data, length):
        code = HuffmanCode.from_lengths([length] * 256)
        blob, _ = code.encode(data)
        assert code.decode_fast(blob, len(data)) == data


class TestVectorizedEncode:
    """The numpy bit-packer must be byte-identical to the BitWriter."""

    def _random_code(self, seed: int) -> HuffmanCode:
        data = bytes(random.Random(seed).randbytes(4096))
        return HuffmanCode.from_frequencies(
            byte_histogram(data), max_length=16, cover_all_symbols=True
        )

    @settings(max_examples=40, deadline=None)
    @given(st.binary(min_size=0, max_size=400), st.integers(0, 10_000))
    def test_property_matches_scalar(self, data, seed):
        code = self._random_code(seed)
        assert code.encode(data) == code._encode_scalar(data)

    def test_bit_length_agrees_across_queries(self):
        code = self._random_code(7)
        data = bytes(random.Random(8).randbytes(500))
        _, total_bits = code.encode(data)
        assert total_bits == code.encoded_bit_length(data)
        assert total_bits == sum(code.symbol_bit_lengths(data))

    def test_empty_input(self):
        code = self._random_code(9)
        assert code.encode(b"") == code._encode_scalar(b"") == (b"", 0)

    def test_uncodable_symbol_raises_in_both_paths(self):
        code = HuffmanCode.from_frequencies(
            byte_histogram(b"abcabcab"), cover_all_symbols=False
        )
        with pytest.raises(CompressionError):
            code.encode(b"abcZ")
        with pytest.raises(CompressionError):
            code._encode_scalar(b"abcZ")

    @settings(max_examples=20, deadline=None)
    @given(
        st.integers(1, 12),
        st.sampled_from([8, 16, 32]),
        st.integers(0, 10_000),
    )
    def test_encode_lines_matches_per_line_encode(self, lines, line_size, seed):
        code = self._random_code(seed)
        data = bytes(random.Random(seed + 1).randbytes(lines * line_size))
        batch = code.encode_lines(data, line_size)
        assert batch is not None
        encoded_lines, line_bits = batch
        assert len(encoded_lines) == lines
        for index in range(lines):
            line = data[index * line_size : (index + 1) * line_size]
            expected_bytes, expected_bits = code.encode(line)
            assert encoded_lines[index] == expected_bytes
            assert int(line_bits[index]) == expected_bits

    def test_encode_lines_rejects_ragged_input(self):
        code = self._random_code(11)
        with pytest.raises(CompressionError):
            code.encode_lines(b"12345", 4)
        with pytest.raises(CompressionError):
            code.encode_lines(b"1234", 0)
