"""Tests for the profiler and the command-line tools."""

from __future__ import annotations

import pytest

from repro.isa import Assembler
from repro.isa.opcodes import Category
from repro.machine import Machine
from repro.machine.profile import profile
from repro.tools import asm as asm_tool
from repro.tools import compress as compress_tool
from repro.tools import disasm as disasm_tool
from repro.tools import run as run_tool

SOURCE = """
main:
    li   $t0, 10
    li   $t1, 0
    jal  helper
    nop
loop:
    addiu $t1, $t1, 2
    addiu $t0, $t0, -1
    bnez $t0, loop
    nop
    move $a0, $t1
    li   $v0, 10
    syscall

helper:
    lw   $t2, 0($gp)
    sw   $t2, 4($gp)
    jr   $ra
    nop
"""


@pytest.fixture(scope="module")
def executed():
    program = Assembler().assemble(SOURCE)
    result = Machine(program).run()
    return program, result


class TestProfile:
    def test_total_matches_execution(self, executed):
        program, result = executed
        report = profile(result, program)
        assert report.instructions_executed == result.instructions_executed

    def test_category_mix_sums_to_one(self, executed):
        program, result = executed
        report = profile(result, program)
        assert sum(report.category_mix.values()) == pytest.approx(1.0)

    def test_procedures_found_and_ordered(self, executed):
        program, result = executed
        report = profile(result, program)
        names = [procedure.name for procedure in report.procedures]
        assert "main" in names and "helper" in names
        counts = [p.executed_instructions for p in report.procedures]
        assert counts == sorted(counts, reverse=True)

    def test_helper_called_once(self, executed):
        program, result = executed
        report = profile(result, program)
        helper = next(p for p in report.procedures if p.name == "helper")
        assert helper.calls == 1
        assert helper.executed_instructions == 4

    def test_load_store_fraction(self, executed):
        program, result = executed
        report = profile(result, program)
        assert report.load_store_fraction == pytest.approx(
            2 / result.instructions_executed
        )

    def test_hot_instructions_are_loop_body(self, executed):
        program, result = executed
        report = profile(result, program)
        hottest_count = report.hot_instructions[0][2]
        assert hottest_count == 10  # loop runs ten times

    def test_render(self, executed):
        program, result = executed
        text = profile(result, program).render()
        assert "main" in text and "instruction mix" in text

    def test_mix_fraction_accessor(self, executed):
        program, result = executed
        report = profile(result, program)
        assert report.mix_fraction(Category.ALU) > 0
        assert report.mix_fraction(Category.FP_ARITH) == 0.0

    def test_workload_profile_smoke(self):
        from repro.workloads import load

        workload = load("eightq")
        report = profile(workload.run(), workload.program)
        names = [procedure.name for procedure in report.procedures]
        assert "solve" in names
        solve = next(p for p in report.procedures if p.name == "solve")
        assert solve.calls > 1000  # the recursion really happened


class TestTools:
    @pytest.fixture()
    def source_file(self, tmp_path):
        path = tmp_path / "prog.s"
        path.write_text(SOURCE)
        return path

    def test_asm_writes_binary(self, source_file, capsys):
        output = source_file.with_suffix(".bin")
        assert asm_tool.main([str(source_file), "-o", str(output), "--listing"]) == 0
        assert output.stat().st_size % 4 == 0
        captured = capsys.readouterr().out
        assert "bytes of text" in captured and "main" in captured

    def test_asm_reports_errors(self, tmp_path, capsys):
        bad = tmp_path / "bad.s"
        bad.write_text("frobnicate $t0\n")
        assert asm_tool.main([str(bad)]) == 1
        assert "ccrp-asm" in capsys.readouterr().err

    def test_disasm_round_trip(self, source_file, tmp_path, capsys):
        binary = tmp_path / "prog.bin"
        asm_tool.main([str(source_file), "-o", str(binary)])
        capsys.readouterr()
        assert disasm_tool.main([str(binary)]) == 0
        out = capsys.readouterr().out
        assert "jal" in out and "jr $ra" in out

    def test_disasm_missing_file(self, tmp_path, capsys):
        assert disasm_tool.main([str(tmp_path / "nope.bin")]) == 1

    def test_run_executes_and_reports(self, source_file, capsys):
        assert run_tool.main([str(source_file)]) == 0
        out = capsys.readouterr().out
        assert "[exit 20;" in out

    def test_run_with_profile(self, source_file, capsys):
        assert run_tool.main([str(source_file), "--profile"]) == 0
        out = capsys.readouterr().out
        assert "instruction mix" in out

    def test_run_limit_error(self, tmp_path, capsys):
        spin = tmp_path / "spin.s"
        spin.write_text("spin: b spin\nnop\n")
        assert run_tool.main([str(spin), "--max-instructions", "100"]) == 1
        assert run_tool.main([str(spin), "--max-instructions", "100", "--stop-at-limit"]) == 0

    def test_compress_from_source_with_verify(self, source_file, capsys):
        assert compress_tool.main([str(source_file), "--verify"]) == 0
        out = capsys.readouterr().out
        assert "total image" in out and "verify         : OK" in out

    def test_compress_writes_image(self, source_file, tmp_path, capsys):
        image_path = tmp_path / "prog.img"
        assert compress_tool.main([str(source_file), "-o", str(image_path)]) == 0
        assert image_path.stat().st_size > 8  # at least one LAT entry

    def test_compress_binary_input(self, source_file, tmp_path, capsys):
        binary = tmp_path / "prog.bin"
        asm_tool.main([str(source_file), "-o", str(binary)])
        capsys.readouterr()
        assert compress_tool.main([str(binary), "--verify"]) == 0

    def test_compress_rejects_unaligned(self, tmp_path, capsys):
        ragged = tmp_path / "ragged.bin"
        ragged.write_bytes(b"\x00" * 33)
        assert compress_tool.main([str(ragged)]) == 1

    def test_run_binary_source_one_line_error(self, tmp_path, capsys):
        garbage = tmp_path / "garbage.s"
        garbage.write_bytes(bytes(range(128, 256)))
        assert run_tool.main([str(garbage)]) == 1
        err = capsys.readouterr().err
        assert "not text" in err and "Traceback" not in err

    def test_compress_binary_source_one_line_error(self, tmp_path, capsys):
        garbage = tmp_path / "garbage.asm"
        garbage.write_bytes(bytes(range(128, 256)))
        assert compress_tool.main([str(garbage)]) == 1
        err = capsys.readouterr().err
        assert "not text" in err and "Traceback" not in err

    def test_run_missing_file_one_line_error(self, tmp_path, capsys):
        assert run_tool.main([str(tmp_path / "nope.s")]) == 1
        assert "Traceback" not in capsys.readouterr().err

    def test_compress_unwritable_output(self, source_file, tmp_path, capsys):
        target = tmp_path / "no-such-dir" / "prog.img"
        assert compress_tool.main([str(source_file), "-o", str(target)]) == 1
        err = capsys.readouterr().err
        assert "ccrp-compress:" in err and "Traceback" not in err
