"""Tests for bus-width generalisation and the bus-width experiment."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.ccrp.decoder import DecoderModel
from repro.compression.block import CompressedBlock
from repro.memsys import BURST_EPROM, EPROM, MemoryModel


class TestBusWidthModel:
    def test_default_is_32_bit(self):
        assert EPROM.bus_bytes == 4

    def test_beats_for_bytes(self):
        wide = BURST_EPROM.with_bus_bytes(8)
        assert wide.beats_for_bytes(32) == 4
        assert wide.beats_for_bytes(33) == 5
        assert wide.beats_for_bytes(1) == 1

    def test_bytes_read_cycles_scales_with_width(self):
        narrow = BURST_EPROM.bytes_read_cycles(32)  # 3 + 7 = 10
        wide = BURST_EPROM.with_bus_bytes(8).bytes_read_cycles(32)  # 3 + 3 = 6
        wider = BURST_EPROM.with_bus_bytes(16).bytes_read_cycles(32)  # 3 + 1 = 4
        assert (narrow, wide, wider) == (10, 6, 4)

    def test_byte_arrival_times(self):
        arrivals = BURST_EPROM.byte_arrival_times(8)
        assert arrivals == [3, 3, 3, 3, 4, 4, 4, 4]
        wide = BURST_EPROM.with_bus_bytes(8).byte_arrival_times(8)
        assert wide == [3] * 8

    def test_with_bus_bytes_renames(self):
        assert BURST_EPROM.with_bus_bytes(8).name == "burst_epromx64"

    def test_invalid_width_rejected(self):
        with pytest.raises(ConfigurationError):
            MemoryModel(name="x", first_word_cycles=1, next_word_cycles=1, bus_bytes=3)

    def test_invalid_transfer_rejected(self):
        with pytest.raises(ConfigurationError):
            EPROM.beats_for_bytes(0)


class TestDecoderOnWideBuses:
    def _block(self, bits_per_byte: int) -> CompressedBlock:
        bit_length = 32 * bits_per_byte
        stored = (bit_length + 7) // 8
        return CompressedBlock(
            data=bytes(stored),
            is_compressed=True,
            bit_length=bit_length,
            symbol_bits=(bits_per_byte,) * 32,
        )

    def test_bypass_scales_with_bus(self):
        block = CompressedBlock(
            data=bytes(32), is_compressed=False, bit_length=256, symbol_bits=None
        )
        decoder = DecoderModel()
        assert decoder.refill_cycles(block, BURST_EPROM) == 10
        assert decoder.refill_cycles(block, BURST_EPROM.with_bus_bytes(8)) == 6

    def test_decode_floor_unchanged_by_bus(self):
        """A 2 B/cycle decoder cannot exploit a wider bus (paper 3.4)."""
        block = self._block(bits_per_byte=5)
        decoder = DecoderModel(bytes_per_cycle=2)
        narrow = decoder.refill_cycles(block, BURST_EPROM)
        wide = decoder.refill_cycles(block, BURST_EPROM.with_bus_bytes(16))
        assert narrow == wide == 19  # first beat + 16 cycles

    def test_fast_decoder_exploits_wide_bus(self):
        # 28-byte block: on the 32-bit bus the fetch (3+6=9) dominates an
        # 8 B/cycle decoder (3+4=7); the 128-bit bus removes that limit.
        block = self._block(bits_per_byte=7)
        fast = DecoderModel(bytes_per_cycle=8)
        narrow = fast.refill_cycles(block, BURST_EPROM)
        wide = fast.refill_cycles(block, BURST_EPROM.with_bus_bytes(16))
        assert wide < narrow

    def test_detailed_model_on_wide_bus(self):
        block = self._block(bits_per_byte=5)
        detailed = DecoderModel(bytes_per_cycle=8, detailed=True)
        cycles = detailed.refill_cycles(block, BURST_EPROM.with_bus_bytes(16))
        # 20-byte block: 2 beats (arrive 3, 4); 32 bytes at 8/cycle = 4 cyc.
        assert 7 <= cycles <= 9


class TestBusWidthExperiment:
    @pytest.fixture(scope="class")
    def result(self):
        from repro.experiments.bus_width import run_bus_width

        return run_bus_width(programs=("espresso",))

    def test_wider_bus_hurts_fixed_decoder(self, result):
        """The paper's warning: a 2 B/cycle decoder falls behind as the
        bus widens."""
        by_bus = [result.row_for("espresso", bus).relative_performance[2] for bus in (4, 8, 16)]
        assert by_bus == sorted(by_bus)
        assert by_bus[-1] > by_bus[0]

    def test_faster_decoder_recovers(self, result):
        for bus in (4, 8, 16):
            row = result.row_for("espresso", bus).relative_performance
            assert row[8] < row[4] < row[2]

    def test_baseline_refill_shrinks_with_bus(self, result):
        refills = [
            result.row_for("espresso", bus).baseline_refill_cycles for bus in (4, 8, 16)
        ]
        assert refills == sorted(refills, reverse=True)

    def test_render(self, result):
        assert "Bus-width sensitivity" in result.render()
