"""Shared live-server harness for the service test suites.

Runs a :class:`~repro.service.server.CompressionServer` on a real Unix
socket inside a dedicated event-loop thread, so the blocking
:class:`~repro.service.client.ServiceClient` (and raw sockets) can talk
to it from test code.  Synchronisation is structural, never timed:

* :meth:`LiveService.gate` hands out a named-FIFO rendezvous — the test
  *blocks* on the FIFO until the worker is provably inside the gated
  job, and the worker blocks until the test releases it;
* :meth:`LiveService.wait_stats` polls the ``stats`` endpoint with
  bounded request/response round trips — convergence on observable
  server state, not wall-clock guessing.
"""

from __future__ import annotations

import asyncio
import os
import threading

from repro.service.chaos import ChaosProxy
from repro.service.client import ServiceClient
from repro.service.server import CompressionServer

#: Round-trip budget for :meth:`LiveService.wait_stats` (not a timer —
#: each attempt is one full stats round trip through the live server).
MAX_STATS_ROUND_TRIPS = 2000


class GateTimeout(AssertionError):
    """A FIFO rendezvous did not complete within its timeout."""


class Gate:
    """One named-FIFO rendezvous between a test and a gated worker job.

    The worker side (``workers._apply_gate``) opens ``ready`` for
    writing — which blocks until :meth:`wait_entered` opens it for
    reading — then blocks reading ``release`` until :meth:`release`
    opens and closes it.  Both directions are pure blocking handshakes.
    """

    def __init__(self, root: str, name: str) -> None:
        self.ready = os.path.join(root, f"{name}.ready")
        self.release = os.path.join(root, f"{name}.release")
        os.mkfifo(self.ready)
        os.mkfifo(self.release)

    @property
    def params(self) -> list[str]:
        """Value for the job's ``_gate`` parameter."""
        return [self.ready, self.release]

    def wait_entered(self, timeout: float = 60.0) -> None:
        """Block until a worker is inside the gated job."""
        # open() on a FIFO has no timeout parameter; do the open in a
        # helper thread and bound the join so a server bug fails the
        # test instead of hanging the suite.
        done = threading.Event()

        def _open() -> None:
            with open(self.ready, "rb"):
                pass
            done.set()

        threading.Thread(target=_open, daemon=True).start()
        if not done.wait(timeout):
            raise GateTimeout(f"no worker entered gate {self.ready}")

    def release_job(self) -> None:
        """Unblock the gated worker job."""
        with open(self.release, "wb"):
            pass


class LiveService:
    """A compression server running on its own event-loop thread."""

    def __init__(self, socket_dir: str, **server_kwargs) -> None:
        self.socket_path = os.path.join(socket_dir, "ccrp.sock")
        self.address = f"unix:{self.socket_path}"
        self._gate_dir = socket_dir
        self._gates = 0
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._started = threading.Event()
        self._shutdown: asyncio.Event | None = None
        self._startup_error: BaseException | None = None
        self.server = CompressionServer(self.address, **server_kwargs)

    # -- lifecycle -----------------------------------------------------

    def start(self) -> "LiveService":
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()
        assert self._started.wait(120), "server failed to start in time"
        if self._startup_error is not None:
            raise self._startup_error
        return self

    def _run(self) -> None:
        async def main() -> None:
            self._loop = asyncio.get_running_loop()
            self._shutdown = asyncio.Event()
            try:
                await self.server.start()
            except BaseException as error:
                self._startup_error = error
                self._started.set()
                raise
            self._started.set()
            await self._shutdown.wait()

        asyncio.run(main())

    def stop(self, timeout: float = 120.0) -> None:
        """Graceful stop: drain the server, then end the loop thread."""
        if self._loop is None or not self._thread or not self._thread.is_alive():
            return
        future = asyncio.run_coroutine_threadsafe(self.server.stop(), self._loop)
        future.result(timeout)
        self.end_loop(timeout)

    def stop_async(self):
        """Begin a graceful stop; returns the concurrent future."""
        assert self._loop is not None
        return asyncio.run_coroutine_threadsafe(self.server.stop(), self._loop)

    def end_loop(self, timeout: float = 120.0) -> None:
        if self._loop is not None and self._shutdown is not None:
            self._loop.call_soon_threadsafe(self._shutdown.set)
        if self._thread is not None:
            self._thread.join(timeout)

    def __enter__(self) -> "LiveService":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- client-side helpers -------------------------------------------

    def client(
        self, name: str = "test", timeout: float = 120.0, **client_kwargs
    ) -> ServiceClient:
        return ServiceClient(
            self.address, timeout=timeout, name=name, **client_kwargs
        )

    def gate(self) -> Gate:
        self._gates += 1
        return Gate(self._gate_dir, f"gate{self._gates}")

    def chaos(self, schedule, name: str = "chaos") -> "LiveChaos":
        """A fault-injecting proxy in front of this server."""
        return LiveChaos(
            os.path.join(self._gate_dir, f"{name}.sock"), self.address, schedule
        )

    def wait_stats(self, predicate, what: str = "condition") -> dict:
        """Poll ``stats`` round trips until ``predicate(stats)`` holds.

        Each attempt is a full request/response cycle through the
        server, so progress is bounded by server responsiveness, not by
        sleeps; the attempt budget turns a real deadlock into a test
        failure instead of a hang.
        """
        with self.client(name="stats-poller") as poller:
            for _ in range(MAX_STATS_ROUND_TRIPS):
                stats = poller.stats()
                if predicate(stats):
                    return stats
        raise AssertionError(
            f"server never reached {what} within "
            f"{MAX_STATS_ROUND_TRIPS} stats round trips; last: "
            f"{stats['counters']} / {stats['server']}"
        )


class LiveChaos:
    """A :class:`~repro.service.chaos.ChaosProxy` on its own loop thread.

    Clients connect to :attr:`address`; the proxy relays to the live
    server, applying the schedule's faults.  The event log
    (``live_chaos.proxy.events`` / ``transcript()``) records exactly
    which faults fired, for two-run determinism assertions.
    """

    def __init__(self, listen_path: str, upstream: str, schedule) -> None:
        self.proxy = ChaosProxy(listen_path, upstream, schedule)
        self.address = self.proxy.address
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._started = threading.Event()
        self._shutdown: asyncio.Event | None = None
        self._startup_error: BaseException | None = None

    def start(self) -> "LiveChaos":
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()
        assert self._started.wait(60), "chaos proxy failed to start in time"
        if self._startup_error is not None:
            raise self._startup_error
        return self

    def _run(self) -> None:
        async def main() -> None:
            self._loop = asyncio.get_running_loop()
            self._shutdown = asyncio.Event()
            try:
                await self.proxy.start()
            except BaseException as error:
                self._startup_error = error
                self._started.set()
                raise
            self._started.set()
            await self._shutdown.wait()
            await self.proxy.stop()

        asyncio.run(main())

    def stop(self, timeout: float = 60.0) -> None:
        if self._loop is not None and self._shutdown is not None:
            self._loop.call_soon_threadsafe(self._shutdown.set)
        if self._thread is not None:
            self._thread.join(timeout)

    def __enter__(self) -> "LiveChaos":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    def client(self, name: str = "chaos-test", **client_kwargs) -> ServiceClient:
        return ServiceClient(self.address, name=name, **client_kwargs)

    def transcript(self) -> tuple:
        return self.proxy.transcript()
