"""Tests for the functional simulator: semantics, delay slots, tracing."""

from __future__ import annotations

import pytest

from repro.errors import ExecutionError
from repro.isa import Assembler, Instruction
from repro.machine import Machine

EXIT = """
    li $v0, 10
    syscall
"""


def run(source: str, **kwargs):
    program = Assembler().assemble(source)
    return Machine(program).run(**kwargs)


def reg(result, number: int) -> int:
    return result.registers[number]


class TestIntegerArithmetic:
    def test_addu_and_addiu(self):
        result = run(f"li $t0, 40\naddiu $t1, $t0, 2\naddu $t2, $t0, $t1\n{EXIT}")
        assert reg(result, 9) == 42
        assert reg(result, 10) == 82

    def test_wraparound_addition(self):
        result = run(f"li $t0, 0xFFFFFFFF\naddiu $t1, $t0, 1\n{EXIT}")
        assert reg(result, 9) == 0

    def test_subu_negative_result_wraps(self):
        result = run(f"li $t0, 5\nli $t1, 7\nsubu $t2, $t0, $t1\n{EXIT}")
        assert reg(result, 10) == 0xFFFFFFFE

    def test_logical_operations(self):
        result = run(
            f"""
            li $t0, 0xF0F0
            li $t1, 0x0FF0
            and $t2, $t0, $t1
            or  $t3, $t0, $t1
            xor $t4, $t0, $t1
            nor $t5, $t0, $t1
            {EXIT}
            """
        )
        assert reg(result, 10) == 0x00F0
        assert reg(result, 11) == 0xFFF0
        assert reg(result, 12) == 0xFF00
        assert reg(result, 13) == 0xFFFF000F

    def test_slt_signed_vs_sltu_unsigned(self):
        result = run(
            f"""
            li $t0, -1
            li $t1, 1
            slt  $t2, $t0, $t1
            sltu $t3, $t0, $t1
            {EXIT}
            """
        )
        assert reg(result, 10) == 1  # -1 < 1 signed
        assert reg(result, 11) == 0  # 0xFFFFFFFF > 1 unsigned

    def test_slti_and_sltiu(self):
        result = run(f"li $t0, 5\nslti $t1, $t0, 6\nsltiu $t2, $t0, 4\n{EXIT}")
        assert reg(result, 9) == 1
        assert reg(result, 10) == 0

    def test_shifts(self):
        result = run(
            f"""
            li  $t0, 0x80000000
            srl $t1, $t0, 4
            sra $t2, $t0, 4
            li  $t3, 1
            sll $t4, $t3, 31
            {EXIT}
            """
        )
        assert reg(result, 9) == 0x08000000
        assert reg(result, 10) == 0xF8000000
        assert reg(result, 12) == 0x80000000

    def test_variable_shifts_mask_to_five_bits(self):
        result = run(
            f"""
            li $t0, 1
            li $t1, 33
            sllv $t2, $t0, $t1
            {EXIT}
            """
        )
        assert reg(result, 10) == 2  # shift amount 33 & 31 == 1

    def test_lui_ori_builds_constant(self):
        result = run(f"li $t0, 0xDEADBEEF\n{EXIT}")
        assert reg(result, 8) == 0xDEADBEEF

    def test_zero_register_ignores_writes(self):
        result = run(f"li $zero, 55\naddiu $t0, $zero, 7\n{EXIT}")
        assert reg(result, 0) == 0
        assert reg(result, 8) == 7


class TestMultiplyDivide:
    def test_mult_positive(self):
        result = run(f"li $t0, 6\nli $t1, 7\nmult $t0, $t1\nmflo $t2\n{EXIT}")
        assert reg(result, 10) == 42

    def test_mult_negative_high_word(self):
        result = run(f"li $t0, -1\nli $t1, 2\nmult $t0, $t1\nmfhi $t2\nmflo $t3\n{EXIT}")
        assert reg(result, 10) == 0xFFFFFFFF
        assert reg(result, 11) == 0xFFFFFFFE

    def test_multu_large(self):
        result = run(
            f"li $t0, 0x10000\nli $t1, 0x10000\nmultu $t0, $t1\nmfhi $t2\nmflo $t3\n{EXIT}"
        )
        assert reg(result, 10) == 1
        assert reg(result, 11) == 0

    def test_div_truncates_toward_zero(self):
        result = run(f"li $t0, -7\nli $t1, 2\ndiv $t0, $t1\nmflo $t2\nmfhi $t3\n{EXIT}")
        assert reg(result, 10) == 0xFFFFFFFD  # -3
        assert reg(result, 11) == 0xFFFFFFFF  # remainder -1

    def test_divu(self):
        result = run(f"li $t0, 7\nli $t1, 2\ndivu $t0, $t1\nmflo $t2\nmfhi $t3\n{EXIT}")
        assert reg(result, 10) == 3
        assert reg(result, 11) == 1

    def test_mthi_mtlo(self):
        result = run(f"li $t0, 9\nmthi $t0\nmtlo $t0\nmfhi $t1\nmflo $t2\n{EXIT}")
        assert reg(result, 9) == 9
        assert reg(result, 10) == 9

    def test_division_by_zero_does_not_crash(self):
        result = run(f"li $t0, 7\ndiv $t0, $zero\nmflo $t1\n{EXIT}")
        assert reg(result, 9) == 0


class TestMemoryAccess:
    def test_word_store_load(self):
        result = run(
            f"""
            .data
            buf: .space 16
            .text
            la $t0, buf
            li $t1, 0x12345678
            sw $t1, 4($t0)
            lw $t2, 4($t0)
            {EXIT}
            """
        )
        assert reg(result, 10) == 0x12345678

    def test_byte_sign_extension(self):
        result = run(
            f"""
            .data
            b: .byte 0xFF
            .text
            la $t0, b
            lb  $t1, 0($t0)
            lbu $t2, 0($t0)
            {EXIT}
            """
        )
        assert reg(result, 9) == 0xFFFFFFFF
        assert reg(result, 10) == 0xFF

    def test_half_sign_extension(self):
        result = run(
            f"""
            .data
            h: .half 0x8000
            .text
            la $t0, h
            lh  $t1, 0($t0)
            lhu $t2, 0($t0)
            {EXIT}
            """
        )
        assert reg(result, 9) == 0xFFFF8000
        assert reg(result, 10) == 0x8000

    def test_sb_sh_store_low_bits(self):
        result = run(
            f"""
            .data
            buf: .word 0
            .text
            la $t0, buf
            li $t1, 0x1234ABCD
            sb $t1, 0($t0)
            sh $t1, 2($t0)
            lw $t2, 0($t0)
            {EXIT}
            """
        )
        assert reg(result, 10) == 0xCD00ABCD

    def test_initialized_data_readable(self):
        result = run(
            f"""
            .data
            v: .word 1234
            .text
            la $t0, v
            lw $t1, 0($t0)
            {EXIT}
            """
        )
        assert reg(result, 9) == 1234

    def test_unaligned_word_access_raises(self):
        with pytest.raises(ExecutionError, match="unaligned"):
            run(f"li $t0, 2\nlw $t1, 0($t0)\n{EXIT}")

    def test_data_access_count(self):
        result = run(
            f"""
            .data
            buf: .space 8
            .text
            la $t0, buf
            sw $zero, 0($t0)
            lw $t1, 0($t0)
            sb $zero, 4($t0)
            {EXIT}
            """
        )
        assert result.data_accesses == 3


class TestControlFlow:
    def test_simple_loop_count(self):
        result = run(
            f"""
            main:
                li $t0, 5
                li $t1, 0
            loop:
                addiu $t1, $t1, 1
                addiu $t0, $t0, -1
                bnez $t0, loop
                nop
            {EXIT}
            """
        )
        assert reg(result, 9) == 5

    def test_branch_delay_slot_executes(self):
        result = run(
            f"""
            li $t0, 0
            b over
            addiu $t0, $t0, 1   # delay slot must execute
            addiu $t0, $t0, 100 # skipped
            over:
            {EXIT}
            """
        )
        assert reg(result, 8) == 1

    def test_jump_delay_slot_executes(self):
        result = run(
            f"""
            li $t0, 0
            j over
            addiu $t0, $t0, 1
            addiu $t0, $t0, 100
            over:
            {EXIT}
            """
        )
        assert reg(result, 8) == 1

    def test_jal_links_past_delay_slot(self):
        result = run(
            f"""
            main:
                jal callee
                nop
                move $t5, $v0
            {EXIT}
            callee:
                li $v0, 77
                jr $ra
                nop
            """
        )
        assert reg(result, 13) == 77

    def test_jalr_links_and_jumps(self):
        result = run(
            f"""
            main:
                la $t0, callee
                jalr $ra, $t0
                nop
                move $t5, $v0
            {EXIT}
            callee:
                li $v0, 31
                jr $ra
                nop
            """
        )
        assert reg(result, 13) == 31

    def test_conditional_branch_directions(self):
        result = run(
            f"""
            li $t0, -3
            li $t3, 0
            bltz $t0, neg
            nop
            li $t3, 1
            neg:
            bgez $t0, pos
            nop
            b done
            nop
            pos:
            li $t3, 2
            done:
            {EXIT}
            """
        )
        assert reg(result, 11) == 0

    def test_blez_bgtz(self):
        result = run(
            f"""
            li $t0, 0
            li $t1, 0
            blez $t0, a
            nop
            li $t1, 9
            a:
            bgtz $t0, b
            nop
            addiu $t1, $t1, 1
            b:
            {EXIT}
            """
        )
        assert reg(result, 9) == 1

    def test_bgezal_calls(self):
        result = run(
            f"""
            main:
                li $t0, 1
                bgezal $t0, sub
                nop
                b done
                nop
            sub:
                li $t5, 42
                jr $ra
                nop
            done:
            {EXIT}
            """
        )
        assert reg(result, 13) == 42

    def test_trace_records_delay_slot_addresses(self):
        result = run(
            f"""
            main: b skip
                  nop
                  nop
            skip: {EXIT}
            """
        )
        addresses = list(result.trace.addresses[:3])
        assert addresses == [0, 4, 12]

    def test_pc_escape_raises(self):
        with pytest.raises(ExecutionError, match="outside text"):
            run("li $t0, 0x100000\njr $t0\nnop")

    def test_instruction_limit_raises_by_default(self):
        with pytest.raises(ExecutionError, match="limit"):
            run("spin: b spin\nnop", max_instructions=100)

    def test_instruction_limit_truncates_when_allowed(self):
        result = run("spin: b spin\nnop", max_instructions=100, stop_at_limit=True)
        assert result.instructions_executed == 100
        assert len(result.trace) == 100


class TestSyscalls:
    def test_print_int_and_string(self):
        result = run(
            f"""
            .data
            msg: .asciiz " items"
            .text
            li $v0, 1
            li $a0, 42
            syscall
            li $v0, 4
            la $a0, msg
            syscall
            li $v0, 11
            li $a0, 10
            syscall
            {EXIT}
            """
        )
        assert result.output == "42 items\n"

    def test_exit_code(self):
        result = run("li $a0, 7\nli $v0, 10\nsyscall")
        assert result.exit_code == 7

    def test_unknown_syscall_raises(self):
        with pytest.raises(ExecutionError, match="syscall"):
            run("li $v0, 99\nsyscall")

    def test_break_raises(self):
        with pytest.raises(ExecutionError, match="break"):
            run("break")


class TestFloatingPoint:
    def test_single_precision_add(self):
        result = run(
            f"""
            .data
            a: .float 1.5
            b: .float 2.25
            out: .space 4
            .text
            la $t0, a
            lwc1 $f0, 0($t0)
            lwc1 $f2, 4($t0)
            add.s $f4, $f0, $f2
            la $t1, out
            swc1 $f4, 0($t1)
            lw $t2, 0($t1)
            {EXIT}
            """
        )
        assert reg(result, 10) == 0x40700000  # 3.75f

    def test_double_precision_multiply(self):
        result = run(
            f"""
            .data
            a: .double 3.0
            b: .double 4.0
            out: .space 8
            .text
            la $t0, a
            l.d $f0, 0($t0)
            l.d $f2, 8($t0)
            mul.d $f4, $f0, $f2
            la $t1, out
            s.d $f4, 0($t1)
            lw $t2, 0($t1)
            {EXIT}
            """
        )
        assert reg(result, 10) == 0x40280000  # high word of 12.0

    def test_fp_compare_and_branch(self):
        result = run(
            f"""
            .data
            a: .double 1.0
            b: .double 2.0
            .text
            la $t0, a
            l.d $f0, 0($t0)
            l.d $f2, 8($t0)
            li $t5, 0
            c.lt.d $f0, $f2
            bc1t less
            nop
            b done
            nop
            less: li $t5, 1
            done:
            {EXIT}
            """
        )
        assert reg(result, 13) == 1

    def test_bc1f_branches_on_false(self):
        result = run(
            f"""
            .data
            a: .double 5.0
            .text
            la $t0, a
            l.d $f0, 0($t0)
            li $t5, 0
            c.lt.d $f0, $f0
            bc1f notless
            nop
            b done
            nop
            notless: li $t5, 1
            done:
            {EXIT}
            """
        )
        assert reg(result, 13) == 1

    def test_mtc1_cvt_and_back(self):
        result = run(
            f"""
            li $t0, 9
            mtc1 $t0, $f0
            cvt.d.w $f2, $f0
            cvt.w.d $f4, $f2
            mfc1 $t1, $f4
            {EXIT}
            """
        )
        assert reg(result, 9) == 9

    def test_neg_and_abs_double(self):
        result = run(
            f"""
            .data
            a: .double 2.5
            out: .space 16
            .text
            la $t0, a
            l.d $f0, 0($t0)
            neg.d $f2, $f0
            abs.d $f4, $f2
            la $t1, out
            s.d $f2, 0($t1)
            s.d $f4, 8($t1)
            lw $t2, 0($t1)
            lw $t3, 8($t1)
            {EXIT}
            """
        )
        assert reg(result, 10) == 0xC0040000  # -2.5 high word
        assert reg(result, 11) == 0x40040000  # 2.5 high word

    def test_cvt_s_w_truncation_path(self):
        result = run(
            f"""
            li $t0, 3
            mtc1 $t0, $f0
            cvt.s.w $f2, $f0
            mfc1 $t1, $f2
            {EXIT}
            """
        )
        assert reg(result, 9) == 0x40400000  # 3.0f

    def test_mov_single_and_double(self):
        result = run(
            f"""
            .data
            a: .double 7.0
            out: .space 8
            .text
            la $t0, a
            l.d $f0, 0($t0)
            mov.d $f2, $f0
            la $t1, out
            s.d $f2, 0($t1)
            lw $t2, 0($t1)
            {EXIT}
            """
        )
        assert reg(result, 10) == 0x401C0000


class TestStallAccounting:
    def test_mult_adds_stall_cycles(self):
        plain = run(f"li $t0, 3\nli $t1, 4\naddu $t2, $t0, $t1\n{EXIT}")
        multiplied = run(f"li $t0, 3\nli $t1, 4\nmult $t0, $t1\n{EXIT}")
        assert plain.stall_cycles == 0
        assert multiplied.stall_cycles == 11

    def test_div_stalls_more_than_mult(self):
        mult = run(f"li $t0, 8\nli $t1, 2\nmult $t0, $t1\n{EXIT}")
        div = run(f"li $t0, 8\nli $t1, 2\ndiv $t0, $t1\n{EXIT}")
        assert div.stall_cycles > mult.stall_cycles

    def test_base_cycles_is_instructions_plus_stalls(self):
        result = run(f"li $t0, 8\nli $t1, 2\nmult $t0, $t1\n{EXIT}")
        assert result.base_cycles == result.instructions_executed + result.stall_cycles


class TestTraceShape:
    def test_trace_length_equals_instruction_count(self):
        result = run(f"nop\nnop\nnop\n{EXIT}")
        assert len(result.trace) == result.instructions_executed

    def test_trace_addresses_word_aligned_in_text(self):
        result = run(f"nop\nnop\n{EXIT}")
        addresses = result.trace.addresses
        assert (addresses % 4 == 0).all()
        assert int(addresses.max()) < result.trace.text_size

    def test_line_addresses(self):
        result = run("\n".join(["nop"] * 16) + EXIT)
        lines = result.trace.line_addresses(32)
        assert lines[0] == 0 and lines[8] == 1

    def test_execution_counts(self):
        result = run(
            f"""
            main: li $t0, 3
            loop: addiu $t0, $t0, -1
                  bnez $t0, loop
                  nop
            {EXIT}
            """
        )
        counts = result.trace.execution_counts()
        assert counts[1] == 3  # loop body executed three times


class TestUnalignedAccessPairs:
    """Big-endian LWL/LWR and SWL/SWR semantics (MIPS-I unaligned idioms)."""

    @pytest.mark.parametrize("offset", [0, 1, 2, 3])
    def test_ulw_idiom_loads_unaligned_word(self, offset):
        """lwl A / lwr A+3 must assemble the unaligned word at A."""
        result = run(
            f"""
            .data
            buf: .word 0x11223344, 0x55667788
            .text
            la  $t0, buf
            lwl $t1, {offset}($t0)
            lwr $t1, {offset + 3}($t0)
            move $t5, $t1
            {EXIT}
            """
        )
        raw = bytes.fromhex("1122334455667788")
        expected = int.from_bytes(raw[offset : offset + 4], "big")
        assert reg(result, 13) == expected

    @pytest.mark.parametrize("offset", [0, 1, 2, 3])
    def test_usw_idiom_stores_unaligned_word(self, offset):
        """swl A / swr A+3 must scatter the register across the boundary."""
        result = run(
            f"""
            .data
            buf: .word 0, 0, 0
            .text
            la  $t0, buf
            li  $t1, 0xDEADBEEF
            swl $t1, {offset}($t0)
            swr $t1, {offset + 3}($t0)
            lw  $t5, 0($t0)
            lw  $t6, 4($t0)
            {EXIT}
            """
        )
        memory = bytearray(12)
        memory[offset : offset + 4] = (0xDEADBEEF).to_bytes(4, "big")
        assert reg(result, 13) == int.from_bytes(memory[0:4], "big")
        assert reg(result, 14) == int.from_bytes(memory[4:8], "big")

    def test_lwl_preserves_low_bytes(self):
        result = run(
            f"""
            .data
            buf: .word 0x11223344
            .text
            la  $t0, buf
            li  $t1, 0xAABBCCDD
            lwl $t1, 2($t0)
            move $t5, $t1
            {EXIT}
            """
        )
        # offset 2: bytes 33 44 shift to the top, low half preserved.
        assert reg(result, 13) == 0x3344CCDD

    def test_lwr_preserves_high_bytes(self):
        result = run(
            f"""
            .data
            buf: .word 0x11223344
            .text
            la  $t0, buf
            li  $t1, 0xAABBCCDD
            lwr $t1, 1($t0)
            move $t5, $t1
            {EXIT}
            """
        )
        # offset 1: bytes 11 22 land in the low half, top half preserved.
        assert reg(result, 13) == 0xAABB1122

    def test_round_trip_encode_decode(self):
        for mnemonic in ("lwl", "lwr", "swl", "swr"):
            instruction = Instruction.make(mnemonic, rt=8, rs=9, imm=5)
            from repro.isa import decode, encode

            assert decode(encode(instruction)) == instruction

    def test_counts_as_data_access(self):
        result = run(
            f"""
            .data
            buf: .word 7
            .text
            la  $t0, buf
            lwl $t1, 0($t0)
            lwr $t1, 3($t0)
            {EXIT}
            """
        )
        assert result.data_accesses == 2
