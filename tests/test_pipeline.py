"""Tests for the 5-stage pipeline timing subsystem (:mod:`repro.pipeline`).

Covers the golden hand-computed replay, the exact-vs-vectorized-timeline
bounds (property-tested over random programs and traces), the fetch
front end, the refill-engine index guards, the configuration plumbing,
and the ``ccrp-run`` CLI integration.
"""

from __future__ import annotations

import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.direct_mapped import simulate_trace
from repro.ccrp import ProgramCompressor, RefillEngine
from repro.compression.histogram import byte_histogram
from repro.compression.huffman import HuffmanCode
from repro.core.config import (
    SystemConfig,
    default_timing,
    set_default_timing,
    validate_timing,
)
from repro.errors import ConfigurationError, LATError
from repro.isa import Assembler
from repro.machine import Machine
from repro.memsys import EPROM
from repro.pipeline import (
    PIPELINE_FILL_CYCLES,
    BlockTable,
    FetchUnit,
    HazardModel,
    R2000_HAZARDS,
    miss_mask,
    replay_trace,
    simulate_pipeline,
)
from repro.pipeline.hazards import FP_BASE, HI, LO, register_effects
from repro.tools import run as run_tool

# ----------------------------------------------------------------------
# Golden hand-computed replay
# ----------------------------------------------------------------------

#: One load-use hazard (lw feeding addu: one bubble) and one taken
#: branch (bne on the known-nonzero $t0: one squashed fetch).
GOLDEN_SOURCE = """
main:
    addiu $t0, $zero, 64
    lw    $t1, 0($t0)
    addu  $t2, $t1, $t1
    bne   $t0, $zero, skip
    nop
    addiu $t3, $zero, 1
skip:
    addiu $v0, $zero, 10
    syscall
"""


@pytest.fixture(scope="module")
def golden():
    program = Assembler().assemble(GOLDEN_SOURCE)
    result = Machine(program).run()
    return program, result


class TestGoldenReplay:
    """Every cycle accounted by hand.

    Issue times: addiu@0; lw@1 ($t1 forwardable at 3); addu stalls one
    cycle (base 2, issues 3); bne@4; delay-slot nop@5; the taken branch
    squashes one fetch; addiu@7; syscall@8.  Seven instructions, one
    hazard stall, one branch stall, four fill cycles: 13 cycles total.
    """

    def test_trace_is_the_expected_stream(self, golden):
        program, result = golden
        assert result.trace.instruction_indices.tolist() == [0, 1, 2, 3, 4, 6, 7]

    def test_exact_counts(self, golden):
        program, result = golden
        replay = simulate_pipeline(
            program.instructions, result.trace.instruction_indices
        )
        assert replay.issue_cycles == 7
        assert replay.fill_cycles == PIPELINE_FILL_CYCLES == 4
        assert replay.hazard_stall_cycles == 1
        assert replay.branch_stall_cycles == 1
        assert replay.total_cycles == 13

    def test_timeline_matches_exact(self, golden):
        program, result = golden
        exact = simulate_pipeline(
            program.instructions, result.trace.instruction_indices
        )
        timeline = replay_trace(
            result.trace,
            program.instructions,
            block_table=BlockTable(program.instructions, program.text_base),
        )
        assert timeline.hazard_stall_cycles == exact.hazard_stall_cycles
        assert timeline.branch_stall_cycles == exact.branch_stall_cycles
        assert timeline.total_cycles == exact.total_cycles == 13

    def test_fetch_freezes_add_refill_cycles(self, golden):
        program, result = golden
        frontend = FetchUnit(cache_bytes=1024, memory=EPROM)
        replay = simulate_pipeline(
            program.instructions,
            result.trace.instruction_indices,
            frontend=frontend,
            text_base=program.text_base,
        )
        assert replay.fetch_misses == frontend.misses == 1
        assert replay.fetch_stall_cycles == EPROM.bytes_read_cycles(32)
        assert replay.total_cycles == 13 + replay.fetch_stall_cycles

    def test_zero_branch_penalty_model(self, golden):
        program, result = golden
        replay = simulate_pipeline(
            program.instructions,
            result.trace.instruction_indices,
            hazards=HazardModel(taken_branch_penalty=0),
        )
        assert replay.branch_stall_cycles == 0
        assert replay.total_cycles == 12


class TestScoreboardLatencies:
    def _replay(self, source: str):
        program = Assembler().assemble(source)
        stream = np.arange(len(program.instructions))
        return simulate_pipeline(program.instructions, stream)

    def test_mult_to_mfhi_interlock(self):
        replay = self._replay("main:\n    mult $t0, $t1\n    mfhi $t2\n")
        # mult issues at 0, HI readable at mult_latency; mfhi wants 1.
        assert replay.hazard_stall_cycles == R2000_HAZARDS.mult_latency - 1

    def test_div_is_longer_than_mult(self):
        replay = self._replay("main:\n    div $t0, $t1\n    mflo $t2\n")
        assert replay.hazard_stall_cycles == R2000_HAZARDS.div_latency - 1

    def test_spaced_consumer_absorbs_latency(self):
        replay = self._replay(
            "main:\n    lw $t1, 0($t0)\n    addu $t4, $t5, $t5\n"
            "    addu $t2, $t1, $t1\n"
        )
        assert replay.hazard_stall_cycles == 0

    def test_unpipelined_fp_serialises_independent_ops(self):
        replay = self._replay(
            "main:\n    add.s $f0, $f2, $f4\n    add.s $f6, $f8, $f10\n"
        )
        latency = 1 + R2000_HAZARDS.fp_extra_cycles["add.s"]
        assert replay.hazard_stall_cycles == latency - 1

    def test_dollar_zero_is_never_a_dependency(self):
        replay = self._replay(
            "main:\n    lw $zero, 0($t0)\n    addu $t1, $zero, $zero\n"
        )
        assert replay.hazard_stall_cycles == 0


class TestRegisterEffects:
    def _one(self, source: str):
        program = Assembler().assemble("main:\n    " + source + "\n")
        return register_effects(program.instructions[0])

    def test_load(self):
        effects = self._one("lw $t1, 4($t2)")
        assert effects.reads == (10,) and effects.writes == (9,)

    def test_store_reads_both(self):
        effects = self._one("sw $t1, 4($t2)")
        assert set(effects.reads) == {9, 10} and effects.writes == ()

    def test_mult_writes_hi_lo(self):
        effects = self._one("mult $t0, $t1")
        assert set(effects.writes) == {HI, LO}

    def test_jal_writes_ra(self):
        program = Assembler().assemble("main:\n    jal main\n    nop\n")
        assert register_effects(program.instructions[0]).writes == (31,)

    def test_double_precision_occupies_pair(self):
        effects = self._one("add.d $f0, $f2, $f4")
        assert set(effects.writes) == {FP_BASE, FP_BASE + 1}
        assert set(effects.reads) == {FP_BASE + 2, FP_BASE + 3, FP_BASE + 4, FP_BASE + 5}


# ----------------------------------------------------------------------
# Property tests: exact vs timeline bounds
# ----------------------------------------------------------------------

_REGS = tuple(f"$t{index}" for index in range(8))


@st.composite
def straight_line_source(draw):
    count = draw(st.integers(min_value=2, max_value=30))
    lines = []
    for _ in range(count):
        kind = draw(st.integers(min_value=0, max_value=3))
        a = draw(st.sampled_from(_REGS))
        b = draw(st.sampled_from(_REGS))
        c = draw(st.sampled_from(_REGS))
        if kind == 0:
            lines.append(f"addu {a}, {b}, {c}")
        elif kind == 1:
            lines.append(f"sll {a}, {b}, {draw(st.integers(0, 31))}")
        elif kind == 2:
            lines.append(f"lw {a}, 0({b})")
        else:
            lines.append(f"mult {b}, {c}")
    return "main:\n" + "".join(f"    {line}\n" for line in lines)


@settings(max_examples=30, deadline=None)
@given(source=straight_line_source())
def test_straight_line_exact_equals_timeline(source):
    """One basic block: the per-block clean-state reset loses nothing."""
    program = Assembler().assemble(source)
    stream = np.arange(len(program.instructions))
    exact = simulate_pipeline(program.instructions, stream)
    timeline = replay_trace(stream, program.instructions)
    assert timeline.hazard_stall_cycles == exact.hazard_stall_cycles
    assert timeline.branch_stall_cycles == exact.branch_stall_cycles == 0
    assert timeline.total_cycles == exact.total_cycles
    assert exact.total_cycles >= len(stream) + PIPELINE_FILL_CYCLES


@settings(max_examples=30, deadline=None)
@given(source=straight_line_source(), data=st.data())
def test_random_stream_exact_bounds_timeline(source, data):
    """Arbitrary dynamic streams: exact >= timeline, branch terms equal.

    The timeline resets hazard state at block boundaries, so carried
    latencies can only *add* stalls to the exact replay — and the issue
    cycles are the unconditional floor of both.
    """
    program = Assembler().assemble(source)
    count = len(program.instructions)
    stream = np.array(
        data.draw(
            st.lists(
                st.integers(min_value=0, max_value=count - 1),
                min_size=1,
                max_size=120,
            )
        ),
        dtype=np.int64,
    )
    exact = simulate_pipeline(program.instructions, stream)
    timeline = replay_trace(stream, program.instructions)
    assert exact.branch_stall_cycles == timeline.branch_stall_cycles
    assert exact.hazard_stall_cycles >= timeline.hazard_stall_cycles
    assert exact.total_cycles >= timeline.total_cycles
    assert exact.total_cycles >= len(stream) + PIPELINE_FILL_CYCLES


def test_real_workload_exact_bounds_timeline():
    """The bound holds on a real multi-block execution, not just fuzz."""
    from repro.workloads.suite import load

    workload = load("eightq")
    trace = workload.run().trace
    indices = trace.instruction_indices[:50_000]
    exact = simulate_pipeline(workload.program.instructions, indices)
    timeline = replay_trace(indices, workload.program.instructions)
    assert exact.branch_stall_cycles == timeline.branch_stall_cycles
    assert exact.hazard_stall_cycles >= timeline.hazard_stall_cycles


def test_redirect_into_current_block_matches_exact():
    """Regression: a redirect that re-enters the current block must split
    the timeline's event, not extend it.

    Program ``[addu; lw; addu]`` with stream ``[0, 1, 1]``: the load's
    consumer never issues, so the exact replay charges no load-use
    bubble.  The leader-only segmentation misread the stream as one full
    straight-line pass and charged one — breaking the documented
    timeline-is-a-lower-bound contract (``docs/modeling_notes.md`` §15).
    """
    program = Assembler().assemble(
        "main:\n    addu $1, $2, $3\n    lw $4, 0($5)\n    addu $6, $4, $7\n"
    )
    stream = np.array([0, 1, 1], dtype=np.int64)
    exact = simulate_pipeline(program.instructions, stream)
    timeline = replay_trace(stream, program.instructions)
    assert exact.hazard_stall_cycles == timeline.hazard_stall_cycles == 0
    assert exact.branch_stall_cycles == timeline.branch_stall_cycles == 1
    # The genuine load-use pass still charges its bubble on both paths.
    full = np.array([0, 1, 2], dtype=np.int64)
    exact_full = simulate_pipeline(program.instructions, full)
    timeline_full = replay_trace(full, program.instructions)
    assert exact_full.hazard_stall_cycles == timeline_full.hazard_stall_cycles == 1


def test_out_of_range_stream_rejected(golden):
    program, _ = golden
    with pytest.raises(ConfigurationError):
        simulate_pipeline(program.instructions, np.array([0, 99]))
    with pytest.raises(ConfigurationError):
        replay_trace(np.array([0, 99]), program.instructions)


def test_empty_stream_is_zero_cycles(golden):
    program, _ = golden
    assert simulate_pipeline(program.instructions, np.array([], dtype=np.int64)).total_cycles == 0
    assert replay_trace(np.array([], dtype=np.int64), program.instructions).total_cycles == 0


# ----------------------------------------------------------------------
# Fetch front end
# ----------------------------------------------------------------------


@settings(max_examples=25, deadline=None)
@given(
    addresses=st.lists(
        st.integers(min_value=0, max_value=4095).map(lambda word: word * 4),
        min_size=1,
        max_size=300,
    ),
    cache_bytes=st.sampled_from((128, 256, 1024)),
)
def test_miss_mask_matches_cache_simulator(addresses, cache_bytes):
    stream = np.array(addresses, dtype=np.uint32)
    mask = miss_mask(stream, cache_bytes)
    assert int(mask.sum()) == simulate_trace(stream, cache_bytes).misses


def test_fetch_unit_matches_cache_simulator(golden):
    program, result = golden
    addresses = result.trace.addresses
    unit = FetchUnit(cache_bytes=256, memory=EPROM)
    total = sum(unit.fetch(int(address)) for address in addresses)
    stats = simulate_trace(addresses, 256)
    assert unit.misses == stats.misses
    assert total == stats.misses * EPROM.bytes_read_cycles(32)
    unit.reset()
    assert unit.misses == 0 and unit.accesses == 0


# ----------------------------------------------------------------------
# Refill-engine index guards (satellite: explicit empty/bounds handling)
# ----------------------------------------------------------------------


@pytest.fixture(scope="module")
def engine():
    rng = random.Random(7)
    text = bytes(
        rng.choices(range(256), weights=[400] + [4] * 63 + [1] * 192, k=16 * 32)
    )
    code = HuffmanCode.from_frequencies(
        byte_histogram(text), max_length=16, cover_all_symbols=True
    )
    image = ProgramCompressor(code).compress(text)
    return RefillEngine(image, EPROM)


class TestRefillEngineGuards:
    def test_empty_stream_costs_zero(self, engine):
        empty = np.array([], dtype=np.int64)
        assert engine.ccrp_miss_cycles(empty) == 0
        assert engine.ccrp_fetched_bytes(empty) == 0

    def test_last_line_is_valid(self, engine):
        last = len(engine.ccrp_refill_cycles) - 1
        stream = np.array([last])
        assert engine.ccrp_miss_cycles(stream) == int(engine.ccrp_refill_cycles[last])
        assert engine.ccrp_fetched_bytes(stream) > 0

    def test_negative_index_rejected(self, engine):
        with pytest.raises(LATError, match="-1"):
            engine.ccrp_miss_cycles(np.array([0, -1]))

    def test_one_past_the_end_rejected(self, engine):
        count = len(engine.ccrp_refill_cycles)
        with pytest.raises(LATError, match=str(count)):
            engine.ccrp_fetched_bytes(np.array([count]))

    def test_non_vector_input_rejected(self, engine):
        with pytest.raises(LATError, match="one-dimensional"):
            engine.ccrp_miss_cycles(np.array([[0, 1]]))

    def test_negative_miss_count_rejected(self, engine):
        with pytest.raises(LATError):
            engine.baseline_miss_cycles(-1)


# ----------------------------------------------------------------------
# Configuration plumbing
# ----------------------------------------------------------------------


class TestTimingConfig:
    def test_unknown_backend_rejected(self):
        with pytest.raises(ConfigurationError, match="warp"):
            validate_timing("warp")
        with pytest.raises(ConfigurationError):
            SystemConfig(timing="warp")

    def test_critical_word_first_needs_pipeline(self):
        with pytest.raises(ConfigurationError, match="critical-word"):
            SystemConfig(critical_word_first=True, timing="additive")
        config = SystemConfig(timing="pipeline", critical_word_first=True)
        assert config.critical_word_first

    def test_default_timing_is_process_wide(self):
        assert default_timing() == "additive"
        try:
            set_default_timing("pipeline")
            assert SystemConfig().timing == "pipeline"
        finally:
            set_default_timing("additive")
        assert SystemConfig().timing == "additive"

    def test_set_default_rejects_unknown(self):
        with pytest.raises(ConfigurationError):
            set_default_timing("warp")
        assert default_timing() == "additive"


def test_study_pipeline_backend_reports_breakdown():
    """End-to-end: metrics() under both backends on the straight-line
    validation program (satellite acceptance: agreement within the fill)."""
    from repro.core.study import ProgramStudy
    from repro.experiments.pipeline_validation import straight_line_workload

    study = ProgramStudy(straight_line_workload())
    additive = study.metrics(SystemConfig(timing="additive"))
    pipeline = study.metrics(SystemConfig(timing="pipeline"))
    assert pipeline.ccrp.timing == "pipeline"
    breakdown = pipeline.ccrp.stall_breakdown
    assert set(breakdown) == {"hazard", "branch", "fetch", "data", "covered"}
    assert breakdown["hazard"] == 0  # hazard-free by construction
    assert breakdown["covered"] == 0  # demand policy hides nothing
    divergence = pipeline.ccrp.total_cycles - additive.ccrp.total_cycles
    assert abs(divergence) <= PIPELINE_FILL_CYCLES


# ----------------------------------------------------------------------
# ccrp-run CLI integration
# ----------------------------------------------------------------------


class TestRunCli:
    @pytest.fixture()
    def source_file(self, tmp_path):
        path = tmp_path / "golden.s"
        path.write_text(GOLDEN_SOURCE)
        return path

    def test_pipeline_report_printed(self, source_file, capsys):
        assert run_tool.main([str(source_file), "--timing", "pipeline"]) == 0
        out = capsys.readouterr().out
        assert "[pipeline @" in out
        assert "1 hazard" in out and "1 branch" in out

    def test_metrics_file_written(self, source_file, tmp_path, capsys):
        metrics = tmp_path / "metrics.json"
        code = run_tool.main(
            [str(source_file), "--timing", "pipeline", "--metrics", str(metrics)]
        )
        assert code == 0
        import json

        payload = json.loads(metrics.read_text())
        assert payload["pipeline"]["hazard"] == 1
        assert payload["pipeline"]["branch"] == 1

    def test_unknown_timing_exits_nonzero(self, source_file, capsys):
        assert run_tool.main([str(source_file), "--timing", "warp"]) == 1
        assert "unknown timing backend" in capsys.readouterr().err

    def test_unknown_memory_exits_nonzero(self, source_file, capsys):
        code = run_tool.main(
            [str(source_file), "--timing", "pipeline", "--memory", "flash"]
        )
        assert code == 1
        assert "unknown memory model" in capsys.readouterr().err

    def test_bad_cache_size_exits_nonzero(self, source_file, capsys):
        code = run_tool.main([str(source_file), "--cache-bytes", "8"])
        assert code == 1
        assert "cache-bytes" in capsys.readouterr().err
