"""Tests for the prefetching refill engine (:mod:`repro.prefetch`).

Covers the golden hand-computed prefetch timeline, the demand-policy
byte-identity with the plain fetch unit, the exact-vs-vectorized
equivalence (property-tested over random streams and pinned on a real
workload), the prefetch-never-hurts invariant, counter reconciliation,
and the BTB / buffer / configuration surfaces.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ccrp.clb import CLB
from repro.core.config import SystemConfig
from repro.errors import ConfigurationError
from repro.isa import Assembler
from repro.memsys import EPROM
from repro.pipeline import FetchUnit
from repro.prefetch import (
    FETCH_POLICIES,
    FetchReplay,
    PrefetchBuffer,
    PrefetchEntry,
    PrefetchingFetchUnit,
    StaticBTB,
    build_btb,
    simulate_fetch_stream,
    validate_fetch_policy,
)

# ----------------------------------------------------------------------
# Golden hand-computed prefetch timeline
# ----------------------------------------------------------------------


class TestGoldenNextline:
    """A sequential walk over three lines, every cycle accounted by hand.

    Standard machine (no refill engine), EPROM, 64 B cache, 32 B lines:
    one full-line burst is 24 cycles.  Walking lines 0..2 word by word:

    * fetch @0 (shadow time 0): cold miss, 24-cycle stall; the next-line
      prefetch of line 1 starts at 24 and finishes at 48;
    * 7 hits advance the clock to 32;
    * fetch @32 (time 32): miss, buffer hit, residual 48-32 = 16 — a
      partial cover hiding 8 of the 24 cycles; line 2's prefetch queues
      behind the decoder (busy until 48) and finishes at 72;
    * 7 hits advance the clock to 56;
    * fetch @64 (time 56): residual 72-56 = 16 again, 8 more hidden.

    Totals: 56 stall cycles vs 72 demand, 16 covered, 3 issued, 2 useful
    (both partial), 1 still in flight.
    """

    def _run(self) -> PrefetchingFetchUnit:
        unit = PrefetchingFetchUnit(
            cache_bytes=64,
            memory=EPROM,
            policy="nextline",
            prefetch_depth=4,
            prefetch_bounds=(0, 4),
        )
        self.stalls = [unit.fetch(address) for address in range(0, 96, 4)]
        return unit

    def test_burst_assumption(self):
        assert EPROM.bytes_read_cycles(32) == 24

    def test_per_miss_stalls(self):
        self._run()
        misses = [stall for stall in self.stalls if stall]
        assert misses == [24, 16, 16]
        assert sum(self.stalls) == 56

    def test_counters(self):
        unit = self._run()
        counters = unit.counters()
        assert counters["misses"] == 3
        assert counters["prefetch_issued"] == 3
        assert counters["prefetch_useful"] == 2
        assert counters["prefetch_partial"] == 2
        assert counters["prefetch_useless"] == 0
        assert counters["prefetch_in_flight_at_exit"] == 1
        assert counters["prefetch_covered_stall_cycles"] == 16

    def test_demand_pays_full_price(self):
        unit = FetchUnit(cache_bytes=64, memory=EPROM)
        total = sum(unit.fetch(address) for address in range(0, 96, 4))
        assert total == 72  # 3 misses x 24 cycles — what prefetching beat


# ----------------------------------------------------------------------
# Property tests
# ----------------------------------------------------------------------

_ADDRESSES = st.lists(
    st.integers(min_value=0, max_value=1023).map(lambda word: word * 4),
    min_size=1,
    max_size=250,
)


def _btb_for(data) -> StaticBTB:
    btb = StaticBTB(entries=8)
    for _ in range(data.draw(st.integers(min_value=0, max_value=6))):
        btb.train(
            data.draw(st.integers(min_value=0, max_value=127)),
            data.draw(st.integers(min_value=0, max_value=127)),
        )
    return btb


@settings(max_examples=40, deadline=None)
@given(addresses=_ADDRESSES, cache_bytes=st.sampled_from((64, 256, 1024)))
def test_demand_policy_is_byte_identical_to_plain_unit(addresses, cache_bytes):
    """With policy="demand" the subclass must not change a single stall."""
    stream = np.array(addresses, dtype=np.int64)
    plain = FetchUnit(cache_bytes=cache_bytes, memory=EPROM)
    prefetching = PrefetchingFetchUnit(
        cache_bytes=cache_bytes, memory=EPROM, policy="demand"
    )
    for address in stream.tolist():
        assert plain.fetch(address) == prefetching.fetch(address)
    assert plain.counters() == {
        key: value
        for key, value in prefetching.counters().items()
        if not key.startswith("prefetch_") and key != "traffic_bytes"
    }


@settings(max_examples=40, deadline=None)
@given(
    addresses=_ADDRESSES,
    cache_bytes=st.sampled_from((64, 256)),
    policy=st.sampled_from(FETCH_POLICIES),
    depth=st.integers(min_value=1, max_value=6),
    data=st.data(),
)
def test_exact_equals_timeline(addresses, cache_bytes, policy, depth, data):
    """The vectorized replay is byte-identical to the stateful unit."""
    stream = np.array(addresses, dtype=np.int64)
    btb = _btb_for(data) if policy == "btb" else None
    unit = PrefetchingFetchUnit(
        cache_bytes=cache_bytes,
        memory=EPROM,
        policy=policy,
        prefetch_depth=depth,
        btb=btb,
    )
    stalls = sum(unit.fetch(address) for address in stream.tolist())
    exact = FetchReplay.from_unit(unit, stalls)
    timeline = simulate_fetch_stream(
        stream,
        cache_bytes,
        32,
        EPROM,
        policy=policy,
        prefetch_depth=depth,
        btb=btb,
    )
    assert exact == timeline


@settings(max_examples=40, deadline=None)
@given(
    addresses=_ADDRESSES,
    cache_bytes=st.sampled_from((64, 256)),
    policy=st.sampled_from(("nextline", "btb")),
    data=st.data(),
)
def test_prefetch_never_costs_more_than_demand(addresses, cache_bytes, policy, data):
    """With no decoder contention and a perfect CLB, the abandon cap
    guarantees a covered miss never exceeds its demand cost — so the
    total can only improve.  (A shared CLB can break strict dominance
    through pollution; see docs/modeling_notes.md §15.)"""
    stream = np.array(addresses, dtype=np.int64)
    btb = _btb_for(data) if policy == "btb" else None
    demand = simulate_fetch_stream(stream, cache_bytes, 32, EPROM, policy="demand")
    prefetch = simulate_fetch_stream(
        stream, cache_bytes, 32, EPROM, policy=policy, btb=btb
    )
    assert prefetch.fetch_stall_cycles <= demand.fetch_stall_cycles
    assert prefetch.misses == demand.misses  # miss stream is policy-invariant


@settings(max_examples=40, deadline=None)
@given(
    addresses=_ADDRESSES,
    policy=st.sampled_from(("nextline", "btb")),
    data=st.data(),
)
def test_counters_reconcile(addresses, policy, data):
    """Every issued prefetch is eventually useful, useless, or in flight;
    hidden cycles plus the covered misses' residuals equal the demand
    bill those misses would have paid."""
    stream = np.array(addresses, dtype=np.int64)
    btb = _btb_for(data) if policy == "btb" else None
    replay = simulate_fetch_stream(stream, 64, 32, EPROM, policy=policy, btb=btb)
    assert replay.issued == replay.useful + replay.useless + replay.in_flight_at_exit
    assert replay.partial <= replay.useful
    assert replay.covered_stall_cycles >= 0
    assert replay.wasted_traffic_bytes <= replay.traffic_bytes


def test_real_workload_ccrp_equivalence():
    """Exact == timeline with the full CCRP machinery (refill + CLB) on a
    real trace prefix, for every policy."""
    from repro.core.artifacts import get_study

    study = get_study("eightq")
    addresses = study.execution.trace.addresses[:30_000]
    for policy in FETCH_POLICIES:
        btb = study.btb() if policy == "btb" else None
        engine = study.refill_engine("sc_dram", SystemConfig().decoder)
        unit = PrefetchingFetchUnit(
            256,
            "sc_dram",
            refill=engine,
            clb=CLB(entries=8),
            policy=policy,
            btb=btb,
        )
        stalls = sum(unit.fetch(int(address)) for address in addresses)
        exact = FetchReplay.from_unit(unit, stalls)
        timeline = simulate_fetch_stream(
            addresses,
            256,
            32,
            "sc_dram",
            refill=engine,
            clb=CLB(entries=8),
            policy=policy,
            btb=btb,
        )
        assert exact == timeline, policy


# ----------------------------------------------------------------------
# BTB and buffer units
# ----------------------------------------------------------------------


class TestStaticBTB:
    def test_train_and_predict(self):
        btb = StaticBTB(entries=4)
        btb.train(10, 3)
        assert btb.predict(10) == 3
        assert btb.predict(11) is None

    def test_direct_mapped_conflict_later_wins(self):
        btb = StaticBTB(entries=4)
        btb.train(2, 9)
        btb.train(6, 17)  # same slot (6 % 4 == 2 % 4)
        assert btb.predict(2) is None
        assert btb.predict(6) == 17

    def test_build_from_program_cfg(self):
        source = (
            "main:\n"
            + "".join(f"    addu $t0, $t1, $t2\n" for _ in range(16))
            + "loop:\n"
            + "".join(f"    addu $t3, $t4, $t5\n" for _ in range(16))
            + "    bne $t0, $zero, main\n"
            + "    nop\n"
            + "    addiu $v0, $zero, 10\n    syscall\n"
        )
        program = Assembler().assemble(source)
        btb = build_btb(program.instructions, text_base=program.text_base)
        branch_address = program.text_base + 32 * 4  # the bne
        target_line = program.text_base // 32  # main's line
        assert btb.predict(branch_address // 32) == target_line
        assert btb.occupancy >= 1

    def test_fall_through_targets_are_skipped(self):
        # A branch whose target is its own line or the next line teaches
        # the BTB nothing next-line prefetch does not already cover.
        source = (
            "main:\n    bne $t0, $zero, skip\n    nop\nskip:\n"
            "    addiu $v0, $zero, 10\n    syscall\n"
        )
        program = Assembler().assemble(source)
        btb = build_btb(program.instructions, text_base=program.text_base)
        assert btb.occupancy == 0


class TestPrefetchBuffer:
    def test_fifo_eviction(self):
        buffer = PrefetchBuffer(depth=2)
        first = PrefetchEntry(line=1, issue_time=0, finish_time=10)
        buffer.insert(first)
        buffer.insert(PrefetchEntry(line=2, issue_time=1, finish_time=11))
        evicted = buffer.insert(PrefetchEntry(line=3, issue_time=2, finish_time=12))
        assert evicted == first
        assert 1 not in buffer and 2 in buffer and 3 in buffer

    def test_pop_removes(self):
        buffer = PrefetchBuffer(depth=2)
        entry = PrefetchEntry(line=5, issue_time=0, finish_time=9)
        buffer.insert(entry)
        assert buffer.pop(5) == entry
        assert buffer.pop(5) is None
        assert len(buffer) == 0

    def test_depth_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            PrefetchBuffer(depth=0)


# ----------------------------------------------------------------------
# Configuration surface
# ----------------------------------------------------------------------


def test_validate_fetch_policy():
    for name in FETCH_POLICIES:
        assert validate_fetch_policy(name) == name
    with pytest.raises(ConfigurationError):
        validate_fetch_policy("oracle")


def test_config_requires_pipeline_backend():
    with pytest.raises(ConfigurationError):
        SystemConfig(fetch_policy="nextline", timing="additive")


def test_config_rejects_critical_word_first_combination():
    with pytest.raises(ConfigurationError):
        SystemConfig(
            fetch_policy="nextline", timing="pipeline", critical_word_first=True
        )


def test_config_accepts_prefetching_pipeline():
    config = SystemConfig(fetch_policy="btb", timing="pipeline", prefetch_depth=8)
    assert config.fetch_policy == "btb"
    assert config.prefetch_depth == 8


def test_btb_policy_requires_btb():
    with pytest.raises(ConfigurationError):
        PrefetchingFetchUnit(cache_bytes=64, memory=EPROM, policy="btb")
