"""Shared test configuration.

The artifact cache is pointed at a per-session temporary directory so
test runs are hermetic: they never read stale artifacts from (or litter)
the developer's real ``~/.cache/ccrp-repro``, while still exercising the
disk-cache code paths exactly as production does.
"""

from __future__ import annotations

import os

import pytest


@pytest.fixture(scope="session", autouse=True)
def _isolated_artifact_cache(tmp_path_factory):
    previous = os.environ.get("CCRP_CACHE_DIR")
    os.environ["CCRP_CACHE_DIR"] = str(tmp_path_factory.mktemp("ccrp-cache"))
    yield
    if previous is None:
        os.environ.pop("CCRP_CACHE_DIR", None)
    else:
        os.environ["CCRP_CACHE_DIR"] = previous
