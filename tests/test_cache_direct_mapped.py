"""Tests for the direct-mapped cache simulators and the data-cache model."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigurationError
from repro.cache import DirectMappedCache, simulate_trace
from repro.cache.datacache import DATA_MISS_CYCLES, DataCacheModel
from repro.cache.stats import CacheStats


class TestReferenceCache:
    def test_compulsory_miss_then_hit(self):
        cache = DirectMappedCache(cache_bytes=256)
        assert not cache.access(0)
        assert cache.access(0)
        assert cache.access(4)  # same line

    def test_conflict_miss(self):
        cache = DirectMappedCache(cache_bytes=256)  # 8 sets
        cache.access(0)
        cache.access(256)  # maps to set 0, evicts line 0
        assert not cache.access(0)

    def test_distinct_sets_do_not_conflict(self):
        cache = DirectMappedCache(cache_bytes=256)
        cache.access(0)
        cache.access(32)
        assert cache.access(0)
        assert cache.access(32)

    def test_miss_lines_recorded_in_order(self):
        cache = DirectMappedCache(cache_bytes=256)
        for address in (0, 256, 0):
            cache.access(address)
        assert list(cache.stats().miss_lines) == [0, 8, 0]

    def test_full_capacity_loop_fits(self):
        cache = DirectMappedCache(cache_bytes=256)
        addresses = list(range(0, 256, 4)) * 3
        stats = cache.run(addresses)
        assert stats.misses == 8  # compulsory only

    def test_loop_larger_than_cache_thrashes(self):
        cache = DirectMappedCache(cache_bytes=256)
        addresses = list(range(0, 512, 4)) * 3
        stats = cache.run(addresses)
        assert stats.misses == 16 * 3

    def test_geometry_validation(self):
        with pytest.raises(ConfigurationError):
            DirectMappedCache(cache_bytes=100)
        with pytest.raises(ConfigurationError):
            DirectMappedCache(cache_bytes=256, line_size=24)
        with pytest.raises(ConfigurationError):
            DirectMappedCache(cache_bytes=96, line_size=32)  # 3 sets


class TestVectorisedCache:
    def test_empty_trace(self):
        stats = simulate_trace(np.array([], dtype=np.uint32), 256)
        assert stats.accesses == 0 and stats.misses == 0

    def test_matches_reference_on_sequential_trace(self):
        addresses = np.arange(0, 4096, 4, dtype=np.uint32)
        vector = simulate_trace(addresses, 1024)
        reference = DirectMappedCache(1024).run(addresses)
        assert vector.misses == reference.misses
        assert np.array_equal(vector.miss_lines, reference.miss_lines)

    def test_matches_reference_on_looping_trace(self):
        loop = np.tile(np.arange(0, 640, 4, dtype=np.uint32), 5)
        vector = simulate_trace(loop, 512)
        reference = DirectMappedCache(512).run(loop)
        assert vector.misses == reference.misses
        assert np.array_equal(vector.miss_lines, reference.miss_lines)

    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(st.integers(0, 2047), min_size=1, max_size=400),
        st.sampled_from([256, 512, 1024]),
    )
    def test_property_equivalence_random_traces(self, word_indices, cache_bytes):
        addresses = np.array([index * 4 for index in word_indices], dtype=np.uint32)
        vector = simulate_trace(addresses, cache_bytes)
        reference = DirectMappedCache(cache_bytes).run(addresses)
        assert vector.accesses == reference.accesses
        assert vector.misses == reference.misses
        assert np.array_equal(vector.miss_lines, reference.miss_lines)

    def test_accesses_counts_full_trace_not_events(self):
        addresses = np.zeros(100, dtype=np.uint32)
        stats = simulate_trace(addresses, 256)
        assert stats.accesses == 100
        assert stats.misses == 1

    def test_larger_cache_never_misses_more(self):
        rng = np.random.default_rng(1)
        addresses = (rng.integers(0, 1024, size=5000) * 4).astype(np.uint32)
        misses = [
            simulate_trace(addresses, size).misses for size in (256, 512, 1024, 2048, 4096)
        ]
        assert misses == sorted(misses, reverse=True)


class TestCacheStats:
    def test_hit_count_and_miss_rate(self):
        stats = CacheStats(accesses=10, misses=2, miss_lines=np.array([1, 2]))
        assert stats.hits == 8
        assert stats.miss_rate == pytest.approx(0.2)

    def test_zero_access_miss_rate(self):
        stats = CacheStats(accesses=0, misses=0, miss_lines=np.array([]))
        assert stats.miss_rate == 0.0

    def test_inconsistent_miss_lines_rejected(self):
        with pytest.raises(ValueError):
            CacheStats(accesses=5, misses=2, miss_lines=np.array([1]))


class TestDataCacheModel:
    def test_no_data_cache_is_4_cycles_per_access(self):
        model = DataCacheModel(miss_rate=1.0)
        assert model.penalty_cycles(100) == 400

    def test_perfect_data_cache(self):
        assert DataCacheModel(miss_rate=0.0).penalty_cycles(1000) == 0

    def test_partial_miss_rate(self):
        assert DataCacheModel(miss_rate=0.25).penalty_cycles(1000) == 1000

    def test_paper_sweep_points_monotonic(self):
        penalties = [
            DataCacheModel(miss_rate=rate).penalty_cycles(10_000)
            for rate in (0.0, 0.02, 0.10, 0.25, 1.0)
        ]
        assert penalties == sorted(penalties)
        assert penalties[-1] == 10_000 * DATA_MISS_CYCLES

    def test_invalid_miss_rate_rejected(self):
        with pytest.raises(ConfigurationError):
            DataCacheModel(miss_rate=1.5)

    def test_negative_access_count_rejected(self):
        with pytest.raises(ConfigurationError):
            DataCacheModel().penalty_cycles(-1)
