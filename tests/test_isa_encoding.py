"""Tests for instruction encoding and decoding round trips."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.errors import DecodingError
from repro.isa import SPECS, Instruction, decode, encode
from repro.isa.encoding import encode_bytes, encode_program
from repro.isa.decoding import decode_program
from repro.isa.instruction import NOP
from repro.isa.opcodes import Category, InstructionFormat


class TestKnownEncodings:
    """Spot-check encodings against hand-computed MIPS reference values."""

    @pytest.mark.parametrize(
        "instruction, expected",
        [
            (Instruction.make("addu", rd=2, rs=4, rt=5), 0x00851021),
            (Instruction.make("add", rd=8, rs=9, rt=10), 0x012A4020),
            (Instruction.make("sll", rd=9, rt=10, shamt=4), 0x000A4900),
            (Instruction.make("jr", rs=31), 0x03E00008),
            (Instruction.make("syscall"), 0x0000000C),
            (Instruction.make("addiu", rt=8, rs=0, imm=1), 0x24080001),
            (Instruction.make("addi", rt=8, rs=8, imm=-1), 0x2108FFFF),
            (Instruction.make("lui", rt=1, imm=0x1001), 0x3C011001),
            (Instruction.make("lw", rt=8, rs=29, imm=4), 0x8FA80004),
            (Instruction.make("sw", rt=8, rs=29, imm=-4), 0xAFA8FFFC),
            (Instruction.make("beq", rs=8, rt=9, imm=3), 0x11090003),
            (Instruction.make("bne", rs=8, rt=0, imm=-2), 0x1500FFFE),
            (Instruction.make("j", target=0x100), 0x08000100),
            (Instruction.make("jal", target=0x100), 0x0C000100),
            (Instruction.make("bltz", rs=8, imm=1), 0x05000001),
            (Instruction.make("bgez", rs=8, imm=1), 0x05010001),
            (Instruction.make("mult", rs=8, rt=9), 0x01090018),
            (Instruction.make("mflo", rd=8), 0x00004012),
            (Instruction.make("lwc1", rt=4, rs=8, imm=8), 0xC5040008),
            (Instruction.make("swc1", rt=4, rs=8, imm=8), 0xE5040008),
        ],
    )
    def test_matches_reference_encoding(self, instruction, expected):
        assert encode(instruction) == expected

    def test_nop_encodes_to_zero(self):
        assert encode(NOP) == 0

    def test_fp_add_double_encoding(self):
        # add.d $f4, $f2, $f0 -> 0x46201100 | fd=4<<6 -> check fields.
        word = encode(Instruction.make("add.d", shamt=4, rd=2, rt=0))
        assert word >> 26 == 0x11
        assert (word >> 21) & 0x1F == 0x11  # double fmt
        assert (word >> 11) & 0x1F == 2  # fs
        assert (word >> 6) & 0x1F == 4  # fd
        assert word & 0x3F == 0x00  # add funct

    def test_mfc1_mtc1_differ_only_in_selector(self):
        mfc1 = encode(Instruction.make("mfc1", rt=8, rd=2))
        mtc1 = encode(Instruction.make("mtc1", rt=8, rd=2))
        assert mfc1 ^ mtc1 == (0x04 << 21)

    def test_bc1t_bc1f_condition_bit(self):
        t = encode(Instruction.make("bc1t", imm=4))
        f = encode(Instruction.make("bc1f", imm=4))
        assert t ^ f == 1 << 16


class TestRoundTrip:
    """decode(encode(i)) must reproduce i for every spec."""

    @pytest.mark.parametrize("spec", SPECS, ids=lambda s: s.mnemonic)
    def test_round_trip_each_mnemonic(self, spec):
        instruction = _sample_instruction(spec)
        assert decode(encode(instruction)) == instruction

    @given(st.data())
    def test_round_trip_random_fields(self, data):
        spec = data.draw(st.sampled_from(SPECS))
        instruction = _random_instruction(spec, data)
        assert decode(encode(instruction)) == instruction

    def test_program_round_trip(self):
        instructions = [
            Instruction.make("addiu", rt=8, rs=0, imm=5),
            Instruction.make("addu", rd=9, rs=8, rt=8),
            Instruction.make("jr", rs=31),
            NOP,
        ]
        code = encode_program(instructions)
        assert len(code) == 16
        assert decode_program(code) == instructions


class TestDecodeErrors:
    def test_unknown_opcode_raises(self):
        with pytest.raises(DecodingError):
            decode(0xFC000000)  # opcode 0x3F

    def test_unknown_funct_raises(self):
        with pytest.raises(DecodingError):
            decode(0x0000003F)  # R-type funct 0x3F

    def test_unknown_regimm_selector_raises(self):
        with pytest.raises(DecodingError):
            decode(0x041F0000)  # REGIMM rt=0x1f

    def test_unknown_cop1_funct_raises(self):
        with pytest.raises(DecodingError):
            decode((0x11 << 26) | (0x10 << 21) | 0x3F)

    def test_out_of_range_word_raises(self):
        with pytest.raises(DecodingError):
            decode(1 << 32)

    def test_odd_length_program_raises(self):
        with pytest.raises(DecodingError):
            decode_program(b"\x00\x00\x00")


class TestInstructionValidation:
    def test_register_field_out_of_range(self):
        with pytest.raises(ValueError):
            Instruction.make("addu", rd=32)

    def test_immediate_out_of_range(self):
        with pytest.raises(ValueError):
            Instruction.make("addiu", imm=0x10000)

    def test_target_out_of_range(self):
        with pytest.raises(ValueError):
            Instruction.make("j", target=1 << 26)

    def test_unknown_mnemonic(self):
        with pytest.raises(KeyError):
            Instruction.make("frobnicate")

    def test_imm_signed_and_unsigned_views(self):
        instruction = Instruction.make("addiu", imm=-1)
        assert instruction.imm_signed == -1
        assert instruction.imm_unsigned == 0xFFFF


class TestSpecProperties:
    def test_control_transfer_flags(self):
        assert Instruction.make("beq").spec.is_control_transfer
        assert Instruction.make("j").spec.is_control_transfer
        assert Instruction.make("jalr", rd=31, rs=2).spec.is_control_transfer
        assert not Instruction.make("addu").spec.is_control_transfer

    def test_fp_flags(self):
        assert Instruction.make("add.d").spec.is_fp
        assert Instruction.make("lwc1").spec.is_fp
        assert not Instruction.make("lw").spec.is_fp

    def test_all_mnemonics_unique(self):
        mnemonics = [spec.mnemonic for spec in SPECS]
        assert len(mnemonics) == len(set(mnemonics))

    def test_encode_bytes_big_endian(self):
        assert encode_bytes(Instruction.make("lui", rt=1, imm=0x1001)) == b"\x3c\x01\x10\x01"


def _sample_instruction(spec) -> Instruction:
    """A representative instruction for ``spec`` with distinct field values."""
    return _build_for(spec, rs=3, rt=7, rd=9, shamt=5, imm=-4, target=0x2040)


def _random_instruction(spec, data) -> Instruction:
    return _build_for(
        spec,
        rs=data.draw(st.integers(0, 31)),
        rt=data.draw(st.integers(0, 31)),
        rd=data.draw(st.integers(0, 31)),
        shamt=data.draw(st.integers(0, 31)),
        imm=data.draw(st.integers(-0x8000, 0x7FFF)),
        target=data.draw(st.integers(0, (1 << 26) - 1)),
    )


def _build_for(spec, rs, rt, rd, shamt, imm, target) -> Instruction:
    """Populate only the fields ``spec``'s operand signature uses."""
    signature = spec.operands
    fields: dict[str, int] = {}
    if spec.format is InstructionFormat.J:
        fields["target"] = target
    if "rel" in signature or "imm" in signature or "off" in signature:
        fields["imm"] = imm
    if signature in ("rd,rs,rt", "rd,rt,rs"):
        fields.update(rd=rd, rs=rs, rt=rt)
    elif signature == "rd,rt,sha":
        fields.update(rd=rd, rt=rt, shamt=shamt)
    elif signature == "rs" or signature == "rs,rel":
        fields.update(rs=rs)
    elif signature == "rd,rs":
        fields.update(rd=rd, rs=rs)
    elif signature == "rd":
        fields.update(rd=rd)
    elif signature == "rs,rt" or signature == "rs,rt,rel":
        fields.update(rs=rs, rt=rt)
    elif signature in ("rt,rs,imm", "rt,rs,uimm"):
        fields.update(rt=rt, rs=rs)
    elif signature == "rt,uimm":
        fields.update(rt=rt)
    elif signature in ("rt,off(rs)", "ft,off(rs)"):
        fields.update(rt=rt, rs=rs)
    elif signature == "fd,fs,ft":
        fields.update(shamt=shamt, rd=rd, rt=rt)
    elif signature == "fd,fs":
        fields.update(shamt=shamt, rd=rd)
    elif signature == "fs,ft":
        fields.update(rd=rd, rt=rt)
    elif signature == "rt,fs":
        fields.update(rt=rt, rd=rd)
    if "uimm" in signature:
        fields["imm"] = abs(fields.get("imm", 0))
    return Instruction(spec, **fields)
