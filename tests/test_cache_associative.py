"""Tests for the set-associative cache extension."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigurationError
from repro.cache.direct_mapped import simulate_trace
from repro.cache.set_associative import (
    SetAssociativeCache,
    simulate_trace_associative,
)


class TestSetAssociativeCache:
    def test_hit_after_fill(self):
        cache = SetAssociativeCache(256, ways=2)
        assert not cache.access(0)
        assert cache.access(0)

    def test_two_way_survives_direct_mapped_conflict(self):
        # 256 B, 2-way: 4 sets; lines 0 and 4 share set 0 but coexist.
        cache = SetAssociativeCache(256, ways=2)
        cache.access(0)
        cache.access(4 * 32)
        assert cache.access(0)
        assert cache.access(4 * 32)

    def test_lru_eviction(self):
        cache = SetAssociativeCache(256, ways=2)  # 4 sets
        lines = [0, 4, 8]  # all map to set 0
        cache.access(lines[0] * 32)
        cache.access(lines[1] * 32)
        cache.access(lines[0] * 32)  # touch 0: 4 becomes LRU
        cache.access(lines[2] * 32)  # evicts 4
        assert cache.access(lines[0] * 32)
        assert not cache.access(lines[1] * 32)

    def test_one_way_equals_direct_mapped(self):
        addresses = np.array([0, 256, 0, 32, 288, 32, 0], dtype=np.uint32)
        associative = SetAssociativeCache(256, ways=1).run(addresses)
        direct = simulate_trace(addresses, 256)
        assert associative.misses == direct.misses
        assert np.array_equal(associative.miss_lines, direct.miss_lines)

    def test_geometry_validation(self):
        with pytest.raises(ConfigurationError):
            SetAssociativeCache(256, ways=0)
        with pytest.raises(ConfigurationError):
            SetAssociativeCache(100, ways=2)
        with pytest.raises(ConfigurationError):
            SetAssociativeCache(192, ways=2)  # 3 sets

    def test_full_associative_when_one_set(self):
        cache = SetAssociativeCache(256, ways=8)  # 1 set of 8 ways
        for line in range(8):
            cache.access(line * 32)
        assert all(cache.access(line * 32) for line in range(8))


class TestTraceSimulation:
    def test_empty_trace(self):
        stats = simulate_trace_associative(np.array([], dtype=np.uint32), 256, ways=2)
        assert stats.accesses == 0

    def test_matches_reference_model(self):
        rng = np.random.default_rng(3)
        addresses = (rng.integers(0, 512, size=3000) * 4).astype(np.uint32)
        fast = simulate_trace_associative(addresses, 512, ways=2)
        reference = SetAssociativeCache(512, ways=2).run(addresses)
        assert fast.misses == reference.misses
        assert np.array_equal(fast.miss_lines, reference.miss_lines)

    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(st.integers(0, 511), min_size=1, max_size=300),
        st.sampled_from([(256, 2), (512, 4), (1024, 2)]),
    )
    def test_property_event_collapse_is_sound(self, word_indices, geometry):
        cache_bytes, ways = geometry
        addresses = np.array([index * 4 for index in word_indices], dtype=np.uint32)
        fast = simulate_trace_associative(addresses, cache_bytes, ways=ways)
        reference = SetAssociativeCache(cache_bytes, ways=ways).run(addresses)
        assert fast.misses == reference.misses
        assert fast.accesses == reference.accesses

    @settings(max_examples=20, deadline=None)
    @given(st.lists(st.integers(0, 255), min_size=1, max_size=300))
    def test_property_associativity_never_hurts_with_lru(self, word_indices):
        """For a fixed capacity, LRU set-associativity vs direct-mapped:
        more ways may reshuffle conflicts, but a fully associative LRU
        cache never misses more than… (that's only true vs itself), so we
        assert the weaker, always-true invariant: miss counts are bounded
        by the trace length and at least the number of distinct lines'
        compulsory misses."""
        addresses = np.array([index * 4 for index in word_indices], dtype=np.uint32)
        distinct = len(set(index * 4 // 32 for index in word_indices))
        for ways in (1, 2, 4):
            stats = simulate_trace_associative(addresses, 512, ways=ways)
            assert distinct <= stats.misses <= len(addresses)

    def test_espresso_benefits_from_associativity(self):
        """The extension result: espresso's direct-mapped pain (paper
        Section 4.3) is substantially conflict misses."""
        from repro.workloads import load

        trace = load("espresso").run().trace.addresses
        direct = simulate_trace(trace, 1024).miss_rate
        two_way = simulate_trace_associative(trace, 1024, ways=2).miss_rate
        assert two_way < direct
