"""Tests for the CCRP engine: compressor, image, CLB, decoder, refill."""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.errors import ConfigurationError, LATError
from repro.ccrp import (
    CLB,
    DecoderModel,
    ExpandingInstructionCache,
    ProgramCompressor,
    RefillEngine,
)
from repro.compression.block import CompressedBlock
from repro.compression.histogram import byte_histogram
from repro.compression.huffman import HuffmanCode
from repro.memsys import BURST_EPROM, EPROM, SC_DRAM


def make_code(data: bytes) -> HuffmanCode:
    return HuffmanCode.from_frequencies(
        byte_histogram(data), max_length=16, cover_all_symbols=True
    )


def sample_text(lines: int = 40, seed: int = 30) -> bytes:
    rng = random.Random(seed)
    # Skewed byte distribution, like machine code.
    return bytes(rng.choices(range(256), weights=[400] + [4] * 63 + [1] * 192, k=lines * 32))


class TestProgramCompressor:
    def test_image_layout(self):
        text = sample_text()
        image = ProgramCompressor(make_code(text)).compress(text, lat_base=0x1000)
        assert image.lat_base == 0x1000
        assert image.code_base == 0x1000 + image.lat.storage_bytes
        assert image.line_count == 40

    def test_round_trip_through_image(self):
        text = sample_text()
        compressor = ProgramCompressor(make_code(text))
        image = compressor.compress(text)
        restored = compressor.block_compressor.decompress_program(list(image.blocks))
        assert restored[: len(text)] == text

    def test_compression_ratio_below_one_for_skewed_data(self):
        text = sample_text()
        image = ProgramCompressor(make_code(text)).compress(text)
        assert image.compression_ratio < 1.0

    def test_code_table_charged_when_requested(self):
        text = sample_text()
        code = make_code(text)
        free = ProgramCompressor(code).compress(text)
        charged = ProgramCompressor(code, charge_code_table=True).compress(text)
        assert charged.total_stored_bytes == free.total_stored_bytes + 256

    def test_lat_overhead_reported(self):
        text = sample_text()
        image = ProgramCompressor(make_code(text)).compress(text)
        assert image.total_ratio_with_lat > image.compression_ratio
        assert image.lat.overhead_ratio() == pytest.approx(8 / 256)

    def test_memory_image_layout_matches_lat(self):
        text = sample_text()
        image = ProgramCompressor(make_code(text)).compress(text, lat_base=0)
        memory = image.memory_image()
        for line_number in range(image.line_count):
            location = image.lat.locate(line_number)
            start = location.address - image.lat_base
            stored = memory[start : start + location.stored_size]
            assert stored == image.blocks[line_number].data

    def test_line_index_translation(self):
        text = sample_text(lines=8)
        image = ProgramCompressor(make_code(text)).compress(text, text_base=0x400)
        assert image.line_index(0x400 // 32) == 0
        assert image.line_index(0x400 // 32 + 3) == 3

    def test_line_index_rejects_lines_outside_the_image(self):
        # Regression: a line below text_base used to go negative and
        # silently index a block from the END of the program.
        text = sample_text(lines=8)
        image = ProgramCompressor(make_code(text)).compress(text, text_base=0x400)
        base_line = 0x400 // 32
        with pytest.raises(LATError):
            image.line_index(base_line - 1)
        with pytest.raises(LATError):
            image.line_index(base_line + 8)
        with pytest.raises(LATError):
            image.block_for_line(base_line - 1)
        # The last valid line still resolves.
        assert image.block_for_line(base_line + 7) is image.blocks[7]


class TestCLB:
    def test_compulsory_miss_then_hit(self):
        clb = CLB(entries=4)
        assert not clb.access(5)
        assert clb.access(5)
        assert clb.hits == 1 and clb.misses == 1

    def test_lru_eviction_order(self):
        clb = CLB(entries=2)
        clb.access(1)
        clb.access(2)
        clb.access(1)  # 2 is now LRU
        clb.access(3)  # evicts 2
        assert clb.access(1)
        assert not clb.access(2)

    def test_capacity_respected(self):
        clb = CLB(entries=4)
        for index in range(10):
            clb.access(index)
        assert clb.occupancy == 4

    def test_simulate_returns_miss_count(self):
        clb = CLB(entries=2)
        misses = clb.simulate([1, 2, 1, 2, 3, 1])
        assert misses == 4  # 1, 2 compulsory; 3 evicts 1; 1 refetched

    def test_bigger_clb_never_misses_more(self):
        rng = random.Random(31)
        stream = [rng.randrange(12) for _ in range(500)]
        misses = [CLB(entries=n).simulate(stream) for n in (4, 8, 16)]
        assert misses == sorted(misses, reverse=True)

    def test_reset(self):
        clb = CLB(entries=2)
        clb.access(1)
        clb.reset()
        assert clb.occupancy == 0 and clb.misses == 0

    def test_miss_rate(self):
        clb = CLB(entries=2)
        clb.simulate([1, 1, 1, 2])
        assert clb.miss_rate == pytest.approx(0.5)

    def test_invalid_capacity(self):
        with pytest.raises(ConfigurationError):
            CLB(entries=0)


class TestDecoderModel:
    def _compressed_block(self, bits_per_byte: int) -> CompressedBlock:
        """A consistent synthetic block: 32 symbols of equal code length."""
        bit_length = 32 * bits_per_byte
        stored = (bit_length + 7) // 8
        return CompressedBlock(
            data=bytes(stored),
            is_compressed=True,
            bit_length=bit_length,
            symbol_bits=(bits_per_byte,) * 32,
        )

    def test_bypass_block_is_plain_burst(self):
        block = CompressedBlock(
            data=bytes(32), is_compressed=False, bit_length=256, symbol_bits=None
        )
        decoder = DecoderModel()
        assert decoder.refill_cycles(block, EPROM) == 24
        assert decoder.refill_cycles(block, BURST_EPROM) == 10
        assert decoder.refill_cycles(block, SC_DRAM) == 13

    def test_fast_memory_hits_decode_floor(self):
        # With burst EPROM the input always outruns a 2 B/cycle decoder:
        # refill = first word (3) + 32/2 = 19 cycles.
        block = self._compressed_block(bits_per_byte=5)  # 20-byte block
        assert DecoderModel().refill_cycles(block, BURST_EPROM) == 19

    def test_minimum_cycles_formula(self):
        decoder = DecoderModel()
        assert decoder.minimum_cycles(32, BURST_EPROM) == 19
        assert decoder.minimum_cycles(32, EPROM) == 19

    def test_slow_memory_stalls_decoder(self):
        # EPROM delivers a word every 3 cycles; a 20-byte block's last word
        # arrives at cycle 15, so the refill must finish after that.
        block = self._compressed_block(bits_per_byte=5)  # 20-byte block
        cycles = DecoderModel().refill_cycles(block, EPROM)
        assert cycles >= 15
        assert cycles < 24  # still beats the uncompressed refill

    def test_smaller_blocks_refill_no_slower(self):
        decoder = DecoderModel()
        small = decoder.refill_cycles(self._compressed_block(bits_per_byte=2), EPROM)
        large = decoder.refill_cycles(self._compressed_block(bits_per_byte=7), EPROM)
        assert small <= large

    def test_faster_decoder_helps_on_fast_memory(self):
        block = self._compressed_block(bits_per_byte=4)  # 16-byte block
        two = DecoderModel(bytes_per_cycle=2).refill_cycles(block, BURST_EPROM)
        four = DecoderModel(bytes_per_cycle=4).refill_cycles(block, BURST_EPROM)
        one = DecoderModel(bytes_per_cycle=1).refill_cycles(block, BURST_EPROM)
        assert four < two < one

    def test_dram_precharge_respected(self):
        block = self._compressed_block(bits_per_byte=1)  # 4-byte block
        cycles = DecoderModel().refill_cycles(block, SC_DRAM)
        # Burst of 1 word ends at 4, +2 precharge = 6; decode floor = 4+16.
        assert cycles == 20

    def test_invalid_rate_rejected(self):
        with pytest.raises(ConfigurationError):
            DecoderModel(bytes_per_cycle=0)


class TestRefillEngine:
    def _engine(self, memory=EPROM):
        text = sample_text()
        image = ProgramCompressor(make_code(text)).compress(text)
        return RefillEngine(image, memory)

    def test_baseline_refill_matches_memory_model(self):
        assert self._engine(EPROM).baseline_refill_cycles == 24
        assert self._engine(BURST_EPROM).baseline_refill_cycles == 10
        assert self._engine(SC_DRAM).baseline_refill_cycles == 13

    def test_lat_fetch_cycles(self):
        assert self._engine(EPROM).lat_fetch_cycles == 6
        assert self._engine(BURST_EPROM).lat_fetch_cycles == 4

    def test_per_line_tables_cover_all_lines(self):
        engine = self._engine()
        assert len(engine.ccrp_refill_cycles) == engine.image.line_count
        assert (engine.ccrp_refill_cycles > 0).all()

    def test_miss_cycle_reduction(self):
        engine = self._engine()
        misses = np.array([0, 1, 0, 2])
        expected = int(engine.ccrp_refill_cycles[[0, 1, 0, 2]].sum())
        assert engine.ccrp_miss_cycles(misses) == expected

    def test_empty_miss_stream(self):
        engine = self._engine()
        assert engine.ccrp_miss_cycles(np.array([], dtype=np.int64)) == 0
        assert engine.ccrp_fetched_bytes(np.array([], dtype=np.int64)) == 0

    def test_fetched_bytes_word_rounded(self):
        engine = self._engine()
        assert (engine.fetched_bytes_per_line % 4 == 0).all()
        assert (engine.fetched_bytes_per_line <= 32).all()

    def test_eprom_ccrp_refill_beats_baseline_on_compressed_lines(self):
        engine = self._engine(EPROM)
        compressed = [
            index for index, block in enumerate(engine.image.blocks) if block.is_compressed
        ]
        assert compressed, "expected at least one compressed line"
        assert all(
            engine.ccrp_refill_cycles[index] < engine.baseline_refill_cycles
            for index in compressed
        )

    def test_burst_eprom_ccrp_refill_slower_than_baseline(self):
        engine = self._engine(BURST_EPROM)
        compressed = [
            index for index, block in enumerate(engine.image.blocks) if block.is_compressed
        ]
        assert all(
            engine.ccrp_refill_cycles[index] > engine.baseline_refill_cycles
            for index in compressed
        )


class TestExpandingInstructionCache:
    def test_transparent_reads(self):
        text = sample_text(lines=64)
        image = ProgramCompressor(make_code(text)).compress(text)
        cache = ExpandingInstructionCache(image, cache_bytes=512)
        for address in range(0, len(text), 4):
            expected = int.from_bytes(text[address : address + 4], "big")
            assert cache.fetch_word(address) == expected

    def test_hits_and_misses_counted(self):
        text = sample_text(lines=16)
        image = ProgramCompressor(make_code(text)).compress(text)
        cache = ExpandingInstructionCache(image, cache_bytes=1024)
        cache.fetch_word(0)
        cache.fetch_word(4)
        cache.fetch_word(32)
        assert cache.misses == 2 and cache.hits == 1

    def test_conflict_eviction_still_correct(self):
        text = sample_text(lines=32)
        image = ProgramCompressor(make_code(text)).compress(text)
        cache = ExpandingInstructionCache(image, cache_bytes=256)  # 8 sets
        for address in (0, 256, 0, 256):
            expected = int.from_bytes(text[address : address + 4], "big")
            assert cache.fetch_word(address) == expected
        assert cache.misses == 4

    def test_clb_exercised(self):
        text = sample_text(lines=32)
        image = ProgramCompressor(make_code(text)).compress(text)
        cache = ExpandingInstructionCache(image, cache_bytes=256, clb_entries=2)
        for line in range(32):
            cache.read_line(line * 32)
        assert cache.clb.misses >= 4

    def test_unaligned_fetch_rejected(self):
        text = sample_text(lines=8)
        image = ProgramCompressor(make_code(text)).compress(text)
        cache = ExpandingInstructionCache(image, cache_bytes=256)
        with pytest.raises(ConfigurationError):
            cache.fetch_word(2)

    def test_invalid_geometry_rejected(self):
        text = sample_text(lines=8)
        image = ProgramCompressor(make_code(text)).compress(text)
        with pytest.raises(ConfigurationError):
            ExpandingInstructionCache(image, cache_bytes=100)


class TestCLBPolicies:
    def test_unknown_policy_rejected(self):
        with pytest.raises(ConfigurationError):
            CLB(entries=4, policy="plru")

    def test_fifo_ignores_recency(self):
        fifo = CLB(entries=2, policy="fifo")
        fifo.access(1)
        fifo.access(2)
        fifo.access(1)  # touch does not refresh FIFO order
        fifo.access(3)  # evicts 1 (oldest insertion)
        assert not fifo.access(1)

    def test_lru_respects_recency_where_fifo_does_not(self):
        stream = [1, 2, 1, 3, 1, 4, 1, 5, 1]
        lru = CLB(entries=2, policy="lru")
        fifo = CLB(entries=2, policy="fifo")
        assert lru.simulate(stream) < fifo.simulate(stream)

    def test_random_policy_deterministic(self):
        stream = [random.Random(70).randrange(8) for _ in range(200)]
        first = CLB(entries=4, policy="random").simulate(stream)
        second = CLB(entries=4, policy="random").simulate(stream)
        assert first == second

    def test_policies_agree_below_capacity(self):
        stream = [0, 1, 2, 0, 1, 2]
        results = {
            policy: CLB(entries=4, policy=policy).simulate(stream)
            for policy in ("lru", "fifo", "random")
        }
        assert set(results.values()) == {3}

    def test_lru_competitive_on_real_miss_stream(self):
        """On a real workload's LAT-index stream, LRU should not lose to
        FIFO by more than a whisker (and usually wins)."""
        from repro.core.study import ProgramStudy

        study = ProgramStudy("espresso")
        miss_lines = study.cache_stats(512).miss_lines
        lat_stream = (miss_lines // 8).tolist()
        lru = CLB(entries=8, policy="lru").simulate(lat_stream)
        fifo = CLB(entries=8, policy="fifo").simulate(lat_stream)
        assert lru <= fifo * 1.02
