"""Tests for the multiple-preselected-code compression scheme."""

from __future__ import annotations

import random

import pytest

from repro.errors import CompressionError
from repro.compression.histogram import byte_histogram
from repro.compression.huffman import HuffmanCode
from repro.compression.multicode import (
    MultiCodeCompressor,
    train_code_set,
)


def code_for(data: bytes) -> HuffmanCode:
    return HuffmanCode.from_frequencies(
        byte_histogram(data), max_length=16, cover_all_symbols=True
    )


@pytest.fixture(scope="module")
def bimodal_corpus():
    """Two populations of lines with very different byte statistics."""
    rng = random.Random(40)
    zeros_like = [bytes(rng.choices(range(8), k=32)) for _ in range(64)]
    highs_like = [bytes(rng.choices(range(200, 256), k=32)) for _ in range(64)]
    return zeros_like, highs_like


class TestMultiCodeCompressor:
    def test_picks_the_better_code_per_line(self, bimodal_corpus):
        zeros_like, highs_like = bimodal_corpus
        code_low = code_for(b"".join(zeros_like))
        code_high = code_for(b"".join(highs_like))
        compressor = MultiCodeCompressor([code_low, code_high])
        low_block = compressor.compress_line(zeros_like[0])
        high_block = compressor.compress_line(highs_like[0])
        assert low_block.code_index == 0
        assert high_block.code_index == 1

    def test_identity_fallback_for_incompressible_line(self):
        histogram = [0] * 256
        histogram[0] = 1_000_000
        code = HuffmanCode.from_frequencies(histogram, max_length=16, cover_all_symbols=True)
        compressor = MultiCodeCompressor([code])
        block = compressor.compress_line(bytes(range(200, 232)))
        assert block.code_index is None
        assert block.stored_size == 32

    def test_round_trip(self, bimodal_corpus):
        zeros_like, highs_like = bimodal_corpus
        text = b"".join(zeros_like + highs_like)
        codes = [code_for(b"".join(zeros_like)), code_for(b"".join(highs_like))]
        compressor = MultiCodeCompressor(codes)
        blocks = compressor.compress_program(text)
        restored = b"".join(compressor.decompress_block(block) for block in blocks)
        assert restored[: len(text)] == text

    def test_two_codes_beat_one_on_bimodal_data(self, bimodal_corpus):
        zeros_like, highs_like = bimodal_corpus
        text = b"".join(zeros_like + highs_like)
        merged = code_for(text)
        single = MultiCodeCompressor([merged])
        double = MultiCodeCompressor(
            [code_for(b"".join(zeros_like)), code_for(b"".join(highs_like))]
        )
        single_size = single.compressed_size(single.compress_program(text))
        double_size = double.compressed_size(double.compress_program(text))
        assert double_size < single_size

    def test_tag_bits_grow_with_code_count(self, bimodal_corpus):
        zeros_like, highs_like = bimodal_corpus
        code = code_for(b"".join(zeros_like))
        assert MultiCodeCompressor([code]).tag_bits == 1
        assert MultiCodeCompressor([code] * 3).tag_bits == 2
        assert MultiCodeCompressor([code] * 7).tag_bits == 3

    def test_compressed_size_includes_tags(self, bimodal_corpus):
        zeros_like, _ = bimodal_corpus
        text = b"".join(zeros_like)
        compressor = MultiCodeCompressor([code_for(text)])
        blocks = compressor.compress_program(text)
        payload = sum(block.stored_size for block in blocks)
        assert compressor.compressed_size(blocks) == payload + (len(blocks) + 7) // 8

    def test_code_usage_accounting(self, bimodal_corpus):
        zeros_like, highs_like = bimodal_corpus
        text = b"".join(zeros_like + highs_like)
        compressor = MultiCodeCompressor(
            [code_for(b"".join(zeros_like)), code_for(b"".join(highs_like))]
        )
        usage = compressor.code_usage(compressor.compress_program(text))
        assert usage.get(0, 0) >= 60 and usage.get(1, 0) >= 60

    def test_empty_code_list_rejected(self):
        with pytest.raises(CompressionError):
            MultiCodeCompressor([])

    def test_wrong_line_size_rejected(self, bimodal_corpus):
        zeros_like, _ = bimodal_corpus
        compressor = MultiCodeCompressor([code_for(zeros_like[0])])
        with pytest.raises(CompressionError):
            compressor.compress_line(b"\x00" * 16)


class TestTrainCodeSet:
    def test_trains_requested_count(self, bimodal_corpus):
        zeros_like, highs_like = bimodal_corpus
        codes = train_code_set([b"".join(zeros_like), b"".join(highs_like)], code_count=2)
        assert len(codes) == 2
        assert all(code.max_length <= 16 for code in codes)

    def test_trained_pair_separates_populations(self, bimodal_corpus):
        zeros_like, highs_like = bimodal_corpus
        text = b"".join(zeros_like + highs_like)
        codes = train_code_set([text], code_count=2, refinement_rounds=4)
        compressor = MultiCodeCompressor(codes)
        usage = compressor.code_usage(compressor.compress_program(text))
        # Both trained codes should win a meaningful share of lines.
        shares = [usage.get(index, 0) for index in range(2)]
        assert min(shares) >= 16

    def test_more_codes_never_compress_worse(self, bimodal_corpus):
        zeros_like, highs_like = bimodal_corpus
        text = b"".join(zeros_like + highs_like)
        sizes = []
        for count in (1, 2, 4):
            codes = train_code_set([text], code_count=count)
            compressor = MultiCodeCompressor(codes)
            payload = sum(
                block.stored_size for block in compressor.compress_program(text)
            )
            sizes.append(payload)
        assert sizes[1] <= sizes[0]
        assert sizes[2] <= sizes[1] + 32  # refinement is greedy, allow noise

    def test_invalid_inputs(self):
        with pytest.raises(CompressionError):
            train_code_set([b"\x00" * 64], code_count=0)
        with pytest.raises(CompressionError):
            train_code_set([], code_count=1)
