"""Chaos tests: the service under injected faults.

A :class:`~repro.service.chaos.ChaosProxy` sits between the client and a
live server, tearing frames, resetting connections, delaying traffic,
and killing workers on a *replayable* schedule.  The invariant under
test is the resilience contract of ISSUE 10: every request ends in
either a byte-identical correct response or a typed
:class:`~repro.errors.ServiceError` — never a hang, never a raw
``OSError`` traceback.

Determinism discipline: every fault placement is pure data (a
:class:`ScriptedSchedule`) or a stateless function of a seed (a
:class:`SeededSchedule`); the proxy's transcript records what actually
fired, and the seeded scenario is executed twice end-to-end to prove the
whole run replays.
"""

from __future__ import annotations

import pytest

from repro.errors import ServiceError
from repro.service.chaos import DOWN, UP, ChaosAction, ScriptedSchedule, SeededSchedule

from service_harness import LiveService

#: A tiny but compressible program segment (shared by every scenario so
#: byte-identical comparisons are meaningful across servers and runs).
TEXT = bytes(range(64)) * 48 + b"\x00" * 256

SIM = {"workload": "eightq", "cache_bytes": 512, "clb_entries": 8}


def _clean_answer(live: LiveService) -> tuple[dict, bytes]:
    """The ground-truth response, fetched without any proxy in the way."""
    with live.client() as client:
        return client.compress(TEXT)


class TestScriptedFaults:
    def test_delays_do_not_change_bytes(self, tmp_path):
        schedule = ScriptedSchedule(
            {
                (0, UP, 0): ChaosAction("delay", delay=0.01),
                (0, DOWN, 0): ChaosAction("delay", delay=0.01),
            }
        )
        with LiveService(str(tmp_path), workers=1) as live:
            expected = _clean_answer(live)
            with live.chaos(schedule) as chaos:
                with chaos.client() as client:
                    assert client.compress(TEXT) == expected
        kinds = [event[3] for event in chaos.proxy.events]
        assert kinds.count("delay") == 2

    def test_truncated_response_is_retried_to_byte_identical(self, tmp_path):
        # The first connection's first response is torn mid-prefix; the
        # retry reconnects (connection 1) and must get the same bytes a
        # fault-free client gets.
        schedule = ScriptedSchedule(
            {(0, DOWN, 0): ChaosAction("truncate", keep_bytes=7)}
        )
        with LiveService(str(tmp_path), workers=1) as live:
            expected = _clean_answer(live)
            with live.chaos(schedule) as chaos:
                with chaos.client(retries=2, backoff_base=0.0, backoff_seed=7) as client:
                    assert client.compress(TEXT) == expected
        assert (0, DOWN, 0, "truncate") in chaos.proxy.events
        assert any(event[0] == 1 for event in chaos.proxy.events), (
            "the retry should have arrived on a fresh connection"
        )

    def test_reset_request_is_retried_to_byte_identical(self, tmp_path):
        schedule = ScriptedSchedule({(0, UP, 0): ChaosAction("reset")})
        with LiveService(str(tmp_path), workers=1) as live:
            expected = _clean_answer(live)
            with live.chaos(schedule) as chaos:
                with chaos.client(retries=2, backoff_base=0.0, backoff_seed=7) as client:
                    assert client.compress(TEXT) == expected

    def test_reset_without_retries_is_a_typed_error(self, tmp_path):
        schedule = ScriptedSchedule({(0, UP, 0): ChaosAction("reset")})
        with LiveService(str(tmp_path), workers=1) as live:
            with live.chaos(schedule) as chaos:
                with chaos.client(retries=0) as client:
                    with pytest.raises(ServiceError) as caught:
                        client.compress(TEXT)
        error = caught.value
        assert error.code in {"connection_lost", "protocol", "timeout"}
        assert error.op == "compress"
        assert error.attempts == 1
        assert error.address == chaos.address

    def test_worker_kill_is_invisible_to_the_caller(self, tmp_path):
        # The schedule kills a worker immediately before the request is
        # forwarded; the server restarts the pool and the caller still
        # gets the fault-free bytes, without even needing a retry.
        schedule = ScriptedSchedule({(0, UP, 0): ChaosAction("kill_worker")})
        with LiveService(str(tmp_path), workers=1, debug=True) as live:
            expected = _clean_answer(live)
            with live.chaos(schedule) as chaos:
                with chaos.client(retries=2, backoff_base=0.0, backoff_seed=7) as client:
                    assert client.compress(TEXT) == expected
            stats = live.wait_stats(
                lambda s: s["counters"].get("service.worker_restarts", 0) >= 1,
                what="pool restart observed",
            )
            assert stats["counters"]["service.worker_crashes"] >= 1


class TestSeededChaos:
    def _run_scenario(self, root, seed: int):
        """One full seeded scenario; returns (outcomes, transcript).

        Eight sequential compress requests through a proxy that delays,
        tears, and resets on the seeded schedule.  Outcomes are
        ``("ok", result, payload)`` or ``("err", code)`` — the typed
        universe; anything else escapes as a test failure.
        """
        schedule = SeededSchedule(
            seed, delay_rate=0.2, truncate_rate=0.2, reset_rate=0.1, max_delay=0.005
        )
        root.mkdir(parents=True, exist_ok=True)
        outcomes = []
        with LiveService(str(root), workers=1, response_cache=False) as live:
            with live.chaos(schedule) as chaos:
                for index in range(8):
                    # One client per request: connection numbers (and so
                    # the schedule) depend only on the request index.
                    with chaos.client(
                        retries=3, backoff_base=0.001, backoff_seed=seed + index
                    ) as client:
                        try:
                            result, payload = client.compress(TEXT + bytes([index]))
                            outcomes.append(("ok", result, payload))
                        except ServiceError as error:
                            outcomes.append(("err", error.code))
                transcript = chaos.transcript()
        return outcomes, transcript

    def test_same_seed_replays_identically(self, tmp_path):
        first = self._run_scenario(tmp_path / "a", seed=1234)
        second = self._run_scenario(tmp_path / "b", seed=1234)
        assert first == second

    def test_every_outcome_is_correct_or_typed(self, tmp_path):
        outcomes, transcript = self._run_scenario(tmp_path / "run", seed=99)
        assert len(outcomes) == 8
        injected = {event[3] for event in transcript} - {"pass"}
        assert injected, "seed 99 should inject at least one fault"
        # Cross-check the ok outcomes against a fault-free server: the
        # chaos path must yield byte-identical results.
        (tmp_path / "clean").mkdir()
        with LiveService(str(tmp_path / "clean"), workers=1) as live:
            with live.client() as client:
                for index, outcome in enumerate(outcomes):
                    if outcome[0] == "ok":
                        _, result, payload = outcome
                        assert client.compress(TEXT + bytes([index])) == (
                            result,
                            payload,
                        )
                    else:
                        assert outcome[1] in {
                            "connection_lost",
                            "protocol",
                            "timeout",
                            "unavailable",
                        }

    def test_seeded_schedule_is_a_pure_function(self):
        one = SeededSchedule(7, delay_rate=0.3, truncate_rate=0.3, reset_rate=0.2)
        two = SeededSchedule(7, delay_rate=0.3, truncate_rate=0.3, reset_rate=0.2)
        keys = [
            (conn, direction, frame)
            for conn in range(4)
            for direction in (UP, DOWN)
            for frame in range(16)
        ]
        # Query in opposite orders: decisions must not depend on call
        # sequence, only on the key.
        forward = [one.action(*key) for key in keys]
        backward = [two.action(*key) for key in reversed(keys)]
        assert forward == list(reversed(backward))
        assert SeededSchedule(8).action(0, UP, 0) == ChaosAction("pass")
