"""Service protocol properties and live-server golden round trips.

Two layers, matching the two halves of :mod:`repro.service`:

* pure frame-protocol properties (hypothesis): any header/payload pair
  survives encode → chunked incremental decode bit-for-bit, for any
  split of the byte stream — including byte-at-a-time delivery, empty
  payloads, and payloads past 64 KiB — while garbage fails fast with a
  clean :class:`~repro.errors.ProtocolError` and never a hang;
* golden identity through a live server: ``compress`` over the socket
  produces byte-identical blobs to calling
  :class:`~repro.ccrp.compressor.ProgramCompressor` directly, and
  ``decompress`` returns the exact original bytes.
"""

from __future__ import annotations

import asyncio
import json
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.ccrp.compressor import ProgramCompressor
from repro.core.standard import standard_code
from repro.errors import ProtocolError, ServiceError
from repro.service.protocol import (
    HEADER_STRUCT,
    MAGIC,
    MAX_PAYLOAD_BYTES,
    VERSION,
    FrameDecoder,
    encode_frame,
    read_frame,
)

from service_harness import LiveService

# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------

json_scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**31), max_value=2**31),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.text(max_size=20),
)

headers = st.dictionaries(
    st.text(min_size=1, max_size=10),
    st.one_of(json_scalars, st.lists(json_scalars, max_size=4)),
    max_size=6,
)

payloads = st.binary(max_size=512)


def chunked(data: bytes, rng: random.Random) -> list[bytes]:
    """Split ``data`` into random-size chunks (possibly empty ones)."""
    chunks = []
    position = 0
    while position < len(data):
        size = rng.randint(1, max(1, min(len(data) - position, 97)))
        chunks.append(data[position : position + size])
        position += size
    return chunks


# ----------------------------------------------------------------------
# Frame protocol properties
# ----------------------------------------------------------------------


class TestFrameRoundTrip:
    @given(header=headers, payload=payloads, seed=st.integers(0, 2**32))
    @settings(max_examples=60, deadline=None)
    def test_chunked_decode_is_identity(self, header, payload, seed):
        wire = encode_frame(header, payload)
        decoder = FrameDecoder()
        frames = []
        for chunk in chunked(wire, random.Random(seed)):
            decoder.feed(chunk)
            while True:
                frame = decoder.next_frame()
                if frame is None:
                    break
                frames.append(frame)
        assert len(frames) == 1
        decoded_header, decoded_payload = frames[0]
        assert decoded_payload == payload
        # JSON round trip: compare through the same canonicalisation.
        assert decoded_header == json.loads(json.dumps(header))
        assert decoder.buffered == 0

    @given(
        parts=st.lists(st.tuples(headers, payloads), min_size=2, max_size=5),
        seed=st.integers(0, 2**32),
    )
    @settings(max_examples=30, deadline=None)
    def test_back_to_back_frames_preserve_order(self, parts, seed):
        wire = b"".join(encode_frame(h, p) for h, p in parts)
        decoder = FrameDecoder()
        frames = []
        for chunk in chunked(wire, random.Random(seed)):
            decoder.feed(chunk)
            while (frame := decoder.next_frame()) is not None:
                frames.append(frame)
        assert [payload for _, payload in frames] == [p for _, p in parts]

    def test_empty_payload(self):
        decoder = FrameDecoder()
        decoder.feed(encode_frame({"op": "ping"}, b""))
        header, payload = decoder.next_frame()
        assert header == {"op": "ping"}
        assert payload == b""

    def test_payload_past_64kib(self):
        big = random.Random(7).randbytes(100_000)
        decoder = FrameDecoder()
        for chunk in chunked(encode_frame({"id": 1}, big), random.Random(11)):
            decoder.feed(chunk)
        assert decoder.next_frame() == ({"id": 1}, big)

    @given(prefix_len=st.integers(0, 11))
    @settings(max_examples=12, deadline=None)
    def test_partial_frame_is_never_a_frame(self, prefix_len):
        wire = encode_frame({"op": "ping"}, b"xy")
        decoder = FrameDecoder()
        decoder.feed(wire[:prefix_len])
        assert decoder.next_frame() is None  # needs more bytes, no hang


class TestFrameErrors:
    @given(garbage=st.binary(min_size=12, max_size=64))
    @settings(max_examples=60, deadline=None)
    def test_garbage_is_error_or_incomplete_never_hang(self, garbage):
        decoder = FrameDecoder()
        decoder.feed(garbage)
        try:
            frame = decoder.next_frame()
        except ProtocolError:
            # Poisoned: every further use re-raises.
            with pytest.raises(ProtocolError):
                decoder.next_frame()
            with pytest.raises(ProtocolError):
                decoder.feed(b"more")
            return
        # Only byte streams that genuinely start like a frame get this
        # far — and then they are either complete or still waiting.
        assert garbage[:2] == MAGIC
        assert frame is None or isinstance(frame[0], dict)

    def test_bad_magic(self):
        decoder = FrameDecoder()
        decoder.feed(b"XX" + bytes(10))
        with pytest.raises(ProtocolError, match="magic"):
            decoder.next_frame()

    def test_bad_version(self):
        decoder = FrameDecoder()
        decoder.feed(HEADER_STRUCT.pack(MAGIC, VERSION + 1, 0, 2, 0))
        with pytest.raises(ProtocolError, match="version"):
            decoder.next_frame()

    def test_reserved_flags(self):
        decoder = FrameDecoder()
        decoder.feed(HEADER_STRUCT.pack(MAGIC, VERSION, 0x80, 2, 0))
        with pytest.raises(ProtocolError, match="flags"):
            decoder.next_frame()

    def test_oversized_payload_declaration_fails_immediately(self):
        # The length field alone must reject the frame — the decoder
        # never waits for (or buffers) a quarter-gigabyte body.
        decoder = FrameDecoder()
        decoder.feed(HEADER_STRUCT.pack(MAGIC, VERSION, 0, 2, MAX_PAYLOAD_BYTES + 1))
        with pytest.raises(ProtocolError, match="payload length"):
            decoder.next_frame()

    def test_unparsable_header_json(self):
        body = b"not json"
        decoder = FrameDecoder()
        decoder.feed(HEADER_STRUCT.pack(MAGIC, VERSION, 0, len(body), 0) + body)
        with pytest.raises(ProtocolError, match="unparsable"):
            decoder.next_frame()

    def test_non_object_header(self):
        body = b"[1,2]"
        decoder = FrameDecoder()
        decoder.feed(HEADER_STRUCT.pack(MAGIC, VERSION, 0, len(body), 0) + body)
        with pytest.raises(ProtocolError, match="JSON object"):
            decoder.next_frame()

    def test_non_dict_header_refused_on_encode(self):
        with pytest.raises(ProtocolError):
            encode_frame(["not", "a", "dict"])


class TestAsyncReadFrame:
    def _reader(self, data: bytes, eof: bool = True) -> asyncio.StreamReader:
        reader = asyncio.StreamReader()
        reader.feed_data(data)
        if eof:
            reader.feed_eof()
        return reader

    def test_clean_eof_is_none(self):
        async def scenario():
            return await read_frame(self._reader(b""))

        assert asyncio.run(scenario()) is None

    def test_whole_frame(self):
        async def scenario():
            return await read_frame(self._reader(encode_frame({"id": 3}, b"zz")))

        assert asyncio.run(scenario()) == ({"id": 3}, b"zz")

    def test_eof_inside_prefix(self):
        async def scenario():
            return await read_frame(self._reader(b"CZ\x01"))

        with pytest.raises(ProtocolError, match="frame prefix"):
            asyncio.run(scenario())

    def test_eof_inside_body(self):
        wire = encode_frame({"id": 4}, b"payload")

        async def scenario():
            return await read_frame(self._reader(wire[:-3]))

        with pytest.raises(ProtocolError, match="frame body"):
            asyncio.run(scenario())


# ----------------------------------------------------------------------
# Golden identity through a live server
# ----------------------------------------------------------------------


@pytest.fixture(scope="module")
def live(tmp_path_factory):
    with LiveService(
        str(tmp_path_factory.mktemp("service")), workers=2, batch_max=4
    ) as service:
        yield service


#: A deterministic pseudo-program: structured enough to compress.
PROGRAM = (bytes(range(0, 256, 4)) * 9 + b"\x00" * 200)[:768]


class TestLiveServerGolden:
    def test_ping(self, live):
        with live.client() as client:
            assert client.ping()

    def test_compress_matches_direct_library_call(self, live):
        direct = ProgramCompressor(
            standard_code(), alignment=1, integrity=True
        ).compress(PROGRAM)
        with live.client() as client:
            meta, blob = client.compress(PROGRAM, alignment=1, integrity=True)
        assert blob == b"".join(block.data for block in direct.blocks)
        assert meta["block_sizes"] == [b.stored_size for b in direct.blocks]
        assert meta["line_crcs"] == direct.line_crcs.hex()
        assert meta["compression_ratio"] == pytest.approx(direct.compression_ratio)

    def test_decompress_round_trip_is_byte_identical(self, live):
        with live.client() as client:
            for alignment in (1, 4):
                meta, blob = client.compress(PROGRAM, alignment=alignment)
                assert client.decompress(meta, blob) == PROGRAM

    def test_large_payload_round_trip(self, live):
        big = random.Random(13).randbytes(96 * 1024)  # > 64 KiB
        with live.client() as client:
            meta, blob = client.compress(big)
            assert client.decompress(meta, blob) == big

    def test_integrity_corruption_is_attributed(self, live):
        with live.client() as client:
            meta, blob = client.compress(PROGRAM, integrity=True)
            # Flip a byte inside the stored blob: the CRC table catches
            # it server-side and names a line.
            corrupt = bytearray(blob)
            corrupt[len(corrupt) // 2] ^= 0xFF
            with pytest.raises(ServiceError) as excinfo:
                client.decompress(meta, bytes(corrupt))
        assert excinfo.value.code == "integrity"
        assert "line" in str(excinfo.value)

    def test_bad_metadata_is_bad_request(self, live):
        with live.client() as client:
            with pytest.raises(ServiceError) as excinfo:
                client.request("decompress", {"line_size": 32}, b"xx")
        assert excinfo.value.code == "bad_request"

    def test_unknown_op_is_refused(self, live):
        with live.client() as client:
            with pytest.raises(ServiceError):
                client.request("transmogrify", {})

    def test_debug_ops_refused_without_debug(self, live):
        with live.client() as client:
            with pytest.raises(ServiceError):
                client.request("crash", {})
            with pytest.raises(ServiceError):
                client.request("compress", {"_gate": ["/tmp/x", "/tmp/y"]}, b"z")

    def test_split_writes_reach_the_server_intact(self, live):
        # Dribble one request frame over the raw socket in tiny pieces;
        # the server must reassemble and answer normally.
        wire = encode_frame(
            {"id": 9, "op": "ping", "params": {}, "client": "dribble"}
        )
        client = live.client(name="dribble")
        try:
            for position in range(0, len(wire), 3):
                client._sock.sendall(wire[position : position + 3])
            response_id, header, _ = client.recv()
            assert response_id == 9
            assert header["ok"] is True
        finally:
            client.close()

    def test_garbage_bytes_get_protocol_error_then_close(self, live):
        client = live.client(name="garbage")
        try:
            client._sock.sendall(b"\xde\xad\xbe\xef" + bytes(20))
            _, header, _ = client.recv()
            assert header["ok"] is False
            assert header["error"]["code"] == "protocol"
            # Server hangs up after a framing violation.
            assert client._sock.recv(1) == b""
        finally:
            client.close()

    def test_stats_expose_endpoint_counters_and_latency(self, live):
        with live.client() as client:
            client.ping()
            stats = client.stats()
        assert stats["counters"]["requests.ping"] >= 1
        assert stats["counters"]["requests.compress"] >= 1
        assert stats["counters"]["service.connections"] >= 2
        assert stats["counters"]["service.bytes_in"] > 0
        assert stats["counters"]["service.bytes_out"] > 0
        ping_latency = stats["observations"]["latency.ping"]
        assert ping_latency["count"] >= 1
        assert 0 <= ping_latency["p50"] <= ping_latency["p99"] <= ping_latency["max"]
        assert stats["server"]["queue_limit"] == 64
        assert stats["server"]["workers"] == 2
