"""Embedded design-space exploration with the CCRP simulator.

The paper argues the CCRP decision should be made per design: "Since this
method is designed for embedded systems, this could be determined at
development time."  This example plays that role for a chosen firmware
workload: sweep cache size x memory model x CLB size, then report where
compressed code wins, where it costs, and what the ROM savings buy.

    python examples/design_space.py [workload]
"""

import sys

from repro.core import ProgramStudy, SystemConfig
from repro.workloads import SIMULATION_PROGRAMS


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "nasa7"
    if name not in SIMULATION_PROGRAMS:
        raise SystemExit(f"pick one of {SIMULATION_PROGRAMS}")

    study = ProgramStudy(name)
    image = study.image
    print(f"design-space study: {name}")
    print(f"  original text : {image.original_size:,} bytes")
    print(
        f"  compressed    : {image.total_stored_bytes:,} bytes "
        f"({image.total_ratio_with_lat:.1%} incl. {image.lat.storage_bytes:,}B LAT)"
    )
    saved = image.original_size - image.total_stored_bytes
    print(f"  ROM saved     : {saved:,} bytes per unit\n")

    print(f"{'memory':12s} {'cache':>6s} {'miss':>7s} {'T_CCRP/T_std':>13s}  verdict")
    best = None
    for memory in ("eprom", "burst_eprom", "sc_dram"):
        for cache_bytes in (256, 512, 1024, 2048, 4096):
            report = study.metrics(SystemConfig(cache_bytes=cache_bytes, memory=memory))
            relative = report.relative_execution_time
            if relative <= 1.0:
                verdict = "CCRP wins (smaller AND no slower)"
            elif relative < 1.05:
                verdict = "CCRP costs <5% time for the ROM savings"
            else:
                verdict = f"CCRP costs {relative - 1:.0%} time"
            print(
                f"{memory:12s} {cache_bytes:5d}B {report.miss_rate:6.2%} "
                f"{relative:13.3f}  {verdict}"
            )
            key = (relative, -cache_bytes)
            if best is None or key < best[0]:
                best = (key, memory, cache_bytes, relative)
    print()
    _, memory, cache_bytes, relative = best
    print(
        f"best CCRP operating point: {memory}, {cache_bytes} B cache "
        f"(relative time {relative:.3f})"
    )

    print("\nCLB sizing at that point:")
    for entries in (4, 8, 16):
        report = study.metrics(
            SystemConfig(cache_bytes=cache_bytes, memory=memory, clb_entries=entries)
        )
        print(
            f"  {entries:2d} entries: relative time {report.relative_execution_time:.4f} "
            f"({report.ccrp.clb_misses:,} CLB misses)"
        )
    print("\nAs the paper observes, CLB size barely matters at these working sets.")


if __name__ == "__main__":
    main()
