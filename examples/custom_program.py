"""Bring your own firmware: assemble, execute, compress, and verify.

Walks the complete CCRP toolchain on a small hand-written MIPS program —
the development flow the paper proposes (standard compiler output, then a
host-side compression tool, then transparent execution from the
code-expanding cache):

1. assemble MIPS-I source with the library's assembler,
2. execute it on the functional simulator (it prints via syscalls),
3. compress it into a LAT + blocks instruction-memory image,
4. re-fetch its dynamic instruction stream through the *functional*
   decompressing cache and verify every word bit-for-bit,
5. report the performance comparison for an EPROM-based design.
"""

from repro.ccrp import ExpandingInstructionCache, ProgramCompressor
from repro.core import SystemConfig
from repro.core.standard import standard_code
from repro.core.study import ProgramStudy
from repro.isa import Assembler
from repro.machine import Machine
from repro.workloads.suite import Workload

SOURCE = """
# Sieve of Eratosthenes over [2, 1000): counts primes, prints the count.
.text
main:
    la   $s0, flags
    li   $t0, 0
clear:
    addu $t1, $s0, $t0
    sb   $zero, 0($t1)
    addiu $t0, $t0, 1
    li   $t2, 1000
    bne  $t0, $t2, clear
    nop

    li   $s1, 2             # candidate
    li   $s2, 0             # prime count
outer:
    addu $t0, $s0, $s1
    lbu  $t1, 0($t0)
    bnez $t1, next          # already crossed out
    nop
    addiu $s2, $s2, 1       # found a prime
    addu $t3, $s1, $s1      # first multiple
mark:
    slti $t4, $t3, 1000
    beqz $t4, next
    nop
    addu $t5, $s0, $t3
    li   $t6, 1
    sb   $t6, 0($t5)
    b    mark
    addu $t3, $t3, $s1      # delay slot: advance multiple
next:
    addiu $s1, $s1, 1
    li   $t2, 1000
    bne  $s1, $t2, outer
    nop

    li   $v0, 1             # print the count
    move $a0, $s2
    syscall
    li   $v0, 11
    li   $a0, 10
    syscall
    move $a0, $s2
    li   $v0, 10
    syscall

.data
flags: .space 1024
"""


def main() -> None:
    # 1. assemble
    program = Assembler().assemble(SOURCE)
    print(f"assembled: {program.size} bytes of MIPS-I text")

    # 2. execute
    result = Machine(program).run()
    print(f"executed : {result.instructions_executed:,} instructions")
    print(f"output   : {result.output.strip()} primes below 1000 (expect 168)")
    assert result.exit_code == 168

    # 3. compress
    compressor = ProgramCompressor(standard_code())
    image = compressor.compress(program.text)
    print(
        f"compressed: {image.total_stored_bytes} bytes "
        f"({image.total_ratio_with_lat:.1%} of original, incl. LAT)"
    )

    # 4. transparent re-fetch through the real decompressing cache
    cache = ExpandingInstructionCache(image, cache_bytes=256)
    for address in sorted(set(int(a) for a in result.trace.addresses)):
        fetched = cache.fetch_word(address)
        original = int.from_bytes(program.text[address : address + 4], "big")
        assert fetched == original, f"mismatch at {address:#x}"
    print(
        f"verified : every fetched word identical through the expanding cache "
        f"({cache.misses} refills, {cache.clb.misses} CLB misses)"
    )

    # 5. performance comparison
    workload = Workload(name="sieve", program=program, executable=True)
    study = ProgramStudy(workload)
    for memory in ("eprom", "burst_eprom"):
        report = study.metrics(SystemConfig(cache_bytes=256, memory=memory))
        print(
            f"{memory:12s}: miss {report.miss_rate:.2%}, "
            f"T_CCRP/T_std = {report.relative_execution_time:.3f}"
        )


if __name__ == "__main__":
    main()
