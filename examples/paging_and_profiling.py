"""The paper's future-work ideas, live: profiling and compressed paging.

Section 5 closes with two threads this library implements:

* pixie-style profiling of the workloads ("the diagnostic profiling tool
  pixie was used to document the detailed behavior of each program");
* applying the CLB/LAT idea one level down, to demand-paged memory ("the
  similarity of the CLB/LAT structure to the TLB/page table structure
  indicates that there may be some benefit...").

    python examples/paging_and_profiling.py [workload]
"""

import sys

from repro.ccrp import CompressedPageStore, PagedMemorySimulator
from repro.core.standard import standard_code
from repro.machine import profile
from repro.workloads import SIMULATION_PROGRAMS, load


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "espresso"
    if name not in SIMULATION_PROGRAMS:
        raise SystemExit(f"pick one of {SIMULATION_PROGRAMS}")

    workload = load(name)
    result = workload.run()

    print(f"=== pixie-style profile: {name} ===\n")
    print(profile(result, workload.program).render(top=8))

    print(f"\n=== compressed demand paging: {name} ===\n")
    store = CompressedPageStore(workload.text, standard_code())
    print(
        f"backing store : {store.stored_size:,} bytes compressed vs "
        f"{store.original_size:,} uncompressed ({store.compression_ratio:.1%})"
    )
    print(f"{'memory':12s} {'frames':>6s} {'faults':>8s} {'CCRP cycles':>12s} {'std cycles':>11s}")
    for memory in ("eprom", "burst_eprom", "sc_dram"):
        for frames in (8, 16, 32):
            simulator = PagedMemorySimulator(store, frames=frames, memory=memory)
            compressed, baseline = simulator.compare(result.trace.addresses)
            print(
                f"{memory:12s} {frames:6d} {compressed.faults:8,d} "
                f"{compressed.fault_cycles:12,d} {baseline.fault_cycles:11,d}"
            )
    print()
    print("On slow EPROM backing store the compressed pages are faster to")
    print("fault in as well as smaller; on burst memory the expansion rate")
    print("becomes the bottleneck — the same trade as the cache-level CCRP.")


if __name__ == "__main__":
    main()
