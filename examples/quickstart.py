"""Quickstart: compress a program and compare the two machines.

Runs the paper's core experiment on one workload: execute it, compress it
with the preselected bounded Huffman code, and price the same miss stream
on a standard RISC system and on the CCRP under all three embedded memory
models.

Usage::

    python examples/quickstart.py [workload]
"""

import sys

from repro.core import SystemConfig, compare
from repro.workloads import SIMULATION_PROGRAMS, load


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "espresso"
    if name not in SIMULATION_PROGRAMS:
        raise SystemExit(f"pick one of {SIMULATION_PROGRAMS}")

    workload = load(name)
    result = workload.run()
    print(f"workload: {name}")
    print(f"  text segment        : {workload.size:,} bytes")
    print(f"  dynamic instructions: {result.instructions_executed:,}")
    print(f"  data accesses       : {result.data_accesses:,}")
    print()

    first = compare(name, SystemConfig(cache_bytes=1024, memory="eprom"))
    print(f"compressed image: {first.compression_ratio:.1%} of original (incl. LAT)")
    print()
    print(f"{'memory':12s} {'cache':>6s} {'miss rate':>10s} {'T_CCRP/T_std':>13s} {'traffic':>8s}")
    for memory in ("eprom", "burst_eprom", "sc_dram"):
        for cache_bytes in (256, 1024, 4096):
            report = compare(name, SystemConfig(cache_bytes=cache_bytes, memory=memory))
            print(
                f"{memory:12s} {cache_bytes:5d}B "
                f"{report.miss_rate:9.2%} "
                f"{report.relative_execution_time:13.3f} "
                f"{report.memory_traffic_ratio:7.1%}"
            )
    print()
    print("Values below 1.0 mean the Compressed Code RISC Processor is faster;")
    print("slow EPROM favours the CCRP, fast burst memory favours the baseline.")


if __name__ == "__main__":
    main()
