"""Compare the paper's four compression methods on any byte stream.

By default this reproduces the Figure 5 corpus comparison; point it at a
file to see how *your* data fares under cache-line-bounded compression:

    python examples/compression_explorer.py              # paper corpus
    python examples/compression_explorer.py /bin/ls      # any file
"""

import sys

from repro.compression.block import BlockCompressor
from repro.compression.histogram import byte_histogram
from repro.compression.huffman import HuffmanCode
from repro.compression.lzw import lzw_compress
from repro.core.standard import standard_code
from repro.experiments.figure5 import run_figure5


def explore_file(path: str) -> None:
    with open(path, "rb") as handle:
        data = handle.read()
    if len(data) < 64:
        raise SystemExit("file too small to be interesting")
    print(f"{path}: {len(data):,} bytes\n")

    histogram = byte_histogram(data)
    methods = {
        "Unix compress (LZW)": len(lzw_compress(data)),
    }
    traditional = HuffmanCode.from_frequencies(histogram)
    bounded = HuffmanCode.from_frequencies(histogram, max_length=16)
    preselected = standard_code()
    for label, code, table in (
        ("Traditional Huffman", traditional, 256),
        ("Bounded Huffman (16b)", bounded, 256),
        ("Preselected Bounded", preselected, 0),
    ):
        blocks = BlockCompressor(code).compress_program(data)
        stored = sum(block.stored_size for block in blocks) + table
        bypassed = sum(1 for block in blocks if not block.is_compressed)
        methods[label] = stored
        print(f"  {label:22s}: {stored / len(data):6.1%}  ({bypassed} bypass lines)")
    print(f"  {'Unix compress (LZW)':22s}: {methods['Unix compress (LZW)'] / len(data):6.1%}")
    print("\nNote: the preselected code was trained on MIPS machine code —")
    print("the further your data is from that, the worse it does (the paper's")
    print("fpppp effect).")


def main() -> None:
    if len(sys.argv) > 1:
        explore_file(sys.argv[1])
        return
    print(run_figure5().render())
    print()
    print("Block-bounded Huffman keeps ~75% ratios decodable one cache line")
    print("at a time; whole-file LZW compresses harder but cannot support")
    print("random refill, which is the entire point of the CCRP design.")


if __name__ == "__main__":
    main()
