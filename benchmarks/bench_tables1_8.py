"""Benchmark: regenerate Tables 1-8 (performance vs cache size).

All eight simulation programs, 256 B-4 KB caches, EPROM + Burst EPROM
(+ DRAM for the first program), 16-entry CLB, 100 % data-cache misses.
"""

from repro.experiments.tables1_8 import run_tables1_8


def test_tables1_8_reproduction(run_once):
    result = run_once(run_tables1_8)
    print()
    print(result.render())

    for table in result.tables:
        eprom_256 = next(
            row for row in table.rows if row.memory == "eprom" and row.cache_bytes == 256
        )
        # Paper: with EPROM, compressed code (almost) always wins or ties.
        assert eprom_256.relative_performance < 1.02
        for row in table.rows:
            if row.miss_rate > 0.001:
                assert row.memory_traffic < 1.0  # traffic reduced in all cases
            if row.memory == "burst_eprom":
                assert row.relative_performance >= 0.999  # fast memory: no free lunch
