"""Benchmark: the dense-ISA alternative comparison (paper Section 1)."""

from repro.experiments.dense_isa import run_dense_isa


def test_dense_isa(run_once):
    result = run_once(run_dense_isa)
    print()
    print(result.render())

    # Both strategies must shrink the corpus; neither dominates everywhere,
    # and both weighted averages land in the same density band.
    assert 0.7 < result.weighted_dense < 0.95
    assert 0.65 < result.weighted_ccrp < 0.85
    for row in result.rows:
        assert row.dense_ratio < 1.0
        assert 0.1 < row.dense_fraction < 0.8
