"""Benchmark: pipeline timing backends — exact replay vs vectorized timeline.

Measures the *timing substrate*, not the paper's results: for every
tier-1 workload it times

* the additive backend's cost (the executor's folded-in stall counters —
  effectively free at study time, the reference throughput),
* the vectorized block timeline (:func:`repro.pipeline.timeline.replay_trace`,
  what ``--timing pipeline`` actually runs), and
* the exact per-instruction scoreboard replay
  (:func:`repro.pipeline.datapath.simulate_pipeline`) over a bounded
  prefix, extrapolated to full-trace cost,

and reports dynamic instructions per second for each plus the
timeline-over-exact speedup.  The timeline's hazard totals are also
checked against the exact replay on the measured prefix (lower bound,
see the module docstring of :mod:`repro.pipeline.timeline`), so the
speedup claim is tied to a correctness gate.

Run from the repository root::

    PYTHONPATH=src python benchmarks/bench_pipeline.py

and it writes ``BENCH_pipeline.json``.  ``--smoke`` runs one workload
with a short prefix and fails on any bound violation (CI uses this);
``--metrics FILE`` writes the record to an extra location.
"""

from __future__ import annotations

import argparse
import json
import math
import os
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

DEFAULT_EXACT_PREFIX = 200_000
SMOKE_WORKLOAD = "lloop01"
SMOKE_EXACT_PREFIX = 50_000


def _best_of(thunk, repeats: int):
    best = float("inf")
    value = None
    for _ in range(repeats):
        started = time.perf_counter()
        value = thunk()
        best = min(best, time.perf_counter() - started)
    return best, value


def _measure_workload(name: str, exact_prefix: int, repeats: int) -> dict:
    """Time both pipeline paths (and the bound check) on one workload."""
    import numpy as np

    from repro.pipeline.datapath import simulate_pipeline
    from repro.pipeline.timeline import BlockTable, replay_trace
    from repro.workloads.suite import load

    workload = load(name)
    trace = workload.run().trace
    instructions = workload.program.instructions
    indices = trace.instruction_indices
    dynamic = len(indices)
    prefix = np.ascontiguousarray(indices[: min(exact_prefix, dynamic)])

    table_seconds, table = _best_of(
        lambda: BlockTable(instructions, workload.program.text_base), repeats
    )
    timeline_seconds, timeline = _best_of(
        lambda: replay_trace(trace, instructions, block_table=table), repeats
    )
    exact_seconds, exact = _best_of(
        lambda: simulate_pipeline(instructions, prefix), repeats
    )
    timeline_prefix = replay_trace(prefix, instructions, block_table=table)
    if exact.hazard_stall_cycles < timeline_prefix.hazard_stall_cycles:
        raise SystemExit(
            f"bound violation on {name!r}: exact hazard stalls "
            f"{exact.hazard_stall_cycles} < timeline "
            f"{timeline_prefix.hazard_stall_cycles}"
        )
    if exact.branch_stall_cycles != timeline_prefix.branch_stall_cycles:
        raise SystemExit(
            f"branch mismatch on {name!r}: exact {exact.branch_stall_cycles} "
            f"!= timeline {timeline_prefix.branch_stall_cycles}"
        )

    exact_rate = len(prefix) / exact_seconds
    timeline_rate = dynamic / timeline_seconds
    return {
        "dynamic_instructions": dynamic,
        "exact_prefix": len(prefix),
        "block_table_seconds": table_seconds,
        "timeline_seconds": timeline_seconds,
        "timeline_instructions_per_second": timeline_rate,
        "exact_instructions_per_second": exact_rate,
        "exact_full_trace_seconds_estimated": dynamic / exact_rate,
        "timeline_speedup_over_exact": timeline_rate / exact_rate,
        "hazard_stall_cycles": timeline.hazard_stall_cycles,
        "branch_stall_cycles": timeline.branch_stall_cycles,
        "total_cycles": timeline.total_cycles,
    }


def run_benchmark(exact_prefix: int, repeats: int) -> dict:
    from repro.core import artifacts
    from repro.workloads.suite import SIMULATION_PROGRAMS

    workloads = {}
    with artifacts.cache_disabled():
        for name in SIMULATION_PROGRAMS:
            workloads[name] = _measure_workload(name, exact_prefix, repeats)
    speedups = [w["timeline_speedup_over_exact"] for w in workloads.values()]
    return {
        "schema": "ccrp-bench-pipeline/1",
        "exact_prefix": exact_prefix,
        "repeats": repeats,
        "cpu_count": os.cpu_count(),
        "workloads": workloads,
        "geomean_timeline_speedup": float(
            math.exp(sum(math.log(s) for s in speedups) / len(speedups))
        ),
    }


def run_smoke(exact_prefix: int) -> dict:
    """One workload, short prefix, bound check only (CI gate)."""
    started = time.perf_counter()
    record = _measure_workload(SMOKE_WORKLOAD, exact_prefix, repeats=1)
    return {
        "schema": "ccrp-bench-pipeline-smoke/1",
        "workload": SMOKE_WORKLOAD,
        "bound_holds": True,  # _measure_workload raises otherwise
        "elapsed_seconds": time.perf_counter() - started,
        "measurement": record,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--output",
        type=Path,
        default=REPO_ROOT / "BENCH_pipeline.json",
        help="where to write the timing record",
    )
    parser.add_argument(
        "--metrics",
        type=Path,
        metavar="FILE",
        help="also write the record (or smoke result) to FILE",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="fast CI mode: one workload, short prefix, bound check only",
    )
    parser.add_argument("--exact-prefix", type=int, default=DEFAULT_EXACT_PREFIX)
    parser.add_argument("--repeats", type=int, default=3)
    args = parser.parse_args(argv)

    if args.smoke:
        record = run_smoke(min(args.exact_prefix, SMOKE_EXACT_PREFIX))
    else:
        record = run_benchmark(args.exact_prefix, args.repeats)
        args.output.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")

    if args.metrics:
        args.metrics.parent.mkdir(parents=True, exist_ok=True)
        args.metrics.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")

    print(json.dumps(record, indent=2, sort_keys=True))
    return 0


if __name__ == "__main__":
    sys.exit(main())
