"""Benchmark: the Section 5 extension studies (multi-code, associativity,
compressed demand paging)."""

from repro.experiments.extensions import run_extensions


def test_extensions(run_once):
    result = run_once(run_extensions)
    print()
    print(result.render())

    # More preselected codes never compress worse (tags included, small
    # training noise allowed).
    ratios = [row.compressed_ratio for row in result.multicode_rows]
    assert ratios[1] <= ratios[0] + 0.005
    assert ratios[2] <= ratios[1] + 0.005

    # Associativity recovers part of espresso's conflicts once the cache
    # can hold a couple of its working regions (at 512 B LRU actually
    # thrashes — a classic small-cache effect worth keeping visible).
    espresso = [
        row
        for row in result.associativity_rows
        if row.program == "espresso" and row.cache_bytes >= 1024
    ]
    assert espresso
    assert all(row.miss_2way < row.miss_direct for row in espresso)

    # Compressed paging: same faults, less storage, and cheaper service on
    # the slow EPROM backing store.
    eprom = next(row for row in result.paging_rows if row.memory == "eprom")
    assert eprom.compressed_fault_cycles < eprom.baseline_fault_cycles
    assert eprom.storage_ratio < 0.9
