"""Benchmark: cross-ISA effectiveness (paper Section 5's first proposal)."""

from repro.experiments.cross_isa import run_cross_isa


def test_cross_isa(run_once):
    result = run_once(run_cross_isa)
    print()
    print(result.render())

    weighted = result.weighted
    # The method works on a structurally different ISA...
    assert weighted.alt_own_code < 0.85
    # ...about as well as on MIPS...
    assert abs(weighted.alt_own_code - weighted.mips_own_code) < 0.06
    # ...but only with a code trained for that ISA.
    assert weighted.mips_with_alt_code > weighted.mips_own_code + 0.05
    assert weighted.alt_with_mips_code > weighted.alt_own_code + 0.05
