"""Benchmark: prefetching fetch path — exact unit vs vectorized timeline.

Measures the front-end replay substrate the prefetch study runs on: for
every simulation workload and every fetch policy it times

* the stateful exact front end
  (:class:`repro.prefetch.engine.PrefetchingFetchUnit`) driven one
  access at a time over a bounded prefix, extrapolated to full-trace
  cost, and
* the vectorized miss-event replay
  (:func:`repro.prefetch.simulate_fetch_stream`) over the same prefix —
  what the study tables and ``SystemConfig(fetch_policy=...)`` actually
  run,

and reports fetch accesses per second for each plus the
timeline-over-exact speedup.  **Equivalence is asserted before any
timing is recorded**: the two backends' :class:`FetchReplay` snapshots —
every stall and every counter — must compare equal on the measured
prefix, so the speedup claim is tied to a byte-identity gate.

Honest-gate conventions (same as ``bench_memsys.py``): ``--smoke`` runs
a small workload subset with a short prefix where the full-suite speedup
target is *skipped with a recorded reason* instead of being claimed from
a constrained CI runner; ``--check`` exits nonzero on an equivalence
failure or a timeline-slower-than-exact regression.

Run from the repository root::

    PYTHONPATH=src python benchmarks/bench_frontend.py

and it writes ``BENCH_frontend.json`` next to the repo's other records.
"""

from __future__ import annotations

import argparse
import json
import math
import os
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

try:
    from repro.core.artifacts import get_study
except ImportError:  # running as a script without the package installed
    sys.path.insert(0, str(REPO_ROOT / "src"))
    from repro.core.artifacts import get_study

SCHEMA = "ccrp-bench-frontend/1"
CACHE_BYTES = 256
CLB_ENTRIES = 16
MEMORY = "sc_dram"
POLICIES = ("demand", "nextline", "btb")
DEFAULT_EXACT_PREFIX = 200_000
SMOKE_PROGRAMS = ("lloop01", "eightq")
SMOKE_EXACT_PREFIX = 60_000
#: Full-suite geomean the vectorized path must beat — the keep-honest
#: floor under the ~4x measured on the development machine (the margin
#: is modest because the exact unit's per-access loop is itself cheap;
#: the win scales with the miss rate, e.g. ~17x on eightq @ 256 B).
TARGET_GEOMEAN = 2.0


def _best_of(thunk, repeats: int):
    best = float("inf")
    value = None
    for _ in range(repeats):
        started = time.perf_counter()
        value = thunk()
        best = min(best, time.perf_counter() - started)
    return best, value


def _measure_cell(study, policy: str, prefix, repeats: int) -> dict:
    """Equivalence-gate then time one (workload, policy) cell."""
    from repro.ccrp.clb import CLB
    from repro.core.config import SystemConfig
    from repro.prefetch import (
        FetchReplay,
        PrefetchingFetchUnit,
        simulate_fetch_stream,
    )

    decoder = SystemConfig().decoder
    engine = study.refill_engine(MEMORY, decoder)
    btb = study.btb() if policy == "btb" else None

    def run_exact() -> FetchReplay:
        unit = PrefetchingFetchUnit(
            CACHE_BYTES,
            MEMORY,
            refill=engine,
            clb=CLB(entries=CLB_ENTRIES),
            policy=policy,
            btb=btb,
        )
        stalls = 0
        for address in prefix.tolist():
            stalls += unit.fetch(address)
        return FetchReplay.from_unit(unit, stalls)

    def run_timeline() -> FetchReplay:
        return simulate_fetch_stream(
            prefix,
            CACHE_BYTES,
            32,
            MEMORY,
            refill=engine,
            clb=CLB(entries=CLB_ENTRIES),
            policy=policy,
            btb=btb,
        )

    # The gate comes first: no timing is recorded for a cell whose
    # backends disagree.
    exact_replay = run_exact()
    timeline_replay = run_timeline()
    assert exact_replay == timeline_replay, (
        f"{study.workload.name}/{policy}: exact and vectorized fetch "
        f"replays differ on a {len(prefix)}-access prefix"
    )

    exact_seconds, _ = _best_of(run_exact, repeats)
    timeline_seconds, _ = _best_of(run_timeline, repeats)
    accesses = len(prefix)
    return {
        "accesses": accesses,
        "misses": exact_replay.misses,
        "fetch_stall_cycles": exact_replay.fetch_stall_cycles,
        "exact_seconds": exact_seconds,
        "timeline_seconds": timeline_seconds,
        "exact_accesses_per_second": accesses / exact_seconds,
        "timeline_accesses_per_second": accesses / timeline_seconds,
        "timeline_speedup_over_exact": exact_seconds / timeline_seconds,
        "equivalent": True,
    }


def run_benchmark(programs, exact_prefix: int, repeats: int, smoke: bool) -> dict:
    import numpy as np

    process_cpus = (
        len(os.sched_getaffinity(0)) if hasattr(os, "sched_getaffinity") else None
    )
    record = {
        "schema": SCHEMA,
        "programs": list(programs),
        "policies": list(POLICIES),
        "cache_bytes": CACHE_BYTES,
        "memory": MEMORY,
        "clb_entries": CLB_ENTRIES,
        "exact_prefix": exact_prefix,
        "repeats": repeats,
        "smoke": smoke,
        "cpu_count": os.cpu_count(),
        "cpu_affinity": process_cpus,
        "workloads": {},
    }
    speedups = []
    for program in programs:
        study = get_study(program)
        prefix = np.ascontiguousarray(
            study.execution.trace.addresses[:exact_prefix], dtype=np.int64
        )
        cells = {}
        for policy in POLICIES:
            cells[policy] = _measure_cell(study, policy, prefix, repeats)
            speedups.append(cells[policy]["timeline_speedup_over_exact"])
        record["workloads"][program] = cells

    record["equivalent"] = True  # _measure_cell raised otherwise
    record["geomean_timeline_speedup"] = math.exp(
        sum(math.log(s) for s in speedups) / len(speedups)
    )
    record["target_geomean"] = TARGET_GEOMEAN
    if smoke:
        record["target_skipped"] = True
        record["target_skip_reason"] = (
            f"smoke subset {list(programs)} with a {exact_prefix}-access "
            f"prefix on a CI runner ({process_cpus} CPU(s) available) "
            "verifies equivalence and non-regression only; the full-suite "
            "speedup claim is measured by a full run of this benchmark"
        )
        record["target_met"] = None
    else:
        record["target_skipped"] = False
        record["target_skip_reason"] = None
        record["target_met"] = record["geomean_timeline_speedup"] >= TARGET_GEOMEAN
    return record


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--output",
        type=Path,
        default=REPO_ROOT / "BENCH_frontend.json",
        help="where to write the timing record",
    )
    parser.add_argument(
        "--programs",
        nargs="+",
        default=None,
        help="workloads to measure (default: the full simulation suite)",
    )
    parser.add_argument("--exact-prefix", type=int, default=DEFAULT_EXACT_PREFIX)
    parser.add_argument(
        "--repeats", type=int, default=3, help="best-of-N timing repeats"
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI mode: small workload subset and short prefix; the speedup "
        "target is skipped with a recorded reason",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="CI gate: exit nonzero on an equivalence failure or a "
        "timeline-slower-than-exact geomean",
    )
    args = parser.parse_args(argv)

    from repro.workloads.suite import SIMULATION_PROGRAMS

    if args.programs is not None:
        programs = tuple(args.programs)
    elif args.smoke:
        programs = SMOKE_PROGRAMS
    else:
        programs = SIMULATION_PROGRAMS
    exact_prefix = (
        min(args.exact_prefix, SMOKE_EXACT_PREFIX) if args.smoke else args.exact_prefix
    )

    try:
        record = run_benchmark(
            programs, exact_prefix=exact_prefix, repeats=args.repeats, smoke=args.smoke
        )
    except AssertionError as error:
        print(f"ERROR: {error}", file=sys.stderr)
        return 1
    args.output.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
    print(json.dumps(record, indent=2, sort_keys=True))

    geomean = record["geomean_timeline_speedup"]
    if geomean < 1.0:
        message = (
            f"vectorized fetch replay is slower than the exact unit "
            f"(geomean {geomean:.2f}x over {list(programs)})"
        )
        if args.check:
            print(f"ERROR: {message}", file=sys.stderr)
            return 1
        print(f"WARNING: {message}", file=sys.stderr)
    if record["target_skipped"]:
        # Never silent: the record and the log both carry the reason.
        print(f"SKIP (speedup target): {record['target_skip_reason']}", file=sys.stderr)
    elif not record["target_met"]:
        message = (
            f"full-suite geomean {geomean:.2f}x is below the "
            f"{TARGET_GEOMEAN:.0f}x target"
        )
        if args.check:
            print(f"ERROR: {message}", file=sys.stderr)
            return 1
        print(f"WARNING: {message}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
