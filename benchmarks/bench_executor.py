"""Benchmark: superop execution engine and vectorized Huffman encode.

Measures the *simulator substrate*, not the paper's results: for every
tier-1 workload it times the per-instruction reference interpreter
("old": ``block_mode=False`` plus the scalar BitWriter encode path the
repo shipped with) against the basic-block superop engine ("new":
``block_mode=True`` plus vectorized encode), and reports

* executed instructions per second under each engine,
* Huffman encode throughput (MB/s), scalar vs vectorized, and
* the end-to-end cold-run speedup — fresh subprocess per mode, each
  running the whole suite (execute, materialise trace arrays, compress
  the text segment) with timing taken inside the subprocess so
  interpreter start-up is excluded from both sides equally.

The "new" cold run is a *steady-state* cold run: compiled superops are
loaded from the on-disk artifact cache (primed by a throwaway run),
exactly as a second ``ccrp-experiments`` invocation would find them —
the same way CPython reuses ``.pyc`` files.  ``true_cold_seconds`` is
also recorded, with that cache empty, so compile cost stays visible.

Run from the repository root::

    PYTHONPATH=src python benchmarks/bench_executor.py

and it writes ``BENCH_executor.json``.  ``--smoke`` runs one workload
under both engines and fails on any result mismatch (CI uses this);
``--metrics FILE`` writes the record to an extra location.
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

DEFAULT_MAX_INSTRUCTIONS = 4_000_000
SMOKE_WORKLOAD = "lloop01"


# ----------------------------------------------------------------------
# Old-world emulation
# ----------------------------------------------------------------------


def _force_scalar_encode() -> None:
    """Restore the seed's per-line scalar compression path, in place.

    ``HuffmanCode.encode`` becomes the BitWriter loop and
    ``encode_lines`` reports "unsupported" so ``compress_program`` falls
    back to per-line ``compress_line`` — the pre-vectorization code
    shape, byte-identical output.
    """
    from repro.compression.huffman import HuffmanCode

    HuffmanCode.encode = HuffmanCode._encode_scalar  # type: ignore[method-assign]
    HuffmanCode.encode_lines = (  # type: ignore[method-assign]
        lambda self, text, line_size: None
    )


# ----------------------------------------------------------------------
# In-process measurements
# ----------------------------------------------------------------------


def _run_once(name: str, block_mode: bool, max_instructions: int) -> tuple[float, int]:
    """One end-to-end workload pass; returns (seconds, executed count).

    End-to-end means what a study consumes: execute, then materialise
    the flat address array, the per-instruction execution counts, and
    the per-line address stream the cache simulators walk.
    """
    from repro.machine.executor import Machine
    from repro.workloads.suite import load

    workload = load(name)
    started = time.perf_counter()
    machine = Machine(workload.program, block_mode=block_mode)
    result = machine.run(max_instructions=max_instructions, stop_at_limit=True)
    trace = result.trace
    trace.addresses
    trace.execution_counts()
    trace.line_addresses()
    return time.perf_counter() - started, result.instructions_executed


def _best_of(name: str, block_mode: bool, max_instructions: int, repeats: int) -> tuple[float, int]:
    best = float("inf")
    executed = 0
    for _ in range(repeats):
        seconds, executed = _run_once(name, block_mode, max_instructions)
        best = min(best, seconds)
    return best, executed


def _compress_seconds(name: str, repeats: int) -> float:
    from repro.compression.block import BlockCompressor
    from repro.core.standard import standard_code
    from repro.workloads.suite import load

    compressor = BlockCompressor(standard_code())
    text = load(name).text
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        compressor.compress_program(text)
        best = min(best, time.perf_counter() - started)
    return best


def _encode_throughput(repeats: int) -> dict:
    """Raw ``HuffmanCode.encode`` MB/s, scalar vs vectorized, suite text."""
    from repro.core.standard import standard_code
    from repro.workloads.suite import SIMULATION_PROGRAMS, load

    code = standard_code()
    text = b"".join(load(name).text for name in SIMULATION_PROGRAMS)
    timings = {}
    for label, encode in (
        ("scalar", code._encode_scalar),
        ("vectorized", code.encode),
    ):
        best = float("inf")
        for _ in range(repeats):
            started = time.perf_counter()
            encoded, bits = encode(text)
            best = min(best, time.perf_counter() - started)
        timings[label] = best
    reference = code._encode_scalar(text)
    assert code.encode(text) == reference, "vectorized encode diverged from scalar"
    megabytes = len(text) / 1e6
    return {
        "input_bytes": len(text),
        "scalar_mb_per_second": megabytes / timings["scalar"],
        "vectorized_mb_per_second": megabytes / timings["vectorized"],
        "speedup": timings["scalar"] / timings["vectorized"],
    }


# ----------------------------------------------------------------------
# Cold-run subprocess protocol
# ----------------------------------------------------------------------


def _worker(mode: str, max_instructions: int) -> int:
    """Subprocess body: run the whole suite end-to-end, print timings."""
    from repro.workloads.suite import SIMULATION_PROGRAMS

    block_mode = mode == "new"
    if not block_mode:
        _force_scalar_encode()
    per_workload = {}
    total = 0.0
    for name in SIMULATION_PROGRAMS:
        seconds, executed = _run_once(name, block_mode, max_instructions)
        seconds += _compress_seconds(name, repeats=1)
        per_workload[name] = {"seconds": seconds, "instructions": executed}
        total += seconds
    print(json.dumps({"mode": mode, "total_seconds": total, "workloads": per_workload}))
    return 0


def _spawn_worker(mode: str, cache_dir: Path, max_instructions: int) -> dict:
    env = dict(os.environ, CCRP_CACHE_DIR=str(cache_dir))
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    completed = subprocess.run(
        [
            sys.executable,
            str(Path(__file__).resolve()),
            "--worker",
            mode,
            "--max-instructions",
            str(max_instructions),
        ],
        env=env,
        cwd=REPO_ROOT,
        check=True,
        capture_output=True,
        text=True,
    )
    return json.loads(completed.stdout.splitlines()[-1])


def _cold_runs(max_instructions: int) -> dict:
    """Fresh-process suite timings: old engine vs steady-state-cold new."""
    scratch = Path(tempfile.mkdtemp(prefix="ccrp-bench-executor-"))
    try:
        cache_dir = scratch / "cache"
        old = _spawn_worker("old", scratch / "old-cache", max_instructions)
        true_cold = _spawn_worker("new", cache_dir, max_instructions)
        new = _spawn_worker("new", cache_dir, max_instructions)
        return {
            "old_seconds": old["total_seconds"],
            "new_true_cold_seconds": true_cold["total_seconds"],
            "new_seconds": new["total_seconds"],
            "speedup": old["total_seconds"] / new["total_seconds"],
            "true_cold_speedup": old["total_seconds"] / true_cold["total_seconds"],
            "old_workloads": old["workloads"],
            "new_workloads": new["workloads"],
        }
    finally:
        shutil.rmtree(scratch, ignore_errors=True)


# ----------------------------------------------------------------------
# Equivalence (the --smoke gate)
# ----------------------------------------------------------------------


def _assert_equivalent(name: str, max_instructions: int) -> None:
    """Run ``name`` under both engines and demand identical results."""
    import numpy as np

    from repro.machine.executor import Machine
    from repro.workloads.suite import load

    program = load(name).program
    results = {}
    for block_mode in (False, True):
        machine = Machine(program, block_mode=block_mode)
        results[block_mode] = machine.run(
            max_instructions=max_instructions, stop_at_limit=True
        )
    old, new = results[False], results[True]
    mismatches = []
    if not np.array_equal(old.trace.addresses, new.trace.addresses):
        mismatches.append("trace addresses")
    if not np.array_equal(
        old.trace.execution_counts(), new.trace.execution_counts()
    ):
        mismatches.append("execution counts")
    for attribute in (
        "registers",
        "output",
        "stall_cycles",
        "exit_code",
        "instructions_executed",
    ):
        if getattr(old, attribute) != getattr(new, attribute):
            mismatches.append(attribute)
    if mismatches:
        raise SystemExit(
            f"engine mismatch on {name!r}: {', '.join(mismatches)}"
        )


# ----------------------------------------------------------------------
# Drivers
# ----------------------------------------------------------------------


def run_benchmark(max_instructions: int, repeats: int) -> dict:
    from repro.core import artifacts
    from repro.workloads.suite import SIMULATION_PROGRAMS

    workloads = {}
    with artifacts.cache_disabled():
        for name in SIMULATION_PROGRAMS:
            old_seconds, executed = _best_of(
                name, False, max_instructions, repeats
            )
            new_seconds, _ = _best_of(name, True, max_instructions, repeats)
            workloads[name] = {
                "instructions": executed,
                "old_instructions_per_second": executed / old_seconds,
                "new_instructions_per_second": executed / new_seconds,
                "speedup": old_seconds / new_seconds,
            }

    cold = _cold_runs(max_instructions)
    return {
        "schema": "ccrp-bench-executor/1",
        "max_instructions": max_instructions,
        "repeats": repeats,
        "cpu_count": os.cpu_count(),
        "workloads": workloads,
        "encode": _encode_throughput(repeats),
        "cold_run": cold,
        "cold_run_speedup": cold["speedup"],
    }


def run_smoke(max_instructions: int) -> dict:
    """One workload, both engines, hard equivalence check (CI gate)."""
    started = time.perf_counter()
    _assert_equivalent(SMOKE_WORKLOAD, max_instructions)
    return {
        "schema": "ccrp-bench-executor-smoke/1",
        "workload": SMOKE_WORKLOAD,
        "max_instructions": max_instructions,
        "equivalent": True,
        "elapsed_seconds": time.perf_counter() - started,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--output",
        type=Path,
        default=REPO_ROOT / "BENCH_executor.json",
        help="where to write the timing record",
    )
    parser.add_argument(
        "--metrics",
        type=Path,
        metavar="FILE",
        help="also write the record (or smoke result) to FILE",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="fast CI mode: one workload, both engines, equivalence only",
    )
    parser.add_argument("--max-instructions", type=int, default=DEFAULT_MAX_INSTRUCTIONS)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--worker", choices=("old", "new"), help=argparse.SUPPRESS)
    args = parser.parse_args(argv)

    if args.worker:
        return _worker(args.worker, args.max_instructions)

    if args.smoke:
        record = run_smoke(min(args.max_instructions, 1_000_000))
    else:
        record = run_benchmark(args.max_instructions, args.repeats)
        args.output.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")

    if args.metrics:
        args.metrics.parent.mkdir(parents=True, exist_ok=True)
        args.metrics.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")

    print(json.dumps(record, indent=2, sort_keys=True))
    if not args.smoke and record["cold_run_speedup"] < 3.0:
        print(
            f"WARNING: cold-run speedup {record['cold_run_speedup']:.2f}x "
            "is below the 3x target",
            file=sys.stderr,
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
