"""Shared configuration for the benchmark harness.

Each ``bench_*`` module regenerates one table or figure from the paper
(timed once via ``benchmark.pedantic`` — these are experiment harnesses,
not micro-kernels) and prints the same rows the paper reports.  Run with::

    pytest benchmarks/ --benchmark-only -s
"""

import pytest


@pytest.fixture
def run_once(benchmark):
    """Time a whole-experiment callable exactly once and return its result."""

    def runner(func, *args, **kwargs):
        return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return runner
