"""Benchmark: regenerate Figure 5 (four compression methods).

Prints the same rows the paper's Figure 5 reports — compressed size as a
percentage of the original for all ten corpus programs and the weighted
average — and asserts the paper's qualitative ordering.
"""

from repro.experiments.figure5 import run_figure5


def test_figure5_reproduction(run_once):
    result = run_once(run_figure5)
    print()
    print(result.render())

    weighted = result.weighted
    # Paper shape: compress best; the three Huffman variants clustered,
    # with the bound and the preselection each costing almost nothing.
    assert weighted.unix_compress < weighted.traditional_huffman
    assert abs(weighted.bounded_huffman - weighted.traditional_huffman) < 0.02
    assert abs(weighted.preselected_huffman - weighted.bounded_huffman) < 0.03
    assert 0.65 < weighted.preselected_huffman < 0.85
