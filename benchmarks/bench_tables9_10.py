"""Benchmark: regenerate Tables 9-10 (CLB size effects)."""

from repro.experiments.tables9_10 import CLB_ENTRIES, run_tables9_10


def test_tables9_10_reproduction(run_once):
    result = run_once(run_tables9_10)
    print()
    print(result.render())

    for table in result.tables:
        for row in table.rows:
            values = [row.relative_performance[entries] for entries in CLB_ENTRIES]
            # Paper: "only minor variations with respect to CLB size".
            assert max(values) - min(values) < 0.05
            # And a larger CLB is never slower.
            assert values == sorted(values)
