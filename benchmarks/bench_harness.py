"""Benchmark: the experiment harness itself (cache + parallelism).

Unlike the other ``bench_*`` modules, this one measures the *harness*,
not the paper's results: serial vs ``--jobs N`` wall-clock, and cold vs
warm artifact-cache wall-clock, each in a fresh subprocess so process
startup and corpus assembly are charged honestly.  It also verifies that
the parallel run's exported JSON is byte-identical to the serial run's.

The parallel *comparison* only means something when a pool can actually
win: ``--jobs`` is resolved through ``repro.core.sweep.effective_jobs``
(affinity-aware, so a cgroup-pinned CI runner is not mistaken for a
many-core machine), both the requested and effective counts land in the
record, and when the effective pool is 1 the speedup claim is skipped
with an explicit reason instead of recording a meaningless "regression"
— the failure mode that produced the old 0.66x-on-one-CPU entry.

Run from the repository root::

    PYTHONPATH=src python benchmarks/bench_harness.py

and it writes ``BENCH_harness.json`` next to this repo's other results.
``--check`` turns the result into a CI gate: exit nonzero if outputs
diverge or if a real (effective >= 2 workers) parallel run is slower
than serial.
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

try:
    from repro.core.sweep import available_cpus, effective_jobs
except ImportError:  # running as a script without the package installed
    sys.path.insert(0, str(REPO_ROOT / "src"))
    from repro.core.sweep import available_cpus, effective_jobs

#: Study-driven experiments: they exercise traces, images, miss streams.
DEFAULT_EXPERIMENTS = ("tables9-10", "figure9")

SCHEMA = "ccrp-bench-harness/2"


def _run_cli(
    experiments: tuple[str, ...],
    cache_dir: Path,
    output_dir: Path | None = None,
    jobs: int = 1,
) -> float:
    """One ``ccrp-experiments`` subprocess; returns wall seconds."""
    env = dict(os.environ, CCRP_CACHE_DIR=str(cache_dir))
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    command = [sys.executable, "-m", "repro.experiments", *experiments]
    if jobs > 1:
        command += ["--jobs", str(jobs)]
    if output_dir is not None:
        command += ["--output-dir", str(output_dir)]
    started = time.perf_counter()
    subprocess.run(
        command, env=env, cwd=REPO_ROOT, stdout=subprocess.DEVNULL, check=True
    )
    return time.perf_counter() - started


def run_benchmark(
    experiments: tuple[str, ...] = DEFAULT_EXPERIMENTS, jobs: int = 2
) -> dict:
    """Time the harness modes and check output equivalence.

    ``jobs`` is a request; the pool the runner will actually use is
    ``effective_jobs(jobs, len(experiments))``.  When that resolves to 1
    the parallel-vs-serial comparison is skipped (with the reason in the
    record) — timing a "pool" of one process against serial measures
    scheduler noise, not the harness.
    """
    jobs_effective = effective_jobs(jobs, len(experiments))
    cpus = available_cpus()
    scratch = Path(tempfile.mkdtemp(prefix="ccrp-bench-"))
    try:
        serial_cache = scratch / "serial-cache"
        parallel_cache = scratch / "parallel-cache"
        serial_out = scratch / "serial-out"
        parallel_out = scratch / "parallel-out"

        record: dict = {
            "schema": SCHEMA,
            "experiments": list(experiments),
            "jobs_requested": jobs,
            "jobs_effective": jobs_effective,
            "cpu_count": os.cpu_count(),
            "cpu_affinity": cpus,
        }

        record["serial_cold_seconds"] = _run_cli(
            experiments, serial_cache, serial_out
        )
        record["serial_warm_seconds"] = _run_cli(experiments, serial_cache)
        record["single_cold_seconds"] = _run_cli(
            experiments[:1], scratch / "single-cache"
        )
        record["single_warm_seconds"] = _run_cli(
            experiments[:1], scratch / "single-cache"
        )
        record["warm_cache_speedup"] = (
            record["single_cold_seconds"] / record["single_warm_seconds"]
        )

        # The --jobs invocation always runs (output identity is a
        # correctness property, independent of core count), but the
        # speedup *claim* is only recorded when the pool is real.
        record["parallel_cold_seconds"] = _run_cli(
            experiments, parallel_cache, parallel_out, jobs=jobs
        )
        record["parallel_warm_seconds"] = _run_cli(
            experiments, parallel_cache, jobs=jobs
        )
        record["serial_parallel_outputs_identical"] = all(
            (serial_out / f"{name}.json").read_bytes()
            == (parallel_out / f"{name}.json").read_bytes()
            for name in experiments
        )

        if jobs_effective >= 2:
            record["parallel_comparison_skipped"] = False
            record["parallel_cold_speedup"] = (
                record["serial_cold_seconds"] / record["parallel_cold_seconds"]
            )
            record["parallel_warm_speedup"] = (
                record["serial_warm_seconds"] / record["parallel_warm_seconds"]
            )
        else:
            record["parallel_comparison_skipped"] = True
            record["parallel_skip_reason"] = (
                f"effective worker pool is 1 (requested {jobs}, "
                f"{cpus} CPU(s) available to this process, "
                f"{len(experiments)} tasks); a process pool cannot win "
                "here, so no speedup is claimed"
            )
            record["parallel_cold_speedup"] = None
            record["parallel_warm_speedup"] = None

        return record
    finally:
        shutil.rmtree(scratch, ignore_errors=True)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--output",
        type=Path,
        default=REPO_ROOT / "BENCH_harness.json",
        help="where to write the timing record",
    )
    parser.add_argument(
        "--experiments",
        nargs="+",
        default=list(DEFAULT_EXPERIMENTS),
        help="experiments to drive the harness with",
    )
    parser.add_argument("--jobs", type=int, default=2)
    parser.add_argument(
        "--check",
        action="store_true",
        help="CI gate: exit nonzero unless parallel >= serial whenever the "
        "effective pool has >= 2 workers (a skipped comparison passes, "
        "loudly)",
    )
    args = parser.parse_args(argv)

    record = run_benchmark(tuple(args.experiments), jobs=args.jobs)
    args.output.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")

    print(json.dumps(record, indent=2, sort_keys=True))
    if not record["serial_parallel_outputs_identical"]:
        print("ERROR: parallel outputs diverged from serial", file=sys.stderr)
        return 1
    if record["parallel_comparison_skipped"]:
        # Never silent: the record and the log both carry the reason.
        print(f"SKIP (parallel comparison): {record['parallel_skip_reason']}",
              file=sys.stderr)
    elif record["parallel_cold_speedup"] < 1.0:
        message = (
            f"parallel cold run was slower than serial "
            f"({record['parallel_cold_speedup']:.2f}x) with "
            f"{record['jobs_effective']} effective workers"
        )
        if args.check:
            print(f"ERROR: {message}", file=sys.stderr)
            return 1
        print(f"WARNING: {message}", file=sys.stderr)
    if record["warm_cache_speedup"] <= 1.0:
        print("WARNING: warm cache was not faster than cold", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
