"""Benchmark: the experiment harness itself (cache + parallelism).

Unlike the other ``bench_*`` modules, this one measures the *harness*,
not the paper's results: serial vs ``--jobs N`` wall-clock, and cold vs
warm artifact-cache wall-clock, each in a fresh subprocess so process
startup and corpus assembly are charged honestly.  It also verifies that
the parallel run's exported JSON is byte-identical to the serial run's.

Run from the repository root::

    PYTHONPATH=src python benchmarks/bench_harness.py

and it writes ``BENCH_harness.json`` next to this repo's other results.
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Study-driven experiments: they exercise traces, images, miss streams.
DEFAULT_EXPERIMENTS = ("tables9-10", "figure9")


def _run_cli(
    experiments: tuple[str, ...],
    cache_dir: Path,
    output_dir: Path | None = None,
    jobs: int = 1,
) -> float:
    """One ``ccrp-experiments`` subprocess; returns wall seconds."""
    env = dict(os.environ, CCRP_CACHE_DIR=str(cache_dir))
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    command = [sys.executable, "-m", "repro.experiments", *experiments]
    if jobs > 1:
        command += ["--jobs", str(jobs)]
    if output_dir is not None:
        command += ["--output-dir", str(output_dir)]
    started = time.perf_counter()
    subprocess.run(
        command, env=env, cwd=REPO_ROOT, stdout=subprocess.DEVNULL, check=True
    )
    return time.perf_counter() - started


def run_benchmark(
    experiments: tuple[str, ...] = DEFAULT_EXPERIMENTS, jobs: int = 2
) -> dict:
    """Time the four harness modes and check output equivalence."""
    scratch = Path(tempfile.mkdtemp(prefix="ccrp-bench-"))
    try:
        serial_cache = scratch / "serial-cache"
        parallel_cache = scratch / "parallel-cache"
        serial_out = scratch / "serial-out"
        parallel_out = scratch / "parallel-out"

        timings = {
            "serial_cold_seconds": _run_cli(experiments, serial_cache, serial_out),
            "serial_warm_seconds": _run_cli(experiments, serial_cache),
            "parallel_cold_seconds": _run_cli(
                experiments, parallel_cache, parallel_out, jobs=jobs
            ),
            "parallel_warm_seconds": _run_cli(experiments, parallel_cache, jobs=jobs),
            "single_cold_seconds": _run_cli(
                experiments[:1], scratch / "single-cache"
            ),
            "single_warm_seconds": _run_cli(
                experiments[:1], scratch / "single-cache"
            ),
        }

        identical = all(
            (serial_out / f"{name}.json").read_bytes()
            == (parallel_out / f"{name}.json").read_bytes()
            for name in experiments
        )

        return {
            "schema": "ccrp-bench-harness/1",
            "experiments": list(experiments),
            "jobs": jobs,
            "cpu_count": os.cpu_count(),
            **timings,
            "parallel_cold_speedup": timings["serial_cold_seconds"]
            / timings["parallel_cold_seconds"],
            "parallel_warm_speedup": timings["serial_warm_seconds"]
            / timings["parallel_warm_seconds"],
            "warm_cache_speedup": timings["single_cold_seconds"]
            / timings["single_warm_seconds"],
            "serial_parallel_outputs_identical": identical,
        }
    finally:
        shutil.rmtree(scratch, ignore_errors=True)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--output",
        type=Path,
        default=REPO_ROOT / "BENCH_harness.json",
        help="where to write the timing record",
    )
    parser.add_argument(
        "--experiments",
        nargs="+",
        default=list(DEFAULT_EXPERIMENTS),
        help="experiments to drive the harness with",
    )
    parser.add_argument("--jobs", type=int, default=2)
    args = parser.parse_args(argv)

    record = run_benchmark(tuple(args.experiments), jobs=args.jobs)
    args.output.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")

    print(json.dumps(record, indent=2, sort_keys=True))
    if not record["serial_parallel_outputs_identical"]:
        print("ERROR: parallel outputs diverged from serial", file=sys.stderr)
        return 1
    if record["warm_cache_speedup"] <= 1.0:
        print("WARNING: warm cache was not faster than cold", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
