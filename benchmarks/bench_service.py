"""Benchmark: the compression service under concurrent load.

A loopback load generator for :mod:`repro.service`: it starts an
in-process server on a Unix socket (or targets a running one via
``--address``), then measures three things —

1. **Golden identity** (asserted, never sampled): ``compress`` through
   the live server must produce byte-identical blobs to calling
   :class:`~repro.ccrp.compressor.ProgramCompressor` directly, and
   ``decompress`` must return the exact original bytes.  No timing is
   recorded unless this holds.
2. **Coalescing**: a pipelined burst of identical ``simulate`` requests
   is fired before the first can complete (cold artifact cache, so the
   first execution takes real work); the server's single-flight table
   must show at least one ``service.coalesced`` for the burst.
3. **Throughput and tail latency**: N client threads issue
   compress/decompress round trips; the record carries requests/sec and
   client-observed p50/p99 latency, plus the server's own latency
   observations.

Honest-gate conventions (same as ``bench_harness.py``/``bench_memsys.py``):
the record carries CPU affinity and worker count; ``--smoke`` sizes the
load for CI, where the throughput target is *skipped with a recorded
reason* on constrained runners instead of being claimed.  ``--check``
exits nonzero on a golden mismatch, any protocol error, or a burst that
showed no coalescing.

Run from the repository root::

    PYTHONPATH=src python benchmarks/bench_service.py --smoke --check

and it writes ``BENCH_service.json`` next to the repo's other results.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import sys
import tempfile
import threading
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

try:
    from repro.service.client import ServiceClient
except ImportError:  # running as a script without the package installed
    sys.path.insert(0, str(REPO_ROOT / "src"))
    from repro.service.client import ServiceClient

from repro.ccrp.compressor import ProgramCompressor
from repro.core.metrics import _percentile
from repro.core.standard import standard_code
from repro.core.sweep import available_cpus
from repro.errors import ProtocolError, ServiceError
from repro.service.server import CompressionServer

SCHEMA = "ccrp-bench-service/2"

#: Deterministic pseudo-program used for the golden check and the load
#: phase: structured enough to compress, sized like a small text segment.
PROGRAM = (bytes(range(0, 256, 2)) + bytes(64)) * 24  # 4608 bytes

#: The duplicate-request burst (coalescing probe).  The params are
#: salted per process so the burst always exercises the *in-flight*
#: single-flight table: a warm durable response cache (same
#: ``CCRP_CACHE_DIR`` as a previous run) would otherwise answer every
#: duplicate from disk and the coalescing gate would measure nothing.
BURST_PARAMS = {
    "workload": "eightq",
    "cache_bytes": 512,
    "clb_entries": 8,
    "data_cache_miss_rate": round(0.9 + (os.getpid() % 997) / 1e5, 8),
}

#: Throughput target claimed by full runs on unconstrained machines.
TARGET_RPS = 100.0


class InProcessServer:
    """A CompressionServer on its own event-loop thread (loopback bench)."""

    def __init__(self, socket_dir: str, workers: int) -> None:
        self.address = f"unix:{os.path.join(socket_dir, 'bench.sock')}"
        self.server = CompressionServer(self.address, workers=workers, queue_limit=256)
        self._started = threading.Event()
        self._shutdown: asyncio.Event | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self) -> None:
        async def main() -> None:
            self._loop = asyncio.get_running_loop()
            self._shutdown = asyncio.Event()
            await self.server.start()
            self._started.set()
            await self._shutdown.wait()
            await self.server.stop()

        asyncio.run(main())

    def __enter__(self) -> "InProcessServer":
        self._thread.start()
        if not self._started.wait(300):
            raise RuntimeError("bench server failed to start")
        return self

    def __exit__(self, *exc_info) -> None:
        if self._loop is not None and self._shutdown is not None:
            self._loop.call_soon_threadsafe(self._shutdown.set)
        self._thread.join(300)


def check_golden(address: str) -> dict:
    """Server responses must be byte-identical to direct library calls."""
    with ServiceClient(address, name="golden") as client:
        for alignment, integrity in ((1, False), (1, True), (4, False)):
            direct = ProgramCompressor(
                standard_code(), alignment=alignment, integrity=integrity
            ).compress(PROGRAM)
            meta, blob = client.compress(
                PROGRAM, alignment=alignment, integrity=integrity
            )
            expected = b"".join(block.data for block in direct.blocks)
            if blob != expected:
                raise AssertionError(
                    f"server blob diverges from direct compression "
                    f"(alignment={alignment}, integrity={integrity})"
                )
            back = client.decompress(meta, blob)
            if back != PROGRAM:
                raise AssertionError(
                    f"decompress round trip lost bytes: {len(back)} of {len(PROGRAM)}"
                )
    return {"identical": True, "variants": 3, "program_bytes": len(PROGRAM)}


def run_burst(address: str, size: int) -> dict:
    """Fire ``size`` identical simulate requests before any completes.

    All requests are *written* before any response is read: the first
    admits a real execution (cold artifact cache makes it slow), the
    rest reach the server while it is in flight and must coalesce.
    """
    clients = [ServiceClient(address, name=f"burst{i}") for i in range(size)]
    try:
        started = time.perf_counter()
        for client in clients:
            client.send("simulate", BURST_PARAMS)
        results = []
        for client in clients:
            _, header, _ = client.recv()
            if not header.get("ok"):
                raise AssertionError(f"burst request failed: {header.get('error')}")
            results.append(header["result"])
        elapsed = time.perf_counter() - started
    finally:
        for client in clients:
            client.close()
    if any(result != results[0] for result in results):
        raise AssertionError("coalesced burst responses are not identical")
    with ServiceClient(address, name="burst-stats") as stats_client:
        counters = stats_client.stats()["counters"]
    return {
        "size": size,
        "wall_seconds": elapsed,
        "identical_responses": True,
        "coalesced": counters.get("service.coalesced", 0),
        "batched_jobs": counters.get("service.batched_jobs", 0),
        "artifact_builds": counters.get("artifacts.build", 0),
    }


def run_load(address: str, clients: int, requests: int, resilience: dict) -> dict:
    """Concurrent compress/decompress round trips with client-side timing.

    Load clients run with the record's resilience configuration
    (retries, seeded backoff, optional deadline), so the measured
    throughput is the throughput of the *resilient* request path.
    """
    latencies_ms: list[float] = []
    errors: list[str] = []
    lock = threading.Lock()
    barrier = threading.Barrier(clients + 1)

    def worker(index: int) -> None:
        local: list[float] = []
        try:
            with ServiceClient(
                address,
                name=f"load{index}",
                retries=resilience["retries"],
                backoff_base=resilience["backoff_base"],
                backoff_max=resilience["backoff_max"],
                backoff_seed=resilience["backoff_seed"] + index,
                deadline_ms=resilience["deadline_ms"],
            ) as client:
                meta, blob = client.compress(PROGRAM)
                barrier.wait()
                for i in range(requests):
                    started = time.perf_counter()
                    if i % 2 == 0:
                        client.compress(PROGRAM)
                    else:
                        client.decompress(meta, blob)
                    local.append((time.perf_counter() - started) * 1000.0)
        except (ServiceError, ProtocolError, OSError) as error:
            with lock:
                errors.append(f"client {index}: {error}")
            return
        with lock:
            latencies_ms.extend(local)

    threads = [threading.Thread(target=worker, args=(i,)) for i in range(clients)]
    for thread in threads:
        thread.start()
    barrier.wait()
    started = time.perf_counter()
    for thread in threads:
        thread.join(600)
    wall = time.perf_counter() - started
    if errors:
        raise AssertionError("; ".join(errors))
    ordered = sorted(latencies_ms)
    return {
        "clients": clients,
        "requests_per_client": requests,
        "total_requests": len(latencies_ms),
        "wall_seconds": wall,
        "requests_per_sec": len(latencies_ms) / wall,
        "latency_ms": {
            "mean": sum(ordered) / len(ordered),
            "min": ordered[0],
            "max": ordered[-1],
            "p50": _percentile(ordered, 0.50),
            "p99": _percentile(ordered, 0.99),
        },
    }


def run_benchmark(
    address: str,
    workers: int,
    burst: int,
    clients: int,
    requests: int,
    smoke: bool,
    resilience: dict,
) -> dict:
    cpus = available_cpus()
    record: dict = {
        "schema": SCHEMA,
        "smoke": smoke,
        "cpu_count": os.cpu_count(),
        "cpu_affinity": cpus,
        "workers": workers,
        "resilience": dict(resilience),
        "golden": check_golden(address),
        "burst": run_burst(address, burst),
        "load": run_load(address, clients, requests, resilience),
    }
    with ServiceClient(address, name="final-stats") as client:
        stats = client.stats()
    record["server"] = {
        "counters": {
            key: value
            for key, value in stats["counters"].items()
            if key.startswith(("service.", "requests.", "errors."))
        },
        "latency_ms": stats["observations"],
    }
    record["protocol_errors"] = stats["counters"].get("service.protocol_errors", 0)
    record["resilience"]["response_cache"] = stats["server"]["response_cache"]
    record["resilience"]["cache"] = {
        "hits": stats["counters"].get("service.cache.hit", 0),
        "misses": stats["counters"].get("service.cache.miss", 0),
        "stores": stats["counters"].get("service.cache.store", 0),
    }
    record["resilience"]["deadline_exceeded"] = stats["counters"].get(
        "service.deadline_exceeded", 0
    )
    record["resilience"]["too_large"] = stats["counters"].get("service.too_large", 0)
    record["target_rps"] = TARGET_RPS
    if smoke or cpus < 2:
        record["target_skipped"] = True
        record["target_skip_reason"] = (
            f"{'smoke-sized load' if smoke else 'full load'} on a constrained "
            f"runner ({cpus} CPU(s) available, {workers} workers): the run "
            "verifies golden identity, coalescing, and protocol health; the "
            f"{TARGET_RPS:.0f} req/s throughput claim needs an unconstrained "
            "multi-core machine"
        )
        record["target_met"] = None
    else:
        record["target_skipped"] = False
        record["target_skip_reason"] = None
        record["target_met"] = record["load"]["requests_per_sec"] >= TARGET_RPS
    return record


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--output",
        type=Path,
        default=REPO_ROOT / "BENCH_service.json",
        help="where to write the benchmark record",
    )
    parser.add_argument(
        "--address",
        default=None,
        help="target a running server instead of starting one in-process",
    )
    parser.add_argument(
        "--workers", type=int, default=2, help="worker processes for the bench server"
    )
    parser.add_argument(
        "--burst", type=int, default=8, help="duplicate-request burst size"
    )
    parser.add_argument(
        "--clients", type=int, default=4, help="concurrent load-phase clients"
    )
    parser.add_argument(
        "--requests", type=int, default=50, help="load-phase requests per client"
    )
    parser.add_argument(
        "--retries",
        type=int,
        default=1,
        help="retry budget for the load-phase clients (default 1)",
    )
    parser.add_argument(
        "--deadline-ms",
        type=float,
        default=None,
        help="per-request deadline budget for the load-phase clients",
    )
    parser.add_argument(
        "--backoff-seed",
        type=int,
        default=1234,
        help="base seed for the load clients' deterministic retry jitter",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI mode: small load, throughput target skipped with a recorded reason",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="CI gate: exit nonzero on golden mismatch, protocol errors, "
        "or a burst with zero coalesces",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        args.burst = min(args.burst, 6)
        args.clients = min(args.clients, 2)
        args.requests = min(args.requests, 25)

    cache_dir = os.environ.get("CCRP_CACHE_DIR")
    with tempfile.TemporaryDirectory(prefix="ccrp-bench-service") as scratch:
        if cache_dir is None:
            # Cold cache makes the burst's first execution slow enough
            # that the duplicates provably arrive in-flight.
            os.environ["CCRP_CACHE_DIR"] = os.path.join(scratch, "cache")
        try:
            resilience = {
                "retries": args.retries,
                "backoff_base": 0.05,
                "backoff_max": 2.0,
                "backoff_seed": args.backoff_seed,
                "deadline_ms": args.deadline_ms,
            }
            if args.address is not None:
                record = run_benchmark(
                    args.address, args.workers, args.burst, args.clients,
                    args.requests, args.smoke, resilience,
                )
            else:
                with InProcessServer(scratch, args.workers) as server:
                    record = run_benchmark(
                        server.address, args.workers, args.burst, args.clients,
                        args.requests, args.smoke, resilience,
                    )
        except AssertionError as error:
            print(f"ERROR: {error}", file=sys.stderr)
            return 1
        finally:
            if cache_dir is None:
                os.environ.pop("CCRP_CACHE_DIR", None)

    args.output.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
    print(json.dumps(record, indent=2, sort_keys=True))

    failures = []
    if record["protocol_errors"]:
        failures.append(f"{record['protocol_errors']} protocol error(s) under load")
    if record["burst"]["coalesced"] < 1:
        failures.append(
            f"duplicate burst of {record['burst']['size']} showed no coalescing"
        )
    for message in failures:
        if args.check:
            print(f"ERROR: {message}", file=sys.stderr)
        else:
            print(f"WARNING: {message}", file=sys.stderr)
    if args.check and failures:
        return 1
    if record["target_skipped"]:
        # Never silent: the record and the log both carry the reason.
        print(
            f"SKIP (throughput target): {record['target_skip_reason']}",
            file=sys.stderr,
        )
    elif not record["target_met"]:
        message = (
            f"{record['load']['requests_per_sec']:.1f} req/s is below the "
            f"{TARGET_RPS:.0f} req/s target"
        )
        if args.check:
            print(f"ERROR: {message}", file=sys.stderr)
            return 1
        print(f"WARNING: {message}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
