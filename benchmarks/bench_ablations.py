"""Benchmark: the design-choice ablations DESIGN.md calls out.

LAT packing (3.125 % vs 12.5 %), block alignment (byte vs word), and
decoder rate (1/2/4 bytes per cycle).
"""

from repro.experiments.ablations import run_ablations


def test_ablations(run_once):
    result = run_once(run_ablations)
    print()
    print(result.render())

    for row in result.lat_rows:
        assert row.naive_overhead > 3.5 * row.packed_overhead
    for row in result.alignment_rows:
        assert row.byte_aligned_ratio <= row.word_aligned_ratio
    for row in result.decoder_rows:
        assert row.relative_performance[4] <= row.relative_performance[1]
