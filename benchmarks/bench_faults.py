"""Benchmark: fault-injection throughput and the robustness property gate.

Measures the *fault substrate*, not the paper's results: injection rate
of the seeded :class:`~repro.faults.injector.FaultInjector`, CRC-8
throughput of the integrity layer, and end-to-end blast-radius trials
per second for the block codec and the whole-file LZW path — while
re-asserting the properties the ``ccrp-faults --smoke`` CI gate checks
(single faults bounded to one line under block codecs with 100 %
bit-flip detection; LZW corruption not line-bounded).

Run from the repository root::

    PYTHONPATH=src python benchmarks/bench_faults.py

and it writes ``BENCH_faults.json``.  ``--smoke`` runs a reduced trial
count and fails on any property violation (CI-compatible);
``--metrics FILE`` writes the record to an extra location.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

DEFAULT_TRIALS = 200
SMOKE_TRIALS = 25
CRC_PAYLOAD = 1 << 20  # 1 MiB of CRC-8 input
SEED = 1992


def _rate(count: int, thunk) -> tuple[float, object]:
    started = time.perf_counter()
    value = thunk()
    elapsed = time.perf_counter() - started
    return count / elapsed if elapsed else float("inf"), value


def run_benchmark(trials: int) -> dict:
    from repro.core.standard import standard_code
    from repro.faults.checker import blast_block_codec, blast_lzw
    from repro.faults.injector import FaultInjector
    from repro.faults.integrity import crc8
    from repro.workloads.suite import load

    text = load("eightq").text
    code = standard_code()

    injector = FaultInjector(SEED)
    inject_rate, _ = _rate(
        trials * 3,
        lambda: [
            injector.inject(text, model)
            for model in ("bit_flip", "byte", "burst")
            for _ in range(trials)
        ],
    )

    payload = bytes(range(256)) * (CRC_PAYLOAD // 256)
    crc_seconds_start = time.perf_counter()
    crc8(payload)
    crc_bytes_per_second = CRC_PAYLOAD / (time.perf_counter() - crc_seconds_start)

    block_injector = FaultInjector(SEED + 1)
    block_rate, block_reports = _rate(
        trials,
        lambda: [
            blast_block_codec(code, text, block_injector, "bit_flip", "preselected")
            for _ in range(trials)
        ],
    )
    worst_block = max(report.blast_radius for report in block_reports)
    undetected = sum(1 for report in block_reports if not report.detected)
    if worst_block > 1:
        raise SystemExit(
            f"property violation: block-codec bit flip blast radius {worst_block} > 1"
        )
    if undetected:
        raise SystemExit(
            f"property violation: CRC-8 missed {undetected} single-bit faults"
        )

    lzw_injector = FaultInjector(SEED + 2)
    lzw_rate, lzw_reports = _rate(
        trials,
        lambda: [blast_lzw(text, lzw_injector, "byte") for _ in range(trials)],
    )
    worst_lzw_span = max(report.span for report in lzw_reports)
    if worst_lzw_span <= 1:
        raise SystemExit(
            "property violation: no LZW trial spread beyond one line "
            f"({trials} trials)"
        )

    return {
        "schema": "ccrp-bench-faults/1",
        "trials": trials,
        "seed": SEED,
        "cpu_count": os.cpu_count(),
        "program_bytes": len(text),
        "injections_per_second": inject_rate,
        "crc8_bytes_per_second": crc_bytes_per_second,
        "block_trials_per_second": block_rate,
        "lzw_trials_per_second": lzw_rate,
        "worst_block_blast_radius": worst_block,
        "worst_lzw_span_lines": worst_lzw_span,
        "properties_hold": True,  # the checks above raise otherwise
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--output",
        type=Path,
        default=REPO_ROOT / "BENCH_faults.json",
        help="where to write the benchmark record",
    )
    parser.add_argument(
        "--metrics", type=Path, help="also write the record to this path"
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help=f"reduced trial count ({SMOKE_TRIALS}); fail on property violations",
    )
    parser.add_argument("--trials", type=int, default=DEFAULT_TRIALS)
    args = parser.parse_args(argv)

    trials = SMOKE_TRIALS if args.smoke else args.trials
    record = run_benchmark(trials)
    payload = json.dumps(record, indent=2) + "\n"
    args.output.write_text(payload)
    if args.metrics:
        args.metrics.write_text(payload)
    print(
        f"faults: {record['injections_per_second']:,.0f} injections/s, "
        f"crc8 {record['crc8_bytes_per_second'] / 1e6:.1f} MB/s, "
        f"block {record['block_trials_per_second']:.1f} trials/s "
        f"(worst blast {record['worst_block_blast_radius']}), "
        f"lzw {record['lzw_trials_per_second']:.1f} trials/s "
        f"(worst span {record['worst_lzw_span_lines']})"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
