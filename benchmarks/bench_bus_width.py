"""Benchmark: bus-width sensitivity (paper Sections 3.4/5)."""

from repro.experiments.bus_width import run_bus_width


def test_bus_width(run_once):
    result = run_once(run_bus_width)
    print()
    print(result.render())

    for program in ("espresso", "fpppp"):
        # Fixed 2 B/cycle decoder degrades monotonically with bus width...
        fixed = [
            result.row_for(program, bus).relative_performance[2] for bus in (4, 8, 16)
        ]
        assert fixed == sorted(fixed)
        # ...and a decoder matched to the bus recovers most of it.
        for bus in (4, 8, 16):
            row = result.row_for(program, bus).relative_performance
            assert row[8] <= row[2]
