"""Benchmark: the vectorized memory-system timeline kernels.

Measures the cache→CLB→refill stage of the full performance grid
(Tables 1-8 + Figure 9 + Tables 9-10): for every simulation program, the
exact multiset of CLB simulations and refill-table builds the grid
performs, timed once through the per-probe reference models
(``CCRP_MEMSYS_REFERENCE`` path: the stateful :class:`repro.ccrp.clb.CLB`
and the per-block ``RefillEngine`` loop) and once through the array
kernels (stack-distance miss curves and
:meth:`repro.ccrp.decoder.DecoderModel.refill_cycles_table`).  The cache
miss streams are precomputed identically for both arms, so the timings
isolate exactly the code this optimisation replaced.

Equivalence is asserted on every run, never sampled: each arm's CLB miss
counts, refill-cycle tables, fetched-byte tables, and the batch Huffman
line decode must match the reference bit for bit before any timing is
recorded.

Honest-gate conventions (same as ``bench_harness.py``): the record
carries the CPU affinity and repeat count; ``--smoke`` runs a small
workload subset suitable for CI, where the full-grid speedup target is
*skipped with a recorded reason* instead of being claimed from a
constrained runner.  ``--check`` exits nonzero on an equivalence failure
or a vectorized-slower-than-reference regression.

Run from the repository root::

    PYTHONPATH=src python benchmarks/bench_memsys.py

and it writes ``BENCH_memsys.json`` next to the repo's other results.
"""

from __future__ import annotations

import argparse
import json
import math
import os
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

try:
    from repro.core.artifacts import get_study
except ImportError:  # running as a script without the package installed
    sys.path.insert(0, str(REPO_ROOT / "src"))
    from repro.core.artifacts import get_study

import numpy as np

from repro.ccrp.clb import CLB
from repro.ccrp.decoder import DecoderModel
from repro.ccrp.refill import RefillEngine
from repro.ccrp.stackdist import lru_miss_count, lru_miss_curve
from repro.core.sweep import available_cpus
from repro.lat.entry import LINES_PER_ENTRY
from repro.workloads.suite import SIMULATION_PROGRAMS

SCHEMA = "ccrp-bench-memsys/1"

#: The grid's cache axis (Tables 1-8, reused by Figure 9 and Tables 9-10).
CACHE_SIZES = (256, 512, 1024, 2048, 4096)

#: Figure 9 sweeps all three memory models; the tables use the first two.
MEMORY_MODELS = ("eprom", "burst_eprom", "sc_dram")

#: Tables 9-10 sweep the CLB axis for these two programs only; everything
#: else runs at the default 16 entries.
CLB_AXIS_PROGRAMS = ("nasa7", "espresso")
CLB_ENTRIES_AXIS = (16, 8, 4)

#: CI subset: traces cheap enough to simulate cold on a small runner.
SMOKE_PROGRAMS = ("eightq", "lloop01")

#: The full-grid claim this PR makes; only asserted on full (non-smoke)
#: runs on an unconstrained machine.
TARGET_GEOMEAN = 10.0


def _best_of(repeats: int, fn) -> float:
    best = math.inf
    for _ in range(repeats):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


def _clb_axis(program: str) -> tuple[int, ...]:
    return CLB_ENTRIES_AXIS if program in CLB_AXIS_PROGRAMS else (16,)


def _assert_equivalent(program: str, study, streams: dict[int, np.ndarray]) -> None:
    """Reference and vectorized arms must agree before timing means anything."""
    decoder = DecoderModel()
    for cache_bytes, stream in streams.items():
        curve = lru_miss_curve(stream)
        for entries in _clb_axis(program):
            reference = CLB(entries=entries).simulate(stream)
            vectorized = lru_miss_count(curve, entries)
            if reference != vectorized:
                raise AssertionError(
                    f"{program}: CLB miss counts diverge at cache={cache_bytes} "
                    f"entries={entries}: reference {reference}, curve {vectorized}"
                )
    for memory in MEMORY_MODELS:
        reference = RefillEngine(study.image, memory, decoder, vectorized=False)
        vectorized = RefillEngine(study.image, memory, decoder, vectorized=True)
        if not np.array_equal(reference.ccrp_refill_cycles, vectorized.ccrp_refill_cycles):
            raise AssertionError(f"{program}: refill-cycle tables diverge on {memory}")
        if not np.array_equal(
            reference.fetched_bytes_per_line, vectorized.fetched_bytes_per_line
        ):
            raise AssertionError(f"{program}: fetched-byte tables diverge on {memory}")
    image = study.image
    blobs = [block.data for block in image.blocks if block.is_compressed]
    if blobs:
        batch = image.code.decode_lines(blobs, image.line_size)
        scalar = [image.code.decode_fast(blob, image.line_size) for blob in blobs]
        if batch != scalar:
            raise AssertionError(f"{program}: batch line decode diverges from decode_fast")


def _time_stage(program: str, study, streams: dict[int, np.ndarray], repeats: int) -> dict:
    """Best-of-``repeats`` wall time of each arm's full grid workload."""
    decoder = DecoderModel()
    axis = _clb_axis(program)

    def reference_arm() -> None:
        for stream in streams.values():
            for entries in axis:
                CLB(entries=entries).simulate(stream)
        for memory in MEMORY_MODELS:
            RefillEngine(study.image, memory, decoder, vectorized=False)

    def vectorized_arm() -> None:
        for stream in streams.values():
            curve = lru_miss_curve(stream)
            for entries in axis:
                lru_miss_count(curve, entries)
        for memory in MEMORY_MODELS:
            RefillEngine(study.image, memory, decoder, vectorized=True)

    reference_seconds = _best_of(repeats, reference_arm)
    vectorized_seconds = _best_of(repeats, vectorized_arm)
    return {
        "probes": {str(cb): int(stream.size) for cb, stream in streams.items()},
        "clb_entries_axis": list(axis),
        "reference_seconds": reference_seconds,
        "vectorized_seconds": vectorized_seconds,
        "speedup": reference_seconds / vectorized_seconds,
    }


def _time_decode(study, repeats: int) -> dict | None:
    """Batch vs scalar Huffman line decode over the image's blocks."""
    image = study.image
    blobs = [block.data for block in image.blocks if block.is_compressed]
    if not blobs:
        return None
    scalar_seconds = _best_of(
        repeats, lambda: [image.code.decode_fast(blob, image.line_size) for blob in blobs]
    )
    batch_seconds = _best_of(
        repeats, lambda: image.code.decode_lines(blobs, image.line_size)
    )
    return {
        "compressed_blocks": len(blobs),
        "scalar_seconds": scalar_seconds,
        "batch_seconds": batch_seconds,
        "speedup": scalar_seconds / batch_seconds,
    }


def run_benchmark(programs: tuple[str, ...], repeats: int, smoke: bool) -> dict:
    cpus = available_cpus()
    record: dict = {
        "schema": SCHEMA,
        "programs": list(programs),
        "cache_sizes": list(CACHE_SIZES),
        "memory_models": list(MEMORY_MODELS),
        "repeats": repeats,
        "smoke": smoke,
        "cpu_count": os.cpu_count(),
        "cpu_affinity": cpus,
        "stage": {},
        "decode": {},
    }
    speedups = []
    for program in programs:
        study = get_study(program)
        streams = {
            cache_bytes: study.cache_stats(cache_bytes).miss_lines // LINES_PER_ENTRY
            for cache_bytes in CACHE_SIZES
        }
        _assert_equivalent(program, study, streams)
        stage = _time_stage(program, study, streams, repeats)
        record["stage"][program] = stage
        speedups.append(stage["speedup"])
        decode = _time_decode(study, repeats)
        if decode is not None:
            record["decode"][program] = decode

    record["equivalent"] = True  # _assert_equivalent raised otherwise
    record["geomean_stage_speedup"] = math.exp(
        sum(math.log(s) for s in speedups) / len(speedups)
    )
    record["target_geomean"] = TARGET_GEOMEAN
    if smoke:
        record["target_skipped"] = True
        record["target_skip_reason"] = (
            f"smoke subset {list(programs)} on a CI runner "
            f"({cpus} CPU(s) available) verifies equivalence and "
            "non-regression only; the full-grid speedup claim is measured "
            "by a full run of this benchmark"
        )
        record["target_met"] = None
    else:
        record["target_skipped"] = False
        record["target_skip_reason"] = None
        record["target_met"] = record["geomean_stage_speedup"] >= TARGET_GEOMEAN
    return record


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--output",
        type=Path,
        default=REPO_ROOT / "BENCH_memsys.json",
        help="where to write the timing record",
    )
    parser.add_argument(
        "--programs",
        nargs="+",
        default=None,
        help="workloads to measure (default: the full simulation suite)",
    )
    parser.add_argument(
        "--repeats", type=int, default=3, help="best-of-N timing repeats"
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI mode: small workload subset, speedup target skipped with "
        "a recorded reason",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="CI gate: exit nonzero on an equivalence failure or a "
        "vectorized-slower-than-reference geomean",
    )
    args = parser.parse_args(argv)

    if args.programs is not None:
        programs = tuple(args.programs)
    elif args.smoke:
        programs = SMOKE_PROGRAMS
    else:
        programs = SIMULATION_PROGRAMS

    try:
        record = run_benchmark(programs, repeats=args.repeats, smoke=args.smoke)
    except AssertionError as error:
        print(f"ERROR: {error}", file=sys.stderr)
        return 1
    args.output.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
    print(json.dumps(record, indent=2, sort_keys=True))

    geomean = record["geomean_stage_speedup"]
    if geomean < 1.0:
        message = (
            f"vectorized stage is slower than the reference "
            f"(geomean {geomean:.2f}x over {list(programs)})"
        )
        if args.check:
            print(f"ERROR: {message}", file=sys.stderr)
            return 1
        print(f"WARNING: {message}", file=sys.stderr)
    if record["target_skipped"]:
        # Never silent: the record and the log both carry the reason.
        print(f"SKIP (speedup target): {record['target_skip_reason']}", file=sys.stderr)
    elif not record["target_met"]:
        message = (
            f"full-grid geomean {geomean:.2f}x is below the "
            f"{TARGET_GEOMEAN:.0f}x target"
        )
        if args.check:
            print(f"ERROR: {message}", file=sys.stderr)
            return 1
        print(f"WARNING: {message}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
