"""Benchmark: regenerate Tables 11-13 (data cache effects)."""

from repro.experiments.tables11_13 import run_tables11_13


def test_tables11_13_reproduction(run_once):
    result = run_once(run_tables11_13)
    print()
    print(result.render())

    for table in result.tables:
        for memory in ("eprom", "burst_eprom"):
            rows = [row for row in table.rows if row.memory == memory]
            deltas = [abs(row.relative_performance - 1.0) for row in rows]
            # Paper: rising data-cache miss rate dilutes the CCRP effect.
            assert deltas == sorted(deltas, reverse=True) or max(deltas) < 0.005
