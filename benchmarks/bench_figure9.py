"""Benchmark: regenerate Figure 9 (performance vs miss rate scatter)."""

from repro.experiments.figure9 import run_figure9


def test_figure9_reproduction(run_once):
    result = run_once(run_figure9)
    print()
    print(result.render())

    # Paper: "for slow memories, the compressed code model will outperform
    # standard code more at higher miss rates while the opposite is true
    # for faster memory."
    assert result.trend_slope("eprom") < 0
    assert result.trend_slope("burst_eprom") > 0
    assert result.trend_slope("sc_dram") > 0
    assert len(result.points) >= 100
