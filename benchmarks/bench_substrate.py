"""Micro-benchmarks of the substrate the experiments are built on.

These time the hot primitives (functional execution, vectorised cache
simulation, Huffman block compression, LZW, LAT packing, CLB) so that
regressions in the simulator itself — as opposed to the modelled system —
are visible.
"""

import numpy as np
import pytest

from repro.cache.direct_mapped import simulate_trace
from repro.ccrp.clb import CLB
from repro.compression.block import BlockCompressor
from repro.compression.histogram import byte_histogram
from repro.compression.huffman import HuffmanCode
from repro.compression.lzw import lzw_compress
from repro.isa.assembler import Assembler
from repro.lat.entry import LATEntry
from repro.machine import Machine
from repro.workloads import load


@pytest.fixture(scope="module")
def espresso_trace():
    return load("espresso").run().trace.addresses


@pytest.fixture(scope="module")
def eightq_text():
    return load("eightq").text


def test_bench_functional_execution(benchmark):
    """Dynamic instructions per second of the pre-decoded interpreter."""
    program = Assembler().assemble(
        """
        main: li $t0, 20000
        loop: addiu $t0, $t0, -1
              addu $t1, $t1, $t0
              xor  $t2, $t1, $t0
              bnez $t0, loop
              nop
              li $v0, 10
              syscall
        """
    )
    result = benchmark(lambda: Machine(program).run())
    assert result.instructions_executed > 100_000


def test_bench_vectorised_cache_simulation(benchmark, espresso_trace):
    """One full-trace direct-mapped simulation (the Tables 1-8 kernel)."""
    stats = benchmark(simulate_trace, espresso_trace, 1024)
    assert stats.misses > 0


def test_bench_huffman_block_compression(benchmark, eightq_text):
    code = HuffmanCode.from_frequencies(
        byte_histogram(eightq_text), max_length=16, cover_all_symbols=True
    )
    compressor = BlockCompressor(code)
    blocks = benchmark(compressor.compress_program, eightq_text)
    assert len(blocks) == (len(eightq_text) + 31) // 32


def test_bench_bounded_code_construction(benchmark, eightq_text):
    """Package-merge over a 256-symbol histogram."""
    histogram = byte_histogram(eightq_text)
    code = benchmark(
        HuffmanCode.from_frequencies, histogram, 16, True
    )
    assert code.max_length <= 16


def test_bench_lzw(benchmark, eightq_text):
    blob = benchmark(lzw_compress, eightq_text)
    assert len(blob) < len(eightq_text)


def test_bench_lat_entry_pack_unpack(benchmark):
    entry = LATEntry(base=0x123456, lengths=(10, 20, 32, 5, 31, 1, 12, 8))

    def round_trip():
        return LATEntry.decode(entry.encode())

    assert benchmark(round_trip) == entry


def test_bench_clb_simulation(benchmark):
    rng = np.random.default_rng(7)
    stream = rng.integers(0, 64, size=20_000).tolist()

    def run():
        return CLB(entries=16).simulate(stream)

    misses = benchmark(run)
    assert misses > 0
