"""Vectorized pipeline replay over basic-block execution counts.

Exactly replaying a multi-million-instruction trace through the Python
scoreboard would take minutes per workload.  The timeline instead
exploits the structure of the decomposition (see
:mod:`repro.pipeline.datapath`):

* **branch stalls** are a per-transition property — one penalty per
  dynamic-stream discontinuity — computed with a single vectorized
  comparison over the index stream (bit-identical to the exact replay);
* **fetch stalls** are per-miss freezes, reduced by the caller with the
  same vectorized gathers the additive backend uses (a frozen pipeline
  adds exactly the refill cycles, nothing more);
* **hazard stalls** are dominated by *intra-block* interlocks: the
  scoreboard cost of each static basic block is computed once from a
  clean pipeline state, then weighted by the block's execution count
  (one ``bincount``).

The approximation is the per-block state reset: a latency that spans a
block boundary (a load in a delay slot consumed at the branch target,
a divide still running at block entry) is dropped, so the timeline's
hazard total is a *lower bound* on the exact replay's — and equal to it
on straight-line code, where there is a single block.  The property
tests assert both directions of that bound.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.isa.cfg import find_leaders
from repro.isa.instruction import Instruction
from repro.machine.tracing import ExecutionTrace
from repro.pipeline.datapath import (
    PIPELINE_FILL_CYCLES,
    PipelineResult,
    ProgramTiming,
    Scoreboard,
)
from repro.pipeline.hazards import HazardModel, R2000_HAZARDS


class BlockTable:
    """Static basic blocks of one program plus per-block hazard costs.

    Args:
        instructions: The program's static instruction list.
        text_base: Text-segment load address.
        hazards: Interlock parameters the per-block costs are based on.

    Attributes:
        starts: Word index of each block's first instruction.
        lengths: Instructions per block.
        stall_cycles: Hazard stalls of executing each block in full from
            a clean pipeline state.
    """

    def __init__(
        self,
        instructions: tuple[Instruction, ...],
        text_base: int = 0,
        hazards: HazardModel = R2000_HAZARDS,
    ) -> None:
        self.hazards = hazards
        count = len(instructions)
        leaders = find_leaders(instructions, text_base, split_after_syscalls=True)
        words = sorted((address - text_base) >> 2 for address in leaders)
        self.starts = np.array([w for w in words if 0 <= w < count], dtype=np.int64)
        ends = np.append(self.starts[1:], count)
        self.lengths = ends - self.starts
        self.is_leader = np.zeros(count, dtype=bool)
        self.is_leader[self.starts] = True

        self._timing = ProgramTiming(instructions, hazards)
        scoreboard = Scoreboard(self._timing)
        stalls = np.zeros(len(self.starts), dtype=np.int64)
        for block, (start, end) in enumerate(zip(self.starts.tolist(), ends.tolist())):
            scoreboard.reset()
            stalls[block] = scoreboard.run(range(start, end))
        self.stall_cycles = stalls

    def block_of_word(self, words: np.ndarray) -> np.ndarray:
        """Block id containing each static word index."""
        return np.searchsorted(self.starts, words, side="right") - 1

    def prefix_stalls(self, block: int, length: int) -> int:
        """Hazard stalls of the first ``length`` instructions of a block
        (a truncated final event of a capped trace)."""
        scoreboard = Scoreboard(self._timing)
        start = int(self.starts[block])
        return scoreboard.run(range(start, start + length))


def replay_trace(
    trace: ExecutionTrace | np.ndarray,
    instructions: tuple[Instruction, ...],
    hazards: HazardModel = R2000_HAZARDS,
    block_table: BlockTable | None = None,
    fetch_stall_cycles: int = 0,
    clb_penalty_cycles: int = 0,
    fetch_misses: int = 0,
) -> PipelineResult:
    """Vectorized pipeline replay of a whole execution trace.

    Args:
        trace: An :class:`~repro.machine.tracing.ExecutionTrace` (block
            or flat backed) or a raw static-index stream.
        instructions: The program's static instruction list.
        hazards: Interlock parameters (ignored when ``block_table`` is
            given — the table already owns a model).
        block_table: Reusable per-program block analysis; pass it when
            replaying the same program under several configurations.
        fetch_stall_cycles: Front-end freeze total, reduced by the
            caller from its miss stream (refill gathers + CLB
            penalties); folded into the result unchanged.
        clb_penalty_cycles: The CLB share of ``fetch_stall_cycles``.
        fetch_misses: Miss count behind ``fetch_stall_cycles``.
    """
    if isinstance(trace, ExecutionTrace):
        indices = trace.instruction_indices.astype(np.int64)
    else:
        indices = np.asarray(trace, dtype=np.int64)
    if len(indices) == 0:
        return PipelineResult(0, 0, 0, 0)
    if indices.min() < 0 or indices.max() >= len(instructions):
        raise ConfigurationError(
            f"trace references instruction {int(indices.max())} outside the "
            f"{len(instructions)}-instruction program"
        )
    table = block_table or BlockTable(instructions, text_base=0, hazards=hazards)

    # Branch redirects: one penalty per dynamic-stream discontinuity —
    # identical to the exact replay's rule, in one vectorized compare.
    discontinuities = int(np.count_nonzero(indices[1:] != indices[:-1] + 1))
    branch_stalls = discontinuities * table.hazards.taken_branch_penalty

    # Hazard stalls: block events -> execution counts -> dot product.
    # An event ends at the next block leader *or* the next dynamic
    # discontinuity: a redirect that re-enters the current block (e.g. a
    # one-instruction self-loop) must start a new event, otherwise the
    # stream is misread as one straight-line pass over the whole block
    # and charged interlocks between instructions that never issued
    # back-to-back (the ``[addu; lw; addu]`` / ``[0, 1, 1]`` case in
    # ``docs/modeling_notes.md`` §15).
    mask = table.is_leader[indices].copy()
    mask[0] = True
    mask[1:] |= indices[1:] != indices[:-1] + 1
    event_positions = np.nonzero(mask)[0]
    entry_words = indices[event_positions]
    block_ids = table.block_of_word(entry_words)
    event_lengths = np.diff(np.append(event_positions, len(indices)))
    full = (event_lengths == table.lengths[block_ids]) & (
        entry_words == table.starts[block_ids]
    )
    counts = np.bincount(block_ids[full], minlength=len(table.starts))
    hazard_stalls = int(counts @ table.stall_cycles)
    for position in np.nonzero(~full)[0].tolist():
        # Partial or mid-block-entry events (redirects into the middle of
        # a block, the capped tail of a trace) are rare; replay just
        # those through the scoreboard.  Events are contiguous by
        # construction now, so the segment is a plain static range.
        start = int(event_positions[position])
        segment = indices[start : start + int(event_lengths[position])].tolist()
        scoreboard = Scoreboard(table._timing)
        for index in segment:
            hazard_stalls += scoreboard.issue(index)

    return PipelineResult(
        issue_cycles=len(indices),
        fill_cycles=PIPELINE_FILL_CYCLES,
        hazard_stall_cycles=hazard_stalls,
        branch_stall_cycles=branch_stalls,
        fetch_stall_cycles=fetch_stall_cycles,
        clb_penalty_cycles=clb_penalty_cycles,
        fetch_misses=fetch_misses,
    )
