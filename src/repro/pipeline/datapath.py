"""The 5-stage pipeline state machine and its exact trace replay.

Model
-----

An in-order IF/ID/EX/MEM/WB pipeline with a full bypass network issues
one instruction per cycle unless an interlock holds it: instruction *k*
enters EX at

``issue(k) = max(issue(k-1) + 1, ready(sources), unit_busy) [+ redirect]``

where ``ready`` comes from the producers' result latencies
(:meth:`~repro.pipeline.hazards.HazardModel.result_latency`) and
``unit_busy`` covers the multiply/divide unit and the unpipelined FP
coprocessor.  A dynamic-stream discontinuity (the next instruction is
not the fall-through) means a control transfer actually redirected
fetch; it charges ``taken_branch_penalty`` squashed-fetch cycles.

Fetch freezes, not slides
-------------------------

The paper states the pipeline "is not allowed to slide" during fetch
delays (Section 4.1): a cache-miss refill gates the clock of every
stage, so in-flight results make no progress while the front end waits.
A freeze therefore shifts the whole pipeline timebase uniformly and can
never hide (or be hidden by) a hazard stall.  That gives the exact
decomposition this module and :mod:`repro.pipeline.timeline` share::

    total = issue + fill + hazard + branch + fetch

with each term computed independently.  :func:`simulate_pipeline` walks
the dynamic stream one instruction at a time — the reference the
vectorized timeline is tested against.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.isa.instruction import Instruction
from repro.pipeline.hazards import (
    HazardModel,
    NUM_RESOURCES,
    R2000_HAZARDS,
    register_effects,
)

#: Cycles to fill/drain the pipeline around the issue stream: a 5-stage
#: pipeline completes N instructions in N + 4 cycles.
PIPELINE_FILL_CYCLES = 4


@dataclass(frozen=True)
class PipelineResult:
    """Cycle totals of one pipeline replay, by cause.

    Attributes:
        issue_cycles: One cycle per dynamic instruction.
        fill_cycles: Pipeline fill/drain (4, charged once per run).
        hazard_stall_cycles: Data-hazard and structural interlocks.
        branch_stall_cycles: Squashed fetches after taken transfers.
        fetch_stall_cycles: Front-end freezes (cache refills, including
            any CLB/LAT penalty) — 0 when no fetch unit is attached.
        clb_penalty_cycles: The CLB-miss share of ``fetch_stall_cycles``.
        fetch_misses: Instruction-cache misses seen by the fetch unit.
    """

    issue_cycles: int
    fill_cycles: int
    hazard_stall_cycles: int
    branch_stall_cycles: int
    fetch_stall_cycles: int = 0
    clb_penalty_cycles: int = 0
    fetch_misses: int = 0

    @property
    def total_cycles(self) -> int:
        """End-to-end cycles (excluding data-access penalties)."""
        return (
            self.issue_cycles
            + self.fill_cycles
            + self.hazard_stall_cycles
            + self.branch_stall_cycles
            + self.fetch_stall_cycles
        )

    def breakdown(self) -> dict[str, int]:
        """Per-category cycle counters (for ``--metrics`` reports)."""
        return {
            "issue": self.issue_cycles,
            "fill": self.fill_cycles,
            "hazard": self.hazard_stall_cycles,
            "branch": self.branch_stall_cycles,
            "fetch": self.fetch_stall_cycles,
            "clb_penalty": self.clb_penalty_cycles,
            "total": self.total_cycles,
        }


class ProgramTiming:
    """Per-static-instruction hazard data, derived once per program.

    Attributes:
        reads: Scoreboard indices each instruction reads.
        writes: Scoreboard indices each instruction writes.
        latency: Issue-to-forwardable result latency.
        fp_unit: Whether the instruction occupies the FP coprocessor.
        multdiv: Whether the instruction occupies the multiply/divide unit.
    """

    def __init__(
        self,
        instructions: tuple[Instruction, ...],
        hazards: HazardModel = R2000_HAZARDS,
    ) -> None:
        self.hazards = hazards
        self.reads: list[tuple[int, ...]] = []
        self.writes: list[tuple[int, ...]] = []
        self.latency: list[int] = []
        self.fp_unit: list[bool] = []
        self.multdiv: list[bool] = []
        fp_pipelined = hazards.fp_pipelined
        for instruction in instructions:
            spec = instruction.spec
            effects = register_effects(instruction)
            self.reads.append(effects.reads)
            self.writes.append(effects.writes)
            self.latency.append(hazards.result_latency(spec))
            self.fp_unit.append(not fp_pipelined and hazards.occupies_fp_unit(spec))
            self.multdiv.append(spec.category.value == "multdiv")


class Scoreboard:
    """Issue-time bookkeeping of the datapath (hazards only).

    Operates in the *unfrozen* timebase: fetch freezes gate every stage
    at once, so they are accounted outside (see module docstring).
    """

    def __init__(self, timing: ProgramTiming) -> None:
        self.timing = timing
        self.reset()

    def reset(self) -> None:
        self._ready = [0] * NUM_RESOURCES
        self._multdiv_busy = 0
        self._fp_busy = 0
        self._time = -1  # so the first instruction issues at cycle 0

    def issue(self, index: int) -> int:
        """Issue static instruction ``index``; returns its stall cycles."""
        timing = self.timing
        base = self._time + 1
        start = base
        ready = self._ready
        for resource in timing.reads[index]:
            when = ready[resource]
            if when > start:
                start = when
        if timing.multdiv[index] and self._multdiv_busy > start:
            start = self._multdiv_busy
        if timing.fp_unit[index] and self._fp_busy > start:
            start = self._fp_busy
        done = start + timing.latency[index]
        for resource in timing.writes[index]:
            ready[resource] = done
        if timing.multdiv[index]:
            self._multdiv_busy = done
        if timing.fp_unit[index]:
            self._fp_busy = done
        self._time = start
        return start - base

    def bubble(self, cycles: int) -> None:
        """Inject ``cycles`` empty issue slots (taken-branch redirect)."""
        self._time += cycles

    def run(self, indices) -> int:
        """Total hazard stalls of issuing ``indices`` back to back."""
        total = 0
        for index in indices:
            total += self.issue(index)
        return total


def simulate_pipeline(
    instructions: tuple[Instruction, ...],
    instruction_indices: np.ndarray,
    hazards: HazardModel = R2000_HAZARDS,
    frontend=None,
    text_base: int = 0,
) -> PipelineResult:
    """Exact cycle-accurate replay of a dynamic instruction stream.

    Args:
        instructions: The program's static instruction list.
        instruction_indices: Static instruction index per dynamic
            instruction, in execution order (see
            :attr:`~repro.machine.tracing.ExecutionTrace.instruction_indices`).
        hazards: Interlock parameters.
        frontend: Optional :class:`~repro.pipeline.frontend.FetchUnit`;
            when given, every access runs through it and misses freeze
            the pipeline for the exact refill cost.
        text_base: Text-segment load address (to turn indices back into
            fetch addresses for the front end).

    This is the reference implementation — a Python loop per dynamic
    instruction.  Use :func:`repro.pipeline.timeline.replay_trace` for
    whole-suite runs.
    """
    indices = np.asarray(instruction_indices)
    if len(indices) and (indices.min() < 0 or indices.max() >= len(instructions)):
        raise ConfigurationError(
            f"trace references instruction {int(indices.max())} outside the "
            f"{len(instructions)}-instruction program"
        )
    timing = ProgramTiming(instructions, hazards)
    scoreboard = Scoreboard(timing)
    penalty = hazards.taken_branch_penalty

    hazard_stalls = 0
    branch_stalls = 0
    fetch_stalls = 0
    previous = None
    for index in indices.tolist():
        if previous is not None and index != previous + 1:
            branch_stalls += penalty
            scoreboard.bubble(penalty)
        if frontend is not None:
            fetch_stalls += frontend.fetch(text_base + 4 * index)
        hazard_stalls += scoreboard.issue(index)
        previous = index

    issue = len(indices)
    return PipelineResult(
        issue_cycles=issue,
        fill_cycles=PIPELINE_FILL_CYCLES if issue else 0,
        hazard_stall_cycles=hazard_stalls,
        branch_stall_cycles=branch_stalls,
        fetch_stall_cycles=fetch_stalls,
        clb_penalty_cycles=frontend.clb_penalty_cycles if frontend is not None else 0,
        fetch_misses=frontend.misses if frontend is not None else 0,
    )
