"""Interlock and forwarding rules for the 5-stage pipeline model.

The datapath needs two things about every instruction: which registers
it reads and writes (to detect data hazards through the bypass network)
and how many cycles separate its issue from its result becoming
forwardable.  Both are static properties of the
:class:`~repro.isa.opcodes.InstructionSpec`, derived here once per spec
and memoised.

Register name space (a single scoreboard index per architectural
resource):

* ``0-31``   — integer registers (``$0`` is dropped: reads are always
  ready, writes are discarded);
* ``32-63``  — FP registers ``$f0-$f31`` (double-precision operands
  occupy the even/odd pair, and both halves are tracked);
* ``64/65``  — ``HI`` / ``LO``;
* ``66``     — the FP condition flag read by ``bc1t``/``bc1f``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.isa.instruction import Instruction
from repro.isa.opcodes import (
    COP1_MFC1,
    COP1_MTC1,
    Category,
    FMT_DOUBLE,
    InstructionFormat,
    InstructionSpec,
)
from repro.machine.stalls import _R2000_EXTRA_CYCLES

#: Scoreboard indices of the non-GPR resources.
FP_BASE = 32
HI = 64
LO = 65
FP_FLAG = 66
NUM_RESOURCES = 67


@dataclass(frozen=True)
class RegisterEffects:
    """Registers an instruction reads and writes (scoreboard indices)."""

    reads: tuple[int, ...]
    writes: tuple[int, ...]


def _gpr(number: int) -> tuple[int, ...]:
    """A GPR as a read/write set; ``$0`` is never a real dependency."""
    return (number,) if number else ()


def _fp(number: int, double: bool) -> tuple[int, ...]:
    """An FP register (and its pair half for double-precision)."""
    if double:
        even = number & ~1
        return (FP_BASE + even, FP_BASE + even + 1)
    return (FP_BASE + number,)


def register_effects(instruction: Instruction) -> RegisterEffects:
    """Read/write sets of one concrete instruction.

    Derived from the operand-signature key, which pins down the role of
    every encoded field (see :mod:`repro.isa.opcodes`).
    """
    spec = instruction.spec
    category = spec.category
    operands = spec.operands
    double = spec.fmt == FMT_DOUBLE

    if category in (Category.ALU, Category.SHIFT):
        if operands == "rd,rs,rt":
            return RegisterEffects(_gpr(instruction.rs) + _gpr(instruction.rt), _gpr(instruction.rd))
        if operands == "rd,rt,sha":
            return RegisterEffects(_gpr(instruction.rt), _gpr(instruction.rd))
        if operands == "rd,rt,rs":
            return RegisterEffects(_gpr(instruction.rt) + _gpr(instruction.rs), _gpr(instruction.rd))
        if operands == "rt,uimm":  # lui
            return RegisterEffects((), _gpr(instruction.rt))
        return RegisterEffects(_gpr(instruction.rs), _gpr(instruction.rt))  # rt,rs,imm
    if category is Category.LOAD:
        return RegisterEffects(_gpr(instruction.rs), _gpr(instruction.rt))
    if category is Category.STORE:
        return RegisterEffects(_gpr(instruction.rs) + _gpr(instruction.rt), ())
    if category is Category.BRANCH:
        if operands == "rs,rt,rel":
            return RegisterEffects(_gpr(instruction.rs) + _gpr(instruction.rt), ())
        return RegisterEffects(_gpr(instruction.rs), ())
    if category is Category.JUMP:
        return RegisterEffects((), ())
    if category is Category.CALL:
        if spec.format is InstructionFormat.J:  # jal
            return RegisterEffects((), (31,))
        if operands == "rd,rs":  # jalr
            return RegisterEffects(_gpr(instruction.rs), _gpr(instruction.rd))
        return RegisterEffects(_gpr(instruction.rs), (31,))  # bltzal/bgezal
    if category is Category.JUMP_REG:
        return RegisterEffects(_gpr(instruction.rs), ())
    if category is Category.MULTDIV:
        return RegisterEffects(_gpr(instruction.rs) + _gpr(instruction.rt), (HI, LO))
    if category is Category.HILO:
        if spec.mnemonic == "mfhi":
            return RegisterEffects((HI,), _gpr(instruction.rd))
        if spec.mnemonic == "mflo":
            return RegisterEffects((LO,), _gpr(instruction.rd))
        if spec.mnemonic == "mthi":
            return RegisterEffects(_gpr(instruction.rs), (HI,))
        return RegisterEffects(_gpr(instruction.rs), (LO,))  # mtlo
    if category is Category.FP_LOAD:  # lwc1 ft, off(rs)
        return RegisterEffects(_gpr(instruction.rs), _fp(instruction.rt, False))
    if category is Category.FP_STORE:  # swc1
        return RegisterEffects(_gpr(instruction.rs) + _fp(instruction.rt, False), ())
    if category is Category.FP_ARITH:
        if spec.operands == "fd,fs":  # abs/neg/mov-style two-operand ops
            return RegisterEffects(_fp(instruction.rd, double), _fp(instruction.shamt, double))
        return RegisterEffects(
            _fp(instruction.rd, double) + _fp(instruction.rt, double),
            _fp(instruction.shamt, double),
        )
    if category is Category.FP_CONVERT:
        source_double = spec.fmt == FMT_DOUBLE
        result_double = spec.mnemonic.startswith("cvt.d")
        return RegisterEffects(
            _fp(instruction.rd, source_double), _fp(instruction.shamt, result_double)
        )
    if category is Category.FP_COMPARE:
        return RegisterEffects(
            _fp(instruction.rd, double) + _fp(instruction.rt, double), (FP_FLAG,)
        )
    if category is Category.FP_BRANCH:
        return RegisterEffects((FP_FLAG,), ())
    if category is Category.FP_MOVE:
        if spec.selector == COP1_MFC1:
            return RegisterEffects(_fp(instruction.rd, False), _gpr(instruction.rt))
        if spec.selector == COP1_MTC1:
            return RegisterEffects(_gpr(instruction.rt), _fp(instruction.rd, False))
        return RegisterEffects(_fp(instruction.rd, double), _fp(instruction.shamt, double))
    return RegisterEffects((), ())  # syscall / break


@dataclass(frozen=True)
class HazardModel:
    """Interlock parameters of the 5-stage pipeline.

    The EX stage has a full bypass network, so a single-cycle result is
    forwardable to the immediately following instruction — only longer
    latencies stall.  Latency semantics: an instruction issuing at cycle
    ``t`` makes its result available to a consumer issuing at
    ``t + result_latency``; a consumer arriving earlier waits.

    Attributes:
        load_latency: Issue-to-forwardable latency of loads (2: the
            value exits MEM one cycle after EX, the classic one-bubble
            load-use interlock).
        mult_latency: Cycles until HI/LO are readable after a multiply.
        div_latency: Cycles until HI/LO are readable after a divide.
        fp_extra_cycles: Per-mnemonic extra cycles of the FP coprocessor
            (defaults to the shared ``_R2000_EXTRA_CYCLES`` table); the
            result latency is ``1 + extra``.
        fp_pipelined: When ``False`` (the R2010 is not fully pipelined)
            the coprocessor is busy until its current result completes,
            so back-to-back FP operations serialise even without a
            register dependence.
        taken_branch_penalty: Squashed fetch cycles when control
            actually redirects.  The branch resolves at the end of EX;
            the architectural delay slot hides one of the two redirect
            bubbles, leaving one.  Set to 0 for the idealised R2000
            early-resolve behaviour the paper's pixie counts assume.
    """

    load_latency: int = 2
    mult_latency: int = 12
    div_latency: int = 35
    fp_extra_cycles: dict[str, int] = field(
        default_factory=lambda: {
            mnemonic: cycles
            for mnemonic, cycles in _R2000_EXTRA_CYCLES.items()
            if mnemonic not in ("mult", "multu", "div", "divu")
        }
    )
    fp_pipelined: bool = False
    taken_branch_penalty: int = 1

    def result_latency(self, spec: InstructionSpec) -> int:
        """Issue-to-forwardable latency of one instruction's results."""
        category = spec.category
        if category in (Category.LOAD, Category.FP_LOAD):
            return self.load_latency
        if category is Category.MULTDIV:
            return self.div_latency if spec.mnemonic in ("div", "divu") else self.mult_latency
        if category in (Category.FP_ARITH, Category.FP_CONVERT, Category.FP_COMPARE):
            return 1 + self.fp_extra_cycles.get(spec.mnemonic, 0)
        return 1

    def occupies_fp_unit(self, spec: InstructionSpec) -> bool:
        """Whether the instruction ties up the (unpipelined) FP unit."""
        return spec.category in (
            Category.FP_ARITH,
            Category.FP_CONVERT,
            Category.FP_COMPARE,
        )

    def fingerprint(self) -> str:
        """Stable identity for artifact-cache keys (process-independent)."""
        import hashlib

        fp_digest = hashlib.sha256(
            repr(sorted(self.fp_extra_cycles.items())).encode()
        ).hexdigest()[:12]
        return (
            f"{self.load_latency}/{self.mult_latency}/{self.div_latency}/"
            f"{self.fp_pipelined}/{self.taken_branch_penalty}/{fp_digest}"
        )


#: The default hazard model used by the pipeline timing backend.
R2000_HAZARDS = HazardModel()
