"""The pipeline's fetch unit: instruction cache + CLB + refill engine.

:class:`FetchUnit` is the stateful front end the exact datapath replay
drives one access at a time: a hit costs nothing, a miss freezes the
pipeline for the *per-line* refill cost — the CCRP's decoder timing for
that specific compressed block (plus a LAT-entry read when the CLB
misses), or the baseline machine's constant burst.  The vectorized
helpers compute the same quantities over whole miss streams for the
timeline backend.

Critical-word-first (modelled extension)
----------------------------------------

With ``critical_word_first=True`` the pipeline resumes as soon as the
*requested* word is available instead of waiting for the whole line:

* baseline — the memory bursts starting at the critical word
  (wrap-around order), so the stall is ``first_word_cycles``;
* CCRP — the Huffman decoder is strictly sequential from the block
  start, so the stall is the full-line refill scaled to the critical
  word's position: ``ceil(full * (word + 1) / words_per_line)``.

Both sides still fetch (and account traffic for) the full line; bus
contention from the tail of the burst is ignored, matching the paper's
single-outstanding-miss simplification.
"""

from __future__ import annotations

import numpy as np

from repro.cache.direct_mapped import _check_geometry
from repro.ccrp.clb import CLB
from repro.ccrp.refill import RefillEngine
from repro.errors import ConfigurationError
from repro.lat.entry import LINES_PER_ENTRY
from repro.memsys.models import MemoryModel, get_memory_model


def miss_mask(
    addresses: np.ndarray, cache_bytes: int, line_size: int = 32
) -> np.ndarray:
    """Per-access miss flags of a direct-mapped cache, vectorised.

    The same sort-by-set trick as
    :func:`repro.cache.direct_mapped.simulate_trace`, but returning a
    boolean per *access* (so miss events keep their position — and
    therefore their address — in the stream) instead of aggregate
    statistics.
    """
    num_sets = _check_geometry(cache_bytes, line_size)
    if len(addresses) == 0:
        return np.zeros(0, dtype=bool)
    lines = np.asarray(addresses, dtype=np.int64) >> (line_size.bit_length() - 1)

    keep = np.empty(len(lines), dtype=bool)
    keep[0] = True
    np.not_equal(lines[1:], lines[:-1], out=keep[1:])
    event_positions = np.nonzero(keep)[0]
    events = lines[event_positions]

    sets = events & (num_sets - 1)
    order = np.argsort(sets, kind="stable")
    sorted_sets = sets[order]
    sorted_lines = events[order]
    miss_sorted = np.empty(len(events), dtype=bool)
    miss_sorted[0] = True
    miss_sorted[1:] = (sorted_sets[1:] != sorted_sets[:-1]) | (
        sorted_lines[1:] != sorted_lines[:-1]
    )
    miss_events = np.empty(len(events), dtype=bool)
    miss_events[order] = miss_sorted

    mask = np.zeros(len(lines), dtype=bool)
    mask[event_positions[miss_events]] = True
    return mask


def baseline_critical_word_cycles(memory: MemoryModel, miss_count: int) -> int:
    """Baseline refill stalls with wrap-around critical-word-first."""
    return miss_count * memory.first_word_cycles


def ccrp_critical_word_cycles(
    engine: RefillEngine, miss_addresses: np.ndarray
) -> int:
    """CCRP refill stalls with sequential decode-to-the-critical-word.

    ``miss_addresses`` are the byte addresses whose fetches missed; the
    per-line full refill cost is scaled linearly to the critical word's
    position in the line (the decoder emits bytes in order).
    """
    if len(miss_addresses) == 0:
        return 0
    addresses = np.asarray(miss_addresses, dtype=np.int64)
    line_size = engine.image.line_size
    words_per_line = line_size // 4
    line_indices = (addresses - engine.image.text_base) // line_size
    full = engine.ccrp_line_cycles(line_indices)
    word = (addresses % line_size) // 4
    return int(((full * (word + 1) + words_per_line - 1) // words_per_line).sum())


class FetchUnit:
    """Stateful front end for the exact pipeline replay.

    Args:
        cache_bytes: Instruction-cache capacity (direct-mapped).
        memory: Instruction-memory model (instance or name).
        line_size: Cache-line size in bytes.
        refill: CCRP refill engine; ``None`` models the standard
            machine's constant full-line burst.
        clb: CLB probed on every miss (CCRP only); ``None`` disables
            the LAT-read penalty (a perfect CLB).
        critical_word_first: Resume on critical-word arrival instead of
            end of line (see module docstring).

    Attributes:
        accesses / misses: Fetch and miss counts so far.
        clb_penalty_cycles: Accumulated LAT-read freeze cycles.
    """

    def __init__(
        self,
        cache_bytes: int,
        memory: MemoryModel | str,
        line_size: int = 32,
        refill: RefillEngine | None = None,
        clb: CLB | None = None,
        critical_word_first: bool = False,
    ) -> None:
        self.num_sets = _check_geometry(cache_bytes, line_size)
        self.line_size = line_size
        self.memory = get_memory_model(memory)
        self.refill = refill
        if refill is not None and refill.image.line_size != line_size:
            raise ConfigurationError(
                f"fetch unit line size {line_size} != compressed image line "
                f"size {refill.image.line_size}"
            )
        self.clb = clb
        if clb is not None and refill is None:
            raise ConfigurationError("a CLB is meaningless without a refill engine")
        self.critical_word_first = critical_word_first
        self._line_shift = line_size.bit_length() - 1
        self._resident: list[int | None] = [None] * self.num_sets
        self._baseline_full = self.memory.bytes_read_cycles(line_size)
        self.accesses = 0
        self.misses = 0
        self.clb_penalty_cycles = 0

    def fetch(self, address: int) -> int:
        """One instruction fetch; returns the freeze cycles it caused."""
        line = address >> self._line_shift
        set_index = line % self.num_sets
        self.accesses += 1
        if self._resident[set_index] == line:
            return 0
        self._resident[set_index] = line
        self.misses += 1
        stall = 0
        if self.refill is None:
            if self.critical_word_first:
                return self.memory.first_word_cycles
            return self._baseline_full
        if self.clb is not None and not self.clb.access(line // LINES_PER_ENTRY):
            penalty = self.refill.lat_fetch_cycles
            self.clb_penalty_cycles += penalty
            stall += penalty
        line_index = (address - self.refill.image.text_base) // self.line_size
        if self.critical_word_first:
            stall += ccrp_critical_word_cycles(self.refill, np.array([address]))
        else:
            stall += int(self.refill.ccrp_line_cycles(np.array([line_index]))[0])
        return stall

    def reset(self) -> None:
        """Empty the cache (and CLB) and clear statistics."""
        self._resident = [None] * self.num_sets
        if self.clb is not None:
            self.clb.reset()
        self.accesses = 0
        self.misses = 0
        self.clb_penalty_cycles = 0

    # ------------------------------------------------------------------
    # Counter surface (no private attribute poking required)
    # ------------------------------------------------------------------

    @property
    def clb_hits(self) -> int:
        """CLB hits so far (0 without a CLB)."""
        return self.clb.hits if self.clb is not None else 0

    @property
    def clb_misses(self) -> int:
        """CLB misses so far (0 without a CLB)."""
        return self.clb.misses if self.clb is not None else 0

    def counters(self) -> dict[str, int]:
        """The front end's counter block, for ``--metrics`` reports and
        the service ``stats`` op (prefetching subclasses extend it)."""
        return {
            "accesses": self.accesses,
            "misses": self.misses,
            "clb_hits": self.clb_hits,
            "clb_misses": self.clb_misses,
            "clb_penalty_cycles": self.clb_penalty_cycles,
        }
