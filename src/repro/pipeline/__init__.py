"""Cycle-accurate 5-stage R2000 pipeline timing (IF/ID/EX/MEM/WB).

The additive model in :mod:`repro.machine.stalls` charges every
long-latency instruction its full result latency, and the study layer
adds averaged refill costs on top — fetch timing and intra-pipeline
hazards never interact.  This package models the pipeline itself:

* :mod:`repro.pipeline.hazards` — register read/write sets, interlock
  and forwarding rules (:class:`HazardModel`);
* :mod:`repro.pipeline.datapath` — the stage state machine: an exact
  in-order scoreboard replay of a dynamic trace
  (:func:`simulate_pipeline`);
* :mod:`repro.pipeline.frontend` — the fetch unit over instruction
  cache + CLB + :class:`~repro.ccrp.refill.RefillEngine`, so a cache
  miss freezes the pipeline for the exact per-line refill cost
  (:class:`FetchUnit`, with a critical-word-first modelled extension);
* :mod:`repro.pipeline.timeline` — vectorized replay over basic-block
  execution counts (:func:`replay_trace`) so whole-suite runs stay
  fast.

The paper notes the pipeline "is not allowed to slide" during fetch
delays (Section 4.1): a refill freezes every stage, so refill cycles
add to — never overlap with — hazard stalls.  The timeline exploits
exactly that property to stay vectorized.
"""

from __future__ import annotations

from repro.pipeline.datapath import (
    PIPELINE_FILL_CYCLES,
    PipelineResult,
    simulate_pipeline,
)
from repro.pipeline.frontend import FetchUnit, miss_mask
from repro.pipeline.hazards import HazardModel, R2000_HAZARDS
from repro.pipeline.timeline import BlockTable, replay_trace

__all__ = [
    "PIPELINE_FILL_CYCLES",
    "PipelineResult",
    "simulate_pipeline",
    "FetchUnit",
    "miss_mask",
    "HazardModel",
    "R2000_HAZARDS",
    "BlockTable",
    "replay_trace",
]
