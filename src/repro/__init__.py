"""Compressed Code RISC Processor (CCRP) — reproduction library.

This package reproduces Wolfe & Chanin, *Executing Compressed Programs on
an Embedded RISC Architecture* (MICRO-25, 1992): a MIPS-I substrate, the
block-bounded Huffman compression family, the Line Address Table (LAT) and
Cache Line Address Lookaside Buffer (CLB), code-expanding instruction-cache
refill timing, embedded memory models, and the trace-driven performance
comparison between a standard RISC system and a CCRP.

Quickstart::

    from repro import workloads, ccrp, core

    program = workloads.load("eightq")
    config = core.SystemConfig(cache_bytes=1024, memory="burst_eprom")
    report = core.compare(program, config)
    print(report.relative_execution_time)
"""

__version__ = "1.0.0"
