"""Packed LAT entries (paper Figure 6).

Each entry is eight bytes covering eight consecutive 32-byte instruction
lines (256 original bytes):

* bytes 0-2: 24-bit base address of the group's first compressed block;
* bytes 3-7: eight 5-bit length records, MSB first.

A length record of 1-31 is the compressed block size in bytes; the special
value 0 flags an *uncompressed* block of 32 bytes (the bypass path).  The
CLB's adder tree reconstructs any block address by summing the preceding
lengths onto the base — exactly what :meth:`LATEntry.block_address` does.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import LATError

#: Lines per LAT entry (the paper's "one entry for every 64 instructions").
LINES_PER_ENTRY = 8

#: Encoded length value meaning "uncompressed, 32 bytes".
UNCOMPRESSED_LENGTH_CODE = 0

#: Stored size of an uncompressed (bypass) block.
UNCOMPRESSED_BYTES = 32

ENTRY_BYTES = 8

_BASE_LIMIT = 1 << 24


@dataclass(frozen=True)
class LATEntry:
    """One packed LAT entry.

    Attributes:
        base: 24-bit physical address of the first block in the group.
        lengths: Stored size in bytes of each of the eight blocks
            (1-32; 32 means uncompressed).  Groups at the end of a program
            may cover fewer real lines; unused slots should hold 32.
    """

    base: int
    lengths: tuple[int, ...]

    def __post_init__(self) -> None:
        if not 0 <= self.base < _BASE_LIMIT:
            raise LATError(f"base address {self.base:#x} does not fit in 24 bits")
        if len(self.lengths) != LINES_PER_ENTRY:
            raise LATError(f"entry needs {LINES_PER_ENTRY} lengths, got {len(self.lengths)}")
        for length in self.lengths:
            if not 1 <= length <= UNCOMPRESSED_BYTES:
                raise LATError(f"block length {length} outside [1, {UNCOMPRESSED_BYTES}]")

    # ------------------------------------------------------------------
    # Address computation (the CLB adder tree)
    # ------------------------------------------------------------------

    def block_address(self, slot: int) -> int:
        """Physical address of block ``slot`` (0-7) within this group."""
        if not 0 <= slot < LINES_PER_ENTRY:
            raise LATError(f"slot {slot} outside [0, {LINES_PER_ENTRY})")
        return self.base + sum(self.lengths[:slot])

    def block_size(self, slot: int) -> int:
        """Stored size in bytes of block ``slot``."""
        if not 0 <= slot < LINES_PER_ENTRY:
            raise LATError(f"slot {slot} outside [0, {LINES_PER_ENTRY})")
        return self.lengths[slot]

    def is_compressed(self, slot: int) -> bool:
        """True unless block ``slot`` took the bypass path."""
        return self.block_size(slot) != UNCOMPRESSED_BYTES

    @property
    def group_bytes(self) -> int:
        """Total stored bytes of the eight blocks."""
        return sum(self.lengths)

    # ------------------------------------------------------------------
    # Binary form
    # ------------------------------------------------------------------

    def encode(self) -> bytes:
        """Pack into the 8-byte memory representation."""
        packed = 0
        for length in self.lengths:
            code = UNCOMPRESSED_LENGTH_CODE if length == UNCOMPRESSED_BYTES else length
            packed = (packed << 5) | code
        return self.base.to_bytes(3, "big") + packed.to_bytes(5, "big")

    @classmethod
    def decode(cls, raw: bytes) -> "LATEntry":
        """Unpack from the 8-byte memory representation."""
        if len(raw) != ENTRY_BYTES:
            raise LATError(f"LAT entry must be {ENTRY_BYTES} bytes, got {len(raw)}")
        base = int.from_bytes(raw[:3], "big")
        packed = int.from_bytes(raw[3:], "big")
        lengths = []
        for slot in range(LINES_PER_ENTRY):
            code = (packed >> (5 * (LINES_PER_ENTRY - 1 - slot))) & 0x1F
            lengths.append(UNCOMPRESSED_BYTES if code == UNCOMPRESSED_LENGTH_CODE else code)
        return cls(base=base, lengths=tuple(lengths))
