"""Line Address Table (LAT) — the paper's compressed-block directory.

After block-bounded compression the starting address of each compressed
cache line is effectively random (paper Figure 2).  The LAT maps each
original line address to its compressed block: one packed 8-byte entry per
eight consecutive lines — a 3-byte base pointer plus eight 5-bit
compressed-length records (Figure 6) — giving a storage overhead of
8/256 = 3.125 % of the original program.
"""

from repro.lat.entry import LATEntry, UNCOMPRESSED_LENGTH_CODE
from repro.lat.table import LineAddressTable

__all__ = ["LATEntry", "LineAddressTable", "UNCOMPRESSED_LENGTH_CODE"]
