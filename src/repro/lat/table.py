"""The full Line Address Table over a compressed program.

Builds packed :class:`~repro.lat.entry.LATEntry` records from a block
layout, serialises them for storage in instruction memory, and answers the
refill engine's question: *where is the compressed block for original line
N, and how big is it?*

The paper also discusses a naive alternative — a flat 4-byte pointer per
line, costing 12.5 % instead of 3.125 % — reproduced here as
:meth:`LineAddressTable.naive_overhead_bytes` for the ablation benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import LATError
from repro.compression.block import CompressedBlock
from repro.lat.entry import (
    ENTRY_BYTES,
    LINES_PER_ENTRY,
    LATEntry,
    UNCOMPRESSED_BYTES,
)


@dataclass(frozen=True)
class BlockLocation:
    """Where one original line lives in compressed memory."""

    address: int
    stored_size: int
    is_compressed: bool


class LineAddressTable:
    """LAT for a program laid out contiguously in instruction memory.

    Args:
        blocks: The compressed blocks, in original line order.
        code_base: Physical address where block 0 is stored; blocks are
            laid out back to back from there.
    """

    def __init__(self, blocks: list[CompressedBlock], code_base: int) -> None:
        if code_base < 0:
            raise LATError(f"code base must be non-negative, got {code_base:#x}")
        self.code_base = code_base
        self.line_count = len(blocks)
        self.entries: list[LATEntry] = []
        address = code_base
        for group_start in range(0, len(blocks), LINES_PER_ENTRY):
            group = blocks[group_start : group_start + LINES_PER_ENTRY]
            lengths = [block.stored_size for block in group]
            # Groups at the program tail cover fewer than eight real lines;
            # pad with the uncompressed sentinel (those slots are never
            # addressed, but the packed form needs a legal value).
            lengths += [UNCOMPRESSED_BYTES] * (LINES_PER_ENTRY - len(group))
            self.entries.append(LATEntry(base=address, lengths=tuple(lengths)))
            address += sum(block.stored_size for block in group)
        self._compressed_flags = [block.is_compressed for block in blocks]

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------

    def entry_index(self, line_number: int) -> int:
        """LAT index for an original line number (address >> 5)."""
        return line_number // LINES_PER_ENTRY

    def entry_for_line(self, line_number: int) -> LATEntry:
        self._check_line(line_number)
        return self.entries[line_number // LINES_PER_ENTRY]

    def locate(self, line_number: int) -> BlockLocation:
        """Find the compressed block holding original line ``line_number``."""
        self._check_line(line_number)
        entry = self.entries[line_number // LINES_PER_ENTRY]
        slot = line_number % LINES_PER_ENTRY
        return BlockLocation(
            address=entry.block_address(slot),
            stored_size=entry.block_size(slot),
            is_compressed=self._compressed_flags[line_number],
        )

    def _check_line(self, line_number: int) -> None:
        if not 0 <= line_number < self.line_count:
            raise LATError(
                f"line {line_number} outside program ({self.line_count} lines)"
            )

    # ------------------------------------------------------------------
    # Storage accounting
    # ------------------------------------------------------------------

    @property
    def storage_bytes(self) -> int:
        """Bytes the packed LAT occupies in instruction memory."""
        return len(self.entries) * ENTRY_BYTES

    @property
    def naive_overhead_bytes(self) -> int:
        """Bytes a flat 4-byte-pointer-per-line LAT would have needed."""
        return self.line_count * 4

    def overhead_ratio(self) -> float:
        """LAT bytes as a fraction of the original program size."""
        if self.line_count == 0:
            return 0.0
        return self.storage_bytes / (self.line_count * 32)

    # ------------------------------------------------------------------
    # Binary form
    # ------------------------------------------------------------------

    def serialize(self) -> bytes:
        """Pack every entry for storage in instruction memory."""
        return b"".join(entry.encode() for entry in self.entries)

    @classmethod
    def entry_from_memory(cls, raw: bytes) -> LATEntry:
        """Decode one in-memory entry (what a CLB refill reads)."""
        return LATEntry.decode(raw)
