"""Analytic data-cache model (paper Section 4.2.4).

"A simple analytical model has been used to approximate this effect.
Data cache hits are assumed to take no additional cycles.  Data cache
misses add 4 cycles per access.  A miss rate is multiplied by the number
of data accesses to predict the overall performance."

Most of the paper's experiments use no data cache at all — equivalent to
a 100 % miss rate with every access a single random DRAM read of 4 cycles.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError

#: Cycles one missing data access costs (single random DRAM access).
DATA_MISS_CYCLES = 4


@dataclass(frozen=True)
class DataCacheModel:
    """Analytic data-cache penalty model.

    Attributes:
        miss_rate: Fraction of data accesses that miss (1.0 reproduces
            the paper's no-data-cache configuration).
        miss_cycles: Penalty per missing access.
    """

    miss_rate: float = 1.0
    miss_cycles: int = DATA_MISS_CYCLES

    def __post_init__(self) -> None:
        if not 0.0 <= self.miss_rate <= 1.0:
            raise ConfigurationError(f"miss rate {self.miss_rate} outside [0, 1]")
        if self.miss_cycles < 0:
            raise ConfigurationError("miss penalty cannot be negative")

    def penalty_cycles(self, data_accesses: int) -> int:
        """Total data-access penalty for ``data_accesses`` loads/stores."""
        if data_accesses < 0:
            raise ConfigurationError("data access count cannot be negative")
        return round(data_accesses * self.miss_rate * self.miss_cycles)


#: The configuration used by Tables 1-10: no data cache at all.
NO_DATA_CACHE = DataCacheModel(miss_rate=1.0)
