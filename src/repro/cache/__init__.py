"""Instruction-cache simulation substrate.

Two direct-mapped simulators with identical semantics: a readable
step-by-step reference (:class:`DirectMappedCache`) and a vectorised
numpy implementation (:func:`simulate_trace`) used by the experiments —
property tests enforce their equivalence.  The analytic data-cache model
of paper Section 4.2.4 lives in :mod:`repro.cache.datacache`.
"""

from repro.cache.datacache import DataCacheModel
from repro.cache.direct_mapped import DirectMappedCache, simulate_trace
from repro.cache.set_associative import SetAssociativeCache, simulate_trace_associative
from repro.cache.stats import CacheStats

__all__ = [
    "CacheStats",
    "DataCacheModel",
    "DirectMappedCache",
    "SetAssociativeCache",
    "simulate_trace",
    "simulate_trace_associative",
]
