"""Set-associative instruction-cache simulation (extension).

The paper's proposed implementation is direct-mapped, and it notes that
espresso's "memory access patterns are not well suited to a small direct
mapped cache … this could be determined at development time and different
parameters chosen for this program."  This module supplies those different
parameters: an LRU set-associative simulator compatible with
:class:`~repro.cache.stats.CacheStats`, so the associativity ablation can
quantify how much of espresso's CCRP penalty is really conflict misses.

``ways=1`` degenerates to the direct-mapped model and is property-tested
against :func:`repro.cache.direct_mapped.simulate_trace`.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.cache.stats import CacheStats

DEFAULT_LINE_SIZE = 32


class SetAssociativeCache:
    """LRU set-associative cache (stateful reference model).

    Args:
        cache_bytes: Total capacity.
        ways: Associativity; sets = capacity / (line_size * ways).
        line_size: Line size in bytes.
    """

    def __init__(
        self,
        cache_bytes: int,
        ways: int = 2,
        line_size: int = DEFAULT_LINE_SIZE,
    ) -> None:
        if ways < 1:
            raise ConfigurationError(f"ways must be positive, got {ways}")
        if line_size <= 0 or line_size & (line_size - 1):
            raise ConfigurationError(f"line size {line_size} is not a power of two")
        if cache_bytes % (line_size * ways):
            raise ConfigurationError(
                f"cache of {cache_bytes} B is not a whole number of {ways}-way sets"
            )
        num_sets = cache_bytes // (line_size * ways)
        if num_sets < 1 or num_sets & (num_sets - 1):
            raise ConfigurationError(f"number of sets {num_sets} is not a power of two")
        self.num_sets = num_sets
        self.ways = ways
        self.line_size = line_size
        self._line_shift = line_size.bit_length() - 1
        # Per-set LRU list, most recent last.
        self._sets: list[list[int]] = [[] for _ in range(num_sets)]
        self.accesses = 0
        self.misses = 0
        self.miss_lines: list[int] = []

    def access(self, address: int) -> bool:
        """Access one byte address; returns True on a hit."""
        line = address >> self._line_shift
        bucket = self._sets[line % self.num_sets]
        self.accesses += 1
        if line in bucket:
            bucket.remove(line)
            bucket.append(line)
            return True
        self.misses += 1
        self.miss_lines.append(line)
        if len(bucket) >= self.ways:
            bucket.pop(0)
        bucket.append(line)
        return False

    def run(self, addresses) -> CacheStats:
        for address in addresses:
            self.access(int(address))
        return self.stats()

    def stats(self) -> CacheStats:
        return CacheStats(
            accesses=self.accesses,
            misses=self.misses,
            miss_lines=np.array(self.miss_lines, dtype=np.int64),
        )


def simulate_trace_associative(
    addresses: np.ndarray,
    cache_bytes: int,
    ways: int = 2,
    line_size: int = DEFAULT_LINE_SIZE,
) -> CacheStats:
    """Trace-level set-associative simulation.

    Consecutive same-line accesses always hit after the first, so the
    trace is collapsed to line-change events before the (necessarily
    sequential) LRU walk; the returned access count still covers the full
    trace.
    """
    cache = SetAssociativeCache(cache_bytes, ways=ways, line_size=line_size)
    if len(addresses) == 0:
        return cache.stats()
    lines = np.asarray(addresses, dtype=np.int64) >> (line_size.bit_length() - 1)
    keep = np.empty(len(lines), dtype=bool)
    keep[0] = True
    np.not_equal(lines[1:], lines[:-1], out=keep[1:])
    events = lines[keep]

    num_sets = cache.num_sets
    ways_limit = cache.ways
    buckets = cache._sets
    misses = 0
    miss_lines = cache.miss_lines
    for line in events.tolist():
        bucket = buckets[line % num_sets]
        if line in bucket:
            if bucket[-1] != line:
                bucket.remove(line)
                bucket.append(line)
            continue
        misses += 1
        miss_lines.append(line)
        if len(bucket) >= ways_limit:
            bucket.pop(0)
        bucket.append(line)
    return CacheStats(
        accesses=len(lines),
        misses=misses,
        miss_lines=np.array(miss_lines, dtype=np.int64),
    )
