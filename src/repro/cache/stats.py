"""Cache simulation results."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class CacheStats:
    """Outcome of simulating one trace against one cache geometry.

    Attributes:
        accesses: Total number of accesses simulated.
        misses: Number of misses (compulsory misses included, as in the
            paper).
        miss_lines: Line number of every miss, in occurrence order — the
            refill engine and CLB consume this stream.
    """

    accesses: int
    misses: int
    miss_lines: np.ndarray

    @property
    def hits(self) -> int:
        return self.accesses - self.misses

    @property
    def miss_rate(self) -> float:
        """Miss fraction (0 for an empty trace)."""
        return self.misses / self.accesses if self.accesses else 0.0

    def __post_init__(self) -> None:
        if self.misses != len(self.miss_lines):
            raise ValueError(
                f"misses={self.misses} but {len(self.miss_lines)} miss lines recorded"
            )
