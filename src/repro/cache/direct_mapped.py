"""Direct-mapped instruction-cache simulation.

The paper's proposed implementation is a direct-mapped, 32-byte-line
on-chip cache of 256-4096 bytes (Section 3.1).  Crucially, the *miss
stream is identical* for the baseline RISC and the CCRP — compression is
transparent to addressing — so one simulation serves both machines and
only refill timing differs.

Two implementations are provided:

* :class:`DirectMappedCache` — a readable, stateful reference model;
* :func:`simulate_trace` — a vectorised equivalent.  A direct-mapped
  cache hits exactly when the previous access to the same set touched the
  same line, so misses can be computed with one stable sort by set index
  followed by a neighbour comparison: O(n log n) in numpy instead of an
  interpreted loop per access.

Property-based tests assert the two agree on random traces.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.cache.stats import CacheStats

DEFAULT_LINE_SIZE = 32


def _check_geometry(cache_bytes: int, line_size: int) -> int:
    if line_size <= 0 or line_size & (line_size - 1):
        raise ConfigurationError(f"line size {line_size} is not a power of two")
    if cache_bytes < line_size or cache_bytes % line_size:
        raise ConfigurationError(
            f"cache size {cache_bytes} is not a positive multiple of line size {line_size}"
        )
    num_sets = cache_bytes // line_size
    if num_sets & (num_sets - 1):
        raise ConfigurationError(f"number of sets {num_sets} is not a power of two")
    return num_sets


class DirectMappedCache:
    """Stateful reference model of a direct-mapped cache.

    Example::

        cache = DirectMappedCache(cache_bytes=1024)
        hit = cache.access(address)
    """

    def __init__(self, cache_bytes: int, line_size: int = DEFAULT_LINE_SIZE) -> None:
        self.num_sets = _check_geometry(cache_bytes, line_size)
        self.line_size = line_size
        self._line_shift = line_size.bit_length() - 1
        self._resident: list[int | None] = [None] * self.num_sets
        self.accesses = 0
        self.misses = 0
        self.miss_lines: list[int] = []

    def access(self, address: int) -> bool:
        """Access one byte address; returns True on a hit."""
        line = address >> self._line_shift
        set_index = line % self.num_sets
        self.accesses += 1
        if self._resident[set_index] == line:
            return True
        self._resident[set_index] = line
        self.misses += 1
        self.miss_lines.append(line)
        return False

    def run(self, addresses) -> CacheStats:
        """Access a whole trace and return the statistics."""
        for address in addresses:
            self.access(int(address))
        return self.stats()

    def stats(self) -> CacheStats:
        return CacheStats(
            accesses=self.accesses,
            misses=self.misses,
            miss_lines=np.array(self.miss_lines, dtype=np.int64),
        )


def simulate_trace(
    addresses: np.ndarray,
    cache_bytes: int,
    line_size: int = DEFAULT_LINE_SIZE,
) -> CacheStats:
    """Vectorised direct-mapped simulation of an address trace.

    Args:
        addresses: Byte addresses in access order (any integer dtype).
        cache_bytes: Total cache capacity.
        line_size: Line size in bytes.

    Returns:
        The same :class:`CacheStats` the reference model produces.
    """
    num_sets = _check_geometry(cache_bytes, line_size)
    if len(addresses) == 0:
        return CacheStats(accesses=0, misses=0, miss_lines=np.array([], dtype=np.int64))

    lines = np.asarray(addresses, dtype=np.int64) >> (line_size.bit_length() - 1)

    # Runs of accesses to the same line always hit after the first access,
    # whatever the geometry; collapse them first (instruction fetch is
    # mostly sequential, so this shrinks the trace ~8x).
    keep = np.empty(len(lines), dtype=bool)
    keep[0] = True
    np.not_equal(lines[1:], lines[:-1], out=keep[1:])
    events = lines[keep]
    total_accesses = len(lines)

    sets = events & (num_sets - 1)
    order = np.argsort(sets, kind="stable")
    sorted_sets = sets[order]
    sorted_lines = events[order]
    miss_sorted = np.empty(len(events), dtype=bool)
    miss_sorted[0] = True
    miss_sorted[1:] = (sorted_sets[1:] != sorted_sets[:-1]) | (
        sorted_lines[1:] != sorted_lines[:-1]
    )
    miss = np.empty(len(events), dtype=bool)
    miss[order] = miss_sorted

    miss_lines = events[miss]
    return CacheStats(
        accesses=total_accesses,
        misses=int(miss.sum()),
        miss_lines=miss_lines,
    )
