"""Pixie-style pipeline-stall estimation.

The paper folds pipeline-stall counts measured by ``pixie`` on a 16.67 MHz
R2000 into its cycle totals (Section 4.1).  We reproduce that additive role
with a static per-mnemonic extra-cycle model: each dynamic instruction
costs one issue cycle plus the extra cycles of its category, as if every
long-latency result were consumed immediately (embedded inner loops are
close to this worst case, and the paper itself notes the pipeline is not
allowed to slide during fetch delays).

The default latencies follow the R2000/R2010 documentation [Kane92]:
integer multiply 12 cycles, divide 35; R2010 FP add 2, single/double
multiply 4/5, single/double divide 12/19 cycles; conversions 2–3 cycles.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.isa.instruction import Instruction

#: Extra cycles beyond the single issue cycle, per mnemonic.
_R2000_EXTRA_CYCLES: dict[str, int] = {
    "mult": 11,
    "multu": 11,
    "div": 34,
    "divu": 34,
    "add.s": 1,
    "add.d": 1,
    "sub.s": 1,
    "sub.d": 1,
    "mul.s": 3,
    "mul.d": 4,
    "div.s": 11,
    "div.d": 18,
    "abs.s": 1,
    "abs.d": 1,
    "neg.s": 1,
    "neg.d": 1,
    "cvt.s.d": 1,
    "cvt.s.w": 2,
    "cvt.d.s": 1,
    "cvt.d.w": 2,
    "cvt.w.s": 2,
    "cvt.w.d": 2,
    "c.eq.s": 1,
    "c.eq.d": 1,
    "c.lt.s": 1,
    "c.lt.d": 1,
    "c.le.s": 1,
    "c.le.d": 1,
}


@dataclass(frozen=True)
class StallModel:
    """Maps dynamic instruction mix to pipeline-stall cycles.

    Attributes:
        extra_cycles: Mnemonic -> stall cycles charged per execution.
    """

    extra_cycles: dict[str, int] = field(default_factory=lambda: dict(_R2000_EXTRA_CYCLES))

    def per_instruction_costs(self, instructions: tuple[Instruction, ...]) -> np.ndarray:
        """Static extra-cycle cost for each instruction in a text segment."""
        get = self.extra_cycles.get
        return np.array(
            [get(instruction.mnemonic, 0) for instruction in instructions],
            dtype=np.int64,
        )

    def stall_cycles(
        self,
        instruction_indices: np.ndarray,
        instructions: tuple[Instruction, ...],
    ) -> int:
        """Total stall cycles for a dynamic trace.

        Args:
            instruction_indices: Static instruction index per dynamic access
                (see :attr:`ExecutionTrace.instruction_indices`).
            instructions: The program's static instruction list.
        """
        costs = self.per_instruction_costs(instructions)
        if costs.max(initial=0) == 0 or len(instruction_indices) == 0:
            return 0
        counts = np.bincount(instruction_indices, minlength=len(costs))
        return int(np.dot(counts[: len(costs)], costs))

    def stall_cycles_from_counts(
        self,
        execution_counts: np.ndarray,
        instructions: tuple[Instruction, ...],
    ) -> int:
        """Total stall cycles from per-instruction execution counts.

        The flat model is order-independent, so block-level traces can
        charge stalls straight off their execution histogram without
        ever materialising the per-instruction address stream.
        """
        costs = self.per_instruction_costs(instructions)
        if costs.max(initial=0) == 0 or len(execution_counts) == 0:
            return 0
        return int(np.dot(execution_counts[: len(costs)], costs))


#: The default stall model used throughout the experiments.
R2000_STALLS = StallModel()


@dataclass(frozen=True)
class PreciseHiLoModel:
    """Dependence-aware HI/LO interlock model.

    The flat :class:`StallModel` charges every multiply/divide its full
    latency, as if ``mfhi``/``mflo`` always followed immediately.  The
    R2000's multiply unit actually runs concurrently with the integer
    pipeline: the stall is only the *remaining* latency when the result
    is read.  This model replays the dynamic trace and charges exactly
    that — the gap between issue and first HI/LO read absorbs latency.

    Used by the stall-model ablation to bound how much the flat model
    overstates multiply/divide stalls (FP latencies are still charged
    flat; tracking every FP register dependence is out of scope for a
    trace-level model, and the paper's pixie data is coarser still).

    Attributes:
        mult_cycles: Cycles until HI/LO are ready after a multiply.
        div_cycles: Cycles until HI/LO are ready after a divide.
        flat_fp: Per-mnemonic extra cycles for everything that is not a
            multiply/divide (defaults to the flat model's FP latencies).
    """

    mult_cycles: int = 12
    div_cycles: int = 35
    flat_fp: dict[str, int] = field(
        default_factory=lambda: {
            mnemonic: cycles
            for mnemonic, cycles in _R2000_EXTRA_CYCLES.items()
            if mnemonic not in ("mult", "multu", "div", "divu")
        }
    )

    def stall_cycles(
        self,
        instruction_indices: np.ndarray,
        instructions: tuple[Instruction, ...],
    ) -> int:
        """Total stall cycles with concurrency-aware HI/LO accounting."""
        # Flat part: FP and conversion latencies.
        get = self.flat_fp.get
        flat_costs = np.array(
            [get(instruction.mnemonic, 0) for instruction in instructions],
            dtype=np.int64,
        )
        total = 0
        if flat_costs.max(initial=0) > 0 and len(instruction_indices):
            counts = np.bincount(instruction_indices, minlength=len(flat_costs))
            total += int(np.dot(counts[: len(flat_costs)], flat_costs))

        # Precise part: walk only the HI/LO-relevant dynamic events.
        kind = np.zeros(len(instructions), dtype=np.int8)
        for index, instruction in enumerate(instructions):
            if instruction.mnemonic in ("mult", "multu"):
                kind[index] = 1
            elif instruction.mnemonic in ("div", "divu"):
                kind[index] = 2
            elif instruction.mnemonic in ("mfhi", "mflo"):
                kind[index] = 3
        if not kind.any() or len(instruction_indices) == 0:
            return total
        event_kinds = kind[instruction_indices]
        positions = np.nonzero(event_kinds)[0]
        ready_at = -1  # position (in instructions) when HI/LO become valid
        for position in positions.tolist():
            event = event_kinds[position]
            if event == 1:
                ready_at = position + self.mult_cycles
            elif event == 2:
                ready_at = position + self.div_cycles
            elif position < ready_at:
                total += ready_at - position
                ready_at = position  # the read completes once data arrives
        return total
