"""Flat 24-bit physical memory for the functional simulator.

The paper's proposed implementation uses a 24-bit physical address space
(Section 3.1), i.e. 16 MiB.  A flat ``bytearray`` of that size is small
enough to allocate per machine and keeps loads/stores simple and fast.
All multi-byte accesses are big-endian, matching the DECstation-era MIPS
byte order assumed throughout the library.
"""

from __future__ import annotations

from repro.errors import ExecutionError

#: Size of the 24-bit physical address space.
MEMORY_BYTES = 1 << 24

_ADDRESS_MASK = MEMORY_BYTES - 1


class Memory:
    """Byte-addressable big-endian memory with word/half/byte accessors.

    Addresses are masked to 24 bits rather than bounds-checked: the paper's
    embedded system has exactly this physical space and no MMU faults.
    Alignment *is* checked, because the R2000 raises address-error
    exceptions for unaligned word/halfword accesses and silently wrong
    simulation results are worse than an error.
    """

    __slots__ = ("data",)

    def __init__(self) -> None:
        self.data = bytearray(MEMORY_BYTES)

    def load_segment(self, base: int, payload: bytes) -> None:
        """Copy ``payload`` into memory starting at ``base``."""
        base &= _ADDRESS_MASK
        if base + len(payload) > MEMORY_BYTES:
            raise ExecutionError(
                f"segment [{base:#x}, {base + len(payload):#x}) exceeds 24-bit memory"
            )
        self.data[base : base + len(payload)] = payload

    def read_word(self, address: int) -> int:
        address &= _ADDRESS_MASK
        if address % 4:
            raise ExecutionError(f"unaligned word read at {address:#x}")
        data = self.data
        return (
            (data[address] << 24)
            | (data[address + 1] << 16)
            | (data[address + 2] << 8)
            | data[address + 3]
        )

    def write_word(self, address: int, value: int) -> None:
        address &= _ADDRESS_MASK
        if address % 4:
            raise ExecutionError(f"unaligned word write at {address:#x}")
        data = self.data
        data[address] = (value >> 24) & 0xFF
        data[address + 1] = (value >> 16) & 0xFF
        data[address + 2] = (value >> 8) & 0xFF
        data[address + 3] = value & 0xFF

    def read_half(self, address: int) -> int:
        address &= _ADDRESS_MASK
        if address % 2:
            raise ExecutionError(f"unaligned halfword read at {address:#x}")
        return (self.data[address] << 8) | self.data[address + 1]

    def write_half(self, address: int, value: int) -> None:
        address &= _ADDRESS_MASK
        if address % 2:
            raise ExecutionError(f"unaligned halfword write at {address:#x}")
        self.data[address] = (value >> 8) & 0xFF
        self.data[address + 1] = value & 0xFF

    def read_byte(self, address: int) -> int:
        return self.data[address & _ADDRESS_MASK]

    def write_byte(self, address: int, value: int) -> None:
        self.data[address & _ADDRESS_MASK] = value & 0xFF

    def read_string(self, address: int, limit: int = 4096) -> str:
        """Read a NUL-terminated latin-1 string (for the print syscall)."""
        address &= _ADDRESS_MASK
        end = self.data.find(b"\0", address, address + limit)
        if end < 0:
            raise ExecutionError(f"unterminated string at {address:#x}")
        return self.data[address:end].decode("latin-1")
