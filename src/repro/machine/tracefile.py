"""Trace persistence: save and reload execution traces.

The paper's flow separates trace *generation* (pixie, run once) from
trace-driven *simulation* (run many times over the parameter space).
These helpers give the library the same separation across processes: an
``.npz`` container holds the address stream plus the metadata the
simulators need, so expensive executions can be archived and replayed.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.errors import ReproError
from repro.machine.tracing import ExecutionTrace

#: Container format version, checked on load.
FORMAT_VERSION = 1


def save_trace(trace: ExecutionTrace, path: str | Path) -> Path:
    """Write ``trace`` to ``path`` (.npz is appended if missing)."""
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(path.suffix + ".npz")
    np.savez_compressed(
        path,
        addresses=trace.addresses,
        meta=np.array([FORMAT_VERSION, trace.text_base, trace.text_size], dtype=np.int64),
    )
    return path


def load_trace(path: str | Path) -> ExecutionTrace:
    """Read a trace written by :func:`save_trace`."""
    path = Path(path)
    try:
        with np.load(path) as archive:
            meta = archive["meta"]
            addresses = archive["addresses"]
    except (OSError, KeyError, ValueError) as error:
        raise ReproError(f"not a trace file: {path} ({error})") from None
    version, text_base, text_size = (int(value) for value in meta)
    if version != FORMAT_VERSION:
        raise ReproError(f"unsupported trace format version {version}")
    return ExecutionTrace(
        addresses=addresses.astype(np.uint32),
        text_base=text_base,
        text_size=text_size,
    )
