"""Trace persistence: save and reload execution traces.

The paper's flow separates trace *generation* (pixie, run once) from
trace-driven *simulation* (run many times over the parameter space).
These helpers give the library the same separation across processes: an
``.npz`` container holds the address stream plus the metadata the
simulators need, so expensive executions can be archived and replayed.

Two container layouts share one format version field:

* **flat** — the materialised per-instruction address stream (all of
  format version 1, and version-2 files of per-instruction traces);
* **block** — the :class:`~repro.machine.tracing.BlockTrace` backing
  recorded by the superop engine: the event stream plus the per-block
  static address arrays (stored concatenated, with a length vector).
  Saving the block form is much smaller for loopy programs and reloads
  into a trace whose flat addresses still materialise lazily.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.errors import ReproError
from repro.machine.tracing import BlockTrace, ExecutionTrace

#: Container format version, checked on load.  Version 1 held only flat
#: address streams; version 2 adds the block-backed layout.
FORMAT_VERSION = 2

#: Versions :func:`load_trace` understands.
SUPPORTED_VERSIONS = (1, 2)


def save_trace(trace: ExecutionTrace, path: str | Path) -> Path:
    """Write ``trace`` to ``path`` (.npz is appended if missing).

    A block-backed trace is saved in block form — the flat stream is
    *not* materialised; a flat trace is saved flat.
    """
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(path.suffix + ".npz")
    meta = np.array(
        [FORMAT_VERSION, trace.text_base, trace.text_size], dtype=np.int64
    )
    blocks = trace.blocks
    if blocks is not None:
        lengths = blocks.block_lengths
        concatenated = (
            np.concatenate(
                [a.astype(np.uint32, copy=False) for a in blocks.block_addresses]
            )
            if len(blocks.block_addresses)
            else np.empty(0, dtype=np.uint32)
        )
        np.savez_compressed(
            path,
            meta=meta,
            events=blocks.events.astype(np.int32, copy=False),
            block_addresses=concatenated,
            block_lengths=lengths,
        )
    else:
        np.savez_compressed(path, meta=meta, addresses=trace.addresses)
    return path


def load_trace(path: str | Path) -> ExecutionTrace:
    """Read a trace written by :func:`save_trace` (any supported version)."""
    path = Path(path)
    try:
        with np.load(path) as archive:
            meta = archive["meta"]
            names = set(archive.files)
            arrays = {name: archive[name] for name in names - {"meta"}}
    except (OSError, KeyError, ValueError) as error:
        raise ReproError(f"not a trace file: {path} ({error})") from None
    version, text_base, text_size = (int(value) for value in meta)
    if version not in SUPPORTED_VERSIONS:
        raise ReproError(
            f"unsupported trace format version {version} "
            f"(supported: {', '.join(map(str, SUPPORTED_VERSIONS))})"
        )
    if "events" in arrays:
        lengths = arrays["block_lengths"].astype(np.int64)
        concatenated = arrays["block_addresses"].astype(np.uint32)
        if int(lengths.sum()) != len(concatenated):
            raise ReproError(
                f"corrupt trace file: {path} (block lengths sum to "
                f"{int(lengths.sum())} but {len(concatenated)} addresses stored)"
            )
        offsets = np.zeros(len(lengths) + 1, dtype=np.int64)
        np.cumsum(lengths, out=offsets[1:])
        block_addresses = tuple(
            concatenated[offsets[i] : offsets[i + 1]] for i in range(len(lengths))
        )
        blocks = BlockTrace(
            events=arrays["events"].astype(np.int32),
            block_addresses=block_addresses,
            text_base=text_base,
            text_size=text_size,
        )
        return ExecutionTrace(blocks=blocks, text_base=text_base, text_size=text_size)
    return ExecutionTrace(
        addresses=arrays["addresses"].astype(np.uint32),
        text_base=text_base,
        text_size=text_size,
    )
