"""Functional MIPS-I simulator with branch delay slots.

The :class:`Machine` pre-compiles each static instruction into a Python
closure and interprets the program directly, recording the dynamic
instruction-address trace.  This is the reproduction's stand-in for running
real DECstation binaries under ``pixie``.

Architectural conventions:

* 32 general-purpose registers (``$zero`` hard-wired), HI/LO, 32 FP
  registers holding raw 32-bit patterns (doubles occupy even/odd pairs,
  even register = most-significant word, matching big-endian memory).
* Branch delay slots are executed exactly as on the R2000.
* ``jal``/``jalr`` link to the instruction after the delay slot.
* Arithmetic overflow wraps (the trapping variants are treated like their
  unsigned twins; none of the workloads relies on overflow traps).
* SPIM-style syscalls: ``$v0`` = 1 print_int, 4 print_string,
  11 print_char, 10 exit.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

import numpy as np

from repro.errors import ExecutionError
from repro.isa.assembler import AssembledProgram
from repro.isa.instruction import Instruction
from repro.machine.memory import Memory
from repro.machine.stalls import R2000_STALLS, StallModel
from repro.machine.tracing import ExecutionTrace

#: Default cap on executed instructions (the paper's traces are 10K-1M).
DEFAULT_MAX_INSTRUCTIONS = 4_000_000

#: Initial stack pointer: top of the 24-bit space, word aligned.
STACK_TOP = 0xFFFFF0

_WORD_MASK = 0xFFFFFFFF
_MEM_MASK = (1 << 24) - 1


class _Halt(Exception):
    """Raised internally by the exit syscall to stop the interpreter."""

    def __init__(self, exit_code: int) -> None:
        super().__init__(exit_code)
        self.exit_code = exit_code


@dataclass(frozen=True)
class ExecutionResult:
    """Everything one execution produced.

    Attributes:
        trace: The dynamic instruction-address trace.
        instructions_executed: Dynamic instruction count.
        data_accesses: Number of data loads + stores performed.
        stall_cycles: Pixie-style pipeline-stall estimate.
        output: Text emitted through print syscalls.
        exit_code: Value of ``$a0`` at the exit syscall (0 if it ran off
            the instruction limit with ``stop_at_limit=True``).
        registers: Final general-purpose register values.
    """

    trace: ExecutionTrace
    instructions_executed: int
    data_accesses: int
    stall_cycles: int
    output: str
    exit_code: int
    registers: tuple[int, ...]

    @property
    def base_cycles(self) -> int:
        """Issue cycles + stalls: execution time before memory penalties."""
        return self.instructions_executed + self.stall_cycles


def _signed(value: int) -> int:
    """Interpret a 32-bit pattern as a signed integer."""
    return value - 0x1_0000_0000 if value & 0x8000_0000 else value


def _float_bits(value: float) -> int:
    return struct.unpack(">I", struct.pack(">f", value))[0]


def _bits_float(bits: int) -> float:
    return struct.unpack(">f", struct.pack(">I", bits & _WORD_MASK))[0]


def _double_bits(value: float) -> int:
    return struct.unpack(">Q", struct.pack(">d", value))[0]


def _bits_double(bits: int) -> float:
    return struct.unpack(">d", struct.pack(">Q", bits & 0xFFFF_FFFF_FFFF_FFFF))[0]


class Machine:
    """A loaded program plus architectural state, ready to run.

    Example::

        machine = Machine(program)
        result = machine.run()
        print(result.instructions_executed, result.output)
    """

    def __init__(
        self,
        program: AssembledProgram,
        stall_model: StallModel = R2000_STALLS,
    ) -> None:
        self.program = program
        self.stall_model = stall_model
        self.memory = Memory()
        self.memory.load_segment(program.text_base, program.text)
        if program.data:
            self.memory.load_segment(program.data_base, program.data)
        self.regs: list[int] = [0] * 32
        self.regs[29] = STACK_TOP  # $sp
        self.regs[28] = (program.data_base + 0x8000) & _MEM_MASK  # $gp
        self.fpr: list[int] = [0] * 32
        self.hilo: list[int] = [0, 0]
        self.fcc: list[int] = [0]  # FP condition flag
        self._output: list[str] = []
        self._stats: list[int] = [0]  # [data_access_count]
        self._ops = [
            self._compile(instruction, program.text_base + 4 * index)
            for index, instruction in enumerate(program.instructions)
        ]

    # ------------------------------------------------------------------
    # Interpreter loop
    # ------------------------------------------------------------------

    def run(
        self,
        max_instructions: int = DEFAULT_MAX_INSTRUCTIONS,
        stop_at_limit: bool = False,
    ) -> ExecutionResult:
        """Execute from the program entry until the exit syscall.

        Args:
            max_instructions: Upper bound on dynamic instructions.
            stop_at_limit: If true, hitting the bound truncates the trace
                instead of raising :class:`~repro.errors.ExecutionError`.
        """
        program = self.program
        ops = self._ops
        base = program.text_base
        top = base + len(ops) * 4
        trace: list[int] = []
        append = trace.append
        pc = program.entry
        npc = pc + 4
        executed = 0
        exit_code = 0
        try:
            while executed < max_instructions:
                if not base <= pc < top:
                    raise ExecutionError(f"PC {pc:#x} outside text segment")
                append(pc)
                target = ops[(pc - base) >> 2]()
                executed += 1
                pc = npc
                npc = pc + 4 if target is None else target
            if not stop_at_limit:
                raise ExecutionError(
                    f"instruction limit {max_instructions} reached without exit"
                )
        except _Halt as halt:
            exit_code = halt.exit_code
            executed = len(trace)  # the exiting syscall itself executed

        addresses = np.array(trace, dtype=np.uint32)
        execution_trace = ExecutionTrace(
            addresses=addresses,
            text_base=program.text_base,
            text_size=len(program.text),
        )
        stall_cycles = self.stall_model.stall_cycles(
            execution_trace.instruction_indices, program.instructions
        )
        return ExecutionResult(
            trace=execution_trace,
            instructions_executed=executed,
            data_accesses=self._stats[0],
            stall_cycles=stall_cycles,
            output="".join(self._output),
            exit_code=exit_code,
            registers=tuple(self.regs),
        )

    # ------------------------------------------------------------------
    # Instruction compilation
    # ------------------------------------------------------------------

    def _compile(self, instruction: Instruction, pc: int):
        """Build the closure executing ``instruction`` located at ``pc``.

        The closure returns the branch/jump target when control transfers,
        otherwise ``None``.
        """
        m = instruction.mnemonic
        regs = self.regs
        fpr = self.fpr
        hilo = self.hilo
        fcc = self.fcc
        data = self.memory.data
        stats = self._stats
        rs, rt, rd = instruction.rs, instruction.rt, instruction.rd
        shamt = instruction.shamt
        imm = instruction.imm_signed
        uimm = instruction.imm_unsigned

        # --- integer R-type --------------------------------------------
        if m in ("add", "addu"):
            def op():
                if rd:
                    regs[rd] = (regs[rs] + regs[rt]) & _WORD_MASK
            return op
        if m in ("sub", "subu"):
            def op():
                if rd:
                    regs[rd] = (regs[rs] - regs[rt]) & _WORD_MASK
            return op
        if m == "and":
            def op():
                if rd:
                    regs[rd] = regs[rs] & regs[rt]
            return op
        if m == "or":
            def op():
                if rd:
                    regs[rd] = regs[rs] | regs[rt]
            return op
        if m == "xor":
            def op():
                if rd:
                    regs[rd] = regs[rs] ^ regs[rt]
            return op
        if m == "nor":
            def op():
                if rd:
                    regs[rd] = ~(regs[rs] | regs[rt]) & _WORD_MASK
            return op
        if m == "slt":
            def op():
                if rd:
                    regs[rd] = 1 if _signed(regs[rs]) < _signed(regs[rt]) else 0
            return op
        if m == "sltu":
            def op():
                if rd:
                    regs[rd] = 1 if regs[rs] < regs[rt] else 0
            return op
        if m == "sll":
            def op():
                if rd:
                    regs[rd] = (regs[rt] << shamt) & _WORD_MASK
            return op
        if m == "srl":
            def op():
                if rd:
                    regs[rd] = regs[rt] >> shamt
            return op
        if m == "sra":
            def op():
                if rd:
                    regs[rd] = (_signed(regs[rt]) >> shamt) & _WORD_MASK
            return op
        if m == "sllv":
            def op():
                if rd:
                    regs[rd] = (regs[rt] << (regs[rs] & 31)) & _WORD_MASK
            return op
        if m == "srlv":
            def op():
                if rd:
                    regs[rd] = regs[rt] >> (regs[rs] & 31)
            return op
        if m == "srav":
            def op():
                if rd:
                    regs[rd] = (_signed(regs[rt]) >> (regs[rs] & 31)) & _WORD_MASK
            return op

        # --- HI/LO and multiply/divide ----------------------------------
        if m == "mult":
            def op():
                product = _signed(regs[rs]) * _signed(regs[rt])
                hilo[0] = (product >> 32) & _WORD_MASK
                hilo[1] = product & _WORD_MASK
            return op
        if m == "multu":
            def op():
                product = regs[rs] * regs[rt]
                hilo[0] = (product >> 32) & _WORD_MASK
                hilo[1] = product & _WORD_MASK
            return op
        if m == "div":
            def op():
                dividend, divisor = _signed(regs[rs]), _signed(regs[rt])
                if divisor == 0:
                    hilo[0] = hilo[1] = 0  # UNPREDICTABLE on hardware
                else:
                    quotient = int(dividend / divisor)  # truncate toward zero
                    hilo[1] = quotient & _WORD_MASK
                    hilo[0] = (dividend - quotient * divisor) & _WORD_MASK
            return op
        if m == "divu":
            def op():
                if regs[rt] == 0:
                    hilo[0] = hilo[1] = 0
                else:
                    hilo[1] = regs[rs] // regs[rt]
                    hilo[0] = regs[rs] % regs[rt]
            return op
        if m == "mfhi":
            def op():
                if rd:
                    regs[rd] = hilo[0]
            return op
        if m == "mflo":
            def op():
                if rd:
                    regs[rd] = hilo[1]
            return op
        if m == "mthi":
            def op():
                hilo[0] = regs[rs]
            return op
        if m == "mtlo":
            def op():
                hilo[1] = regs[rs]
            return op

        # --- I-type ALU ---------------------------------------------------
        if m in ("addi", "addiu"):
            def op():
                if rt:
                    regs[rt] = (regs[rs] + imm) & _WORD_MASK
            return op
        if m == "slti":
            def op():
                if rt:
                    regs[rt] = 1 if _signed(regs[rs]) < imm else 0
            return op
        if m == "sltiu":
            def op():
                if rt:
                    regs[rt] = 1 if regs[rs] < (imm & _WORD_MASK) else 0
            return op
        if m == "andi":
            def op():
                if rt:
                    regs[rt] = regs[rs] & uimm
            return op
        if m == "ori":
            def op():
                if rt:
                    regs[rt] = regs[rs] | uimm
            return op
        if m == "xori":
            def op():
                if rt:
                    regs[rt] = regs[rs] ^ uimm
            return op
        if m == "lui":
            value = (uimm << 16) & _WORD_MASK
            def op():
                if rt:
                    regs[rt] = value
            return op

        # --- loads / stores -------------------------------------------------
        if m == "lw":
            def op():
                stats[0] += 1
                address = (regs[rs] + imm) & _MEM_MASK
                if address & 3:
                    raise ExecutionError(f"unaligned lw at {address:#x} (pc {pc:#x})")
                if rt:
                    regs[rt] = (
                        (data[address] << 24)
                        | (data[address + 1] << 16)
                        | (data[address + 2] << 8)
                        | data[address + 3]
                    )
            return op
        if m == "sw":
            def op():
                stats[0] += 1
                address = (regs[rs] + imm) & _MEM_MASK
                if address & 3:
                    raise ExecutionError(f"unaligned sw at {address:#x} (pc {pc:#x})")
                value = regs[rt]
                data[address] = (value >> 24) & 0xFF
                data[address + 1] = (value >> 16) & 0xFF
                data[address + 2] = (value >> 8) & 0xFF
                data[address + 3] = value & 0xFF
            return op
        if m == "lb":
            def op():
                stats[0] += 1
                value = data[(regs[rs] + imm) & _MEM_MASK]
                if rt:
                    regs[rt] = value - 256 if value & 0x80 else value
                    regs[rt] &= _WORD_MASK
            return op
        if m == "lbu":
            def op():
                stats[0] += 1
                if rt:
                    regs[rt] = data[(regs[rs] + imm) & _MEM_MASK]
            return op
        if m == "sb":
            def op():
                stats[0] += 1
                data[(regs[rs] + imm) & _MEM_MASK] = regs[rt] & 0xFF
            return op
        if m == "lh":
            def op():
                stats[0] += 1
                address = (regs[rs] + imm) & _MEM_MASK
                if address & 1:
                    raise ExecutionError(f"unaligned lh at {address:#x} (pc {pc:#x})")
                value = (data[address] << 8) | data[address + 1]
                if rt:
                    regs[rt] = (value - 0x10000 if value & 0x8000 else value) & _WORD_MASK
            return op
        if m == "lhu":
            def op():
                stats[0] += 1
                address = (regs[rs] + imm) & _MEM_MASK
                if address & 1:
                    raise ExecutionError(f"unaligned lhu at {address:#x} (pc {pc:#x})")
                if rt:
                    regs[rt] = (data[address] << 8) | data[address + 1]
            return op
        if m == "sh":
            def op():
                stats[0] += 1
                address = (regs[rs] + imm) & _MEM_MASK
                if address & 1:
                    raise ExecutionError(f"unaligned sh at {address:#x} (pc {pc:#x})")
                data[address] = (regs[rt] >> 8) & 0xFF
                data[address + 1] = regs[rt] & 0xFF
            return op

        # --- unaligned-access pairs (big-endian LWL/LWR/SWL/SWR) --------
        def _read_aligned(address: int) -> int:
            base = address & ~3
            return (
                (data[base] << 24)
                | (data[base + 1] << 16)
                | (data[base + 2] << 8)
                | data[base + 3]
            )

        def _write_aligned(address: int, value: int) -> None:
            base = address & ~3
            data[base] = (value >> 24) & 0xFF
            data[base + 1] = (value >> 16) & 0xFF
            data[base + 2] = (value >> 8) & 0xFF
            data[base + 3] = value & 0xFF

        if m == "lwl":
            def op():
                stats[0] += 1
                address = (regs[rs] + imm) & _MEM_MASK
                offset = address & 3
                word = _read_aligned(address)
                if rt:
                    keep = (1 << (8 * offset)) - 1
                    regs[rt] = ((word << (8 * offset)) & _WORD_MASK) | (regs[rt] & keep)
            return op
        if m == "lwr":
            def op():
                stats[0] += 1
                address = (regs[rs] + imm) & _MEM_MASK
                offset = address & 3
                word = _read_aligned(address)
                if rt:
                    mask = (1 << (8 * (offset + 1))) - 1
                    regs[rt] = (regs[rt] & ~mask & _WORD_MASK) | (
                        (word >> (8 * (3 - offset))) & mask
                    )
            return op
        if m == "swl":
            def op():
                stats[0] += 1
                address = (regs[rs] + imm) & _MEM_MASK
                offset = address & 3
                word = _read_aligned(address)
                low_mask = (1 << (8 * (4 - offset))) - 1
                merged = (word & ~low_mask & _WORD_MASK) | (regs[rt] >> (8 * offset))
                _write_aligned(address, merged)
            return op
        if m == "swr":
            def op():
                stats[0] += 1
                address = (regs[rs] + imm) & _MEM_MASK
                offset = address & 3
                word = _read_aligned(address)
                keep = (1 << (8 * (3 - offset))) - 1
                merged = (word & keep) | (
                    (regs[rt] << (8 * (3 - offset))) & _WORD_MASK & ~keep
                )
                _write_aligned(address, merged)
            return op

        # --- branches ---------------------------------------------------------
        branch_target = (pc + 4 + (imm << 2)) & _MEM_MASK
        if m == "beq":
            def op():
                return branch_target if regs[rs] == regs[rt] else None
            return op
        if m == "bne":
            def op():
                return branch_target if regs[rs] != regs[rt] else None
            return op
        if m == "blez":
            def op():
                return branch_target if _signed(regs[rs]) <= 0 else None
            return op
        if m == "bgtz":
            def op():
                return branch_target if _signed(regs[rs]) > 0 else None
            return op
        if m == "bltz":
            def op():
                return branch_target if regs[rs] & 0x8000_0000 else None
            return op
        if m == "bgez":
            def op():
                return None if regs[rs] & 0x8000_0000 else branch_target
            return op
        if m in ("bltzal", "bgezal"):
            link = (pc + 8) & _MEM_MASK
            negative = m == "bltzal"
            def op():
                regs[31] = link
                taken = bool(regs[rs] & 0x8000_0000) == negative
                return branch_target if taken else None
            return op

        # --- jumps ---------------------------------------------------------------
        if m == "j":
            jump_target = ((pc + 4) & 0xF000_0000) | (instruction.target << 2)
            def op():
                return jump_target
            return op
        if m == "jal":
            jump_target = ((pc + 4) & 0xF000_0000) | (instruction.target << 2)
            link = (pc + 8) & _MEM_MASK
            def op():
                regs[31] = link
                return jump_target
            return op
        if m == "jr":
            def op():
                return regs[rs]
            return op
        if m == "jalr":
            link = (pc + 8) & _MEM_MASK
            def op():
                target = regs[rs]
                if rd:
                    regs[rd] = link
                return target
            return op

        # --- system ---------------------------------------------------------------
        if m == "syscall":
            output = self._output
            memory = self.memory
            def op():
                service = regs[2]
                if service == 10:
                    raise _Halt(regs[4])
                if service == 1:
                    output.append(str(_signed(regs[4])))
                elif service == 4:
                    output.append(memory.read_string(regs[4]))
                elif service == 11:
                    output.append(chr(regs[4] & 0xFF))
                else:
                    raise ExecutionError(f"unsupported syscall {service} at {pc:#x}")
            return op
        if m == "break":
            def op():
                raise ExecutionError(f"break executed at {pc:#x}")
            return op

        # --- floating point ----------------------------------------------------------
        if m in ("lwc1", "swc1"):
            load = m == "lwc1"
            def op():
                stats[0] += 1
                address = (regs[rs] + imm) & _MEM_MASK
                if address & 3:
                    raise ExecutionError(f"unaligned {m} at {address:#x} (pc {pc:#x})")
                if load:
                    fpr[rt] = (
                        (data[address] << 24)
                        | (data[address + 1] << 16)
                        | (data[address + 2] << 8)
                        | data[address + 3]
                    )
                else:
                    value = fpr[rt]
                    data[address] = (value >> 24) & 0xFF
                    data[address + 1] = (value >> 16) & 0xFF
                    data[address + 2] = (value >> 8) & 0xFF
                    data[address + 3] = value & 0xFF
            return op
        if m == "mfc1":
            def op():
                if rt:
                    regs[rt] = fpr[rd]
            return op
        if m == "mtc1":
            def op():
                fpr[rd] = regs[rt]
            return op
        if m in ("bc1t", "bc1f"):
            expect = 1 if m == "bc1t" else 0
            def op():
                return branch_target if fcc[0] == expect else None
            return op

        if m.startswith(("add.", "sub.", "mul.", "div.", "abs.", "neg.", "mov.")):
            return self._compile_fp_arith(instruction)
        if m.startswith("cvt."):
            return self._compile_fp_convert(instruction)
        if m.startswith("c."):
            return self._compile_fp_compare(instruction)

        raise ExecutionError(f"no executor for mnemonic {m!r}")  # pragma: no cover

    # ------------------------------------------------------------------
    # Floating-point helpers
    # ------------------------------------------------------------------

    def _read_double(self, index: int) -> float:
        return _bits_double((self.fpr[index] << 32) | self.fpr[index + 1])

    def _write_double(self, index: int, value: float) -> None:
        bits = _double_bits(value)
        self.fpr[index] = (bits >> 32) & _WORD_MASK
        self.fpr[index + 1] = bits & _WORD_MASK

    def _compile_fp_arith(self, instruction: Instruction):
        m = instruction.mnemonic
        fpr = self.fpr
        fd, fs, ft = instruction.shamt, instruction.rd, instruction.rt
        double = m.endswith(".d")
        base = m.split(".")[0]
        read_d, write_d = self._read_double, self._write_double

        if base == "mov":
            if double:
                def op():
                    fpr[fd] = fpr[fs]
                    fpr[fd + 1] = fpr[fs + 1]
            else:
                def op():
                    fpr[fd] = fpr[fs]
            return op
        if base in ("abs", "neg"):
            flip = base == "neg"
            def op():
                high = fpr[fs]
                if flip:
                    high ^= 0x8000_0000
                else:
                    high &= 0x7FFF_FFFF
                fpr[fd] = high
                if double:
                    fpr[fd + 1] = fpr[fs + 1]
            return op

        if double:
            def op():
                a, b = read_d(fs), read_d(ft)
                if base == "add":
                    result = a + b
                elif base == "sub":
                    result = a - b
                elif base == "mul":
                    result = a * b
                else:
                    result = a / b if b != 0.0 else float("inf") * (1 if a >= 0 else -1)
                write_d(fd, result)
            return op

        def op():
            a, b = _bits_float(fpr[fs]), _bits_float(fpr[ft])
            if base == "add":
                result = a + b
            elif base == "sub":
                result = a - b
            elif base == "mul":
                result = a * b
            else:
                result = a / b if b != 0.0 else float("inf") * (1 if a >= 0 else -1)
            fpr[fd] = _float_bits(result)
        return op

    def _compile_fp_convert(self, instruction: Instruction):
        m = instruction.mnemonic
        fpr = self.fpr
        fd, fs = instruction.shamt, instruction.rd
        read_d, write_d = self._read_double, self._write_double
        _, to_kind, from_kind = m.split(".")

        def read_source() -> float | int:
            if from_kind == "d":
                return read_d(fs)
            if from_kind == "s":
                return _bits_float(fpr[fs])
            return _signed(fpr[fs])

        def op():
            value = read_source()
            if to_kind == "d":
                write_d(fd, float(value))
            elif to_kind == "s":
                fpr[fd] = _float_bits(float(value))
            else:  # to word: truncate toward zero, C-style
                fpr[fd] = int(value) & _WORD_MASK
        return op

    def _compile_fp_compare(self, instruction: Instruction):
        m = instruction.mnemonic
        fpr = self.fpr
        fcc = self.fcc
        fs, ft = instruction.rd, instruction.rt
        double = m.endswith(".d")
        condition = m.split(".")[1]
        read_d = self._read_double

        def op():
            if double:
                a, b = read_d(fs), read_d(ft)
            else:
                a, b = _bits_float(fpr[fs]), _bits_float(fpr[ft])
            if condition == "eq":
                fcc[0] = 1 if a == b else 0
            elif condition == "lt":
                fcc[0] = 1 if a < b else 0
            else:
                fcc[0] = 1 if a <= b else 0
        return op
