"""Functional MIPS-I simulator with branch delay slots.

The :class:`Machine` pre-compiles each static instruction into a Python
closure and interprets the program directly, recording the dynamic
instruction-address trace.  This is the reproduction's stand-in for running
real DECstation binaries under ``pixie``.

Architectural conventions:

* 32 general-purpose registers (``$zero`` hard-wired), HI/LO, 32 FP
  registers holding raw 32-bit patterns (doubles occupy even/odd pairs,
  even register = most-significant word, matching big-endian memory).
* Branch delay slots are executed exactly as on the R2000.
* ``jal``/``jalr`` link to the instruction after the delay slot.
* Arithmetic overflow wraps (the trapping variants are treated like their
  unsigned twins; none of the workloads relies on overflow traps).
* SPIM-style syscalls: ``$v0`` = 1 print_int, 4 print_string,
  11 print_char, 10 exit.
"""

from __future__ import annotations

import marshal
import os
import struct
import sys
from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from repro.errors import ExecutionError
from repro.isa.assembler import AssembledProgram
from repro.isa.cfg import find_leaders
from repro.isa.instruction import Instruction
from repro.machine.memory import Memory
from repro.machine.stalls import R2000_STALLS, StallModel
from repro.machine.tracing import BlockTrace, ExecutionTrace

#: Default cap on executed instructions (the paper's traces are 10K-1M).
DEFAULT_MAX_INSTRUCTIONS = 4_000_000

#: Initial stack pointer: top of the 24-bit space, word aligned.
STACK_TOP = 0xFFFFF0

#: Environment escape hatch: ``simple`` selects the per-instruction
#: interpreter, anything else (default) the basic-block superop engine.
ENV_EXECUTOR = "CCRP_EXECUTOR"

_WORD_MASK = 0xFFFFFFFF
_MEM_MASK = (1 << 24) - 1


def default_block_mode() -> bool:
    """Whether new machines use the superop engine (``CCRP_EXECUTOR``)."""
    return os.environ.get(ENV_EXECUTOR, "").strip().lower() != "simple"


#: Block kinds of the superop engine.
_FALL = 0  # straight line; control falls through to ``end``
_BRANCH = 1  # ends in a control transfer plus its delay slot

#: Dispatch modes of a fused block's record (how to interpret the
#: superop's return value).
_M_FALL = 0  # superop returns None; control falls through to ``end``
_M_INLINE = 1  # terminator inlined (or none); superop returns the next pc
_M_CLOSURE = 2  # superop runs the body; branch/slot closures finish
_M_LOOP = 3  # self-loop; superop(budget) returns ±iteration count

#: Instructions a block must execute before it is fused into a generated
#: superop.  Compiling costs around a millisecond — what fusion saves
#: over a few hundred closure-loop instructions — so the warmup budget
#: scales inversely with block size and colder blocks never pay it.
#: Only the first-ever run of a program pays at all: compiled superops
#: persist through the artifact cache and later runs fuse immediately.
_FUSE_INSTRUCTIONS = 256

#: Executions floor: even large blocks run the closure loop a few times
#: first, so straight-line cold code (run-once init) never compiles.
_FUSE_MIN_EXECUTIONS = 4

#: Per-program superop state shared across Machine instances: leader sets
#: and compiled code objects depend only on the program text, so repeat
#: runs of the same program (studies, equivalence tests) skip both the
#: leader scan and every ``compile`` call.  Keyed by the text bytes and
#: base address; bounded LRU.  Entries are also persisted through the
#: artifact cache (marshalled, like ``.pyc`` files), so a fresh process
#: running a previously-seen program never compiles at all.
_PROGRAM_CACHE: "OrderedDict[tuple, dict]" = OrderedDict()
_PROGRAM_CACHE_LIMIT = 8


def _shared_key(program: AssembledProgram) -> tuple:
    from repro.core import artifacts

    # Code objects are bytecode: the blob is only valid for the exact
    # interpreter that wrote it, so the cache tag joins the key.
    return (
        artifacts.fingerprint_bytes(program.text),
        program.text_base,
        sys.implementation.cache_tag,
        3,  # payload format: loop entries carry (n, end, member starts)
    )


def _load_shared(program: AssembledProgram) -> dict:
    """Fresh shared-state entry, seeded from the disk artifact cache."""
    entry: dict = {"leaders": None, "codes": {}, "dirty": False}
    try:
        from repro.core import artifacts

        found, blob = artifacts.get_cache().load("superops", *_shared_key(program))
        if found:
            leaders = blob["leaders"]
            entry["leaders"] = set(leaders) if leaders is not None else None
            entry["codes"] = {
                pc: (marshal.loads(raw), mode, target)
                for pc, (raw, mode, target) in blob["codes"].items()
            }
    except Exception:  # corrupt blob or foreign bytecode: recompile
        entry = {"leaders": None, "codes": {}, "dirty": False}
    return entry


def _store_shared(program: AssembledProgram, entry: dict) -> None:
    """Persist newly compiled superops; no-op when nothing changed."""
    if not entry.get("dirty"):
        return
    try:
        from repro.core import artifacts

        leaders = entry["leaders"]
        blob = {
            "leaders": sorted(leaders) if leaders is not None else None,
            "codes": {
                pc: (marshal.dumps(code), mode, target)
                for pc, (code, mode, target) in entry["codes"].items()
            },
        }
        artifacts.get_cache().store("superops", blob, *_shared_key(program))
        entry["dirty"] = False
    except Exception:  # cache trouble must never fail an execution
        pass


def _program_cache(program: AssembledProgram) -> dict:
    key = (program.text, program.text_base)
    entry = _PROGRAM_CACHE.get(key)
    if entry is None:
        entry = _PROGRAM_CACHE[key] = _load_shared(program)
        while len(_PROGRAM_CACHE) > _PROGRAM_CACHE_LIMIT:
            _PROGRAM_CACHE.popitem(last=False)
    else:
        _PROGRAM_CACHE.move_to_end(key)
    return entry


class _Block:
    """One fused basic block: a compiled superop plus a terminator.

    ``superop`` is a single generated function inlining the block's
    straight-line instruction semantics (``None`` falls back to calling
    the per-instruction ``ops`` closures in order); a :data:`_BRANCH`
    block then runs its branch and delay-slot closures with the exact
    two-step semantics of the per-instruction loop.  ``addresses`` is
    the static address array recorded once per execution event instead
    of once per instruction.
    """

    __slots__ = ("kind", "ops", "superop", "branch", "slot", "n", "addresses", "end")

    def __init__(self, kind, ops, superop, branch, slot, addresses, end):
        self.kind = kind
        self.ops = ops
        self.superop = superop
        self.branch = branch
        self.slot = slot
        self.n = len(addresses)
        self.addresses = addresses
        self.end = end


class _Halt(Exception):
    """Raised internally by the exit syscall to stop the interpreter."""

    def __init__(self, exit_code: int) -> None:
        super().__init__(exit_code)
        self.exit_code = exit_code


class _LazyOps:
    """Per-instruction closures, compiled on first touch.

    The superop engine executes almost every instruction inside generated
    block functions and only needs individual closures for the blocks it
    actually enters (warmup runs, closure terminators, single-step
    fallback).  Compiling all of them eagerly made ``Machine``
    construction scale with *static* text size — for large programs that
    cost several times the execution itself — so block mode builds this
    view instead and pays only for the dynamically touched footprint.
    Indexing and slicing return the same closures the eager list would.
    """

    __slots__ = ("_compile_one", "_instructions", "_base", "_ops")

    def __init__(self, compile_one, instructions, base: int) -> None:
        self._compile_one = compile_one
        self._instructions = instructions
        self._base = base
        self._ops: list = [None] * len(instructions)

    def __len__(self) -> int:
        return len(self._ops)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return tuple(
                self[position]
                for position in range(*index.indices(len(self._ops)))
            )
        op = self._ops[index]
        if op is None:
            op = self._ops[index] = self._compile_one(
                self._instructions[index], self._base + 4 * index
            )
        return op


@dataclass(frozen=True)
class ExecutionResult:
    """Everything one execution produced.

    Attributes:
        trace: The dynamic instruction-address trace.
        instructions_executed: Dynamic instruction count.
        data_accesses: Number of data loads + stores performed.
        stall_cycles: Pixie-style pipeline-stall estimate.
        output: Text emitted through print syscalls.
        exit_code: Value of ``$a0`` at the exit syscall (0 if it ran off
            the instruction limit with ``stop_at_limit=True``).
        registers: Final general-purpose register values.
    """

    trace: ExecutionTrace
    instructions_executed: int
    data_accesses: int
    stall_cycles: int
    output: str
    exit_code: int
    registers: tuple[int, ...]

    @property
    def base_cycles(self) -> int:
        """Issue cycles + stalls: execution time before memory penalties."""
        return self.instructions_executed + self.stall_cycles


def _signed(value: int) -> int:
    """Interpret a 32-bit pattern as a signed integer."""
    return value - 0x1_0000_0000 if value & 0x8000_0000 else value


# Precompiled converters: struct.Struct methods skip the per-call format
# cache lookup of the module-level functions.
_F32 = struct.Struct(">f")
_U32 = struct.Struct(">I")
_F64 = struct.Struct(">d")
_U64 = struct.Struct(">Q")


def _float_bits(value: float) -> int:
    return _U32.unpack(_F32.pack(value))[0]


def _bits_float(bits: int) -> float:
    return _F32.unpack(_U32.pack(bits & _WORD_MASK))[0]


def _double_bits(value: float) -> int:
    return _U64.unpack(_F64.pack(value))[0]


def _bits_double(bits: int) -> float:
    return _F64.unpack(_U64.pack(bits & 0xFFFF_FFFF_FFFF_FFFF))[0]


# ----------------------------------------------------------------------
# Superop code generation
# ----------------------------------------------------------------------
#
# Each basic block is fused into one generated Python function whose body
# inlines the block's instruction semantics with every static operand —
# register numbers, immediates, shift amounts, fault addresses — folded in
# as literals, and writes to the hard-wired ``$zero`` elided outright.
# Architectural state is bound once through default arguments (the fastest
# name binding CPython offers), so the interpreter pays a single call per
# block instead of one per instruction.  Every emitted statement mirrors
# the corresponding ``Machine._compile`` closure line for line; mnemonics
# without an emitter fall back to calling that closure (``_o[k]()``), so
# fusion never changes semantics.


def _sx(expr: str) -> str:
    """Source sign-extending the 32-bit expression ``expr`` (branch-free)."""
    return f"({expr} - (({expr} & 0x80000000) << 1))"


def _load_float(var: str, index: int) -> str:
    """Source reading FP register ``index`` as a Python float into ``var``.

    FP registers only ever hold masked 32-bit patterns, so the defensive
    mask of :func:`_bits_float` is unnecessary here.
    """
    return f"{var} = UF(PI(f[{index}]))[0]"


class _ForwardState:
    """Local value forwarding of double-precision FP values in one block.

    Re-reading an FP register pair costs two struct calls plus the word
    stitching; within a block's straight-line code the emitter instead
    remembers which uniquely-named temporary already holds the double in
    pair ``index``/``index+1`` and reuses it.  Valid because packing a
    Python float to ``>d`` and unpacking it back is bit-exact, so the
    temporary equals what a re-read would produce.  Temporaries are
    never reassigned (fresh name per value), so a forwarded name stays
    valid even after its source registers are overwritten.  Only
    doubles are forwarded: a single-precision write rounds to float32,
    so its unrounded Python value must not be reused.
    """

    __slots__ = (
        "doubles",
        "touched",
        "seed_candidates",
        "raw",
        "double_writes",
        "sink_pairs",
        "pending",
        "opaque",
        "_count",
    )

    def __init__(self) -> None:
        self.doubles: dict[int, str] = {}  # pair base index -> temp name
        self.touched: set[int] = set()  # f words written so far
        # Pairs first loaded before any write to them: a generated loop
        # can hoist these loads above its ``while`` (see _block_source).
        self.seed_candidates: set[int] = set()
        # f words accessed as raw 32-bit patterns (single-precision ops,
        # moves, stores, mid-block reloads).  A pair overlapping a raw
        # word cannot have its write-back sunk out of a generated loop.
        self.raw: set[int] = set()
        self.double_writes: set[int] = set()  # pairs written as doubles
        # Loop write-back sinking (second emission pass only): pairs in
        # sink_pairs skip the per-write pack; ``pending`` maps them to
        # the temp holding their current value, in last-write order.
        self.sink_pairs: frozenset = frozenset()
        self.pending: dict[int, str] = {}
        self.opaque = False  # block contains a closure-fallback op
        self._count = 0

    def temp(self) -> str:
        name = f"t{self._count}"
        self._count += 1
        return name

    def ensure_double(self, lines: list[str], index: int) -> str:
        """Name of a variable holding the double in pair ``index``,
        appending the load to ``lines`` when it is not forwarded."""
        var = self.doubles.get(index)
        if var is None:
            var = self.temp()
            lines.append(f"{var} = UD(PQ((f[{index}] << 32) | f[{index + 1}]))[0]")
            self.doubles[index] = var
            if index not in self.touched and index + 1 not in self.touched:
                # First access, before any write: hoistable to a loop
                # prelude, so it does not count as a raw in-loop read.
                self.seed_candidates.add(index)
            else:
                self.raw.update((index, index + 1))
        return var

    def store_double(self, lines: list[str], index: int, var: str) -> None:
        """Write ``var`` to pair ``index``: packed immediately, or kept
        pending when the pair's write-back is sunk to the loop exit."""
        self.invalidate(index)
        self.invalidate(index + 1)
        self.double_writes.add(index)
        if index in self.sink_pairs:
            self.pending.pop(index, None)  # re-insert in last-write order
            self.pending[index] = var
        else:
            lines += [
                f"v = UQ(PD({var}))[0]",
                f"f[{index}] = (v >> 32) & 0xFFFFFFFF",
                f"f[{index + 1}] = v & 0xFFFFFFFF",
            ]
        self.doubles[index] = var

    def invalidate(self, index: int) -> None:
        """Register word ``index`` was written: drop overlapping pairs."""
        self.touched.add(index)
        self.doubles.pop(index, None)
        self.doubles.pop(index - 1, None)

    def raw_access(self, *indices: int) -> None:
        """Words read or written as raw patterns (not via forwarding)."""
        self.raw.update(indices)

    def clear(self) -> None:
        self.opaque = True
        self.doubles.clear()


def _emit_instruction(
    instruction: Instruction, pc: int, fwd: _ForwardState | None = None
) -> list[str] | None:
    """Python statements for one straight-line instruction, or ``None``
    to defer to the pre-compiled closure."""
    if fwd is None:
        fwd = _ForwardState()
    m = instruction.mnemonic
    rs, rt, rd = instruction.rs, instruction.rt, instruction.rd
    shamt = instruction.shamt
    imm = instruction.imm_signed
    uimm = instruction.imm_unsigned

    # --- integer R-type --------------------------------------------
    if m in ("add", "addu"):
        return [f"r[{rd}] = (r[{rs}] + r[{rt}]) & 0xFFFFFFFF"] if rd else []
    if m in ("sub", "subu"):
        return [f"r[{rd}] = (r[{rs}] - r[{rt}]) & 0xFFFFFFFF"] if rd else []
    if m == "and":
        return [f"r[{rd}] = r[{rs}] & r[{rt}]"] if rd else []
    if m == "or":
        return [f"r[{rd}] = r[{rs}] | r[{rt}]"] if rd else []
    if m == "xor":
        return [f"r[{rd}] = r[{rs}] ^ r[{rt}]"] if rd else []
    if m == "nor":
        return [f"r[{rd}] = ~(r[{rs}] | r[{rt}]) & 0xFFFFFFFF"] if rd else []
    if m == "slt":
        if not rd:
            return []
        return [f"r[{rd}] = 1 if {_sx(f'r[{rs}]')} < {_sx(f'r[{rt}]')} else 0"]
    if m == "sltu":
        return [f"r[{rd}] = 1 if r[{rs}] < r[{rt}] else 0"] if rd else []
    if m == "sll":
        return [f"r[{rd}] = (r[{rt}] << {shamt}) & 0xFFFFFFFF"] if rd else []
    if m == "srl":
        return [f"r[{rd}] = r[{rt}] >> {shamt}"] if rd else []
    if m == "sra":
        return [f"r[{rd}] = ({_sx(f'r[{rt}]')} >> {shamt}) & 0xFFFFFFFF"] if rd else []
    if m == "sllv":
        return [f"r[{rd}] = (r[{rt}] << (r[{rs}] & 31)) & 0xFFFFFFFF"] if rd else []
    if m == "srlv":
        return [f"r[{rd}] = r[{rt}] >> (r[{rs}] & 31)"] if rd else []
    if m == "srav":
        if not rd:
            return []
        return [f"r[{rd}] = ({_sx(f'r[{rt}]')} >> (r[{rs}] & 31)) & 0xFFFFFFFF"]

    # --- HI/LO and multiply/divide ----------------------------------
    if m == "mult":
        return [
            f"v = {_sx(f'r[{rs}]')} * {_sx(f'r[{rt}]')}",
            "hl[0] = (v >> 32) & 0xFFFFFFFF",
            "hl[1] = v & 0xFFFFFFFF",
        ]
    if m == "multu":
        return [
            f"v = r[{rs}] * r[{rt}]",
            "hl[0] = (v >> 32) & 0xFFFFFFFF",
            "hl[1] = v & 0xFFFFFFFF",
        ]
    if m == "div":
        return [
            f"x = {_sx(f'r[{rs}]')}",
            f"y = {_sx(f'r[{rt}]')}",
            "if y == 0:",
            "    hl[0] = hl[1] = 0",
            "else:",
            "    q = int(x / y)",
            "    hl[1] = q & 0xFFFFFFFF",
            "    hl[0] = (x - q * y) & 0xFFFFFFFF",
        ]
    if m == "divu":
        return [
            f"if r[{rt}] == 0:",
            "    hl[0] = hl[1] = 0",
            "else:",
            f"    hl[1] = r[{rs}] // r[{rt}]",
            f"    hl[0] = r[{rs}] % r[{rt}]",
        ]
    if m == "mfhi":
        return [f"r[{rd}] = hl[0]"] if rd else []
    if m == "mflo":
        return [f"r[{rd}] = hl[1]"] if rd else []
    if m == "mthi":
        return [f"hl[0] = r[{rs}]"]
    if m == "mtlo":
        return [f"hl[1] = r[{rs}]"]

    # --- I-type ALU ---------------------------------------------------
    if m in ("addi", "addiu"):
        return [f"r[{rt}] = (r[{rs}] + {imm}) & 0xFFFFFFFF"] if rt else []
    if m == "slti":
        return [f"r[{rt}] = 1 if {_sx(f'r[{rs}]')} < {imm} else 0"] if rt else []
    if m == "sltiu":
        return [f"r[{rt}] = 1 if r[{rs}] < {imm & _WORD_MASK} else 0"] if rt else []
    if m == "andi":
        return [f"r[{rt}] = r[{rs}] & {uimm}"] if rt else []
    if m == "ori":
        return [f"r[{rt}] = r[{rs}] | {uimm}"] if rt else []
    if m == "xori":
        return [f"r[{rt}] = r[{rs}] ^ {uimm}"] if rt else []
    if m == "lui":
        return [f"r[{rt}] = {(uimm << 16) & _WORD_MASK}"] if rt else []

    # --- loads / stores ---------------------------------------------
    if m in ("lw", "lwc1", "swc1", "sw", "lh", "lhu", "sh"):
        word = m in ("lw", "lwc1", "swc1", "sw")
        lines = [
            "st[0] += 1",
            f"a = (r[{rs}] + {imm}) & 0xFFFFFF",
            f"if a & {3 if word else 1}:",
            f'    raise EE(f"unaligned {m} at {{a:#x}} (pc {pc:#x})")',
        ]
        if m == "lw":
            if rt:
                lines.append(
                    f"r[{rt}] = (d[a] << 24) | (d[a + 1] << 16)"
                    " | (d[a + 2] << 8) | d[a + 3]"
                )
        elif m == "lwc1":
            fwd.invalidate(rt)
            fwd.raw_access(rt)
            lines.append(
                f"f[{rt}] = (d[a] << 24) | (d[a + 1] << 16)"
                " | (d[a + 2] << 8) | d[a + 3]"
            )
        elif m in ("sw", "swc1"):
            if m == "swc1":
                fwd.raw_access(rt)
            lines += [
                f"v = {'r' if m == 'sw' else 'f'}[{rt}]",
                "d[a] = (v >> 24) & 0xFF",
                "d[a + 1] = (v >> 16) & 0xFF",
                "d[a + 2] = (v >> 8) & 0xFF",
                "d[a + 3] = v & 0xFF",
            ]
        elif m == "lh":
            if rt:
                lines += [
                    "v = (d[a] << 8) | d[a + 1]",
                    f"r[{rt}] = (v - 0x10000 if v & 0x8000 else v) & 0xFFFFFFFF",
                ]
        elif m == "lhu":
            if rt:
                lines.append(f"r[{rt}] = (d[a] << 8) | d[a + 1]")
        else:  # sh
            lines += [
                f"d[a] = (r[{rt}] >> 8) & 0xFF",
                f"d[a + 1] = r[{rt}] & 0xFF",
            ]
        return lines
    if m == "lb":
        lines = ["st[0] += 1"]
        if rt:
            lines += [
                f"v = d[(r[{rs}] + {imm}) & 0xFFFFFF]",
                f"r[{rt}] = (v - 256 if v & 0x80 else v) & 0xFFFFFFFF",
            ]
        return lines
    if m == "lbu":
        lines = ["st[0] += 1"]
        if rt:
            lines.append(f"r[{rt}] = d[(r[{rs}] + {imm}) & 0xFFFFFF]")
        return lines
    if m == "sb":
        return [
            "st[0] += 1",
            f"d[(r[{rs}] + {imm}) & 0xFFFFFF] = r[{rt}] & 0xFF",
        ]

    # --- FP moves and arithmetic -------------------------------------
    if m == "mfc1":
        if not rt:
            return []
        fwd.raw_access(rd)
        return [f"r[{rt}] = f[{rd}]"]
    if m == "mtc1":
        fwd.invalidate(rd)
        fwd.raw_access(rd)
        return [f"f[{rd}] = r[{rt}]"]
    if m.startswith(("add.", "sub.", "mul.", "div.", "abs.", "neg.", "mov.")):
        fd, fs, ft = shamt, rd, rt
        double = m.endswith(".d")
        base = m.split(".")[0]
        if base == "mov":
            lines = [f"f[{fd}] = f[{fs}]"]
            if double:
                lines.append(f"f[{fd + 1}] = f[{fs + 1}]")
                fwd.raw_access(fs, fs + 1, fd, fd + 1)
                source_var = fwd.doubles.get(fs)
                fwd.invalidate(fd)
                fwd.invalidate(fd + 1)
                if source_var is not None:
                    fwd.doubles[fd] = source_var
            else:
                fwd.raw_access(fs, fd)
                fwd.invalidate(fd)
            return lines
        if base in ("abs", "neg"):
            # Pure sign-bit manipulation: cheaper on the packed words.
            mask_op = "^ 0x80000000" if base == "neg" else "& 0x7FFFFFFF"
            lines = [f"f[{fd}] = f[{fs}] {mask_op}"]
            fwd.raw_access(fs, fd)
            fwd.invalidate(fd)
            if double:
                lines.append(f"f[{fd + 1}] = f[{fs + 1}]")
                fwd.raw_access(fs + 1, fd + 1)
                fwd.invalidate(fd + 1)
            return lines
        operator = {"add": "{x} + {y}", "sub": "{x} - {y}", "mul": "{x} * {y}"}.get(base)
        if operator is None:  # div: mirror the signed-zero-safe closure
            operator = '{x} / {y} if {y} != 0.0 else float("inf") * (1 if {x} >= 0 else -1)'
        if double:
            lines = []
            x = fwd.ensure_double(lines, fs)
            y = fwd.ensure_double(lines, ft)
            result = fwd.temp()
            lines.append(f"{result} = " + operator.format(x=x, y=y))
            fwd.store_double(lines, fd, result)
            return lines
        fwd.raw_access(fs, ft, fd)
        fwd.invalidate(fd)
        return [
            _load_float("x", fs),
            _load_float("y", ft),
            f"f[{fd}] = UI(PF({operator.format(x='x', y='y')}))[0]",
        ]
    if m.startswith("cvt."):
        fd, fs = shamt, rd
        _, to_kind, from_kind = m.split(".")
        lines = []
        if from_kind == "d":
            x = fwd.ensure_double(lines, fs)
        elif from_kind == "s":
            fwd.raw_access(fs)
            lines.append(_load_float("x", fs))
            x = "x"
        else:
            fwd.raw_access(fs)
            lines.append(f"x = {_sx(f'f[{fs}]')}")
            x = "x"
        if to_kind == "d":
            result = fwd.temp()
            lines.append(f"{result} = float({x})")
            fwd.store_double(lines, fd, result)
        elif to_kind == "s":
            fwd.raw_access(fd)
            lines.append(f"f[{fd}] = UI(PF(float({x})))[0]")
            fwd.invalidate(fd)
        else:  # to word: truncate toward zero, C-style
            fwd.raw_access(fd)
            lines.append(f"f[{fd}] = int({x}) & 0xFFFFFFFF")
            fwd.invalidate(fd)
        return lines
    if m.startswith("c."):
        fs, ft = rd, rt
        condition = m.split(".")[1]
        lines = []
        if m.endswith(".d"):
            x = fwd.ensure_double(lines, fs)
            y = fwd.ensure_double(lines, ft)
        else:
            fwd.raw_access(fs, ft)
            lines += [_load_float("x", fs), _load_float("y", ft)]
            x, y = "x", "y"
        comparison = {"eq": f"{x} == {y}", "lt": f"{x} < {y}"}.get(
            condition, f"{x} <= {y}"
        )
        lines.append(f"cc[0] = 1 if {comparison} else 0")
        return lines

    # lwl/lwr/swl/swr, syscall, break, and anything exotic: keep the
    # battle-tested closure.
    return None


#: Condition expressions of the plain conditional branches, mirroring
#: their closures in :meth:`Machine._compile`.  Truthiness matches the
#: closure's taken/not-taken decision exactly (``bltz`` yields the raw
#: sign bit, which Python treats as true precisely when the closure
#: branches).
_BRANCH_CONDITIONS = {
    "beq": "r[{rs}] == r[{rt}]",
    "bne": "r[{rs}] != r[{rt}]",
    "blez": "(r[{rs}] - ((r[{rs}] & 0x80000000) << 1)) <= 0",
    "bgtz": "(r[{rs}] - ((r[{rs}] & 0x80000000) << 1)) > 0",
    "bltz": "r[{rs}] & 0x80000000",
    "bgez": "not (r[{rs}] & 0x80000000)",
    "bltzal": "r[{rs}] & 0x80000000",
    "bgezal": "not (r[{rs}] & 0x80000000)",
    "bc1t": "cc[0] == 1",
    "bc1f": "cc[0] == 0",
}


def _emit_terminator(
    instruction: Instruction, pc: int, end: int = 0
) -> tuple[list[str], str, int | None] | None:
    """``(setup_lines, return_expr, conditional_target)`` for a control
    transfer, or ``None`` to keep its closure.

    ``setup_lines`` evaluate the branch condition (and perform link-
    register writes) *before* the delay slot, exactly as the reference
    loop calls the branch closure first; ``return_expr`` — the next pc:
    the taken target, or ``end`` (the address past the delay slot) for
    a not-taken branch — evaluates after the slot.  ``conditional_target``
    is the static target of a conditional branch (the loop fuser needs
    to know both the target and that the terminator can fall through),
    ``None`` for jumps.
    """
    m = instruction.mnemonic
    condition = _BRANCH_CONDITIONS.get(m)
    if condition is not None:
        target = (pc + 4 + (instruction.imm_signed << 2)) & _MEM_MASK
        setup = []
        if m in ("bltzal", "bgezal"):
            # The closure writes $ra before reading the condition.
            setup.append(f"r[31] = {(pc + 8) & _MEM_MASK}")
        setup.append(
            "taken = " + condition.format(rs=instruction.rs, rt=instruction.rt)
        )
        return setup, f"{target} if taken else {end}", target
    if m in ("j", "jal"):
        target = ((pc + 4) & 0xF000_0000) | (instruction.target << 2)
        setup = [f"r[31] = {(pc + 8) & _MEM_MASK}"] if m == "jal" else []
        return setup, str(target), None
    if m == "jr":
        return [f"t = r[{instruction.rs}]"], "t", None
    if m == "jalr":
        setup = [f"t = r[{instruction.rs}]"]
        if instruction.rd:
            setup.append(f"r[{instruction.rd}] = {(pc + 8) & _MEM_MASK}")
        return setup, "t", None
    return None


_SU_HEADER = (
    "r=_R, f=_F, hl=_HL, cc=_CC, d=_D, st=_ST, _o=_O, EE=_EE, "
    "PF=_F32.pack, UF=_F32.unpack, PI=_U32.pack, UI=_U32.unpack, "
    "PD=_F64.pack, UD=_F64.unpack, PQ=_U64.pack, UQ=_U64.unpack"
)


def _wrap_superop(lines: list[str], loop: bool = False) -> str:
    header = f"def _su({'budget, ' if loop else ''}{_SU_HEADER}):"
    return header + "\n" + "\n".join("    " + line for line in lines)


def _block_source(
    entries: list[tuple[Instruction, int]],
    branch_entry: tuple[Instruction, int] | None,
    slot_entry: tuple[Instruction, int] | None,
    pc: int,
    end: int,
) -> tuple[str, int, int | None]:
    """``(source, mode, taken_target)`` of the fused function for one block.

    ``entries`` pairs each straight-line op with its address; the op's
    position in the list is also its index into the block's closure
    tuple ``_o``.  ``branch_entry``/``slot_entry`` carry a closing
    control transfer and its delay slot (``None`` for fall-through
    blocks); ``end`` is the address past the block.  Fall-through
    blocks and blocks whose terminator and slot both have emitters
    compile to a superop returning the *next pc* (:data:`_M_INLINE`);
    a conditional branch targeting the block's own entry becomes a
    generated loop (:data:`_M_LOOP`: ``superop(budget)`` runs up to
    ``budget`` iterations and returns the count, negated when it
    exited with the branch still taken).  Otherwise the branch and slot
    keep their closures (:data:`_M_CLOSURE`).
    """
    forward = _ForwardState()
    body: list[str] = []
    for k, (instruction, address) in enumerate(entries):
        emitted = _emit_instruction(instruction, address, forward)
        if emitted is None:
            body.append(f"_o[{k}]()")
            forward.clear()  # the closure's effects are opaque here
        else:
            body.extend(emitted)
    if branch_entry is None:
        return _wrap_superop(body + [f"return {end}"]), _M_INLINE, None
    terminator = _emit_terminator(*branch_entry, end)
    slot_lines = (
        _emit_instruction(*slot_entry, forward) if terminator is not None else None
    )
    if terminator is None or slot_lines is None:
        return _wrap_superop(body or ["pass"]), _M_CLOSURE, None
    setup, return_expr, conditional_target = terminator
    if conditional_target == pc and conditional_target is not None:
        # Self-loop: re-emit with FP pair loads hoisted above the loop.
        # The first emission pass doubles as the discovery pass: a pair
        # whose first access was a read (load before any write) gets its
        # load in a prelude; a pair still forwarded at the loop bottom
        # carries its value into the next iteration through a cheap
        # name rotation instead of a reconversion.  Both passes emit
        # identical instruction semantics, so forwarding trajectories
        # match and every seeded pair is live at the bottom.
        seedable = sorted(
            p for p in forward.seed_candidates if p in forward.doubles
        )
        # Pairs only ever written as doubles, never touched word-wise,
        # keep their value in a local: the pack + two word stores move
        # from the loop body to the exit branch.  Overlapping pairs (odd
        # bases alias even ones) and blocks with opaque fallback ops
        # fall back to the immediate write, which is always correct.
        sinkable = frozenset(
            p
            for p in forward.double_writes
            if not forward.opaque
            and p not in forward.raw
            and p + 1 not in forward.raw
            and p - 1 not in forward.double_writes
            and p + 1 not in forward.double_writes
        )
        state = _ForwardState()
        state.sink_pairs = sinkable
        prelude: list[str] = []
        seeds = {p: state.ensure_double(prelude, p) for p in seedable}
        loop_body: list[str] = []
        for k, (instruction, address) in enumerate(entries):
            emitted = _emit_instruction(instruction, address, state)
            if emitted is None:
                loop_body.append(f"_o[{k}]()")
                state.clear()
            else:
                loop_body.extend(emitted)
        loop_setup, _, _ = _emit_terminator(*branch_entry)
        loop_slot = _emit_instruction(*slot_entry, state)
        rotations = [
            f"{seeds[p]} = {state.doubles[p]}"
            for p in seedable
            if state.doubles[p] != seeds[p]
        ]
        # Flush sunk pairs in last-write order so aliasing writes land
        # exactly as the immediate path would have left them.  The body
        # is straight-line, so every pending pair was written this
        # iteration and its temp holds the final value.
        flush: list[str] = []
        for p, var in state.pending.items():
            flush += [
                f"    v = UQ(PD({var}))[0]",
                f"    f[{p}] = (v >> 32) & 0xFFFFFFFF",
                f"    f[{p + 1}] = v & 0xFFFFFFFF",
            ]
        inner = loop_body + loop_setup + loop_slot + rotations + [
            "k += 1",
            "if k >= budget or not taken:",
            *flush,
            "    return -k if taken else k",
        ]
        lines = prelude + ["k = 0", "while True:"] + [
            "    " + line for line in inner
        ]
        return _wrap_superop(lines, loop=True), _M_LOOP, conditional_target
    lines = body + setup + slot_lines + [f"return {return_expr}"]
    return _wrap_superop(lines), _M_INLINE, None


class Machine:
    """A loaded program plus architectural state, ready to run.

    Example::

        machine = Machine(program)
        result = machine.run()
        print(result.instructions_executed, result.output)
    """

    def __init__(
        self,
        program: AssembledProgram,
        stall_model: StallModel = R2000_STALLS,
        block_mode: bool | None = None,
    ) -> None:
        self.program = program
        self.stall_model = stall_model
        self.block_mode = default_block_mode() if block_mode is None else block_mode
        self.memory = Memory()
        self.memory.load_segment(program.text_base, program.text)
        if program.data:
            self.memory.load_segment(program.data_base, program.data)
        self.regs: list[int] = [0] * 32
        self.regs[29] = STACK_TOP  # $sp
        self.regs[28] = (program.data_base + 0x8000) & _MEM_MASK  # $gp
        self.fpr: list[int] = [0] * 32
        self.hilo: list[int] = [0, 0]
        self.fcc: list[int] = [0]  # FP condition flag
        self._output: list[str] = []
        self._stats: list[int] = [0]  # [data_access_count]
        if self.block_mode:
            self._ops = _LazyOps(
                self._compile, program.instructions, program.text_base
            )
        else:
            self._ops = [
                self._compile(instruction, program.text_base + 4 * index)
                for index, instruction in enumerate(program.instructions)
            ]
        # Superop-engine state, built lazily on the first block-mode run.
        self._leaders: set[int] | None = None
        self._shared = _program_cache(program) if self.block_mode else None
        self._blocks: list[_Block] = []
        # Dispatch records keyed by entry pc.  The tuple layout varies by
        # mode (record[3]): (n, superop, block_id, 1) for compiled blocks
        # returning the next pc, (n, superop, block_id, 3, head, end,
        # pattern) for generated loops, (n, fn, block_id, 0, end) for
        # fall-through warmups, (n, fn, block_id, 2, branch, slot, end)
        # for closure terminators.  ``False`` marks unfusable entries.
        self._record_at: dict[int, tuple | bool] = {}
        self._single_id_at: dict[int, int] = {}  # pc -> singleton block id

    # ------------------------------------------------------------------
    # Interpreter loop
    # ------------------------------------------------------------------

    def run(
        self,
        max_instructions: int = DEFAULT_MAX_INSTRUCTIONS,
        stop_at_limit: bool = False,
    ) -> ExecutionResult:
        """Execute from the program entry until the exit syscall.

        Args:
            max_instructions: Upper bound on dynamic instructions.
            stop_at_limit: If true, hitting the bound truncates the trace
                instead of raising :class:`~repro.errors.ExecutionError`.

        The basic-block superop engine (the default) and the
        per-instruction interpreter (``block_mode=False`` or
        ``CCRP_EXECUTOR=simple``) produce identical results — trace
        bytes, registers, output, and stall cycles — property-tested
        against each other across the workload suite.
        """
        if self.block_mode:
            return self._run_blocks(max_instructions, stop_at_limit)
        return self._run_simple(max_instructions, stop_at_limit)

    def _run_simple(
        self, max_instructions: int, stop_at_limit: bool
    ) -> ExecutionResult:
        """The reference per-instruction interpreter loop."""
        program = self.program
        ops = self._ops
        base = program.text_base
        top = base + len(ops) * 4
        trace: list[int] = []
        append = trace.append
        pc = program.entry
        npc = pc + 4
        executed = 0
        exit_code = 0
        try:
            while executed < max_instructions:
                if not base <= pc < top:
                    raise ExecutionError(f"PC {pc:#x} outside text segment")
                append(pc)
                target = ops[(pc - base) >> 2]()
                executed += 1
                pc = npc
                npc = pc + 4 if target is None else target
            if not stop_at_limit:
                raise ExecutionError(
                    f"instruction limit {max_instructions} reached without exit"
                )
        except _Halt as halt:
            exit_code = halt.exit_code
            executed = len(trace)  # the exiting syscall itself executed

        addresses = np.array(trace, dtype=np.uint32)
        execution_trace = ExecutionTrace(
            addresses=addresses,
            text_base=program.text_base,
            text_size=len(program.text),
        )
        stall_cycles = self.stall_model.stall_cycles(
            execution_trace.instruction_indices, program.instructions
        )
        return self._result(execution_trace, executed, stall_cycles, exit_code)

    # ------------------------------------------------------------------
    # Basic-block superop engine
    # ------------------------------------------------------------------

    def _run_blocks(
        self, max_instructions: int, stop_at_limit: bool
    ) -> ExecutionResult:
        """Interpret at basic-block granularity: one dispatch and one
        trace event per block instead of per instruction.

        Sequential control flow (``npc == pc + 4``) executes whole fused
        blocks; anything unusual — a pending branch target from a delay
        slot, a block bigger than the remaining instruction budget, a
        control transfer with no in-text delay slot — falls back to
        single-instruction events with the reference loop's exact
        semantics, so the two engines are equivalent by construction.
        """
        program = self.program
        ops = self._ops
        base = program.text_base
        top = base + len(ops) * 4
        get_record = self._record_at.get
        events: list[int] = []
        append = events.append
        extend = events.extend
        pc = program.entry
        npc = pc + 4
        executed = 0
        exit_code = 0
        try:
            while executed < max_instructions:
                if not base <= pc < top:
                    raise ExecutionError(f"PC {pc:#x} outside text segment")
                if npc == pc + 4:
                    record = get_record(pc)
                    if record is None:
                        record = self._make_block(pc)
                    if record is not False:
                        n = record[0]
                        remaining = max_instructions - executed
                        if n <= remaining:
                            mode = record[3]
                            if mode == 1:  # compiled: returns the next pc
                                append(record[2])
                                executed += n
                                pc = record[1]()
                                npc = pc + 4
                            elif mode == 3:  # generated loop (self or chain)
                                k = record[1](remaining // n)
                                if k < 0:
                                    k = -k
                                    pc = record[4]  # taken: back to the head
                                else:
                                    pc = record[5]
                                npc = pc + 4
                                executed += k * n
                                pattern = record[6]
                                if k == 1:
                                    extend(pattern)
                                else:
                                    extend(pattern * k)
                            elif mode == 0:  # fall-through warmup
                                append(record[2])
                                executed += n
                                record[1]()
                                pc = record[4]
                                npc = pc + 4
                            else:  # closure terminator (warmup/fallback)
                                append(record[2])
                                executed += n
                                record[1]()
                                taken = record[4]()
                                slot_target = record[5]()
                                pc = record[6] if taken is None else taken
                                npc = pc + 4 if slot_target is None else slot_target
                            continue
                # Single-step fallback: exact per-instruction semantics.
                append(self._single_id(pc))
                executed += 1
                target = ops[(pc - base) >> 2]()
                pc = npc
                npc = pc + 4 if target is None else target
            if not stop_at_limit:
                raise ExecutionError(
                    f"instruction limit {max_instructions} reached without exit"
                )
        except _Halt as halt:
            # The exit syscall always ends its block, so the pre-counted
            # event totals are exact through the halting instruction.
            exit_code = halt.exit_code

        if self._shared is not None:
            _store_shared(program, self._shared)
        block_trace = BlockTrace(
            events=np.array(events, dtype=np.int32),
            block_addresses=tuple(block.addresses for block in self._blocks),
            text_base=program.text_base,
            text_size=len(program.text),
        )
        execution_trace = ExecutionTrace(
            text_base=program.text_base,
            text_size=len(program.text),
            blocks=block_trace,
        )
        from_counts = getattr(self.stall_model, "stall_cycles_from_counts", None)
        if from_counts is not None:
            stall_cycles = from_counts(
                execution_trace.execution_counts(len(program.instructions)),
                program.instructions,
            )
        else:
            stall_cycles = self.stall_model.stall_cycles(
                execution_trace.instruction_indices, program.instructions
            )
        return self._result(execution_trace, executed, stall_cycles, exit_code)

    def _result(
        self,
        execution_trace: ExecutionTrace,
        executed: int,
        stall_cycles: int,
        exit_code: int,
    ) -> ExecutionResult:
        return ExecutionResult(
            trace=execution_trace,
            instructions_executed=executed,
            data_accesses=self._stats[0],
            stall_cycles=stall_cycles,
            output="".join(self._output),
            exit_code=exit_code,
            registers=tuple(self.regs),
        )

    def _make_block(self, pc: int) -> int:
        """Build and register the fused block entered at ``pc``.

        Returns the block's dispatch record, or ``False`` when no
        multi-instruction block can start here (a control transfer whose
        delay slot falls outside the text segment) — the engine then
        single-steps.
        """
        if self._leaders is None:
            shared = self._shared
            if shared is not None and shared["leaders"] is not None:
                self._leaders = shared["leaders"]
            else:
                self._leaders = find_leaders(
                    self.program.instructions,
                    self.program.text_base,
                    split_after_syscalls=True,
                )
                if shared is not None:
                    shared["leaders"] = self._leaders
                    shared["dirty"] = True
        base = self.program.text_base
        top = base + len(self._ops) * 4
        instructions = self.program.instructions
        leaders = self._leaders
        ops: list = []
        entries: list[tuple[Instruction, int]] = []
        address = pc
        kind = _FALL
        branch_op = None
        slot_op = None
        branch_entry: tuple[Instruction, int] | None = None
        slot_entry: tuple[Instruction, int] | None = None
        end = pc
        while address < top:
            instruction = instructions[(address - base) >> 2]
            if instruction.spec.is_control_transfer:
                if address + 8 > top:
                    # No in-text delay slot: leave the transfer to the
                    # single-step path (it will fault like the reference
                    # loop when control runs off the segment).
                    end = address
                    break
                kind = _BRANCH
                branch_op = self._ops[(address - base) >> 2]
                slot_op = self._ops[(address + 4 - base) >> 2]
                branch_entry = (instruction, address)
                slot_entry = (instructions[(address + 4 - base) >> 2], address + 4)
                end = address + 8
                break
            ops.append(self._ops[(address - base) >> 2])
            entries.append((instruction, address))
            address += 4
            end = address
            if instruction.mnemonic in ("syscall", "break"):
                break
            if address in leaders:
                break
        addresses = np.arange(pc, end, 4, dtype=np.uint32)
        if len(addresses) == 0:
            self._record_at[pc] = False
            return False
        fused_ops = tuple(ops)
        block = _Block(
            kind=kind,
            ops=fused_ops,
            superop=None,
            branch=branch_op,
            slot=slot_op,
            addresses=addresses,
            end=end,
        )
        block_id = len(self._blocks)
        self._blocks.append(block)
        # Register before fusing: building a fused loop record calls
        # back into _make_block for the loop's member blocks, which must
        # see this block instead of re-scanning it.
        self._record_at[pc] = False
        codes = self._shared["codes"] if self._shared is not None else {}
        if pc in codes:
            # Another machine already compiled this block: fuse for free.
            record = self._fuse(
                pc, entries, branch_entry, slot_entry, fused_ops, block.n,
                end, branch_op, slot_op, block_id,
            )
            block.superop = record[1]
        else:
            # Defer compilation until the block proves hot; cold blocks
            # run the closure loop, which is cheaper than compiling.  The
            # warmup record keeps closure-terminator semantics; the fused
            # record installed at the threshold takes over from the
            # *next* dispatch (this dispatch already read the old record,
            # so its branch/slot closures still run).
            budget = [max(_FUSE_MIN_EXECUTIONS, _FUSE_INSTRUCTIONS // block.n)]

            def warmup():
                budget[0] -= 1
                if budget[0] <= 0:
                    fused = self._fuse(
                        pc, entries, branch_entry, slot_entry, fused_ops,
                        block.n, end, branch_op, slot_op, block_id,
                    )
                    block.superop = fused[1]
                    self._record_at[pc] = fused
                for op in fused_ops:
                    op()

            if branch_op is None:
                record = (block.n, warmup, block_id, _M_FALL, end)
            else:
                record = (
                    block.n, warmup, block_id, _M_CLOSURE,
                    branch_op, slot_op, end,
                )
        self._record_at[pc] = record
        return record

    #: Bounds on the fall-through chain considered for multi-block loops.
    _CHAIN_MAX_BLOCKS = 8
    _CHAIN_MAX_INSTRUCTIONS = 512

    def _fuse(
        self,
        pc: int,
        entries: list[tuple[Instruction, int]],
        branch_entry: tuple[Instruction, int] | None,
        slot_entry: tuple[Instruction, int] | None,
        ops: tuple,
        n: int,
        end: int,
        branch_op,
        slot_op,
        block_id: int,
    ) -> tuple:
        """Compile one block into a single function; return its record.

        Code objects (plus dispatch mode and loop payload) are shared
        across machines running the same program; a generator bug
        surfacing as a compile error degrades to looping over the
        closures, never to wrong execution.
        """
        codes = self._shared["codes"] if self._shared is not None else {}
        cached = codes.get(pc)
        if cached is None:
            cached = self._compile_block(
                pc, entries, branch_entry, slot_entry, end, codes
            )
            if cached is None:  # pragma: no cover - emitter bug safety net
                def runner():
                    for op in ops:
                        op()
                if branch_op is None:
                    return (n, runner, block_id, _M_FALL, end)
                return (n, runner, block_id, _M_CLOSURE, branch_op, slot_op, end)
        code, mode, payload = cached
        if mode == _M_LOOP:
            record = self._loop_record(pc, code, payload, block_id)
            if record is not None:
                return record
            # A member block stopped being fusable (stale cache entry):
            # recompile as a plain block.
            del codes[pc]
            cached = self._compile_block(
                pc, entries, branch_entry, slot_entry, end, codes,
                allow_chain=False,
            )
            if cached is None:  # pragma: no cover - emitter bug safety net
                def runner():
                    for op in ops:
                        op()
                return (n, runner, block_id, _M_FALL, end)
            code, mode, payload = cached
        namespace = self._superop_namespace(ops)
        exec(code, namespace)
        superop = namespace["_su"]
        if mode == _M_LOOP:
            loop_n, loop_end, _ = payload
            return (loop_n, superop, block_id, _M_LOOP, pc, loop_end, [block_id])
        if mode == _M_CLOSURE:
            return (n, superop, block_id, _M_CLOSURE, branch_op, slot_op, end)
        return (n, superop, block_id, _M_INLINE)

    def _compile_block(
        self,
        pc: int,
        entries: list[tuple[Instruction, int]],
        branch_entry: tuple[Instruction, int] | None,
        slot_entry: tuple[Instruction, int] | None,
        end: int,
        codes: dict,
        allow_chain: bool = True,
    ) -> tuple | None:
        """Compile the block (or the loop it heads) into ``codes[pc]``.

        Returns the stored ``(code, mode, payload)`` entry, or ``None``
        when compilation failed.  Loop payloads are ``(n, end, starts)``
        — instructions per iteration, the not-taken exit address, and
        the member-block start addresses (head first).
        """
        source = mode = target = None
        payload: object = None
        if (
            allow_chain
            and branch_entry is None
            and entries
            and entries[-1][0].mnemonic not in ("syscall", "break")
        ):
            chain = self._find_chain(pc, end)
            if chain is not None:
                extra, c_branch, c_slot, starts, loop_end = chain
                source, mode, target = _block_source(
                    entries + extra, c_branch, c_slot, pc, loop_end
                )
                if mode == _M_LOOP:
                    payload = (
                        len(entries) + len(extra) + 2,
                        loop_end,
                        tuple(starts),
                    )
                else:  # the loop's delay slot defeated inlining
                    source = None
        if source is None:
            source, mode, target = _block_source(
                entries, branch_entry, slot_entry, pc, end
            )
            payload = (len(entries) + 2, end, (pc,)) if mode == _M_LOOP else target
        try:
            code = compile(source, f"<superop:{pc:#x}>", "exec")
        except Exception:  # pragma: no cover - emitter bug safety net
            return None
        entry = codes[pc] = (code, mode, payload)
        if self._shared is not None:
            self._shared["dirty"] = True
        return entry

    def _find_chain(self, pc: int, end: int) -> tuple | None:
        """Fall-through blocks after ``end`` closed by a branch to ``pc``.

        Walks the blocks following the head block ``[pc, end)`` exactly
        as :meth:`_make_block` would carve them.  A simple loop — pure
        fall-through members ending in a conditional branch back to the
        head, with an emittable delay slot — returns ``(extra entries,
        branch entry, slot entry, member starts, end past the slot)``;
        anything else (side exits, syscalls, indirect jumps, a region
        over the size bounds) returns ``None``.
        """
        base = self.program.text_base
        top = base + len(self._ops) * 4
        instructions = self.program.instructions
        leaders = self._leaders
        starts = [pc]
        extra: list[tuple[Instruction, int]] = []
        address = end
        count = (end - pc) >> 2
        while address < top and len(starts) < self._CHAIN_MAX_BLOCKS:
            starts.append(address)
            while address < top:
                instruction = instructions[(address - base) >> 2]
                if instruction.spec.is_control_transfer:
                    if address + 8 > top:
                        return None  # delay slot outside the text segment
                    terminator = _emit_terminator(instruction, address)
                    if terminator is None or terminator[2] != pc:
                        return None  # not a conditional branch to the head
                    slot_instruction = instructions[(address + 4 - base) >> 2]
                    if _emit_instruction(slot_instruction, address + 4) is None:
                        return None
                    return (
                        extra,
                        (instruction, address),
                        (slot_instruction, address + 4),
                        starts,
                        address + 8,
                    )
                if instruction.mnemonic in ("syscall", "break"):
                    return None
                extra.append((instruction, address))
                count += 1
                if count > self._CHAIN_MAX_INSTRUCTIONS:
                    return None
                address += 4
                if address in leaders:
                    break  # the next chain member starts here
        return None

    def _loop_record(self, pc: int, code, payload: tuple, block_id: int) -> tuple:
        """Dispatch record for a compiled loop superop headed at ``pc``.

        Builds the loop's member blocks (so their trace events resolve)
        and binds the closure tuple spanning the whole contiguous loop
        body.  Returns ``None`` if a member is unfusable — only possible
        for a stale cache entry, never for a loop found by
        :meth:`_find_chain` this run.
        """
        n, end, starts = payload
        pattern = [block_id]
        for start in starts[1:]:
            member = self._record_at.get(start)
            if member is None:
                member = self._make_block(start)
            if member is False:
                return None
            pattern.append(member[2])
        base = self.program.text_base
        combined = tuple(
            self._ops[(pc - base) >> 2 : (end - 8 - base) >> 2]
        )
        namespace = self._superop_namespace(combined)
        exec(code, namespace)
        return (n, namespace["_su"], block_id, _M_LOOP, pc, end, pattern)

    def _superop_namespace(self, ops: tuple) -> dict:
        return {
            "_R": self.regs,
            "_F": self.fpr,
            "_HL": self.hilo,
            "_CC": self.fcc,
            "_D": self.memory.data,
            "_ST": self._stats,
            "_O": ops,
            "_EE": ExecutionError,
            "_F32": _F32,
            "_U32": _U32,
            "_F64": _F64,
            "_U64": _U64,
        }

    def _single_id(self, pc: int) -> int:
        """Block id of the one-instruction event at ``pc`` (cached)."""
        single_id = self._single_id_at.get(pc)
        if single_id is None:
            block = _Block(
                kind=_FALL,
                ops=(),
                superop=None,
                branch=None,
                slot=None,
                addresses=np.array([pc], dtype=np.uint32),
                end=pc + 4,
            )
            single_id = len(self._blocks)
            self._blocks.append(block)
            self._single_id_at[pc] = single_id
        return single_id

    # ------------------------------------------------------------------
    # Instruction compilation
    # ------------------------------------------------------------------

    def _compile(self, instruction: Instruction, pc: int):
        """Build the closure executing ``instruction`` located at ``pc``.

        The closure returns the branch/jump target when control transfers,
        otherwise ``None``.
        """
        m = instruction.mnemonic
        regs = self.regs
        fpr = self.fpr
        hilo = self.hilo
        fcc = self.fcc
        data = self.memory.data
        stats = self._stats
        rs, rt, rd = instruction.rs, instruction.rt, instruction.rd
        shamt = instruction.shamt
        imm = instruction.imm_signed
        uimm = instruction.imm_unsigned

        # --- integer R-type --------------------------------------------
        if m in ("add", "addu"):
            def op():
                if rd:
                    regs[rd] = (regs[rs] + regs[rt]) & _WORD_MASK
            return op
        if m in ("sub", "subu"):
            def op():
                if rd:
                    regs[rd] = (regs[rs] - regs[rt]) & _WORD_MASK
            return op
        if m == "and":
            def op():
                if rd:
                    regs[rd] = regs[rs] & regs[rt]
            return op
        if m == "or":
            def op():
                if rd:
                    regs[rd] = regs[rs] | regs[rt]
            return op
        if m == "xor":
            def op():
                if rd:
                    regs[rd] = regs[rs] ^ regs[rt]
            return op
        if m == "nor":
            def op():
                if rd:
                    regs[rd] = ~(regs[rs] | regs[rt]) & _WORD_MASK
            return op
        if m == "slt":
            def op():
                if rd:
                    regs[rd] = 1 if _signed(regs[rs]) < _signed(regs[rt]) else 0
            return op
        if m == "sltu":
            def op():
                if rd:
                    regs[rd] = 1 if regs[rs] < regs[rt] else 0
            return op
        if m == "sll":
            def op():
                if rd:
                    regs[rd] = (regs[rt] << shamt) & _WORD_MASK
            return op
        if m == "srl":
            def op():
                if rd:
                    regs[rd] = regs[rt] >> shamt
            return op
        if m == "sra":
            def op():
                if rd:
                    regs[rd] = (_signed(regs[rt]) >> shamt) & _WORD_MASK
            return op
        if m == "sllv":
            def op():
                if rd:
                    regs[rd] = (regs[rt] << (regs[rs] & 31)) & _WORD_MASK
            return op
        if m == "srlv":
            def op():
                if rd:
                    regs[rd] = regs[rt] >> (regs[rs] & 31)
            return op
        if m == "srav":
            def op():
                if rd:
                    regs[rd] = (_signed(regs[rt]) >> (regs[rs] & 31)) & _WORD_MASK
            return op

        # --- HI/LO and multiply/divide ----------------------------------
        if m == "mult":
            def op():
                product = _signed(regs[rs]) * _signed(regs[rt])
                hilo[0] = (product >> 32) & _WORD_MASK
                hilo[1] = product & _WORD_MASK
            return op
        if m == "multu":
            def op():
                product = regs[rs] * regs[rt]
                hilo[0] = (product >> 32) & _WORD_MASK
                hilo[1] = product & _WORD_MASK
            return op
        if m == "div":
            def op():
                dividend, divisor = _signed(regs[rs]), _signed(regs[rt])
                if divisor == 0:
                    hilo[0] = hilo[1] = 0  # UNPREDICTABLE on hardware
                else:
                    quotient = int(dividend / divisor)  # truncate toward zero
                    hilo[1] = quotient & _WORD_MASK
                    hilo[0] = (dividend - quotient * divisor) & _WORD_MASK
            return op
        if m == "divu":
            def op():
                if regs[rt] == 0:
                    hilo[0] = hilo[1] = 0
                else:
                    hilo[1] = regs[rs] // regs[rt]
                    hilo[0] = regs[rs] % regs[rt]
            return op
        if m == "mfhi":
            def op():
                if rd:
                    regs[rd] = hilo[0]
            return op
        if m == "mflo":
            def op():
                if rd:
                    regs[rd] = hilo[1]
            return op
        if m == "mthi":
            def op():
                hilo[0] = regs[rs]
            return op
        if m == "mtlo":
            def op():
                hilo[1] = regs[rs]
            return op

        # --- I-type ALU ---------------------------------------------------
        if m in ("addi", "addiu"):
            def op():
                if rt:
                    regs[rt] = (regs[rs] + imm) & _WORD_MASK
            return op
        if m == "slti":
            def op():
                if rt:
                    regs[rt] = 1 if _signed(regs[rs]) < imm else 0
            return op
        if m == "sltiu":
            def op():
                if rt:
                    regs[rt] = 1 if regs[rs] < (imm & _WORD_MASK) else 0
            return op
        if m == "andi":
            def op():
                if rt:
                    regs[rt] = regs[rs] & uimm
            return op
        if m == "ori":
            def op():
                if rt:
                    regs[rt] = regs[rs] | uimm
            return op
        if m == "xori":
            def op():
                if rt:
                    regs[rt] = regs[rs] ^ uimm
            return op
        if m == "lui":
            value = (uimm << 16) & _WORD_MASK
            def op():
                if rt:
                    regs[rt] = value
            return op

        # --- loads / stores -------------------------------------------------
        if m == "lw":
            def op():
                stats[0] += 1
                address = (regs[rs] + imm) & _MEM_MASK
                if address & 3:
                    raise ExecutionError(f"unaligned lw at {address:#x} (pc {pc:#x})")
                if rt:
                    regs[rt] = (
                        (data[address] << 24)
                        | (data[address + 1] << 16)
                        | (data[address + 2] << 8)
                        | data[address + 3]
                    )
            return op
        if m == "sw":
            def op():
                stats[0] += 1
                address = (regs[rs] + imm) & _MEM_MASK
                if address & 3:
                    raise ExecutionError(f"unaligned sw at {address:#x} (pc {pc:#x})")
                value = regs[rt]
                data[address] = (value >> 24) & 0xFF
                data[address + 1] = (value >> 16) & 0xFF
                data[address + 2] = (value >> 8) & 0xFF
                data[address + 3] = value & 0xFF
            return op
        if m == "lb":
            def op():
                stats[0] += 1
                value = data[(regs[rs] + imm) & _MEM_MASK]
                if rt:
                    regs[rt] = value - 256 if value & 0x80 else value
                    regs[rt] &= _WORD_MASK
            return op
        if m == "lbu":
            def op():
                stats[0] += 1
                if rt:
                    regs[rt] = data[(regs[rs] + imm) & _MEM_MASK]
            return op
        if m == "sb":
            def op():
                stats[0] += 1
                data[(regs[rs] + imm) & _MEM_MASK] = regs[rt] & 0xFF
            return op
        if m == "lh":
            def op():
                stats[0] += 1
                address = (regs[rs] + imm) & _MEM_MASK
                if address & 1:
                    raise ExecutionError(f"unaligned lh at {address:#x} (pc {pc:#x})")
                value = (data[address] << 8) | data[address + 1]
                if rt:
                    regs[rt] = (value - 0x10000 if value & 0x8000 else value) & _WORD_MASK
            return op
        if m == "lhu":
            def op():
                stats[0] += 1
                address = (regs[rs] + imm) & _MEM_MASK
                if address & 1:
                    raise ExecutionError(f"unaligned lhu at {address:#x} (pc {pc:#x})")
                if rt:
                    regs[rt] = (data[address] << 8) | data[address + 1]
            return op
        if m == "sh":
            def op():
                stats[0] += 1
                address = (regs[rs] + imm) & _MEM_MASK
                if address & 1:
                    raise ExecutionError(f"unaligned sh at {address:#x} (pc {pc:#x})")
                data[address] = (regs[rt] >> 8) & 0xFF
                data[address + 1] = regs[rt] & 0xFF
            return op

        # --- unaligned-access pairs (big-endian LWL/LWR/SWL/SWR) --------
        def _read_aligned(address: int) -> int:
            base = address & ~3
            return (
                (data[base] << 24)
                | (data[base + 1] << 16)
                | (data[base + 2] << 8)
                | data[base + 3]
            )

        def _write_aligned(address: int, value: int) -> None:
            base = address & ~3
            data[base] = (value >> 24) & 0xFF
            data[base + 1] = (value >> 16) & 0xFF
            data[base + 2] = (value >> 8) & 0xFF
            data[base + 3] = value & 0xFF

        if m == "lwl":
            def op():
                stats[0] += 1
                address = (regs[rs] + imm) & _MEM_MASK
                offset = address & 3
                word = _read_aligned(address)
                if rt:
                    keep = (1 << (8 * offset)) - 1
                    regs[rt] = ((word << (8 * offset)) & _WORD_MASK) | (regs[rt] & keep)
            return op
        if m == "lwr":
            def op():
                stats[0] += 1
                address = (regs[rs] + imm) & _MEM_MASK
                offset = address & 3
                word = _read_aligned(address)
                if rt:
                    mask = (1 << (8 * (offset + 1))) - 1
                    regs[rt] = (regs[rt] & ~mask & _WORD_MASK) | (
                        (word >> (8 * (3 - offset))) & mask
                    )
            return op
        if m == "swl":
            def op():
                stats[0] += 1
                address = (regs[rs] + imm) & _MEM_MASK
                offset = address & 3
                word = _read_aligned(address)
                low_mask = (1 << (8 * (4 - offset))) - 1
                merged = (word & ~low_mask & _WORD_MASK) | (regs[rt] >> (8 * offset))
                _write_aligned(address, merged)
            return op
        if m == "swr":
            def op():
                stats[0] += 1
                address = (regs[rs] + imm) & _MEM_MASK
                offset = address & 3
                word = _read_aligned(address)
                keep = (1 << (8 * (3 - offset))) - 1
                merged = (word & keep) | (
                    (regs[rt] << (8 * (3 - offset))) & _WORD_MASK & ~keep
                )
                _write_aligned(address, merged)
            return op

        # --- branches ---------------------------------------------------------
        branch_target = (pc + 4 + (imm << 2)) & _MEM_MASK
        if m == "beq":
            def op():
                return branch_target if regs[rs] == regs[rt] else None
            return op
        if m == "bne":
            def op():
                return branch_target if regs[rs] != regs[rt] else None
            return op
        if m == "blez":
            def op():
                return branch_target if _signed(regs[rs]) <= 0 else None
            return op
        if m == "bgtz":
            def op():
                return branch_target if _signed(regs[rs]) > 0 else None
            return op
        if m == "bltz":
            def op():
                return branch_target if regs[rs] & 0x8000_0000 else None
            return op
        if m == "bgez":
            def op():
                return None if regs[rs] & 0x8000_0000 else branch_target
            return op
        if m in ("bltzal", "bgezal"):
            link = (pc + 8) & _MEM_MASK
            negative = m == "bltzal"
            def op():
                regs[31] = link
                taken = bool(regs[rs] & 0x8000_0000) == negative
                return branch_target if taken else None
            return op

        # --- jumps ---------------------------------------------------------------
        if m == "j":
            jump_target = ((pc + 4) & 0xF000_0000) | (instruction.target << 2)
            def op():
                return jump_target
            return op
        if m == "jal":
            jump_target = ((pc + 4) & 0xF000_0000) | (instruction.target << 2)
            link = (pc + 8) & _MEM_MASK
            def op():
                regs[31] = link
                return jump_target
            return op
        if m == "jr":
            def op():
                return regs[rs]
            return op
        if m == "jalr":
            link = (pc + 8) & _MEM_MASK
            def op():
                target = regs[rs]
                if rd:
                    regs[rd] = link
                return target
            return op

        # --- system ---------------------------------------------------------------
        if m == "syscall":
            output = self._output
            memory = self.memory
            def op():
                service = regs[2]
                if service == 10:
                    raise _Halt(regs[4])
                if service == 1:
                    output.append(str(_signed(regs[4])))
                elif service == 4:
                    output.append(memory.read_string(regs[4]))
                elif service == 11:
                    output.append(chr(regs[4] & 0xFF))
                else:
                    raise ExecutionError(f"unsupported syscall {service} at {pc:#x}")
            return op
        if m == "break":
            def op():
                raise ExecutionError(f"break executed at {pc:#x}")
            return op

        # --- floating point ----------------------------------------------------------
        if m in ("lwc1", "swc1"):
            load = m == "lwc1"
            def op():
                stats[0] += 1
                address = (regs[rs] + imm) & _MEM_MASK
                if address & 3:
                    raise ExecutionError(f"unaligned {m} at {address:#x} (pc {pc:#x})")
                if load:
                    fpr[rt] = (
                        (data[address] << 24)
                        | (data[address + 1] << 16)
                        | (data[address + 2] << 8)
                        | data[address + 3]
                    )
                else:
                    value = fpr[rt]
                    data[address] = (value >> 24) & 0xFF
                    data[address + 1] = (value >> 16) & 0xFF
                    data[address + 2] = (value >> 8) & 0xFF
                    data[address + 3] = value & 0xFF
            return op
        if m == "mfc1":
            def op():
                if rt:
                    regs[rt] = fpr[rd]
            return op
        if m == "mtc1":
            def op():
                fpr[rd] = regs[rt]
            return op
        if m in ("bc1t", "bc1f"):
            expect = 1 if m == "bc1t" else 0
            def op():
                return branch_target if fcc[0] == expect else None
            return op

        if m.startswith(("add.", "sub.", "mul.", "div.", "abs.", "neg.", "mov.")):
            return self._compile_fp_arith(instruction)
        if m.startswith("cvt."):
            return self._compile_fp_convert(instruction)
        if m.startswith("c."):
            return self._compile_fp_compare(instruction)

        raise ExecutionError(f"no executor for mnemonic {m!r}")  # pragma: no cover

    # ------------------------------------------------------------------
    # Floating-point helpers
    # ------------------------------------------------------------------

    def _read_double(self, index: int) -> float:
        return _bits_double((self.fpr[index] << 32) | self.fpr[index + 1])

    def _write_double(self, index: int, value: float) -> None:
        bits = _double_bits(value)
        self.fpr[index] = (bits >> 32) & _WORD_MASK
        self.fpr[index + 1] = bits & _WORD_MASK

    def _compile_fp_arith(self, instruction: Instruction):
        m = instruction.mnemonic
        fpr = self.fpr
        fd, fs, ft = instruction.shamt, instruction.rd, instruction.rt
        double = m.endswith(".d")
        base = m.split(".")[0]
        read_d, write_d = self._read_double, self._write_double

        if base == "mov":
            if double:
                def op():
                    fpr[fd] = fpr[fs]
                    fpr[fd + 1] = fpr[fs + 1]
            else:
                def op():
                    fpr[fd] = fpr[fs]
            return op
        if base in ("abs", "neg"):
            flip = base == "neg"
            def op():
                high = fpr[fs]
                if flip:
                    high ^= 0x8000_0000
                else:
                    high &= 0x7FFF_FFFF
                fpr[fd] = high
                if double:
                    fpr[fd + 1] = fpr[fs + 1]
            return op

        if double:
            def op():
                a, b = read_d(fs), read_d(ft)
                if base == "add":
                    result = a + b
                elif base == "sub":
                    result = a - b
                elif base == "mul":
                    result = a * b
                else:
                    result = a / b if b != 0.0 else float("inf") * (1 if a >= 0 else -1)
                write_d(fd, result)
            return op

        def op():
            a, b = _bits_float(fpr[fs]), _bits_float(fpr[ft])
            if base == "add":
                result = a + b
            elif base == "sub":
                result = a - b
            elif base == "mul":
                result = a * b
            else:
                result = a / b if b != 0.0 else float("inf") * (1 if a >= 0 else -1)
            fpr[fd] = _float_bits(result)
        return op

    def _compile_fp_convert(self, instruction: Instruction):
        m = instruction.mnemonic
        fpr = self.fpr
        fd, fs = instruction.shamt, instruction.rd
        read_d, write_d = self._read_double, self._write_double
        _, to_kind, from_kind = m.split(".")

        def read_source() -> float | int:
            if from_kind == "d":
                return read_d(fs)
            if from_kind == "s":
                return _bits_float(fpr[fs])
            return _signed(fpr[fs])

        def op():
            value = read_source()
            if to_kind == "d":
                write_d(fd, float(value))
            elif to_kind == "s":
                fpr[fd] = _float_bits(float(value))
            else:  # to word: truncate toward zero, C-style
                fpr[fd] = int(value) & _WORD_MASK
        return op

    def _compile_fp_compare(self, instruction: Instruction):
        m = instruction.mnemonic
        fpr = self.fpr
        fcc = self.fcc
        fs, ft = instruction.rd, instruction.rt
        double = m.endswith(".d")
        condition = m.split(".")[1]
        read_d = self._read_double

        def op():
            if double:
                a, b = read_d(fs), read_d(ft)
            else:
                a, b = _bits_float(fpr[fs]), _bits_float(fpr[ft])
            if condition == "eq":
                fcc[0] = 1 if a == b else 0
            elif condition == "lt":
                fcc[0] = 1 if a < b else 0
            else:
                fcc[0] = 1 if a <= b else 0
        return op
