"""Pixie-style execution profiling.

The paper used "the diagnostic profiling tool pixie … to document the
detailed behavior of each program".  This module produces the same kind
of report from an :class:`~repro.machine.tracing.ExecutionTrace`: dynamic
instruction mix, per-procedure cycle attribution, hottest static
instructions, and call counts — useful both for sanity-checking synthetic
workloads and for users profiling their own programs.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

import numpy as np

from repro.isa.assembler import AssembledProgram
from repro.isa.opcodes import Category
from repro.machine.executor import ExecutionResult


@dataclass(frozen=True)
class ProcedureProfile:
    """Dynamic totals attributed to one label-delimited procedure."""

    name: str
    address: int
    static_words: int
    executed_instructions: int
    calls: int

    @property
    def instructions_per_call(self) -> float:
        return self.executed_instructions / self.calls if self.calls else 0.0


@dataclass(frozen=True)
class ProfileReport:
    """Everything the profiler extracted from one execution.

    Attributes:
        instructions_executed: Dynamic instruction count.
        category_mix: Dynamic fraction per instruction category.
        procedures: Per-procedure attribution, hottest first.
        hot_instructions: (address, mnemonic, count) for the top static
            instructions by execution count.
    """

    instructions_executed: int
    category_mix: dict[Category, float]
    procedures: tuple[ProcedureProfile, ...]
    hot_instructions: tuple[tuple[int, str, int], ...]

    def mix_fraction(self, category: Category) -> float:
        return self.category_mix.get(category, 0.0)

    @property
    def load_store_fraction(self) -> float:
        """Fraction of dynamic instructions touching data memory."""
        return sum(
            fraction
            for category, fraction in self.category_mix.items()
            if category
            in (Category.LOAD, Category.STORE, Category.FP_LOAD, Category.FP_STORE)
        )

    def render(self, top: int = 10) -> str:
        lines = [f"dynamic instructions: {self.instructions_executed:,}", ""]
        lines.append("instruction mix:")
        for category, fraction in sorted(
            self.category_mix.items(), key=lambda item: -item[1]
        ):
            lines.append(f"  {category.value:12s} {fraction:7.2%}")
        lines.append("")
        lines.append(f"{'procedure':24s} {'instrs':>10s} {'calls':>8s} {'per call':>9s}")
        for procedure in self.procedures[:top]:
            lines.append(
                f"{procedure.name:24s} {procedure.executed_instructions:10,d} "
                f"{procedure.calls:8,d} {procedure.instructions_per_call:9.1f}"
            )
        lines.append("")
        lines.append("hottest instructions:")
        for address, mnemonic, count in self.hot_instructions[:top]:
            lines.append(f"  {address:#08x}  {mnemonic:10s} {count:10,d}")
        return "\n".join(lines)


def profile(result: ExecutionResult, program: AssembledProgram) -> ProfileReport:
    """Build a :class:`ProfileReport` for one execution of ``program``."""
    trace = result.trace
    counts = trace.execution_counts()
    instructions = program.instructions
    total = int(counts.sum())

    # --- dynamic category mix -----------------------------------------
    category_counts: Counter[Category] = Counter()
    for index, count in enumerate(counts):
        if count:
            category_counts[instructions[index].spec.category] += int(count)
    category_mix = {
        category: count / total for category, count in category_counts.items()
    } if total else {}

    # --- per-procedure attribution --------------------------------------
    text_base = program.text_base
    text_end = text_base + len(program.text)
    code_labels = sorted(
        (address, name)
        for name, address in program.labels.items()
        if text_base <= address < text_end
    )
    # Procedures = call targets plus the entry point; other labels are
    # local branch targets inside a procedure.
    call_targets = {
        ((instructions[i].target << 2) & 0xFFFFFFFF)
        for i in range(len(instructions))
        if instructions[i].mnemonic == "jal"
    }
    call_targets.add(program.entry)
    boundaries = [
        (address, name) for address, name in code_labels if address in call_targets
    ]
    if not boundaries or boundaries[0][0] != text_base:
        boundaries.insert(0, (text_base, "<start>"))

    call_counts: Counter[int] = Counter()
    for index, count in enumerate(counts):
        if count and instructions[index].mnemonic == "jal":
            call_counts[(instructions[index].target << 2) & 0xFFFFFFFF] += int(count)
    call_counts[program.entry] += 1

    procedures = []
    for position, (address, name) in enumerate(boundaries):
        end = (
            boundaries[position + 1][0]
            if position + 1 < len(boundaries)
            else text_end
        )
        first = (address - text_base) // 4
        last = (end - text_base) // 4
        executed = int(counts[first:last].sum())
        if executed == 0:
            continue
        procedures.append(
            ProcedureProfile(
                name=name,
                address=address,
                static_words=last - first,
                executed_instructions=executed,
                calls=int(call_counts.get(address, 0)),
            )
        )
    procedures.sort(key=lambda procedure: -procedure.executed_instructions)

    # --- hottest static instructions ------------------------------------
    order = np.argsort(counts)[::-1]
    hot = tuple(
        (
            text_base + 4 * int(index),
            instructions[int(index)].mnemonic,
            int(counts[int(index)]),
        )
        for index in order[:25]
        if counts[int(index)] > 0
    )

    return ProfileReport(
        instructions_executed=total,
        category_mix=category_mix,
        procedures=tuple(procedures),
        hot_instructions=hot,
    )
