"""Dynamic instruction-address traces.

An :class:`ExecutionTrace` is the central artifact the cache simulators
consume — the equivalent of the pixie address traces the paper's
experiments were driven by.

Two backing representations exist:

* a flat ``uint32`` address array, one entry per executed instruction
  (what the per-instruction interpreter records directly), and
* a :class:`BlockTrace` — one event per executed *basic block* plus the
  per-block static address arrays, recorded by the superop engine.  The
  flat array is materialised lazily with vectorised numpy gathers, and
  aggregate queries (``execution_counts``, ``__len__``) are answered
  from block counts without materialising at all.

Both answer every query identically; the block form is simply much
cheaper to record and to aggregate over.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass(frozen=True, eq=False)
class BlockTrace:
    """A dynamic trace stored as one event per executed basic block.

    Attributes:
        events: Block ids in execution order (``int32``), one entry per
            *block* execution rather than per instruction.
        block_addresses: For each block id, the static instruction byte
            addresses the block executes, in order (``uint32``).
        text_base: Load address of the program text segment.
        text_size: Text-segment size in bytes.
    """

    events: np.ndarray
    block_addresses: tuple[np.ndarray, ...]
    text_base: int
    text_size: int
    _cache: dict = field(default_factory=dict, repr=False, compare=False)

    @property
    def block_lengths(self) -> np.ndarray:
        """Instructions per block id (``int64``)."""
        lengths = self._cache.get("lengths")
        if lengths is None:
            lengths = np.array(
                [len(addresses) for addresses in self.block_addresses], dtype=np.int64
            )
            self._cache["lengths"] = lengths
        return lengths

    def __len__(self) -> int:
        """Total dynamic instruction count, without materialising."""
        if len(self.events) == 0:
            return 0
        return int(self.block_lengths[self.events].sum())

    def materialize_addresses(self) -> np.ndarray:
        """The flat per-instruction address stream, gathered vectorised.

        Equivalent to concatenating ``block_addresses[e]`` for every
        event ``e`` — but built with ``np.repeat`` index arithmetic and
        one fancy-indexed gather instead of a Python loop.
        """
        if len(self.events) == 0:
            return np.empty(0, dtype=np.uint32)
        lengths = self.block_lengths
        if len(self.block_addresses) == 0:
            return np.empty(0, dtype=np.uint32)
        flat = np.concatenate(
            [addresses.astype(np.uint32, copy=False) for addresses in self.block_addresses]
        )
        offsets = np.zeros(len(lengths), dtype=np.int64)
        np.cumsum(lengths[:-1], out=offsets[1:])
        event_lengths = lengths[self.events]
        event_starts = offsets[self.events]
        total = int(event_lengths.sum())
        out_starts = np.zeros(len(event_lengths), dtype=np.int64)
        np.cumsum(event_lengths[:-1], out=out_starts[1:])
        gather = (
            np.arange(total, dtype=np.int64)
            - np.repeat(out_starts, event_lengths)
            + np.repeat(event_starts, event_lengths)
        )
        return flat[gather]

    def execution_counts(self, text_words: int) -> np.ndarray:
        """Per-static-instruction execution counts from block counts.

        One ``bincount`` over the (short) event stream weighs each
        block; the per-block address arrays then scatter that weight
        onto the static instructions — no per-instruction pass.
        """
        counts = np.zeros(text_words, dtype=np.int64)
        if len(self.events) == 0:
            return counts
        event_counts = np.bincount(self.events, minlength=len(self.block_addresses))
        base = np.int64(self.text_base)
        for block_id, weight in enumerate(event_counts):
            if weight:
                indices = (self.block_addresses[block_id].astype(np.int64) - base) >> 2
                counts[indices] += weight  # addresses within a block are unique
        return counts


class ExecutionTrace:
    """Dynamic instruction addresses from one program execution.

    Attributes:
        addresses: Instruction byte addresses in execution order
            (``uint32``), one entry per executed instruction.  With a
            block backing this materialises lazily on first access.
        text_base: Load address of the program text segment.
        text_size: Text-segment size in bytes.
        blocks: The compact :class:`BlockTrace` backing, or ``None``
            when the trace was recorded per instruction.
    """

    def __init__(
        self,
        addresses: np.ndarray | None = None,
        text_base: int = 0,
        text_size: int = 0,
        blocks: BlockTrace | None = None,
    ) -> None:
        if addresses is None and blocks is None:
            raise ValueError("an ExecutionTrace needs addresses or a BlockTrace")
        if addresses is not None and addresses.dtype != np.uint32:
            addresses = addresses.astype(np.uint32)
        self._addresses = addresses
        self.text_base = text_base
        self.text_size = text_size
        self.blocks = blocks

    # ------------------------------------------------------------------
    # Pickling (artifact cache stores traces inside ExecutionResults)
    # ------------------------------------------------------------------

    def __getstate__(self) -> dict:
        return {
            "addresses": self._addresses,
            "text_base": self.text_base,
            "text_size": self.text_size,
            "blocks": self.blocks,
        }

    def __setstate__(self, state: dict) -> None:
        self._addresses = state.get("addresses")
        self.text_base = state["text_base"]
        self.text_size = state["text_size"]
        self.blocks = state.get("blocks")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        backing = "blocks" if self._addresses is None else "flat"
        return (
            f"ExecutionTrace(len={len(self)}, text_base={self.text_base:#x}, "
            f"text_size={self.text_size}, backing={backing!r})"
        )

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    @property
    def addresses(self) -> np.ndarray:
        if self._addresses is None:
            self._addresses = self.blocks.materialize_addresses()
        return self._addresses

    def __len__(self) -> int:
        if self._addresses is None:
            return len(self.blocks)
        return len(self._addresses)

    @property
    def instruction_indices(self) -> np.ndarray:
        """Per-access static instruction index (word offset into text)."""
        return (self.addresses - np.uint32(self.text_base)) >> np.uint32(2)

    def line_addresses(self, line_size: int = 32) -> np.ndarray:
        """Cache-line numbers touched by each access, in order."""
        shift = line_size.bit_length() - 1
        if 1 << shift != line_size:
            raise ValueError(f"line size {line_size} is not a power of two")
        return self.addresses >> np.uint32(shift)

    def execution_counts(self, text_words: int | None = None) -> np.ndarray:
        """How many times each static instruction executed.

        Args:
            text_words: Length of the returned histogram; defaults to the
                number of words in the text segment.
        """
        if text_words is None:
            text_words = self.text_size // 4
        if self._addresses is None:
            return self.blocks.execution_counts(text_words)
        return np.bincount(self.instruction_indices, minlength=text_words)

    def touched_lines(self, line_size: int = 32) -> np.ndarray:
        """Sorted unique cache-line numbers the trace touches."""
        return np.unique(self.line_addresses(line_size))
