"""Dynamic instruction-address traces.

An :class:`ExecutionTrace` is the central artifact the cache simulators
consume — the equivalent of the pixie address traces the paper's
experiments were driven by.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class ExecutionTrace:
    """Dynamic instruction addresses from one program execution.

    Attributes:
        addresses: Instruction byte addresses in execution order
            (``uint32``), one entry per executed instruction.
        text_base: Load address of the program text segment.
        text_size: Text-segment size in bytes.
    """

    addresses: np.ndarray
    text_base: int
    text_size: int

    def __post_init__(self) -> None:
        if self.addresses.dtype != np.uint32:
            object.__setattr__(self, "addresses", self.addresses.astype(np.uint32))

    def __len__(self) -> int:
        return len(self.addresses)

    @property
    def instruction_indices(self) -> np.ndarray:
        """Per-access static instruction index (word offset into text)."""
        return (self.addresses - np.uint32(self.text_base)) >> np.uint32(2)

    def line_addresses(self, line_size: int = 32) -> np.ndarray:
        """Cache-line numbers touched by each access, in order."""
        shift = line_size.bit_length() - 1
        if 1 << shift != line_size:
            raise ValueError(f"line size {line_size} is not a power of two")
        return self.addresses >> np.uint32(shift)

    def execution_counts(self, text_words: int | None = None) -> np.ndarray:
        """How many times each static instruction executed.

        Args:
            text_words: Length of the returned histogram; defaults to the
                number of words in the text segment.
        """
        if text_words is None:
            text_words = self.text_size // 4
        return np.bincount(self.instruction_indices, minlength=text_words)

    def touched_lines(self, line_size: int = 32) -> np.ndarray:
        """Sorted unique cache-line numbers the trace touches."""
        return np.unique(self.line_addresses(line_size))
