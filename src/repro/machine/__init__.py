"""Functional MIPS-I machine substrate.

The paper generated instruction-address traces with ``pixie`` on a
DECstation 3100.  This package plays that role from scratch: it loads an
:class:`~repro.isa.assembler.AssembledProgram` into a 24-bit physical memory,
executes it instruction by instruction (with branch delay slots), and
records the dynamic instruction-address trace, data-access counts, and a
pixie-style pipeline-stall estimate.
"""

from repro.machine.executor import Machine, ExecutionResult, default_block_mode
from repro.machine.memory import Memory, MEMORY_BYTES
from repro.machine.profile import ProfileReport, profile
from repro.machine.stalls import StallModel, R2000_STALLS
from repro.machine.tracing import BlockTrace, ExecutionTrace

__all__ = [
    "BlockTrace",
    "ExecutionResult",
    "ExecutionTrace",
    "Machine",
    "Memory",
    "MEMORY_BYTES",
    "ProfileReport",
    "profile",
    "R2000_STALLS",
    "StallModel",
    "default_block_mode",
]
