"""The host-side code compression tool.

"This object code is then compressed on the host development system using
a code compression tool similar in principle to the Unix compress utility"
(paper Section 1).  :class:`ProgramCompressor` is that tool: it block-
compresses a text segment, builds the LAT, and lays both out in
instruction memory as a :class:`~repro.ccrp.image.CompressedImage`.
"""

from __future__ import annotations

from repro.compression.block import BYTE_ALIGNED, DEFAULT_LINE_SIZE, BlockCompressor
from repro.compression.huffman import HuffmanCode
from repro.ccrp.image import CompressedImage
from repro.lat.table import LineAddressTable


class ProgramCompressor:
    """Compresses programs for a decoder wired to a specific Huffman code.

    Args:
        code: The Huffman code (typically a preselected bounded code).
        line_size: Instruction-cache line size in bytes.
        alignment: Compressed-block alignment (1 = byte, 4 = word).
        charge_code_table: Charge 256 bytes of code listing against each
            image (true for per-program codes, false for preselected).
        integrity: Also emit the per-line CRC-8 table of
            :mod:`repro.faults.integrity`, stored (and charged) with the
            image so the refill path can verify every fetched block.
    """

    def __init__(
        self,
        code: HuffmanCode,
        line_size: int = DEFAULT_LINE_SIZE,
        alignment: int = BYTE_ALIGNED,
        charge_code_table: bool = False,
        integrity: bool = False,
    ) -> None:
        self.code = code
        self.block_compressor = BlockCompressor(code, line_size=line_size, alignment=alignment)
        self.line_size = line_size
        self.charge_code_table = charge_code_table
        self.integrity = integrity

    def compress(
        self,
        text: bytes,
        text_base: int = 0,
        lat_base: int = 0,
    ) -> CompressedImage:
        """Compress ``text`` and lay out LAT + blocks from ``lat_base``.

        Args:
            text: Original text-segment bytes.
            text_base: Original load address of the program (line numbers
                in traces are relative to this).
            lat_base: Where the image starts in instruction memory.
        """
        blocks = self.block_compressor.compress_program(text)
        # One packed 8-byte entry per (up to) eight lines sits first.
        lat_storage = ((len(blocks) + 7) // 8) * 8
        code_base = lat_base + lat_storage
        lat = LineAddressTable(blocks, code_base=code_base)
        crcs = None
        if self.integrity:
            from repro.faults.integrity import line_crcs

            crcs = line_crcs(blocks)
        return CompressedImage(
            code=self.code,
            blocks=tuple(blocks),
            lat=lat,
            text_base=text_base,
            lat_base=lat_base,
            code_base=code_base,
            line_size=self.line_size,
            original_size=len(text),
            charge_code_table=self.charge_code_table,
            line_crcs=crcs,
        )
