"""The CCRP refill engine: compressed images, CLB, decoder, refill timing.

This package assembles the compression substrate into the paper's actual
mechanism: a :class:`CompressedImage` laid out in instruction memory
(LAT followed by compressed blocks), the :class:`CLB` that caches LAT
entries, the :class:`DecoderModel` reproducing the 2-bytes-per-cycle
hard-wired Huffman decoder, the :class:`RefillEngine` that turns a cache
miss into a cycle count, and a functional
:class:`ExpandingInstructionCache` that really decompresses lines from the
serialised memory image (used to prove end-to-end transparency).
"""

from repro.ccrp.clb import CLB
from repro.ccrp.compressor import ProgramCompressor
from repro.ccrp.decoder import DecoderModel
from repro.ccrp.expanding_cache import ExpandingInstructionCache
from repro.ccrp.image import CompressedImage
from repro.ccrp.paging import CompressedPageStore, PagedMemorySimulator
from repro.ccrp.refill import RefillEngine

__all__ = [
    "CLB",
    "CompressedImage",
    "CompressedPageStore",
    "PagedMemorySimulator",
    "DecoderModel",
    "ExpandingInstructionCache",
    "ProgramCompressor",
    "RefillEngine",
]
