"""Compressed program images: what actually sits in instruction memory.

Layout (paper Figure 4, with the LAT "simply stored in the instruction
memory"):

::

    lat_base:   [ LAT entry 0 ][ LAT entry 1 ] ...
    code_base:  [ block 0 ][ block 1 ][ block 2 ] ...

The refill engine's LAT Base Register points at ``lat_base``; compressed
blocks follow the table immediately.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.compression.block import BlockArrays, CompressedBlock, build_block_arrays
from repro.compression.huffman import HuffmanCode
from repro.errors import LATError
from repro.lat.table import LineAddressTable


@dataclass(frozen=True)
class CompressedImage:
    """A program after CCRP compression, ready for instruction memory.

    Attributes:
        code: The Huffman code the refill decoder is wired for.
        blocks: Compressed blocks in original line order.
        lat: The Line Address Table over ``blocks``.
        text_base: Original (uncompressed) load address of the program.
        lat_base: Physical address of the LAT in instruction memory.
        code_base: Physical address of block 0.
        line_size: Cache-line size in bytes.
        original_size: Unpadded original text-segment size in bytes.
        charge_code_table: Whether stored-size accounting includes a
            256-byte code listing (per-program codes need it; a
            preselected code is hard-wired and free).
        line_crcs: Optional per-line CRC-8 table (one byte per block,
            computed over the *stored* bytes) for refill-time integrity
            checking; ``None`` means no integrity layer.  Charged to the
            stored size exactly like the LAT when present.
    """

    code: HuffmanCode
    blocks: tuple[CompressedBlock, ...]
    lat: LineAddressTable
    text_base: int
    lat_base: int
    code_base: int
    line_size: int
    original_size: int
    charge_code_table: bool = False
    line_crcs: bytes | None = None

    # ------------------------------------------------------------------
    # Size accounting
    # ------------------------------------------------------------------

    @property
    def padded_original_size(self) -> int:
        """Original size rounded up to a whole number of lines."""
        return len(self.blocks) * self.line_size

    @property
    def compressed_code_bytes(self) -> int:
        """Bytes of compressed blocks alone (no LAT, no code table)."""
        return sum(block.stored_size for block in self.blocks)

    @property
    def code_table_bytes(self) -> int:
        """Bytes charged for storing the Huffman code listing."""
        return self.code.table_storage_bytes if self.charge_code_table else 0

    @property
    def integrity_bytes(self) -> int:
        """Bytes of the per-line CRC table (0 without an integrity layer)."""
        return len(self.line_crcs) if self.line_crcs is not None else 0

    @property
    def total_stored_bytes(self) -> int:
        """Everything in instruction memory: blocks + LAT + code table
        + the per-line CRC table, when an integrity layer is present."""
        return (
            self.compressed_code_bytes
            + self.lat.storage_bytes
            + self.code_table_bytes
            + self.integrity_bytes
        )

    @property
    def compression_ratio(self) -> float:
        """Stored size (blocks + code table, no LAT) over original size.

        This is the Figure 5 metric; the LAT overhead is reported
        separately because the paper quotes it separately (3.125 %).
        """
        return (self.compressed_code_bytes + self.code_table_bytes) / self.original_size

    @property
    def total_ratio_with_lat(self) -> float:
        """Stored size including the LAT (and any CRC table), over original size."""
        return self.total_stored_bytes / self.original_size

    @property
    def integrity_overhead_ratio(self) -> float:
        """CRC-table bytes as a fraction of the padded original size.

        One CRC byte per 32-byte line is 3.125 % — the same overhead
        class as the LAT, and reported the same way.  Computed from the
        line count so the *would-be* overhead is quotable even on an
        image built without an integrity layer.
        """
        from repro.faults.integrity import INTEGRITY_BYTES_PER_LINE

        if not self.blocks:
            return 0.0
        return (len(self.blocks) * INTEGRITY_BYTES_PER_LINE) / self.padded_original_size

    @property
    def total_ratio_with_integrity(self) -> float:
        """Stored size with LAT *and* a per-line CRC table, over original.

        Accounts the integrity overhead even when ``line_crcs`` is absent,
        so experiments can quote "what protection would cost" uniformly.
        """
        if self.line_crcs is not None:
            return self.total_ratio_with_lat
        from repro.faults.integrity import INTEGRITY_BYTES_PER_LINE

        extra = len(self.blocks) * INTEGRITY_BYTES_PER_LINE
        return (self.total_stored_bytes + extra) / self.original_size

    # ------------------------------------------------------------------
    # Line bookkeeping
    # ------------------------------------------------------------------

    @property
    def line_count(self) -> int:
        return len(self.blocks)

    def line_index(self, line_number: int) -> int:
        """Translate an absolute line number to a block index.

        Raises :class:`~repro.errors.LATError` for lines outside the
        image — without the check, a line number below ``text_base``
        would go negative and Python indexing would silently hand back a
        block from the *end* of the program.
        """
        base_line = self.text_base // self.line_size
        index = line_number - base_line
        if not 0 <= index < len(self.blocks):
            raise LATError(
                f"line {line_number} outside the compressed image "
                f"(lines {base_line}..{base_line + len(self.blocks) - 1})"
            )
        return index

    def block_for_line(self, line_number: int) -> CompressedBlock:
        """The compressed block holding absolute line ``line_number``."""
        return self.blocks[self.line_index(line_number)]

    # ------------------------------------------------------------------
    # Memory image
    # ------------------------------------------------------------------

    def memory_image(self) -> bytes:
        """Serialise LAT + blocks exactly as laid out in memory.

        The returned bytes start at ``lat_base``; ``code_base`` equals
        ``lat_base + lat.storage_bytes``.  Memoised — the image is frozen,
        so every caller shares one serialisation.
        """
        cached = getattr(self, "_memory_image_cache", None)
        if cached is None:
            cached = self.lat.serialize() + b"".join(
                block.data for block in self.blocks
            )
            object.__setattr__(self, "_memory_image_cache", cached)
        return cached

    # ------------------------------------------------------------------
    # Vectorized views (cached; see repro.ccrp.decoder / stackdist)
    # ------------------------------------------------------------------

    def block_arrays(self) -> BlockArrays | None:
        """Columnar numpy view of the blocks for the refill kernels.

        ``None`` when the blocks are not uniform full lines (only
        possible for hand-built images); callers then fall back to the
        scalar per-block loops.
        """
        if not hasattr(self, "_block_arrays_cache"):
            object.__setattr__(
                self,
                "_block_arrays_cache",
                build_block_arrays(self.blocks, self.line_size),
            )
        return getattr(self, "_block_arrays_cache")

    def expanded_lines(self) -> tuple[bytes | None, ...]:
        """Every cache line of the program, decompressed in one batch.

        One ``decode_lines`` pass over all compressed blocks (bypass
        blocks are returned verbatim), memoised so every consumer of a
        pristine image — functional cache refills, fault-study surveys —
        shares a single decode.

        A block whose stored bytes no longer decode (an image rebuilt
        from corrupted storage) occupies its slot as ``None`` rather
        than failing the whole batch: a corrupt line K must not poison
        the refill of a healthy line J, and the error for line K itself
        must carry K's attribution — so consumers decode ``None`` slots
        through the scalar path, which raises per-line.
        """
        cached = getattr(self, "_expanded_lines_cache", None)
        if cached is None:
            blobs = [block.data for block in self.blocks if block.is_compressed]
            decoded = iter(self.code.decode_lines(blobs, self.line_size, errors="none"))
            cached = tuple(
                next(decoded) if block.is_compressed else block.data
                for block in self.blocks
            )
            object.__setattr__(self, "_expanded_lines_cache", cached)
        return cached

    def __getstate__(self) -> dict:
        """Drop memoised views when pickling image artifacts.

        Everything in a ``_*_cache`` attribute is derived and rebuilt
        lazily; serialising it would multiply the on-disk artifact size.
        """
        return {
            key: value
            for key, value in self.__dict__.items()
            if not key.endswith("_cache")
        }
