"""Cache refill timing for both machine models.

The :class:`RefillEngine` precomputes, for one compressed image and one
memory model, the refill cost of every static cache line — the CCRP side
uses the decoder model per line, the baseline side is a constant 8-word
burst.  Miss streams from the cache simulator then reduce to cycle totals
with one vectorised gather.
"""

from __future__ import annotations

import numpy as np

from repro.ccrp.decoder import DecoderModel
from repro.ccrp.image import CompressedImage
from repro.lat.entry import ENTRY_BYTES
from repro.memsys.models import MemoryModel, get_memory_model


class RefillEngine:
    """Per-line refill costs for a compressed image under one memory model.

    Args:
        image: The compressed program.
        memory: Memory model (instance or name).
        decoder: Decoder timing model.
    """

    def __init__(
        self,
        image: CompressedImage,
        memory: MemoryModel | str,
        decoder: DecoderModel | None = None,
    ) -> None:
        self.image = image
        self.memory = get_memory_model(memory)
        self.decoder = decoder or DecoderModel()
        self._ccrp_cycles = np.array(
            [self.decoder.refill_cycles(block, self.memory) for block in image.blocks],
            dtype=np.int64,
        )
        bus = self.memory.bus_bytes
        self._fetched_bytes = np.array(
            [bus * self.memory.beats_for_bytes(block.stored_size) for block in image.blocks],
            dtype=np.int64,
        )
        self.baseline_refill_cycles = self.memory.bytes_read_cycles(image.line_size)

    # ------------------------------------------------------------------
    # Per-line views
    # ------------------------------------------------------------------

    @property
    def ccrp_refill_cycles(self) -> np.ndarray:
        """Refill cycles of each static line on the CCRP (CLB hit case)."""
        return self._ccrp_cycles

    @property
    def fetched_bytes_per_line(self) -> np.ndarray:
        """Bus bytes fetched to refill each static line on the CCRP."""
        return self._fetched_bytes

    @property
    def lat_fetch_cycles(self) -> int:
        """Extra cycles a CLB miss adds: one 8-byte LAT-entry read."""
        return self.memory.bytes_read_cycles(ENTRY_BYTES)

    # ------------------------------------------------------------------
    # Miss-stream reductions
    # ------------------------------------------------------------------

    def ccrp_miss_cycles(self, miss_line_indices: np.ndarray) -> int:
        """Total CCRP refill cycles for a stream of missed line indices
        (CLB penalties excluded; add ``clb_misses * lat_fetch_cycles``)."""
        if len(miss_line_indices) == 0:
            return 0
        return int(self._ccrp_cycles[miss_line_indices].sum())

    def baseline_miss_cycles(self, miss_count: int) -> int:
        """Total baseline refill cycles for ``miss_count`` misses."""
        return miss_count * self.baseline_refill_cycles

    def ccrp_fetched_bytes(self, miss_line_indices: np.ndarray) -> int:
        """Bus bytes the CCRP fetched for these misses (blocks only)."""
        if len(miss_line_indices) == 0:
            return 0
        return int(self._fetched_bytes[miss_line_indices].sum())
