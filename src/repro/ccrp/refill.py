"""Cache refill timing for both machine models.

The :class:`RefillEngine` precomputes, for one compressed image and one
memory model, the refill cost of every static cache line — the CCRP side
uses the decoder model per line, the baseline side is a constant 8-word
burst.  Miss streams from the cache simulator then reduce to cycle totals
with one vectorised gather.
"""

from __future__ import annotations

import numpy as np

from repro.ccrp.decoder import DecoderModel
from repro.ccrp.image import CompressedImage
from repro.errors import LATError
from repro.lat.entry import ENTRY_BYTES
from repro.memsys.models import MemoryModel, get_memory_model, memsys_reference_mode


class RefillEngine:
    """Per-line refill costs for a compressed image under one memory model.

    Args:
        image: The compressed program.
        memory: Memory model (instance or name).
        decoder: Decoder timing model.
        vectorized: Build the cost tables with the array kernels
            (:meth:`DecoderModel.refill_cycles_table`) instead of the
            per-block reference loop.  ``None`` (the default) uses the
            kernels unless ``CCRP_MEMSYS_REFERENCE`` is set or the image's
            blocks are not uniform full lines.  Both paths are
            property-pinned equal; the tables they produce are identical.
    """

    def __init__(
        self,
        image: CompressedImage,
        memory: MemoryModel | str,
        decoder: DecoderModel | None = None,
        vectorized: bool | None = None,
    ) -> None:
        self.image = image
        self.memory = get_memory_model(memory)
        self.decoder = decoder or DecoderModel()
        if vectorized is None:
            vectorized = not memsys_reference_mode()
        arrays = image.block_arrays() if vectorized else None
        if arrays is not None:
            self._ccrp_cycles = self.decoder.refill_cycles_table(arrays, self.memory)
            bus = self.memory.bus_bytes
            self._fetched_bytes = -(-arrays.stored_sizes // bus) * bus
        else:
            self._ccrp_cycles = np.array(
                [self.decoder.refill_cycles(block, self.memory) for block in image.blocks],
                dtype=np.int64,
            )
            bus = self.memory.bus_bytes
            self._fetched_bytes = np.array(
                [bus * self.memory.beats_for_bytes(block.stored_size) for block in image.blocks],
                dtype=np.int64,
            )
        self.baseline_refill_cycles = self.memory.bytes_read_cycles(image.line_size)

    # ------------------------------------------------------------------
    # Per-line views
    # ------------------------------------------------------------------

    @property
    def ccrp_refill_cycles(self) -> np.ndarray:
        """Refill cycles of each static line on the CCRP (CLB hit case)."""
        return self._ccrp_cycles

    @property
    def fetched_bytes_per_line(self) -> np.ndarray:
        """Bus bytes fetched to refill each static line on the CCRP."""
        return self._fetched_bytes

    @property
    def lat_fetch_cycles(self) -> int:
        """Extra cycles a CLB miss adds: one 8-byte LAT-entry read."""
        return self.memory.bytes_read_cycles(ENTRY_BYTES)

    # ------------------------------------------------------------------
    # Miss-stream reductions
    # ------------------------------------------------------------------

    def _checked_indices(self, miss_line_indices) -> np.ndarray:
        """Validate a miss-index stream against the image's line count.

        Mirrors :meth:`~repro.ccrp.image.CompressedImage.line_index`:
        any index outside ``[0, line_count)`` raises
        :class:`~repro.errors.LATError` instead of wrapping around via
        numpy's negative indexing (the last line of the image,
        ``line_count - 1``, is of course valid).
        """
        indices = np.asarray(miss_line_indices, dtype=np.int64)
        if indices.ndim != 1:
            raise LATError(f"miss indices must be one-dimensional, got shape {indices.shape}")
        if len(indices) == 0:
            return indices
        low, high = int(indices.min()), int(indices.max())
        if low < 0 or high >= len(self._ccrp_cycles):
            bad = low if low < 0 else high
            raise LATError(
                f"line index {bad} outside image [0, {len(self._ccrp_cycles)})"
            )
        return indices

    def ccrp_line_cycles(self, miss_line_indices) -> np.ndarray:
        """Per-miss CCRP refill cycles (bounds-checked gather)."""
        indices = self._checked_indices(miss_line_indices)
        return self._ccrp_cycles[indices]

    def ccrp_miss_cycles(self, miss_line_indices) -> int:
        """Total CCRP refill cycles for a stream of missed line indices
        (CLB penalties excluded; add ``clb_misses * lat_fetch_cycles``).

        An empty stream costs zero; out-of-range indices raise
        :class:`~repro.errors.LATError`.
        """
        indices = self._checked_indices(miss_line_indices)
        if len(indices) == 0:
            return 0
        return int(self._ccrp_cycles[indices].sum())

    def baseline_miss_cycles(self, miss_count: int) -> int:
        """Total baseline refill cycles for ``miss_count`` misses."""
        if miss_count < 0:
            raise LATError(f"miss count cannot be negative, got {miss_count}")
        return miss_count * self.baseline_refill_cycles

    def ccrp_fetched_bytes(self, miss_line_indices) -> int:
        """Bus bytes the CCRP fetched for these misses (blocks only).

        Same contract as :meth:`ccrp_miss_cycles`: empty streams cost
        zero, out-of-range indices raise :class:`~repro.errors.LATError`.
        """
        indices = self._checked_indices(miss_line_indices)
        if len(indices) == 0:
            return 0
        return int(self._fetched_bytes[indices].sum())
