"""Compressed demand paging (paper Section 5, future work).

"The similarity of the CLB/LAT structure to the TLB/page table structure
indicates that there may be some benefit to implementing similar methods
for demand-paged virtual memory as well."

This module implements that proposal at simulation fidelity matching the
rest of the library: program pages are stored compressed in backing
memory (page table entries carry compressed base + length, like scaled-up
LAT entries), RAM holds a small set of decompressed page frames under
LRU, and a page fault costs the burst read of the *compressed* page plus
the decoder's fixed expansion rate.  The comparison against a machine
with uncompressed backing store shows the same bandwidth trade the cache
experiments show, one level down the hierarchy — and the storage saving
is the whole point.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.compression.huffman import HuffmanCode
from repro.memsys.models import MemoryModel, get_memory_model

#: Default page size: 1 KB suits small embedded RAM.
DEFAULT_PAGE_BYTES = 1024


@dataclass(frozen=True)
class CompressedPage:
    """One page in the compressed backing store."""

    index: int
    stored: bytes
    is_compressed: bool

    @property
    def stored_size(self) -> int:
        return len(self.stored)


class CompressedPageStore:
    """Backing store holding Huffman-compressed pages.

    Args:
        text: The program image to page.
        code: Huffman code shared with the page-expansion engine.
        page_bytes: Page size (power of two).
    """

    def __init__(
        self,
        text: bytes,
        code: HuffmanCode,
        page_bytes: int = DEFAULT_PAGE_BYTES,
    ) -> None:
        if page_bytes <= 0 or page_bytes & (page_bytes - 1):
            raise ConfigurationError(f"page size {page_bytes} is not a power of two")
        self.code = code
        self.page_bytes = page_bytes
        remainder = len(text) % page_bytes
        if remainder:
            text = text + bytes(page_bytes - remainder)
        self.original_size = len(text)
        self.pages: list[CompressedPage] = []
        for index in range(0, len(text), page_bytes):
            page = text[index : index + page_bytes]
            encoded, _ = code.encode(page)
            if len(encoded) >= page_bytes:
                self.pages.append(
                    CompressedPage(index // page_bytes, bytes(page), is_compressed=False)
                )
            else:
                self.pages.append(
                    CompressedPage(index // page_bytes, encoded, is_compressed=True)
                )

    @property
    def page_count(self) -> int:
        return len(self.pages)

    @property
    def stored_size(self) -> int:
        """Backing-store bytes (page-table overhead excluded, as for LAT)."""
        return sum(page.stored_size for page in self.pages)

    @property
    def compression_ratio(self) -> float:
        return self.stored_size / self.original_size

    def read_page(self, index: int) -> bytes:
        """Decompress one page — the fault handler's data path."""
        page = self.pages[index]
        if not page.is_compressed:
            return page.stored
        return self.code.decode(page.stored, self.page_bytes)


@dataclass(frozen=True)
class PagingResult:
    """Outcome of one paged simulation run."""

    references: int
    faults: int
    fault_cycles: int
    storage_bytes: int

    @property
    def fault_rate(self) -> float:
        return self.faults / self.references if self.references else 0.0


class PagedMemorySimulator:
    """LRU page-frame simulation over an address trace.

    Args:
        store: The compressed backing store (or ``None`` for the
            uncompressed baseline of the same geometry).
        frames: Number of RAM page frames.
        memory: Backing-memory timing model.
        decode_bytes_per_cycle: Page-expansion rate (the refill decoder,
            scaled up).
    """

    def __init__(
        self,
        store: CompressedPageStore,
        frames: int,
        memory: MemoryModel | str = "sc_dram",
        decode_bytes_per_cycle: int = 2,
    ) -> None:
        if frames < 1:
            raise ConfigurationError("need at least one page frame")
        self.store = store
        self.frames = frames
        self.memory = get_memory_model(memory)
        self.decode_bytes_per_cycle = decode_bytes_per_cycle

    # ------------------------------------------------------------------
    # Fault costs
    # ------------------------------------------------------------------

    def fault_cycles_for(self, page: CompressedPage) -> int:
        """Service time of one fault on the compressed machine."""
        words = -(-page.stored_size // 4)
        fetch = self.memory.burst_read_cycles(words)
        if not page.is_compressed:
            return fetch
        decode = self.memory.first_word_cycles + (
            self.store.page_bytes // self.decode_bytes_per_cycle
        )
        return max(fetch, decode)

    def baseline_fault_cycles(self) -> int:
        """Service time of one fault with uncompressed backing store."""
        return self.memory.burst_read_cycles(self.store.page_bytes // 4)

    # ------------------------------------------------------------------
    # Simulation
    # ------------------------------------------------------------------

    def simulate(self, addresses: np.ndarray, compressed: bool = True) -> PagingResult:
        """Run the page-reference stream of ``addresses`` through LRU
        frames; price faults for the compressed or baseline machine."""
        shift = self.store.page_bytes.bit_length() - 1
        pages = np.asarray(addresses, dtype=np.int64) >> shift
        if len(pages):
            keep = np.empty(len(pages), dtype=bool)
            keep[0] = True
            np.not_equal(pages[1:], pages[:-1], out=keep[1:])
            events = pages[keep]
        else:
            events = pages
        resident: OrderedDict[int, None] = OrderedDict()
        faults = 0
        fault_cycles = 0
        baseline_cost = self.baseline_fault_cycles()
        for page_index in events.tolist():
            if page_index in resident:
                resident.move_to_end(page_index)
                continue
            faults += 1
            if compressed:
                fault_cycles += self.fault_cycles_for(self.store.pages[page_index])
            else:
                fault_cycles += baseline_cost
            if len(resident) >= self.frames:
                resident.popitem(last=False)
            resident[page_index] = None
        storage = self.store.stored_size if compressed else self.store.original_size
        return PagingResult(
            references=len(addresses),
            faults=faults,
            fault_cycles=fault_cycles,
            storage_bytes=storage,
        )

    def compare(self, addresses: np.ndarray) -> tuple[PagingResult, PagingResult]:
        """(compressed, baseline) results over the same reference stream."""
        return self.simulate(addresses, compressed=True), self.simulate(
            addresses, compressed=False
        )
