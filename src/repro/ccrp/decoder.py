"""Refill-decoder timing model (paper Section 3.4).

The hard-wired Huffman decoder produces two decoded bytes per processor
cycle (one per clock edge) from a 16-bit decode buffer that refills from
the incoming memory words.  "The minimum time required to decode a 32-byte
cache line is therefore 16 processor cycles plus the time to read the
first word.  If the main memory is slow, the refill engine may have to
wait."

Two fidelity levels are provided:

* the **paper model** (default, ``detailed=False``) — exactly the formula
  above: a compressed refill completes at
  ``max(first_word + line_bytes/rate, fetch_end)``; decode fully overlaps
  the fetch burst.
* the **detailed model** (``detailed=True``) — replays the line's true
  per-byte code lengths against word-arrival times: output byte *j*
  completes half a cycle after both its predecessor and the memory word
  holding its last encoded bit.  On slow memories this exposes a small
  end-of-line stall (the final word's symbols still have to shift through
  the decoder) that the paper's closed form ignores; the ablation
  benchmark quantifies the difference.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.compression.block import BlockArrays, CompressedBlock
from repro.memsys.models import MemoryModel

#: Bus width in bytes (the paper's single 32-bit data bus).
WORD_BYTES = 4


@dataclass(frozen=True)
class DecoderModel:
    """Timing of the hard-wired Huffman refill decoder.

    Attributes:
        bytes_per_cycle: Decoded output bytes per processor cycle (2 in
            the paper: one byte per clock edge).  The decode-rate ablation
            sweeps 1, 2, and 4.
        detailed: Use the bit-exact stall model instead of the paper's
            closed form (see module docstring).
    """

    bytes_per_cycle: int = 2
    detailed: bool = False

    def __post_init__(self) -> None:
        if self.bytes_per_cycle < 1:
            raise ConfigurationError("decoder must produce at least 1 byte/cycle")

    def refill_cycles(self, block: CompressedBlock, memory: MemoryModel) -> int:
        """Cycles from refill start until the full line is expanded.

        Bypass blocks skip the decoder: their refill is a plain 8-word
        burst read.  Compressed blocks interleave word arrivals with the
        fixed decode rate.
        """
        if not block.is_compressed:
            return memory.bytes_read_cycles(len(block.data))
        if self.detailed:
            return self._detailed_refill_cycles(block, memory)
        line_bytes = len(block.symbol_bits)
        decode_done = memory.first_word_cycles + math.ceil(
            line_bytes / self.bytes_per_cycle
        )
        return max(decode_done, memory.bytes_read_cycles(len(block.data)))

    def _detailed_refill_cycles(self, block: CompressedBlock, memory: MemoryModel) -> int:
        """Exact replay of the decode/arrival interleave, in integer time.

        Working in units of one decode step (``1/rate`` cycles) keeps the
        recurrence ``finished = max(finished, available) + step`` in
        integers, so long or degenerate lines cannot drift the way the
        old float accumulation (guarded by a ``1e-9`` epsilon) could.
        """
        arrivals = memory.byte_arrival_times(len(block.data))
        rate = self.bytes_per_cycle
        finished_steps = 0  # time in 1/rate-cycle units
        bits_consumed = 0
        for symbol_bits in block.symbol_bits:
            bits_consumed += symbol_bits
            input_byte = -(-bits_consumed // 8)  # ceil: last input byte needed
            available = arrivals[input_byte - 1]
            finished_steps = max(finished_steps, available * rate) + 1
        decode_done = -(-finished_steps // rate)
        # DRAM precharge after the fetch burst can outlast the tail of the
        # decode; the refill engine owns the bus either way.
        burst_done = arrivals[-1] + memory.post_burst_cycles
        return max(decode_done, burst_done)

    def refill_cycles_table(self, arrays: BlockArrays, memory: MemoryModel) -> np.ndarray:
        """Vectorized :meth:`refill_cycles` over a whole block sequence.

        One pass of numpy array arithmetic replaces the per-block loop
        (and, for the detailed model, the per-symbol inner loop): byte
        arrivals come straight from the cumulative symbol-bit matrix, and
        the detailed max-plus recurrence collapses to its closed form

        ``finished_m = max_j(available_j * rate - j) + m + 1``  (in
        ``1/rate``-cycle units, ``j`` 1-based)

        because each step adds exactly one unit after clamping to the
        arrival time.  Property tests pin every entry to the scalar
        :meth:`refill_cycles` across memory models and fidelities.
        """
        sizes = arrays.stored_sizes
        first = memory.first_word_cycles
        nxt = memory.next_word_cycles
        bus = memory.bus_bytes
        # bytes_read_cycles(size) for every block in one expression.
        fetch_done = first + (-(-sizes // bus) - 1) * nxt + memory.post_burst_cycles
        cycles = fetch_done.copy()
        compressed = arrays.compressed
        if not compressed.any():
            return cycles
        line_bytes = arrays.symbol_bits.shape[1]
        rate = self.bytes_per_cycle
        if not self.detailed:
            decode_done = first + -(-line_bytes // rate)
            cycles[compressed] = np.maximum(decode_done, fetch_done[compressed])
            return cycles
        bits_consumed = np.cumsum(arrays.symbol_bits, axis=1)
        input_byte = (bits_consumed + 7) >> 3
        available = first + ((input_byte - 1) // bus) * nxt
        slack = available * rate - np.arange(1, line_bytes + 1, dtype=np.int64)
        finished_steps = slack.max(axis=1) + line_bytes + 1
        decode_done = -(-finished_steps // rate)
        cycles[compressed] = np.maximum(decode_done, fetch_done[compressed])
        return cycles

    def minimum_cycles(self, line_size: int, memory: MemoryModel) -> int:
        """The paper's floor: line_size / rate + first word access."""
        return line_size // self.bytes_per_cycle + memory.first_word_cycles
