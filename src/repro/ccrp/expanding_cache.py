"""A *functional* code-expanding instruction cache.

The performance experiments use analytic refill timing; this class instead
performs the real work, bit for bit: it keeps a direct-mapped cache of
decompressed lines and, on a miss, walks the serialised memory image the
way the hardware would — read the packed LAT entry (through the CLB), sum
the length records to find the block, fetch the stored bytes, and run the
Huffman decoder.  The end-to-end tests execute programs through it and
require byte-identical instruction fetches, proving the paper's claim that
compression is transparent to the processor.

When the image carries a per-line CRC table (see
:mod:`repro.faults.integrity`), the refill path verifies every fetched
block before decoding it, under a configurable policy:

* ``strict`` — a mismatch raises :class:`~repro.errors.IntegrityError`;
* ``detect`` — mismatches are recorded in :attr:`integrity_events` (and
  the ``integrity.detected`` metric) and the corrupt line is handed on;
* ``off`` — no checking (the default, and the only option for images
  built without an integrity layer).

Fault studies pass a corrupted copy of the stored bytes via
``memory_image`` — the equivalent of aging EPROM cells under an
unchanged program.
"""

from __future__ import annotations

from repro.errors import CompressionError, ConfigurationError, IntegrityError
from repro.ccrp.clb import CLB
from repro.ccrp.image import CompressedImage
from repro.core.metrics import METRICS
from repro.faults.integrity import crc8, validate_integrity_policy
from repro.lat.entry import ENTRY_BYTES, LINES_PER_ENTRY, LATEntry
from repro.memsys.models import memsys_reference_mode


class ExpandingInstructionCache:
    """Direct-mapped I-cache whose refill path decompresses for real.

    Args:
        image: The compressed program image.
        cache_bytes: Total cache capacity (256-4096 in the paper).
        clb_entries: CLB capacity in LAT entries.
        integrity: Refill-time integrity policy (``strict``/``detect``/
            ``off``).  Anything but ``off`` requires ``image.line_crcs``.
        memory_image: What is actually burned into instruction memory;
            defaults to ``image.memory_image()``.  Fault experiments pass
            a corrupted copy here.
    """

    def __init__(
        self,
        image: CompressedImage,
        cache_bytes: int = 1024,
        clb_entries: int = 16,
        integrity: str = "off",
        memory_image: bytes | None = None,
    ) -> None:
        line_size = image.line_size
        if cache_bytes % line_size or cache_bytes < line_size:
            raise ConfigurationError(
                f"cache size {cache_bytes} is not a multiple of the {line_size}-byte line"
            )
        validate_integrity_policy(integrity)
        if integrity != "off" and image.line_crcs is None:
            raise ConfigurationError(
                f"integrity policy {integrity!r} needs an image built with "
                "per-line CRCs (ProgramCompressor(integrity=True))"
            )
        self.image = image
        self.line_size = line_size
        self.num_sets = cache_bytes // line_size
        self.clb = CLB(entries=clb_entries)
        self.integrity = integrity
        # Size accounting gives the layout length without serialising, so
        # the image is serialised at most once (memoised) and not at all
        # when an override is supplied.
        expected_bytes = image.lat.storage_bytes + image.compressed_code_bytes
        self._memory = (
            memory_image if memory_image is not None else image.memory_image()
        )  # starts at lat_base
        if len(self._memory) != expected_bytes:
            raise ConfigurationError(
                "memory_image override must match the image layout "
                f"({expected_bytes} bytes, got {len(self._memory)})"
            )
        # A pristine store can serve refills from the image's one batch
        # decode; an overridden (possibly corrupted) store must decode
        # whatever bytes the walk actually fetched.
        self._use_batch = memory_image is None and not memsys_reference_mode()
        self._tags: list[int | None] = [None] * self.num_sets
        self._lines: list[bytes] = [b""] * self.num_sets
        self.hits = 0
        self.misses = 0
        #: ``(line_number, stored_crc, fetched_crc)`` per detected mismatch.
        self.integrity_events: list[tuple[int, int, int]] = []

    # ------------------------------------------------------------------
    # Fetch path
    # ------------------------------------------------------------------

    def fetch_word(self, address: int) -> int:
        """Fetch the instruction word at ``address`` through the cache."""
        if address % 4:
            raise ConfigurationError(f"instruction fetch must be word aligned: {address:#x}")
        line = self.read_line(address)
        offset = address % self.line_size
        return int.from_bytes(line[offset : offset + 4], "big")

    def read_line(self, address: int) -> bytes:
        """Return the (decompressed) cache line containing ``address``."""
        line_number = address // self.line_size
        set_index = line_number % self.num_sets
        if self._tags[set_index] == line_number:
            self.hits += 1
            return self._lines[set_index]
        self.misses += 1
        line = self._refill(line_number)
        self._tags[set_index] = line_number
        self._lines[set_index] = line
        return line

    # ------------------------------------------------------------------
    # The hardware refill walk
    # ------------------------------------------------------------------

    def _refill(self, line_number: int) -> bytes:
        image = self.image
        # line_index raises LATError for lines outside the image.
        block_index = image.line_index(line_number)

        lat_index = block_index // LINES_PER_ENTRY
        self.clb.access(lat_index)  # timing-only; the entry data is the same

        # Read the packed LAT entry from the memory image (LAT base register
        # + shifted index), exactly as the CLB refill hardware would.
        entry_offset = lat_index * ENTRY_BYTES
        entry = LATEntry.decode(self._memory[entry_offset : entry_offset + ENTRY_BYTES])

        slot = block_index % LINES_PER_ENTRY
        block_address = entry.block_address(slot)
        stored_size = entry.block_size(slot)
        start = block_address - image.lat_base
        stored = bytes(self._memory[start : start + stored_size])

        self._verify(block_index, line_number, stored)

        if not entry.is_compressed(slot):
            return stored
        # The batch-decoded line is only valid if the walk fetched exactly
        # the block's stored bytes — the comparison keeps the LAT walk
        # honest, and anything else (corruption, walk bugs) decodes the
        # fetched bytes scalar, exactly as the hardware would.
        if self._use_batch and stored == image.blocks[block_index].data:
            line = image.expanded_lines()[block_index]
            # A None slot is a blob the batch decode could not expand
            # (image built from corrupted storage).  Fall through to the
            # scalar decoder so the failure is attributed to *this*
            # line, instead of the batch poisoning every refill.
            if line is not None:
                return line
        try:
            return image.code.decode_fast(stored, self.line_size)
        except CompressionError as error:
            raise CompressionError(f"line {line_number}: {error}") from error

    def _verify(self, block_index: int, line_number: int, stored: bytes) -> None:
        """Check the fetched block against its per-line CRC.

        Also catches LAT corruption indirectly: a corrupt entry makes the
        walk fetch the wrong byte range, which then misses this CRC.
        """
        if self.integrity == "off":
            return
        expected = self.image.line_crcs[block_index]
        actual = crc8(stored)
        if actual == expected:
            return
        METRICS.count("integrity.detected")
        self.integrity_events.append((line_number, expected, actual))
        if self.integrity == "strict":
            raise IntegrityError(
                f"line {line_number}: stored block fails CRC "
                f"(expected {expected:#04x}, fetched {actual:#04x})",
                line_number=line_number,
            )

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------

    @property
    def miss_rate(self) -> float:
        total = self.hits + self.misses
        return self.misses / total if total else 0.0
