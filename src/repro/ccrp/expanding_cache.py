"""A *functional* code-expanding instruction cache.

The performance experiments use analytic refill timing; this class instead
performs the real work, bit for bit: it keeps a direct-mapped cache of
decompressed lines and, on a miss, walks the serialised memory image the
way the hardware would — read the packed LAT entry (through the CLB), sum
the length records to find the block, fetch the stored bytes, and run the
Huffman decoder.  The end-to-end tests execute programs through it and
require byte-identical instruction fetches, proving the paper's claim that
compression is transparent to the processor.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.ccrp.clb import CLB
from repro.ccrp.image import CompressedImage
from repro.lat.entry import ENTRY_BYTES, LINES_PER_ENTRY, LATEntry


class ExpandingInstructionCache:
    """Direct-mapped I-cache whose refill path decompresses for real.

    Args:
        image: The compressed program image.
        cache_bytes: Total cache capacity (256-4096 in the paper).
        clb_entries: CLB capacity in LAT entries.
    """

    def __init__(
        self,
        image: CompressedImage,
        cache_bytes: int = 1024,
        clb_entries: int = 16,
    ) -> None:
        line_size = image.line_size
        if cache_bytes % line_size or cache_bytes < line_size:
            raise ConfigurationError(
                f"cache size {cache_bytes} is not a multiple of the {line_size}-byte line"
            )
        self.image = image
        self.line_size = line_size
        self.num_sets = cache_bytes // line_size
        self.clb = CLB(entries=clb_entries)
        self._memory = image.memory_image()  # starts at lat_base
        self._tags: list[int | None] = [None] * self.num_sets
        self._lines: list[bytes] = [b""] * self.num_sets
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------
    # Fetch path
    # ------------------------------------------------------------------

    def fetch_word(self, address: int) -> int:
        """Fetch the instruction word at ``address`` through the cache."""
        if address % 4:
            raise ConfigurationError(f"instruction fetch must be word aligned: {address:#x}")
        line = self.read_line(address)
        offset = address % self.line_size
        return int.from_bytes(line[offset : offset + 4], "big")

    def read_line(self, address: int) -> bytes:
        """Return the (decompressed) cache line containing ``address``."""
        line_number = address // self.line_size
        set_index = line_number % self.num_sets
        if self._tags[set_index] == line_number:
            self.hits += 1
            return self._lines[set_index]
        self.misses += 1
        line = self._refill(line_number)
        self._tags[set_index] = line_number
        self._lines[set_index] = line
        return line

    # ------------------------------------------------------------------
    # The hardware refill walk
    # ------------------------------------------------------------------

    def _refill(self, line_number: int) -> bytes:
        image = self.image
        # line_index raises LATError for lines outside the image.
        block_index = image.line_index(line_number)

        lat_index = block_index // LINES_PER_ENTRY
        self.clb.access(lat_index)  # timing-only; the entry data is the same

        # Read the packed LAT entry from the memory image (LAT base register
        # + shifted index), exactly as the CLB refill hardware would.
        entry_offset = lat_index * ENTRY_BYTES
        entry = LATEntry.decode(self._memory[entry_offset : entry_offset + ENTRY_BYTES])

        slot = block_index % LINES_PER_ENTRY
        block_address = entry.block_address(slot)
        stored_size = entry.block_size(slot)
        start = block_address - image.lat_base
        stored = bytes(self._memory[start : start + stored_size])

        if not entry.is_compressed(slot):
            return stored
        return image.code.decode_fast(stored, self.line_size)

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------

    @property
    def miss_rate(self) -> float:
        total = self.hits + self.misses
        return self.misses / total if total else 0.0
