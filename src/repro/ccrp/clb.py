"""Cache Line Address Lookaside Buffer (CLB).

A small fully associative cache of LAT entries (paper Section 3.3),
analogous to a TLB over a page table.  The CLB is probed on every refill;
a hit costs nothing extra (the lookup overlaps the cache probe), a miss
adds one LAT-entry read (two words) to the refill time.

The paper uses LRU replacement; FIFO and a deterministic pseudo-random
policy are also provided so the replacement choice can be ablated (fully
associative LRU is the most expensive policy to build in hardware, so it
is worth knowing what it buys).

Replacement state is updated when the refill engine actually consults an
entry, i.e. on instruction-cache misses — the paper's CLB contents are
only ever *used* during refills.
"""

from __future__ import annotations

import random
from collections import OrderedDict
from collections.abc import Iterable
from itertools import islice

from repro.errors import ConfigurationError

#: The paper's experiments use 4, 8, and 16 entries.
DEFAULT_CLB_ENTRIES = 16

#: Supported replacement policies.
POLICIES = ("lru", "fifo", "random")


class CLB:
    """Fully associative buffer of LAT entries.

    Args:
        entries: Capacity in LAT entries (4-16 in the paper).
        policy: ``"lru"`` (the paper's choice), ``"fifo"``, or
            ``"random"`` (deterministic, seeded).

    Example::

        clb = CLB(entries=16)
        hit = clb.access(lat_index)
    """

    def __init__(self, entries: int = DEFAULT_CLB_ENTRIES, policy: str = "lru") -> None:
        if entries < 1:
            raise ConfigurationError(f"CLB needs at least one entry, got {entries}")
        if policy not in POLICIES:
            raise ConfigurationError(f"unknown CLB policy {policy!r}; choose from {POLICIES}")
        self.entries = entries
        self.policy = policy
        self._lru: OrderedDict[int, None] = OrderedDict()
        self._rng = random.Random(0xC1B)  # deterministic "random" policy
        self.hits = 0
        self.misses = 0

    def access(self, lat_index: int) -> bool:
        """Probe for ``lat_index``; insert on miss.  Returns hit/miss."""
        lru = self._lru
        if lat_index in lru:
            if self.policy == "lru":
                lru.move_to_end(lat_index)
            self.hits += 1
            return True
        self.misses += 1
        if len(lru) >= self.entries:
            if self.policy == "random":
                # Same RNG consumption as random.choice(list(lru)) — choice
                # is seq[_randbelow(len)] — but walks to the victim instead
                # of materialising the whole buffer per miss.
                victim = next(islice(iter(lru), self._rng.randrange(len(lru)), None))
                del lru[victim]
            else:  # lru and fifo both evict the oldest ordering entry
                lru.popitem(last=False)
        lru[lat_index] = None
        return False

    def simulate(self, lat_indices: Iterable[int]) -> int:
        """Run a whole sequence of probes; returns the miss count added.

        Accepts any iterable of LAT indices, numpy arrays included.  This
        stateful walk is the golden reference for the vectorized LRU
        miss curves in :mod:`repro.ccrp.stackdist` and the only simulator
        for the ``fifo``/``random`` ablation policies.
        """
        before = self.misses
        for lat_index in lat_indices:
            self.access(lat_index)
        return self.misses - before

    def reset(self) -> None:
        """Empty the buffer and clear statistics."""
        self._lru.clear()
        self.hits = 0
        self.misses = 0

    @property
    def occupancy(self) -> int:
        """Number of entries currently held."""
        return len(self._lru)

    @property
    def miss_rate(self) -> float:
        """Fraction of probes that missed (0 if never probed)."""
        total = self.hits + self.misses
        return self.misses / total if total else 0.0
