"""LRU stack-distance analysis of CLB probe streams.

The CLB is a small fully associative LRU buffer, so its behaviour on a
probe stream is completely described by Mattson's *stack distances*: a
probe hits a ``C``-entry CLB exactly when the number of distinct LAT
indices touched since the previous probe of the same index (inclusive)
is at most ``C``.  Computing the distance of every probe therefore
yields the miss count of **every** CLB capacity in one pass — the
stateful :class:`~repro.ccrp.clb.CLB` has to re-walk the stream per
capacity.

The classic online algorithms (linked-list stack, Bennett–Kruskal
counters, Fenwick trees) are all per-probe interpreter loops.  This
module instead computes distances offline with numpy:

1. consecutive duplicate probes are collapsed (distance 1 by
   definition — instruction miss streams are bursty, so this shrinks
   the stream several-fold);
2. each probe's *previous occurrence* index comes from one stable
   argsort;
3. the distance reduces to a "count left elements ≤ mine" problem over
   the previous-occurrence array (see :func:`stack_distances` for the
   derivation).  With few distinct probe values — the overwhelmingly
   common case, since a program has one LAT index per eight cache lines
   — a dense O(n·k) last-occurrence matrix answers it directly;
   otherwise bottom-up merge counting does, where every level is a
   single batched :func:`np.searchsorted` over per-run key ranges made
   disjoint by block offsets — O(n log² n), entirely in C.

Property tests pin the result to the stateful LRU reference on random
streams; the harness-smoke CI job additionally asserts Tables 9–10 are
byte-identical under both paths.
"""

from __future__ import annotations

import numpy as np

__all__ = ["stack_distances", "lru_miss_curve", "lru_miss_count"]


def _previous_occurrence(events: np.ndarray) -> np.ndarray:
    """Index of the previous occurrence of each element (-1 if first).

    One stable argsort groups equal values in position order, so each
    element's predecessor within its group is its previous occurrence.
    """
    n = events.size
    order = np.argsort(events, kind="stable")
    grouped = events[order]
    prev_sorted = np.full(n, -1, dtype=np.int64)
    same = grouped[1:] == grouped[:-1]
    prev_sorted[1:][same] = order[:-1][same]
    prev = np.empty(n, dtype=np.int64)
    prev[order] = prev_sorted
    return prev


def _count_left_le(keys: np.ndarray) -> np.ndarray:
    """``counts[i] = #{j < i : keys[j] <= keys[i]}`` without a Python loop.

    Bottom-up merge counting: at level ``w`` the array is viewed as
    blocks of ``2w`` elements; every element in a block's right half
    counts, via one binary search, how many of the block's (sorted) left
    half are ≤ it.  Each (j, i) pair is counted exactly once — at the
    level where j and i first land in different halves of one block.

    All blocks of a level are searched with a *single*
    ``np.searchsorted`` call by shifting every block's keys into a
    disjoint range (``block_id * span``), so the per-level work is pure
    vectorised C.
    """
    n = keys.size
    counts = np.zeros(n, dtype=np.int64)
    if n < 2:
        return counts
    shifted = (keys - keys.min()).astype(np.int64)
    sentinel = int(shifted.max()) + 1  # pads sort last and match no query
    span = sentinel + 1
    width = 1
    while width < n:
        block = 2 * width
        nblocks = -(-n // block)
        padded = np.full(nblocks * block, sentinel, dtype=np.int64)
        padded[:n] = shifted
        chunks = padded.reshape(nblocks, block)
        block_ids = np.arange(nblocks, dtype=np.int64)
        left_sorted = np.sort(chunks[:, :width], axis=1)
        flat = (left_sorted + block_ids[:, None] * span).ravel()
        queries = (chunks[:, width:] + block_ids[:, None] * span).ravel()
        ranks = np.searchsorted(flat, queries, side="right").reshape(nblocks, width)
        within = ranks - block_ids[:, None] * width
        positions = block_ids[:, None] * block + width + np.arange(width)
        valid = positions < n
        counts[positions[valid]] += within[valid]
        width = block
    return counts


#: Largest distinct-value count handled by the dense O(n·k) path.
_DENSE_ALPHABET_LIMIT = 128

#: Cap on the (k × chunk) working-set cells of the dense path, bounding
#: its memory to a few dozen MiB regardless of stream length.
_DENSE_CHUNK_CELLS = 4_000_000


def _dense_relabel(events: np.ndarray) -> tuple[int | None, np.ndarray | None]:
    """Relabel events to ``0..k-1`` if at most ``_DENSE_ALPHABET_LIMIT``
    values occur, else ``(None, None)``.

    CLB probe streams are LAT indices — small non-negative integers — so
    a flat presence table finds the alphabet in O(n + range) without the
    sort ``np.unique`` would pay; arbitrary values fall back to
    ``np.unique`` (whose sort then classifies them just as well).
    """
    low = int(events.min())
    high = int(events.max())
    span = high - low + 1
    if span <= max(4 * events.size, 1 << 16):
        present = np.zeros(span, dtype=bool)
        present[events - low] = True
        unique = np.flatnonzero(present)
        if unique.size > _DENSE_ALPHABET_LIMIT:
            return None, None
        mapping = np.zeros(span, dtype=np.int64)
        mapping[unique] = np.arange(unique.size, dtype=np.int64)
        return unique.size, mapping[events - low]
    unique, inverse = np.unique(events, return_inverse=True)
    if unique.size > _DENSE_ALPHABET_LIMIT:
        return None, None
    return unique.size, inverse


def _distances_dense_alphabet(inverse: np.ndarray, alphabet: int) -> np.ndarray:
    """Stack distances when the events use few distinct values.

    The distance of a probe at ``i`` with previous occurrence ``p`` is
    the number of values whose *last* occurrence before ``i`` falls in
    ``[p, i)`` — the probe's own value qualifies via ``p`` itself, and
    ``p`` is just that row of the same matrix.  A ``(k, n)`` matrix of
    per-value last-occurrence positions is one scatter plus one
    ``maximum.accumulate``; processing in column chunks (carrying each
    value's running maximum across the seam) bounds the working set.
    """
    n = inverse.size
    prev = np.empty(n, dtype=np.int64)
    distances = np.empty(n, dtype=np.int64)
    carry = np.full(alphabet, -1, dtype=np.int64)
    chunk = max(1, _DENSE_CHUNK_CELLS // alphabet)
    for start in range(0, n, chunk):
        stop = min(start + chunk, n)
        count = stop - start
        local = np.arange(count, dtype=np.int64)
        inv = inverse[start:stop]
        marks = np.full((alphabet, count), -1, dtype=np.int64)
        marks[inv, local] = local + start
        np.maximum.accumulate(marks, axis=1, out=marks)
        if start:
            np.maximum(marks, carry[:, None], out=marks)
        # Column i of the strictly-before matrix is column i-1 of
        # ``marks`` (the carry for i == 0) — read it shifted instead of
        # materialising a copy.
        first_prev = carry[inv[0]]
        prev[start] = first_prev
        distances[start] = (carry >= first_prev).sum()
        if count > 1:
            rest_prev = marks[inv[1:], local[:-1]]
            prev[start + 1 : stop] = rest_prev
            distances[start + 1 : stop] = (marks[:, :-1] >= rest_prev).sum(axis=0)
        carry = marks[:, -1].copy()
    distances[prev < 0] = 0
    return distances


#: Below this event count a plain Python stack walk beats any array
#: pipeline's fixed overhead (the grid's warm workloads have streams of
#: a dozen probes).
_SCALAR_LIMIT = 32


def _distances_scalar(events: np.ndarray) -> np.ndarray:
    """Reference stack walk for streams too short to vectorise."""
    stack: list[int] = []
    out = np.empty(events.size, dtype=np.int64)
    for index, value in enumerate(events.tolist()):
        try:
            depth = stack.index(value)
        except ValueError:
            out[index] = 0
        else:
            out[index] = depth + 1
            del stack[depth]
        stack.insert(0, value)
    return out


def _event_stack_distances(events: np.ndarray) -> np.ndarray:
    """Distances of a run-collapsed event stream (the shared core)."""
    if events.size <= _SCALAR_LIMIT:
        return _distances_scalar(events)
    alphabet, inverse = _dense_relabel(events)
    if alphabet is not None:
        return _distances_dense_alphabet(inverse, alphabet)
    prev = _previous_occurrence(events)
    distances = _count_left_le(prev) - prev
    distances[prev < 0] = 0
    return distances


def stack_distances(probes: np.ndarray) -> np.ndarray:
    """LRU stack distance of every probe (0 = first touch, i.e. cold).

    A probe's distance is the number of distinct values seen since its
    previous occurrence, inclusive; a probe hits an LRU cache of
    capacity ``C`` iff ``1 <= distance <= C``.

    Derivation of the vectorised form: with ``p = prev[i]`` the distance
    is ``1 +`` the number of distinct values strictly inside ``(p, i)``,
    and an index ``j`` in that window contributes iff it is the *first*
    occurrence of its value inside the window, i.e. ``prev[j] <= p``.
    Every ``j <= p`` trivially satisfies ``prev[j] < j <= p``, so::

        distance[i] = #{j < i : prev[j] <= prev[i]} - prev[i]

    which is one :func:`_count_left_le` over the previous-occurrence
    array.
    """
    probes = np.asarray(probes, dtype=np.int64)
    if probes.ndim != 1:
        raise ValueError(f"probe stream must be one-dimensional, got shape {probes.shape}")
    n = probes.size
    if n == 0:
        return np.zeros(0, dtype=np.int64)
    # Collapse runs: a probe equal to its predecessor sits on top of the
    # LRU stack (distance 1) whatever the capacity.
    keep = np.empty(n, dtype=bool)
    keep[0] = True
    np.not_equal(probes[1:], probes[:-1], out=keep[1:])
    events = probes[keep]
    out = np.ones(n, dtype=np.int64)
    out[keep] = _event_stack_distances(events)
    return out


def lru_miss_curve(probes: np.ndarray) -> np.ndarray:
    """Miss counts of *every* LRU capacity over one probe stream.

    Returns an array ``curve`` where ``curve[c]`` is the number of
    misses a ``c``-entry fully associative LRU buffer takes on
    ``probes``.  ``curve[0]`` is the probe count (no entries, everything
    misses); the last index is the largest finite stack distance, beyond
    which the miss count stays at the cold-miss floor ``curve[-1]`` —
    callers clamp larger capacities to the final entry.
    """
    probes = np.asarray(probes, dtype=np.int64)
    n = probes.size
    if n == 0:
        return np.zeros(1, dtype=np.int64)
    # Same collapse as :func:`stack_distances`, but collapsed probes all
    # land in the distance-1 bin, so only the event distances are
    # histogrammed and the collapsed count is added to that bin.
    keep = np.empty(n, dtype=bool)
    keep[0] = True
    np.not_equal(probes[1:], probes[:-1], out=keep[1:])
    events = probes[keep]
    distances = _event_stack_distances(events)
    collapsed = n - events.size
    finite = distances[distances > 0]
    max_distance = int(finite.max()) if finite.size else 0
    if collapsed and max_distance == 0:
        max_distance = 1
    hist = np.bincount(finite, minlength=max_distance + 1)
    if collapsed:
        hist[1] += collapsed
    return n - np.cumsum(hist)


def lru_miss_count(curve: np.ndarray, capacity: int) -> int:
    """Miss count for one capacity out of a :func:`lru_miss_curve`."""
    if capacity < 0:
        raise ValueError(f"capacity cannot be negative, got {capacity}")
    return int(curve[min(capacity, curve.size - 1)])
