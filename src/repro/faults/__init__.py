"""Fault injection, integrity verification, and blast-radius checking.

The robustness companion to the performance models: deterministic
storage-fault injection (:mod:`repro.faults.injector`), a per-line CRC
integrity layer with strict/detect/off policies
(:mod:`repro.faults.integrity`), and a differential golden-model checker
that measures how far one defect spreads under each codec
(:mod:`repro.faults.checker`).
"""

from repro.faults.checker import (
    BlastReport,
    blast_baseline,
    blast_block_codec,
    blast_lzw,
    diff_lines,
    pad_to_lines,
    refill_survey,
)
from repro.faults.injector import (
    DEFAULT_BURST_BYTES,
    FAULT_MODELS,
    FAULT_TARGETS,
    FaultInjector,
    FaultRecord,
    validate_fault_model,
)
from repro.faults.integrity import (
    INTEGRITY_BYTES_PER_LINE,
    INTEGRITY_POLICIES,
    add_integrity,
    crc8,
    line_crcs,
    validate_integrity_policy,
)

__all__ = [
    "BlastReport",
    "DEFAULT_BURST_BYTES",
    "FAULT_MODELS",
    "FAULT_TARGETS",
    "FaultInjector",
    "FaultRecord",
    "INTEGRITY_BYTES_PER_LINE",
    "INTEGRITY_POLICIES",
    "add_integrity",
    "blast_baseline",
    "blast_block_codec",
    "blast_lzw",
    "crc8",
    "diff_lines",
    "line_crcs",
    "pad_to_lines",
    "refill_survey",
    "validate_fault_model",
    "validate_integrity_policy",
]
