"""Deterministic, seed-driven fault injection into stored program bytes.

Embedded compressed-code stores live in exactly the memories where bit
errors happen — aging EPROM cells, marginal bus timing, radiation upsets.
:class:`FaultInjector` reproduces those defects on demand: single bit
flips, whole-byte corruption, and multi-byte burst errors, each drawn
from a :class:`random.Random` seeded by the caller so every experiment
replays bit-for-bit from its seed.

Faults target one of three stored regions:

* ``code`` — the compressed blocks themselves (or any raw byte string);
* ``lat`` — the serialised Line Address Table;
* ``baseline`` — the uncompressed program image, for the control arm.

The injector never mutates its input; every method returns a fresh
``bytes`` object plus a :class:`FaultRecord` describing exactly what was
done, so results are attributable and replayable.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.errors import ConfigurationError

#: Supported fault models, in table order.
FAULT_MODELS = ("bit_flip", "byte", "burst")

#: Stored regions a fault can target.
FAULT_TARGETS = ("code", "lat", "baseline")

#: Default burst-error length in bytes (a glitched 4-byte bus beat).
DEFAULT_BURST_BYTES = 4


def validate_fault_model(name: str) -> str:
    """Check a fault-model name, raising :class:`ConfigurationError`."""
    if name not in FAULT_MODELS:
        raise ConfigurationError(
            f"unknown fault model {name!r}; choose from {FAULT_MODELS}"
        )
    return name


@dataclass(frozen=True)
class FaultRecord:
    """One injected fault, fully replayable.

    Attributes:
        model: Fault model name (``bit_flip``, ``byte``, ``burst``).
        target: Which stored region was hit (``code``/``lat``/``baseline``).
        offset: Byte offset of the (first) corrupted byte.
        length: Number of corrupted bytes (1 except for bursts).
        bit: Flipped bit position (0 = LSB) for ``bit_flip``, else ``None``.
        masks: XOR mask applied to each corrupted byte (always non-zero,
            so every recorded fault really changes the stored bytes).
    """

    model: str
    target: str
    offset: int
    length: int
    bit: int | None
    masks: tuple[int, ...]

    def apply(self, data: bytes) -> bytes:
        """Replay this fault onto ``data`` (pure; returns a copy)."""
        if self.offset + self.length > len(data):
            raise ConfigurationError(
                f"fault at [{self.offset}, {self.offset + self.length}) outside "
                f"{len(data)}-byte region"
            )
        corrupted = bytearray(data)
        for index, mask in enumerate(self.masks):
            corrupted[self.offset + index] ^= mask
        return bytes(corrupted)


class FaultInjector:
    """Seed-driven source of reproducible storage faults.

    Args:
        seed: Seeds the private :class:`random.Random`; two injectors
            built with the same seed issue identical fault sequences.
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self._rng = random.Random(seed)

    # ------------------------------------------------------------------
    # Fault models
    # ------------------------------------------------------------------

    def bit_flip(self, data: bytes, target: str = "code") -> tuple[bytes, FaultRecord]:
        """Flip one uniformly chosen bit of ``data``."""
        offset = self._offset(data)
        bit = self._rng.randrange(8)
        record = FaultRecord(
            model="bit_flip",
            target=target,
            offset=offset,
            length=1,
            bit=bit,
            masks=(1 << bit,),
        )
        return record.apply(data), record

    def byte(self, data: bytes, target: str = "code") -> tuple[bytes, FaultRecord]:
        """Replace one byte of ``data`` with a different random value."""
        offset = self._offset(data)
        mask = self._rng.randrange(1, 256)  # non-zero: the byte must change
        record = FaultRecord(
            model="byte", target=target, offset=offset, length=1, bit=None, masks=(mask,)
        )
        return record.apply(data), record

    def burst(
        self,
        data: bytes,
        target: str = "code",
        length: int = DEFAULT_BURST_BYTES,
    ) -> tuple[bytes, FaultRecord]:
        """Corrupt ``length`` consecutive bytes (clamped to the region)."""
        if length < 1:
            raise ConfigurationError(f"burst length must be at least 1, got {length}")
        length = min(length, len(data))
        offset = self._offset(data, span=length)
        masks = tuple(self._rng.randrange(1, 256) for _ in range(length))
        record = FaultRecord(
            model="burst", target=target, offset=offset, length=length, bit=None, masks=masks
        )
        return record.apply(data), record

    def inject(
        self, data: bytes, model: str, target: str = "code"
    ) -> tuple[bytes, FaultRecord]:
        """Apply the named fault model (table-driven dispatch)."""
        validate_fault_model(model)
        if model == "bit_flip":
            return self.bit_flip(data, target=target)
        if model == "byte":
            return self.byte(data, target=target)
        return self.burst(data, target=target)

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------

    def _offset(self, data: bytes, span: int = 1) -> int:
        if len(data) < span or not data:
            raise ConfigurationError(
                f"cannot inject a {span}-byte fault into a {len(data)}-byte region"
            )
        return self._rng.randrange(len(data) - span + 1)
