"""Differential golden-model checking: how far does one defect spread?

The paper's central robustness property is *block-bounded* damage: each
32-byte line decompresses in isolation, so a defect in compressed ROM can
corrupt at most the line it lands in, while a whole-file codec like Unix
``compress`` loses everything from the defect to end-of-file (the decoder
dictionary diverges and never recovers).  This module measures that
*blast radius* empirically: inject a fault, decode everything, and diff
the result line by line against the original program.

Two decode paths are covered:

* :func:`blast_block_codec` — any per-line Huffman variant (traditional,
  bounded, preselected) through the block codec with the bypass rule;
* :func:`blast_lzw` — the whole-file ``compress`` clone.

Both return a :class:`BlastReport`; a line is *corrupted* if its decoded
bytes differ from the golden program or were never produced at all
(a truncated LZW decode loses the tail outright).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.compression.block import DEFAULT_LINE_SIZE, BlockCompressor
from repro.compression.huffman import HuffmanCode
from repro.compression.lzw import HEADER_BYTES, lzw_compress, lzw_decompress
from repro.errors import IntegrityError, ReproError
from repro.faults.injector import FaultInjector, FaultRecord
from repro.faults.integrity import crc8, line_crcs


@dataclass(frozen=True)
class BlastReport:
    """Damage assessment for one injected fault.

    Attributes:
        codec: Codec name the fault was injected under.
        record: The fault that was injected.
        line_count: Total lines in the golden program.
        corrupted_lines: Indices of lines whose decode differs from the
            golden program (including lines lost to truncation).
        detected: Whether the integrity layer caught the fault — the
            per-line CRC for block codecs, a stream error for LZW.
        decode_error: Decoder exception message, if decoding raised.
    """

    codec: str
    record: FaultRecord
    line_count: int
    corrupted_lines: tuple[int, ...] = ()
    detected: bool = False
    decode_error: str | None = field(default=None)

    @property
    def blast_radius(self) -> int:
        """Number of lines the fault corrupted."""
        return len(self.corrupted_lines)

    @property
    def span(self) -> int:
        """Lines from first to last corruption, inclusive (0 if clean)."""
        if not self.corrupted_lines:
            return 0
        return self.corrupted_lines[-1] - self.corrupted_lines[0] + 1

    @property
    def cascaded(self) -> bool:
        """True when corruption reaches the final line of the program."""
        return bool(self.corrupted_lines) and self.corrupted_lines[-1] == self.line_count - 1


def pad_to_lines(text: bytes, line_size: int = DEFAULT_LINE_SIZE) -> bytes:
    """Zero-pad ``text`` to a whole number of lines (the linker's view)."""
    remainder = len(text) % line_size
    if remainder:
        text = text + bytes(line_size - remainder)
    return text


def diff_lines(golden: bytes, decoded: bytes, line_size: int = DEFAULT_LINE_SIZE) -> tuple[int, ...]:
    """Indices of golden lines that ``decoded`` gets wrong or never covers.

    ``decoded`` may be shorter (a truncated cascade) or longer (a corrupt
    LZW dictionary can over-produce); extra bytes past the golden length
    are ignored — every golden line is either reproduced exactly or
    counted as corrupted.
    """
    corrupted = []
    for index in range(0, len(golden), line_size):
        if golden[index : index + line_size] != decoded[index : index + line_size]:
            corrupted.append(index // line_size)
    return tuple(corrupted)


def blast_block_codec(
    code: HuffmanCode,
    text: bytes,
    injector: FaultInjector,
    model: str,
    codec_name: str = "block",
    line_size: int = DEFAULT_LINE_SIZE,
    alignment: int = 1,
) -> BlastReport:
    """Inject one fault into a block-compressed store and assess the damage.

    The fault lands in the concatenated stored blocks (what actually sits
    in instruction memory); every block is then decoded *independently* —
    the refill engine's contract — and diffed against the golden program.
    Detection is the per-line CRC of :mod:`repro.faults.integrity`.
    """
    compressor = BlockCompressor(code, line_size=line_size, alignment=alignment)
    golden = pad_to_lines(text, line_size)
    blocks = compressor.compress_program(golden)
    golden_crcs = line_crcs(blocks)

    stored = b"".join(block.data for block in blocks)
    corrupted_store, record = injector.inject(stored, model)

    # Re-slice the corrupted store at the *original* block boundaries —
    # storage faults change bytes, never the LAT's length records.
    slices = []
    offset = 0
    for block in blocks:
        slices.append(corrupted_store[offset : offset + block.stored_size])
        offset += block.stored_size

    # One batch decode over every compressed slice; a None slot means the
    # decoder refused that line, and the scalar reference is re-run on it
    # to recover the exact error message (refusals are rare — one per
    # injected fault at most — so this stays off the hot path).
    batch = iter(
        code.decode_lines(
            [data for data, block in zip(slices, blocks) if block.is_compressed],
            line_size,
            errors="none",
        )
    )
    decoded = bytearray()
    detected = False
    decode_error = None
    for index, (data, block) in enumerate(zip(slices, blocks)):
        if crc8(data) != golden_crcs[index]:
            detected = True
        if not block.is_compressed:
            decoded.extend(data)
            continue
        line = next(batch)
        if line is not None:
            decoded.extend(line)
            continue
        try:
            code.decode_fast(data, line_size)
        except ReproError as error:
            # The decoder refused the line: functionally a lost line.
            decode_error = str(error)
        decoded.extend(bytes(line_size))
    return BlastReport(
        codec=codec_name,
        record=record,
        line_count=len(blocks),
        corrupted_lines=diff_lines(golden, bytes(decoded), line_size),
        detected=detected,
        decode_error=decode_error,
    )


def blast_baseline(
    text: bytes,
    injector: FaultInjector,
    model: str,
    line_size: int = DEFAULT_LINE_SIZE,
) -> BlastReport:
    """The control arm: a fault in an *uncompressed* instruction store.

    No decoding happens, so damage is exactly the bytes the fault
    touched — the bound any compressed scheme is measured against.  No
    integrity layer exists on the raw store either (``detected`` is
    always False).
    """
    golden = pad_to_lines(text, line_size)
    corrupted, record = injector.inject(golden, model, target="baseline")
    return BlastReport(
        codec="raw",
        record=record,
        line_count=len(golden) // line_size,
        corrupted_lines=diff_lines(golden, corrupted, line_size),
    )


def blast_lzw(
    text: bytes,
    injector: FaultInjector,
    model: str,
    line_size: int = DEFAULT_LINE_SIZE,
) -> BlastReport:
    """Inject one fault into a whole-file LZW store and assess the damage.

    The fault lands in the LZW payload (past the ``compress`` magic
    header).  There is no per-line integrity for a whole-file codec;
    ``detected`` records whether the *stream itself* rejected the
    corruption (an invalid dictionary code), which is the only detection
    ``compress`` offers.
    """
    golden = pad_to_lines(text, line_size)
    blob = lzw_compress(golden)
    payload, record = injector.inject(blob[HEADER_BYTES:], model)
    record = FaultRecord(
        model=record.model,
        target=record.target,
        offset=record.offset + HEADER_BYTES,
        length=record.length,
        bit=record.bit,
        masks=record.masks,
    )
    detected = False
    decode_error = None
    try:
        decoded = lzw_decompress(blob[:HEADER_BYTES] + payload)
    except ReproError as error:
        detected = True
        decode_error = str(error)
        decoded = b""
    return BlastReport(
        codec="lzw",
        record=record,
        line_count=len(golden) // line_size,
        corrupted_lines=diff_lines(golden, decoded, line_size),
        detected=detected,
        decode_error=decode_error,
    )


def refill_survey(
    image,
    policy: str = "detect",
    memory_image: bytes | None = None,
    cache_bytes: int = 1024,
):
    """Walk every line of an image through the functional refill path.

    Runs an :class:`~repro.ccrp.expanding_cache.ExpandingInstructionCache`
    over the whole program (optionally against a corrupted copy of the
    stored memory image) and returns ``(cache, decode_errors)``: the
    cache's ``integrity_events`` record what the refill-time CRC checks
    saw, and ``decode_errors`` lists ``(line, message)`` for lines whose
    corrupted bytes the Huffman decoder refused outright.  Under
    ``strict`` the first corrupt line raises
    :class:`~repro.errors.IntegrityError`, exactly as the hardware trap
    would — decode errors on unchecked corruption still surface as their
    own :class:`~repro.errors.ReproError` subclasses.
    """
    from repro.ccrp.expanding_cache import ExpandingInstructionCache

    cache = ExpandingInstructionCache(
        image,
        cache_bytes=cache_bytes,
        integrity=policy,
        memory_image=memory_image,
    )
    decode_errors: list[tuple[int, str]] = []
    base = image.text_base
    for line in range(image.line_count):
        try:
            cache.read_line(base + line * image.line_size)
        except IntegrityError:
            raise
        except ReproError as error:
            decode_errors.append((line, str(error)))
    return cache, decode_errors
