"""Per-line integrity for compressed instruction memory.

Block-bounded compression confines a storage defect to one cache line;
this module makes the defect *detectable* as well.  Each stored block
gets a CRC-8 (polynomial 0x07, the ATM HEC) computed over its stored
bytes — one byte per 32-byte line, the same 3.125 % overhead class as
the LAT itself — kept alongside the :class:`~repro.ccrp.image.CompressedImage`
and checked by the refill path before the decoder runs.

Three policies govern what a mismatch does at refill time:

* ``strict`` — raise :class:`~repro.errors.IntegrityError` (a safety
  system would trap to recovery code);
* ``detect`` — record the event and hand the (corrupt) line onward, so
  experiments can measure silent-corruption exposure;
* ``off`` — no checking, the seed repository's original behaviour.

CRC-8 detects every single-bit error and every burst of eight bits or
fewer, and misses a random byte substitution with probability 1/256 —
exactly the fault models of :mod:`repro.faults.injector`.
"""

from __future__ import annotations

from repro.errors import ConfigurationError

#: Integrity-check policies, from most to least protective.
INTEGRITY_POLICIES = ("strict", "detect", "off")

#: CRC bytes stored per cache line (3.125 % of a 32-byte line).
INTEGRITY_BYTES_PER_LINE = 1

#: CRC-8 generator polynomial x^8 + x^2 + x + 1.
_POLY = 0x07


def validate_integrity_policy(name: str) -> str:
    """Check an integrity-policy name, raising :class:`ConfigurationError`."""
    if name not in INTEGRITY_POLICIES:
        raise ConfigurationError(
            f"unknown integrity policy {name!r}; choose from {INTEGRITY_POLICIES}"
        )
    return name


def _crc_table() -> bytes:
    table = bytearray(256)
    for value in range(256):
        crc = value
        for _ in range(8):
            crc = ((crc << 1) ^ _POLY if crc & 0x80 else crc << 1) & 0xFF
        table[value] = crc
    return bytes(table)


_TABLE = _crc_table()


def crc8(data: bytes, seed: int = 0) -> int:
    """CRC-8/ATM of ``data`` (table-driven, one lookup per byte)."""
    crc = seed
    table = _TABLE
    for value in data:
        crc = table[crc ^ value]
    return crc


def line_crcs(blocks) -> bytes:
    """One CRC-8 per stored block, in line order.

    The CRC covers the block's *stored* bytes (compressed or bypass), so
    it also catches LAT corruption indirectly: a corrupt LAT entry makes
    the refill hardware fetch the wrong byte range, which then fails the
    line's CRC with CRC-8's usual detection probability.
    """
    return bytes(crc8(block.data) for block in blocks)


def add_integrity(image):
    """A copy of ``image`` carrying per-line CRCs.

    The CRC table is charged to the stored size exactly like the LAT
    (see :attr:`~repro.ccrp.image.CompressedImage.total_stored_bytes`).
    """
    import dataclasses

    return dataclasses.replace(image, line_crcs=line_crcs(image.blocks))
