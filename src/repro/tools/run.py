"""``ccrp-run`` — assemble and execute a program on the functional simulator."""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.errors import ConfigurationError, ReproError
from repro.isa.assembler import Assembler
from repro.machine.executor import Machine
from repro.machine.profile import profile


def _pipeline_report(program, result, memory_name: str, cache_bytes: int) -> dict:
    """Cycle totals of the standard machine under the pipeline backend.

    The fetch path is the baseline one (no compression): misses of a
    direct-mapped cache each freeze the pipeline for one full-line burst
    of the chosen memory model.
    """
    from repro.cache.direct_mapped import simulate_trace
    from repro.memsys.models import get_memory_model
    from repro.pipeline.timeline import BlockTable, replay_trace

    memory = get_memory_model(memory_name)
    line_size = 32
    stats = simulate_trace(result.trace.addresses, cache_bytes, line_size)
    fetch_stalls = stats.misses * memory.bytes_read_cycles(line_size)
    table = BlockTable(program.instructions, text_base=program.text_base)
    replay = replay_trace(
        result.trace,
        program.instructions,
        block_table=table,
        fetch_stall_cycles=fetch_stalls,
        fetch_misses=stats.misses,
    )
    report = replay.breakdown()
    report["memory"] = memory.name
    report["cache_bytes"] = cache_bytes
    report["misses"] = stats.misses
    return report


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="ccrp-run",
        description="Assemble and execute MIPS-I source; prints the program's "
        "syscall output and execution statistics.",
    )
    parser.add_argument("source", type=Path, help="assembly source file")
    parser.add_argument(
        "--max-instructions", type=int, default=4_000_000, help="dynamic limit"
    )
    parser.add_argument(
        "--stop-at-limit",
        action="store_true",
        help="truncate instead of failing when the limit is hit",
    )
    parser.add_argument("--profile", action="store_true", help="print a pixie-style profile")
    parser.add_argument(
        "--timing",
        default="additive",
        metavar="{additive,pipeline}",
        help="timing backend for the cycle report (default: additive)",
    )
    parser.add_argument(
        "--memory",
        default="eprom",
        metavar="{eprom,burst_eprom,sc_dram}",
        help="instruction-memory model for --timing pipeline fetch stalls",
    )
    parser.add_argument(
        "--cache-bytes",
        type=int,
        default=1024,
        help="instruction-cache size for --timing pipeline (default: 1024)",
    )
    parser.add_argument(
        "--metrics",
        type=Path,
        metavar="FILE",
        help="write the per-category stall counters as JSON",
    )
    args = parser.parse_args(argv)

    try:
        # Validate the configuration up front so a typo in --timing or
        # --memory fails with a clear one-line error and a nonzero exit,
        # not an exception spill halfway through a long execution.
        from repro.core.config import validate_timing
        from repro.memsys.models import get_memory_model

        validate_timing(args.timing)
        get_memory_model(args.memory)
        if args.cache_bytes < 32:
            raise ConfigurationError(
                f"--cache-bytes must hold at least one 32 B line, got {args.cache_bytes}"
            )

        try:
            source = args.source.read_text()
        except UnicodeDecodeError as error:
            raise ConfigurationError(
                f"{args.source} is not text — assembly source must be valid "
                f"UTF-8 ({error.reason} at byte {error.start})"
            ) from error
        program = Assembler().assemble(source)
        result = Machine(program).run(
            max_instructions=args.max_instructions, stop_at_limit=args.stop_at_limit
        )
        report = None
        if args.timing == "pipeline":
            report = _pipeline_report(program, result, args.memory, args.cache_bytes)
    except (OSError, ReproError) as error:
        print(f"ccrp-run: {error}", file=sys.stderr)
        return 1

    if result.output:
        print(result.output, end="" if result.output.endswith("\n") else "\n")
    print(
        f"[exit {result.exit_code}; {result.instructions_executed:,} instructions, "
        f"{result.data_accesses:,} data accesses, {result.stall_cycles:,} stall cycles]"
    )
    if report is not None:
        print(
            f"[pipeline @ {report['memory']}/{report['cache_bytes']} B cache: "
            f"{report['total']:,} cycles = {report['issue']:,} issue "
            f"+ {report['fill']} fill + {report['hazard']:,} hazard "
            f"+ {report['branch']:,} branch + {report['fetch']:,} fetch "
            f"({report['misses']:,} misses)]"
        )
    if args.metrics:
        payload = {
            "timing": args.timing,
            "instructions": result.instructions_executed,
            "additive_stall_cycles": result.stall_cycles,
        }
        if report is not None:
            payload["pipeline"] = report
        args.metrics.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        print(f"[wrote metrics to {args.metrics}]")
    if args.profile:
        print()
        print(profile(result, program).render())
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
