"""``ccrp-run`` — assemble and execute a program on the functional simulator."""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.errors import ConfigurationError, ReproError
from repro.isa.assembler import Assembler
from repro.machine.executor import Machine
from repro.machine.profile import profile


def _pipeline_report(
    program,
    result,
    memory_name: str,
    cache_bytes: int,
    fetch_policy: str = "demand",
    prefetch_depth: int = 4,
) -> dict:
    """Cycle totals of the standard machine under the pipeline backend.

    The fetch path is the baseline one (no compression): misses of a
    direct-mapped cache each freeze the pipeline for one full-line burst
    of the chosen memory model.  A prefetching policy overlaps part of
    those bursts with execution (see :mod:`repro.prefetch`); the report
    then carries the prefetch counter block too.
    """
    from repro.cache.direct_mapped import simulate_trace
    from repro.memsys.models import get_memory_model
    from repro.pipeline.timeline import BlockTable, replay_trace
    from repro.prefetch import build_btb, simulate_fetch_stream

    memory = get_memory_model(memory_name)
    line_size = 32
    stats = simulate_trace(result.trace.addresses, cache_bytes, line_size)
    prefetch = None
    if fetch_policy == "demand":
        fetch_stalls = stats.misses * memory.bytes_read_cycles(line_size)
    else:
        text_lines = (len(program.text) + line_size - 1) // line_size
        prefetch = simulate_fetch_stream(
            result.trace.addresses,
            cache_bytes,
            line_size,
            memory,
            policy=fetch_policy,
            prefetch_depth=prefetch_depth,
            btb=build_btb(
                program.instructions,
                text_base=program.text_base,
                line_size=line_size,
            )
            if fetch_policy == "btb"
            else None,
            prefetch_bounds=(program.text_base // line_size, text_lines),
        )
        fetch_stalls = prefetch.fetch_stall_cycles
    table = BlockTable(program.instructions, text_base=program.text_base)
    replay = replay_trace(
        result.trace,
        program.instructions,
        block_table=table,
        fetch_stall_cycles=fetch_stalls,
        fetch_misses=stats.misses,
    )
    report = replay.breakdown()
    report["memory"] = memory.name
    report["cache_bytes"] = cache_bytes
    report["misses"] = stats.misses
    report["fetch_policy"] = fetch_policy
    if prefetch is not None:
        report["prefetch"] = prefetch.prefetch_counters()
    return report


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="ccrp-run",
        description="Assemble and execute MIPS-I source; prints the program's "
        "syscall output and execution statistics.",
    )
    parser.add_argument("source", type=Path, help="assembly source file")
    parser.add_argument(
        "--max-instructions", type=int, default=4_000_000, help="dynamic limit"
    )
    parser.add_argument(
        "--stop-at-limit",
        action="store_true",
        help="truncate instead of failing when the limit is hit",
    )
    parser.add_argument("--profile", action="store_true", help="print a pixie-style profile")
    parser.add_argument(
        "--timing",
        default="additive",
        metavar="{additive,pipeline}",
        help="timing backend for the cycle report (default: additive)",
    )
    parser.add_argument(
        "--memory",
        default="eprom",
        metavar="{eprom,burst_eprom,sc_dram}",
        help="instruction-memory model for --timing pipeline fetch stalls",
    )
    parser.add_argument(
        "--cache-bytes",
        type=int,
        default=1024,
        help="instruction-cache size for --timing pipeline (default: 1024)",
    )
    parser.add_argument(
        "--fetch-policy",
        default="demand",
        metavar="{demand,nextline,btb}",
        help="front-end refill policy for --timing pipeline (default: demand)",
    )
    parser.add_argument(
        "--prefetch-depth",
        type=int,
        default=4,
        help="prefetch-buffer capacity in lines (default: 4)",
    )
    parser.add_argument(
        "--metrics",
        type=Path,
        metavar="FILE",
        help="write the per-category stall counters as JSON",
    )
    args = parser.parse_args(argv)

    try:
        # Validate the configuration up front so a typo in --timing or
        # --memory fails with a clear one-line error and a nonzero exit,
        # not an exception spill halfway through a long execution.
        from repro.core.config import validate_timing
        from repro.memsys.models import get_memory_model
        from repro.prefetch import validate_fetch_policy

        validate_timing(args.timing)
        get_memory_model(args.memory)
        validate_fetch_policy(args.fetch_policy)
        if args.fetch_policy != "demand" and args.timing != "pipeline":
            raise ConfigurationError(
                "--fetch-policy needs --timing pipeline (prefetching is a "
                "pipeline front-end model)"
            )
        if args.prefetch_depth < 1:
            raise ConfigurationError(
                f"--prefetch-depth needs at least one entry, got {args.prefetch_depth}"
            )
        if args.cache_bytes < 32:
            raise ConfigurationError(
                f"--cache-bytes must hold at least one 32 B line, got {args.cache_bytes}"
            )

        try:
            source = args.source.read_text()
        except UnicodeDecodeError as error:
            raise ConfigurationError(
                f"{args.source} is not text — assembly source must be valid "
                f"UTF-8 ({error.reason} at byte {error.start})"
            ) from error
        program = Assembler().assemble(source)
        result = Machine(program).run(
            max_instructions=args.max_instructions, stop_at_limit=args.stop_at_limit
        )
        report = None
        if args.timing == "pipeline":
            report = _pipeline_report(
                program,
                result,
                args.memory,
                args.cache_bytes,
                fetch_policy=args.fetch_policy,
                prefetch_depth=args.prefetch_depth,
            )
    except (OSError, ReproError) as error:
        print(f"ccrp-run: {error}", file=sys.stderr)
        return 1

    if result.output:
        print(result.output, end="" if result.output.endswith("\n") else "\n")
    print(
        f"[exit {result.exit_code}; {result.instructions_executed:,} instructions, "
        f"{result.data_accesses:,} data accesses, {result.stall_cycles:,} stall cycles]"
    )
    if report is not None:
        print(
            f"[pipeline @ {report['memory']}/{report['cache_bytes']} B cache: "
            f"{report['total']:,} cycles = {report['issue']:,} issue "
            f"+ {report['fill']} fill + {report['hazard']:,} hazard "
            f"+ {report['branch']:,} branch + {report['fetch']:,} fetch "
            f"({report['misses']:,} misses)]"
        )
        if "prefetch" in report:
            counters = report["prefetch"]
            print(
                f"[prefetch {report['fetch_policy']}: {counters['issued']:,} issued, "
                f"{counters['useful']:,} useful ({counters['partial']:,} partial), "
                f"{counters['useless']:,} useless, "
                f"{counters['covered_stall_cycles']:,} stall cycles hidden, "
                f"{counters['wasted_traffic_bytes']:,} B wasted traffic]"
            )
    if args.metrics:
        payload = {
            "timing": args.timing,
            "instructions": result.instructions_executed,
            "additive_stall_cycles": result.stall_cycles,
        }
        if report is not None:
            payload["pipeline"] = report
        args.metrics.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        print(f"[wrote metrics to {args.metrics}]")
    if args.profile:
        print()
        print(profile(result, program).render())
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
