"""``ccrp-run`` — assemble and execute a program on the functional simulator."""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.errors import ReproError
from repro.isa.assembler import Assembler
from repro.machine.executor import Machine
from repro.machine.profile import profile


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="ccrp-run",
        description="Assemble and execute MIPS-I source; prints the program's "
        "syscall output and execution statistics.",
    )
    parser.add_argument("source", type=Path, help="assembly source file")
    parser.add_argument(
        "--max-instructions", type=int, default=4_000_000, help="dynamic limit"
    )
    parser.add_argument(
        "--stop-at-limit",
        action="store_true",
        help="truncate instead of failing when the limit is hit",
    )
    parser.add_argument("--profile", action="store_true", help="print a pixie-style profile")
    args = parser.parse_args(argv)

    try:
        program = Assembler().assemble(args.source.read_text())
        result = Machine(program).run(
            max_instructions=args.max_instructions, stop_at_limit=args.stop_at_limit
        )
    except (OSError, ReproError) as error:
        print(f"ccrp-run: {error}", file=sys.stderr)
        return 1

    if result.output:
        print(result.output, end="" if result.output.endswith("\n") else "\n")
    print(
        f"[exit {result.exit_code}; {result.instructions_executed:,} instructions, "
        f"{result.data_accesses:,} data accesses, {result.stall_cycles:,} stall cycles]"
    )
    if args.profile:
        print()
        print(profile(result, program).render())
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
