"""``ccrp-asm`` — assemble MIPS-I source to a binary text segment."""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.errors import ReproError
from repro.isa.assembler import Assembler


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="ccrp-asm", description="Assemble MIPS-I source (see repro.isa.assembler)."
    )
    parser.add_argument("source", type=Path, help="assembly source file")
    parser.add_argument(
        "-o", "--output", type=Path, help="text-segment output (default: <source>.bin)"
    )
    parser.add_argument(
        "--data-output", type=Path, help="also write the initialised data segment"
    )
    parser.add_argument(
        "--listing", action="store_true", help="print a label/size summary"
    )
    args = parser.parse_args(argv)

    try:
        program = Assembler().assemble(args.source.read_text())
    except (OSError, ReproError) as error:
        print(f"ccrp-asm: {error}", file=sys.stderr)
        return 1

    output = args.output or args.source.with_suffix(".bin")
    output.write_bytes(program.text)
    print(f"{output}: {program.size} bytes of text ({len(program.instructions)} instructions)")
    if args.data_output:
        args.data_output.write_bytes(program.data)
        print(f"{args.data_output}: {len(program.data)} bytes of data")
    if args.listing:
        for name, address in sorted(program.labels.items(), key=lambda item: item[1]):
            print(f"  {address:#08x}  {name}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
