"""``ccrp-disasm`` — disassemble a binary MIPS-I text segment."""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.errors import ReproError
from repro.isa.disassembler import disassemble_program


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="ccrp-disasm", description="Disassemble a big-endian MIPS-I text segment."
    )
    parser.add_argument("binary", type=Path, help="text-segment binary file")
    parser.add_argument(
        "--base", type=lambda value: int(value, 0), default=0, help="load address"
    )
    args = parser.parse_args(argv)

    try:
        code = args.binary.read_bytes()
        for line in disassemble_program(code, base=args.base):
            print(line)
    except (OSError, ReproError) as error:
        print(f"ccrp-disasm: {error}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
