"""Command-line developer tools.

The paper's development flow uses a standard toolchain plus a host-side
compression tool.  These commands provide that flow for this library:

* ``ccrp-asm`` — assemble MIPS-I source to a binary text segment;
* ``ccrp-disasm`` — disassemble a binary text segment;
* ``ccrp-run`` — assemble and execute a program, with optional profiling;
* ``ccrp-compress`` — the host-side compression tool: build the LAT +
  compressed-blocks image for a binary and report the size breakdown.
"""
