"""``ccrp-serve`` — run the compression service.

Starts the asyncio batch server of :mod:`repro.service` on a Unix
socket or TCP endpoint and runs until interrupted, draining in-flight
work on the way down.  Pair it with ``ccrp-client`` or any speaker of
the frame protocol (``docs/modeling_notes.md`` section 14).

Examples::

    # Unix socket, default worker count
    ccrp-serve unix:/tmp/ccrp.sock

    # TCP on all interfaces, 4 workers, tighter admission
    ccrp-serve 0.0.0.0:7878 --workers 4 --queue-limit 32

    # Dump the server's metrics snapshot on shutdown
    ccrp-serve unix:/tmp/ccrp.sock --metrics metrics.json

Exits 0 on a clean (signal-driven) shutdown, 2 on usage errors.
"""

from __future__ import annotations

import argparse
import asyncio
import contextlib
import sys

from repro.errors import ReproError
from repro.service.server import CompressionServer


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="ccrp-serve",
        description="Serve compress/decompress/simulate over a socket.",
    )
    parser.add_argument(
        "address",
        help="unix:/path/to.sock or host:port",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker processes (default: available CPUs)",
    )
    parser.add_argument(
        "--queue-limit",
        type=int,
        default=64,
        help="max pending jobs before requests get 'overloaded' (default 64)",
    )
    parser.add_argument(
        "--batch-max",
        type=int,
        default=8,
        help="max jobs per worker round trip (default 8)",
    )
    parser.add_argument(
        "--metrics",
        metavar="PATH",
        default=None,
        help="write the final metrics snapshot as JSON on shutdown",
    )
    parser.add_argument(
        "--no-response-cache",
        action="store_true",
        help="disable the durable response cache (repeats recompute "
        "instead of replaying from CCRP_CACHE_DIR)",
    )
    parser.add_argument(
        "--debug",
        action="store_true",
        help="enable test-only ops (crash, _gate rendezvous) — never in production",
    )
    return parser


async def _serve(args: argparse.Namespace) -> None:
    server = CompressionServer(
        args.address,
        workers=args.workers,
        queue_limit=args.queue_limit,
        batch_max=args.batch_max,
        debug=args.debug,
        response_cache=not args.no_response_cache,
    )
    await server.start()
    print(
        f"ccrp-serve: listening on {args.address} "
        f"({server.pool.workers} workers, queue limit {server.queue_limit})",
        flush=True,
    )
    try:
        await asyncio.Event().wait()
    finally:
        await server.stop()
        if args.metrics:
            server.metrics.write_json(args.metrics)


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        with contextlib.suppress(KeyboardInterrupt):
            asyncio.run(_serve(args))
    except ReproError as error:
        print(f"ccrp-serve: error: {error}", file=sys.stderr)
        return 2
    return 0


if __name__ == "__main__":
    sys.exit(main())
