"""``ccrp-client`` — command-line client for the compression service.

One subcommand per endpoint, speaking the frame protocol through
:class:`~repro.service.client.ServiceClient`.  Binary payloads come
from and go to files (``-`` for stdin/stdout), compression metadata
travels as a JSON sidecar so ``compress`` output can be fed straight
back to ``decompress``.

Examples::

    ccrp-client unix:/tmp/ccrp.sock ping
    ccrp-client unix:/tmp/ccrp.sock compress prog.bin \\
        --out prog.czb --meta prog.json --integrity
    ccrp-client unix:/tmp/ccrp.sock decompress prog.czb \\
        --meta prog.json --out prog.out
    ccrp-client unix:/tmp/ccrp.sock simulate eightq \\
        --cache-bytes 1024 --memory eprom --clb-entries 16
    ccrp-client unix:/tmp/ccrp.sock stats

Resilience flags (``--retries``, ``--backoff-base``, ``--backoff-max``,
``--backoff-seed``, ``--deadline-ms``) configure the client's retry /
backoff / deadline layer; see ``docs/modeling_notes.md`` section 16.

Exits 0 on success, 1 on any typed service failure (an error response,
an unreachable or failing endpoint, an exhausted deadline) — printed as
one diagnosable line with the error code, op, address, and attempt
count — and 2 on usage problems.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.errors import ReproError, ServiceError
from repro.service.client import ServiceClient


def _read_binary(path: str) -> bytes:
    if path == "-":
        return sys.stdin.buffer.read()
    return Path(path).read_bytes()


def _write_binary(path: str, data: bytes) -> None:
    if path == "-":
        sys.stdout.buffer.write(data)
        sys.stdout.buffer.flush()
    else:
        Path(path).write_bytes(data)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="ccrp-client",
        description="Talk to a running ccrp-serve instance.",
    )
    parser.add_argument("address", help="unix:/path/to.sock or host:port")
    parser.add_argument(
        "--name", default="cli", help="client name reported in server metrics"
    )
    parser.add_argument(
        "--timeout", type=float, default=60.0, help="socket timeout in seconds"
    )
    parser.add_argument(
        "--retries",
        type=int,
        default=0,
        help="retry transient failures this many extra times (default 0)",
    )
    parser.add_argument(
        "--backoff-base",
        type=float,
        default=0.05,
        help="first retry delay in seconds; doubles per attempt (default 0.05)",
    )
    parser.add_argument(
        "--backoff-max",
        type=float,
        default=2.0,
        help="cap on any single retry delay in seconds (default 2.0)",
    )
    parser.add_argument(
        "--backoff-seed",
        type=int,
        default=None,
        help="seed the retry jitter for a replayable backoff schedule",
    )
    parser.add_argument(
        "--deadline-ms",
        type=float,
        default=None,
        help="total request budget in milliseconds, propagated to the "
        "server and spent across retries",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("ping", help="round-trip liveness check")
    commands.add_parser("stats", help="print the server metrics snapshot")

    compress = commands.add_parser("compress", help="compress a binary file")
    compress.add_argument("input", help="binary input path, or - for stdin")
    compress.add_argument("--out", default="-", help="stored-blob output path")
    compress.add_argument("--meta", default=None, help="metadata JSON path")
    compress.add_argument(
        "--alignment", type=int, default=1, help="block alignment (1 or 4)"
    )
    compress.add_argument(
        "--integrity",
        action="store_true",
        help="emit the per-line CRC-8 table with the image",
    )

    decompress = commands.add_parser("decompress", help="expand a stored blob")
    decompress.add_argument("input", help="stored-blob path, or - for stdin")
    decompress.add_argument(
        "--meta", required=True, help="metadata JSON written by compress"
    )
    decompress.add_argument("--out", default="-", help="expanded output path")

    simulate = commands.add_parser(
        "simulate", help="evaluate one design-space grid point server-side"
    )
    simulate.add_argument("workload", help="suite workload name (e.g. eightq)")
    simulate.add_argument("--cache-bytes", type=int, default=1024)
    simulate.add_argument("--memory", default="eprom")
    simulate.add_argument("--clb-entries", type=int, default=16)
    simulate.add_argument("--data-cache-miss-rate", type=float, default=1.0)
    return parser


def _run(client: ServiceClient, args: argparse.Namespace) -> int:
    if args.command == "ping":
        print("pong" if client.ping() else "no pong")
        return 0
    if args.command == "stats":
        print(json.dumps(client.stats(), indent=2, sort_keys=True))
        return 0
    if args.command == "compress":
        meta, blob = client.compress(
            _read_binary(args.input),
            alignment=args.alignment,
            integrity=args.integrity,
        )
        _write_binary(args.out, blob)
        if args.meta:
            Path(args.meta).write_text(
                json.dumps(meta, indent=2, sort_keys=True) + "\n"
            )
        print(
            f"compressed {meta['original_size']} -> {len(blob)} bytes "
            f"(ratio {meta['compression_ratio']:.3f})",
            file=sys.stderr,
        )
        return 0
    if args.command == "decompress":
        meta = json.loads(Path(args.meta).read_text())
        text = client.decompress(meta, _read_binary(args.input))
        _write_binary(args.out, text)
        print(f"expanded to {len(text)} bytes", file=sys.stderr)
        return 0
    if args.command == "simulate":
        result = client.simulate(
            args.workload,
            cache_bytes=args.cache_bytes,
            memory=args.memory,
            clb_entries=args.clb_entries,
            data_cache_miss_rate=args.data_cache_miss_rate,
        )
        print(json.dumps(result, indent=2, sort_keys=True))
        return 0
    raise AssertionError(f"unhandled command {args.command!r}")


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        with ServiceClient(
            args.address,
            timeout=args.timeout,
            name=args.name,
            retries=args.retries,
            backoff_base=args.backoff_base,
            backoff_max=args.backoff_max,
            backoff_seed=args.backoff_seed,
            deadline_ms=args.deadline_ms,
        ) as client:
            return _run(client, args)
    except ServiceError as error:
        # Typed failures collapse to one diagnosable line: what failed,
        # where, and after how many attempts.
        context = "".join(
            f" {label}={value}"
            for label, value in (
                ("op", error.op),
                ("address", error.address),
                ("attempts", error.attempts),
            )
            if value is not None
        )
        print(
            f"ccrp-client: error [{error.code}]{context}: {error}",
            file=sys.stderr,
        )
        return 1
    except (ReproError, OSError) as error:
        print(f"ccrp-client: error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
