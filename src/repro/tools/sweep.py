"""``ccrp-sweep`` — run, shard, and merge design-space sweeps.

The cross-machine face of :mod:`repro.core.sweep`: one invocation runs a
sweep (optionally one shard of it), another merges emitted shard files
back into the exact result a single unsharded run would have produced.

Examples::

    # One machine, four worker processes
    ccrp-sweep eightq lloop01 --cache-sizes 256 512 1024 --jobs 4 \\
        --csv sweep.csv --json sweep.json

    # Three machines, one shard each, then a merge anywhere
    ccrp-sweep eightq lloop01 --shard 0/3 --emit-shard shard0.pkl
    ccrp-sweep eightq lloop01 --shard 1/3 --emit-shard shard1.pkl
    ccrp-sweep eightq lloop01 --shard 2/3 --emit-shard shard2.pkl
    ccrp-sweep --merge shard0.pkl shard1.pkl shard2.pkl --json merged.json

The merged result is byte-identical — reports *and* failure reports — to
the unsharded run, so shard files can be verified with ``cmp`` against a
serial run's ``--json`` export.  Exits 0 on a clean sweep, 1 when any
task failed (the partial results are still written), 2 on usage errors.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys
from pathlib import Path

from repro.core.sweep import (
    DEFAULT_CACHE_SIZES,
    DEFAULT_CLB_ENTRIES,
    DEFAULT_DATA_MISS_RATES,
    DEFAULT_MEMORIES,
    DEFAULT_RETRIES,
    SweepResult,
    merge_shard_files,
    sweep_many,
    write_shard_file,
)
from repro.errors import ReproError

#: Version tag of the ``--json`` export.
JSON_SCHEMA = "ccrp-sweep/1"


def _parse_shard(text: str) -> tuple[int, int]:
    """``"I/N"`` -> ``(I, N)``; range checks happen in the sweep layer."""
    try:
        index, count = text.split("/")
        return int(index), int(count)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"shard must look like INDEX/COUNT (e.g. 0/4), got {text!r}"
        ) from None


def result_payload(result: SweepResult) -> dict:
    """The deterministic JSON form of a sweep result (reports + failures)."""
    return {
        "schema": JSON_SCHEMA,
        "reports": result.rows(),
        "failures": [dataclasses.asdict(failure) for failure in result.failures],
    }


def _write_json(result: SweepResult, path: Path) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps(result_payload(result), indent=2, sort_keys=True) + "\n"
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="ccrp-sweep",
        description="Sweep the CCRP design space across processes and "
        "machines: run a (shard of a) workload grid, emit partial results, "
        "and merge shards byte-identically to a serial run.",
    )
    parser.add_argument(
        "workloads", nargs="*", metavar="WORKLOAD",
        help="suite workload names to sweep (omit when using --merge)",
    )
    parser.add_argument(
        "--cache-sizes", type=int, nargs="+", default=list(DEFAULT_CACHE_SIZES),
        metavar="BYTES", help="instruction-cache sizes",
    )
    parser.add_argument(
        "--memories", nargs="+", default=list(DEFAULT_MEMORIES),
        metavar="NAME", help="memory-model names",
    )
    parser.add_argument(
        "--clb-entries", type=int, nargs="+", default=list(DEFAULT_CLB_ENTRIES),
        metavar="N", help="CLB capacities",
    )
    parser.add_argument(
        "--data-miss-rates", type=float, nargs="+",
        default=list(DEFAULT_DATA_MISS_RATES),
        metavar="RATE", help="data-cache miss rates",
    )
    parser.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="fan this machine's share across N worker processes (clamped "
        "to the CPUs actually available; the study is pre-built once)",
    )
    parser.add_argument(
        "--retries", type=int, default=DEFAULT_RETRIES, metavar="N",
        help="bounded re-attempts per failing task",
    )
    parser.add_argument(
        "--strict", action="store_true",
        help="fail fast on the first unrecoverable task instead of "
        "recording a FailureReport",
    )
    parser.add_argument(
        "--shard", type=_parse_shard, metavar="I/N",
        help="run only the I-th of N contiguous slices of the "
        "workloads x grid task list (for cross-machine splits)",
    )
    parser.add_argument(
        "--emit-shard", type=Path, metavar="FILE",
        help="write this run's partial SweepResult (reports + failures) "
        "as a shard file for ccrp-sweep --merge",
    )
    parser.add_argument(
        "--merge", nargs="+", type=Path, metavar="FILE",
        help="instead of sweeping, merge these shard files (any order; "
        "the partition must be complete and from one sweep spec)",
    )
    parser.add_argument(
        "--csv", type=Path, metavar="FILE", help="write the reports as CSV"
    )
    parser.add_argument(
        "--json", type=Path, metavar="FILE",
        help="write reports and failures as deterministic JSON "
        "(byte-comparable between serial and merged-shard runs)",
    )
    parser.add_argument(
        "--metrics", type=Path, metavar="FILE",
        help="write the metrics-registry snapshot as JSON",
    )
    args = parser.parse_args(argv)

    if args.merge and args.workloads:
        parser.error("--merge and workload arguments are mutually exclusive")
    if not args.merge and not args.workloads:
        parser.error("name at least one workload (or use --merge)")
    if args.emit_shard and args.merge:
        parser.error("--emit-shard applies to a sweep run, not --merge")
    if args.jobs is not None and args.jobs < 1:
        parser.error("--jobs must be at least 1")
    if args.retries < 0:
        parser.error("--retries must be at least 0")

    spec = {
        "workloads": list(args.workloads),
        "cache_sizes": list(args.cache_sizes),
        "memories": list(args.memories),
        "clb_entries": list(args.clb_entries),
        "data_miss_rates": list(args.data_miss_rates),
        "retries": args.retries,
    }

    try:
        if args.merge:
            result = merge_shard_files(args.merge)
            print(f"merged {len(args.merge)} shards: {len(result.reports)} "
                  f"reports, {len(result.failures)} failures")
        else:
            result = sweep_many(
                args.workloads,
                jobs=args.jobs,
                strict=args.strict,
                retries=args.retries,
                shard=args.shard,
                cache_sizes=tuple(args.cache_sizes),
                memories=tuple(args.memories),
                clb_entries=tuple(args.clb_entries),
                data_miss_rates=tuple(args.data_miss_rates),
            )
            slice_note = (
                f" (shard {args.shard[0]}/{args.shard[1]})" if args.shard else ""
            )
            print(f"swept {', '.join(args.workloads)}{slice_note}: "
                  f"{len(result.reports)} reports, {len(result.failures)} failures")
            if args.emit_shard:
                shard = args.shard if args.shard is not None else (0, 1)
                path = write_shard_file(args.emit_shard, result, shard, spec)
                print(f"[wrote shard {shard[0]}/{shard[1]} to {path}]")
    except ReproError as error:
        print(f"ccrp-sweep: {error}", file=sys.stderr)
        return 2

    if result.reports:
        best, worst = result.best(), result.worst()
        print(f"  best:  {best.program} {best.memory}/{best.cache_bytes}B "
              f"-> {best.relative_execution_time:.3f}x")
        print(f"  worst: {worst.program} {worst.memory}/{worst.cache_bytes}B "
              f"-> {worst.relative_execution_time:.3f}x")
    for failure in result.failures:
        print(f"  failure: {failure.render()}")

    try:
        if args.csv:
            args.csv.parent.mkdir(parents=True, exist_ok=True)
            result.to_csv(args.csv)
            print(f"[wrote {args.csv}]")
        if args.json:
            _write_json(result, args.json)
            print(f"[wrote {args.json}]")
        if args.metrics:
            from repro.core.metrics import METRICS

            METRICS.write_json(args.metrics, extra={"jobs": args.jobs})
            print(f"[wrote {args.metrics}]")
    except OSError as error:
        print(f"ccrp-sweep: {error}", file=sys.stderr)
        return 1

    return 0 if result.ok else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
