"""``ccrp-compress`` — the paper's host-side code compression tool.

Takes a binary text segment (or assembly source), compresses it with the
standard preselected bounded Huffman code, and reports the stored-size
breakdown.  Optionally writes the serialised instruction-memory image
(LAT followed by compressed blocks) the way the development host would
burn it into EPROM.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.errors import ReproError
from repro.ccrp.compressor import ProgramCompressor
from repro.core.standard import standard_code
from repro.isa.assembler import Assembler


def _load_text(path: Path) -> bytes:
    if path.suffix in (".s", ".asm"):
        try:
            source = path.read_text()
        except UnicodeDecodeError as error:
            raise ReproError(
                f"{path} is not text — assembly source must be valid UTF-8 "
                f"({error.reason} at byte {error.start})"
            ) from error
        return Assembler().assemble(source).text
    return path.read_bytes()


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="ccrp-compress",
        description="Compress a MIPS text segment into a CCRP instruction-memory image.",
    )
    parser.add_argument(
        "input", type=Path, help="binary text segment, or .s/.asm source to assemble"
    )
    parser.add_argument("-o", "--output", type=Path, help="write the memory image here")
    parser.add_argument(
        "--alignment",
        type=int,
        choices=(1, 4),
        default=1,
        help="compressed-block alignment (1 = byte, 4 = word)",
    )
    parser.add_argument(
        "--verify", action="store_true", help="decompress and compare against the input"
    )
    args = parser.parse_args(argv)

    try:
        text = _load_text(args.input)
        if len(text) % 4:
            raise ReproError(f"text segment length {len(text)} is not word aligned")
        compressor = ProgramCompressor(standard_code(), alignment=args.alignment)
        image = compressor.compress(text)
    except (OSError, ReproError) as error:
        print(f"ccrp-compress: {error}", file=sys.stderr)
        return 1

    bypassed = sum(1 for block in image.blocks if not block.is_compressed)
    print(f"input          : {image.original_size:,} bytes ({image.line_count} lines)")
    print(
        f"compressed code: {image.compressed_code_bytes:,} bytes "
        f"({image.compression_ratio:.1%})"
    )
    print(
        f"LAT            : {image.lat.storage_bytes:,} bytes "
        f"({image.lat.storage_bytes / image.padded_original_size:.2%})"
    )
    print(
        f"total image    : {image.total_stored_bytes:,} bytes "
        f"({image.total_ratio_with_lat:.1%} of original)"
    )
    print(f"bypass lines   : {bypassed} of {image.line_count}")

    if args.verify:
        restored = compressor.block_compressor.decompress_program(list(image.blocks))
        if restored[: len(text)] != text:
            print("ccrp-compress: VERIFY FAILED", file=sys.stderr)
            return 2
        print("verify         : OK (bit-exact round trip)")

    if args.output:
        try:
            args.output.write_bytes(image.memory_image())
        except OSError as error:
            print(f"ccrp-compress: {error}", file=sys.stderr)
            return 1
        print(f"wrote {args.output} ({image.total_stored_bytes - image.code_table_bytes:,} bytes)")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
