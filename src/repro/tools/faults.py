"""``ccrp-faults`` — fault-injection study and harness-degradation demo.

Runs the blast-radius / refill-integrity study of
:mod:`repro.experiments.fault_study` from one seed, checks the paper's
robustness properties (block codecs confine a single fault to one line;
LZW cascades), and optionally demonstrates the crash-proof sweep harness
by injecting a failing workload into a multi-workload sweep.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.errors import ConfigurationError, ReproError
from repro.experiments.fault_study import (
    DEFAULT_PROGRAMS,
    DEFAULT_TRIALS,
    run_fault_study,
)

#: Tiny but sufficient trial count for the CI gate (still exercises every
#: codec x model cell across all default programs).
SMOKE_TRIALS = 2


def _harness_demo(strict: bool, jobs: int) -> int:
    """Sweep real workloads plus one bogus name through ``sweep_many``.

    Graceful mode must finish with the real workloads' reports intact and
    exactly one :class:`~repro.core.sweep.FailureReport` naming the bogus
    workload; ``--strict`` must fail fast with a nonzero exit.  Returns
    the process exit code.
    """
    from repro.core.sweep import sweep_many

    workloads = ["eightq", "does-not-exist"]
    print(f"\nHarness degradation demo: sweeping {workloads} "
          f"({'strict' if strict else 'graceful'}, jobs={jobs})")
    try:
        result = sweep_many(
            workloads,
            jobs=jobs,
            strict=strict,
            cache_sizes=(1024,),
            memories=("eprom",),
        )
    except ReproError as error:
        if strict:
            print(f"ccrp-faults: strict sweep failed fast as required: {error}",
                  file=sys.stderr)
            return 1
        raise
    if strict:
        print("ccrp-faults: strict sweep did NOT fail on a bogus workload",
              file=sys.stderr)
        return 1
    print(f"  completed reports: {len(result.reports)}")
    for failure in result.failures:
        print(f"  failure: {failure.render()}")
    if not result.reports or not result.failures:
        print("ccrp-faults: graceful sweep lost completed results or the "
              "failure report", file=sys.stderr)
        return 1
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="ccrp-faults",
        description="Inject storage faults under every codec, measure blast "
        "radius and CRC detection, and verify the paper's block-bounded "
        "damage property.",
    )
    parser.add_argument("--seed", type=int, default=1992, help="master fault seed")
    parser.add_argument(
        "--trials", type=int, default=DEFAULT_TRIALS,
        help="trials per (codec, fault model, program) cell",
    )
    parser.add_argument(
        "--programs", nargs="+", default=list(DEFAULT_PROGRAMS),
        metavar="NAME", help="corpus programs to inject into",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help=f"CI mode: {SMOKE_TRIALS} trials, exit nonzero unless every "
        "robustness property holds",
    )
    parser.add_argument(
        "--inject-worker-failure", action="store_true",
        help="also sweep a bogus workload to demonstrate graceful harness "
        "degradation (fail-fast under --strict)",
    )
    parser.add_argument(
        "--strict", action="store_true",
        help="with --inject-worker-failure: require the sweep to fail fast",
    )
    parser.add_argument(
        "--jobs", type=int, default=2,
        help="process-pool width for the harness demo (default: 2)",
    )
    parser.add_argument(
        "--output", type=Path, metavar="FILE", help="also write the tables here"
    )
    parser.add_argument(
        "--metrics", type=Path, metavar="FILE",
        help="write the metrics-registry snapshot as JSON",
    )
    args = parser.parse_args(argv)

    trials = SMOKE_TRIALS if args.smoke else args.trials
    if trials < 1:
        print("ccrp-faults: --trials must be at least 1", file=sys.stderr)
        return 2

    try:
        result = run_fault_study(
            programs=tuple(args.programs), trials_per_case=trials, seed=args.seed
        )
    except ConfigurationError as error:
        print(f"ccrp-faults: {error}", file=sys.stderr)
        return 2

    table = result.render()
    print(table)
    if args.output:
        try:
            args.output.write_text(table + "\n")
        except OSError as error:
            print(f"ccrp-faults: {error}", file=sys.stderr)
            return 1

    exit_code = 0
    violations = result.violations()
    if violations:
        for violation in violations:
            print(f"ccrp-faults: property violated: {violation}", file=sys.stderr)
        exit_code = 1
    elif args.smoke:
        print("\nAll robustness properties hold: single faults bounded to one "
              "line under block codecs, 100% bit-flip detection, LZW cascade "
              "demonstrated.")

    if args.inject_worker_failure:
        demo_code = _harness_demo(args.strict, args.jobs)
        exit_code = exit_code or demo_code

    if args.metrics:
        from repro.core.metrics import METRICS

        try:
            args.metrics.write_text(json.dumps(METRICS.snapshot(), indent=2) + "\n")
        except OSError as error:
            print(f"ccrp-faults: {error}", file=sys.stderr)
            return 1

    return exit_code


if __name__ == "__main__":
    sys.exit(main())
