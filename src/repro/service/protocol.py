"""The service wire protocol: length-prefixed JSON + binary frames.

Every message in either direction is one *frame*:

::

    offset  size  field
    0       2     magic  b"CZ"
    2       1     version (currently 1)
    3       1     flags   (reserved, must be 0)
    4       4     header length H, big-endian unsigned
    8       4     payload length P, big-endian unsigned
    12      H     UTF-8 JSON header (an object)
    12+H    P     opaque binary payload

The JSON header carries the request/response structure (``id``, ``op``,
``params`` / ``ok``, ``result``, ``error``); the binary payload carries
program bytes and compressed blobs without base64 inflation.  Lengths
are bounded (:data:`MAX_HEADER_BYTES`, :data:`MAX_PAYLOAD_BYTES`) so a
hostile or corrupt peer can never make the receiver buffer unbounded
memory, and any malformed prefix raises
:class:`~repro.errors.ProtocolError` instead of desynchronising the
stream: framing errors are terminal for the connection.

Three consumption styles share one validator:

* :func:`encode_frame` / :class:`FrameDecoder` — pure incremental
  encode/decode for blocking sockets (the decoder never blocks and
  never over-reads: feed it arbitrary chunks, take complete frames);
* :func:`read_frame` / :func:`write_frame` — asyncio stream helpers for
  the server.
"""

from __future__ import annotations

import asyncio
import json
import struct
import zlib

from repro.errors import ProtocolError

#: First bytes of every frame; garbage on the wire fails here.
MAGIC = b"CZ"

#: Protocol version byte; incompatible changes bump it.
VERSION = 1

#: Fixed-size frame prefix: magic, version, flags, header len, payload len.
HEADER_STRUCT = struct.Struct(">2sBBII")

#: Bound on the JSON header — requests and responses are small.
MAX_HEADER_BYTES = 8 * 1024 * 1024

#: Bound on the binary payload (program text / compressed blobs).
MAX_PAYLOAD_BYTES = 256 * 1024 * 1024


class FrameTooLarge(ProtocolError):
    """A frame declared a length past :data:`MAX_HEADER_BYTES` /
    :data:`MAX_PAYLOAD_BYTES`.

    Unlike other framing violations, the prefix itself was well-formed
    (valid magic, version, flags), so the byte stream is still
    synchronised: a receiver that wants to keep the connection may
    discard exactly :attr:`skip_bytes` bytes — the declared body — and
    answer with a structured ``too_large`` error instead of hanging up.

    Attributes:
        field: ``"header"`` or ``"payload"`` — which length overflowed.
        declared: The declared length in bytes.
        limit: The bound that was exceeded.
        skip_bytes: Total declared body size (header + payload), i.e.
            how many bytes to discard to reach the next frame boundary.
    """

    def __init__(self, field: str, declared: int, limit: int, skip_bytes: int) -> None:
        super().__init__(
            f"declared {field} length {declared} exceeds the {limit}-byte limit"
        )
        self.field = field
        self.declared = declared
        self.limit = limit
        self.skip_bytes = skip_bytes


def encode_frame(header: dict, payload: bytes = b"") -> bytes:
    """Serialise one frame.  ``header`` must be a JSON-able dict."""
    if not isinstance(header, dict):
        raise ProtocolError(f"frame header must be a dict, got {type(header).__name__}")
    header_bytes = json.dumps(
        header, separators=(",", ":"), sort_keys=True
    ).encode("utf-8")
    if len(header_bytes) > MAX_HEADER_BYTES:
        raise ProtocolError(
            f"frame header of {len(header_bytes)} bytes exceeds the "
            f"{MAX_HEADER_BYTES}-byte limit"
        )
    if len(payload) > MAX_PAYLOAD_BYTES:
        raise ProtocolError(
            f"frame payload of {len(payload)} bytes exceeds the "
            f"{MAX_PAYLOAD_BYTES}-byte limit"
        )
    prefix = HEADER_STRUCT.pack(MAGIC, VERSION, 0, len(header_bytes), len(payload))
    return prefix + header_bytes + bytes(payload)


def parse_prefix(prefix: bytes) -> tuple[int, int]:
    """Validate a 12-byte frame prefix; returns ``(header_len, payload_len)``."""
    magic, version, flags, header_len, payload_len = HEADER_STRUCT.unpack(prefix)
    if magic != MAGIC:
        raise ProtocolError(f"bad frame magic {magic!r} (expected {MAGIC!r})")
    if version != VERSION:
        raise ProtocolError(f"unsupported protocol version {version} (speak {VERSION})")
    if flags != 0:
        raise ProtocolError(f"reserved frame flags must be 0, got {flags:#04x}")
    if header_len > MAX_HEADER_BYTES:
        raise FrameTooLarge(
            "header", header_len, MAX_HEADER_BYTES, header_len + payload_len
        )
    if payload_len > MAX_PAYLOAD_BYTES:
        raise FrameTooLarge(
            "payload", payload_len, MAX_PAYLOAD_BYTES, header_len + payload_len
        )
    return header_len, payload_len


def decode_header(header_bytes: bytes) -> dict:
    """Parse the JSON header; anything but a JSON object is a protocol error."""
    try:
        header = json.loads(header_bytes.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise ProtocolError(f"unparsable frame header: {error}") from None
    if not isinstance(header, dict):
        raise ProtocolError(
            f"frame header must be a JSON object, got {type(header).__name__}"
        )
    return header


class FrameDecoder:
    """Incremental frame parser for a byte stream of unknown chunking.

    Feed it whatever the transport produced — single bytes, half frames,
    several frames at once — and take complete frames as they become
    available.  The decoder never blocks, never loses bytes between
    calls, and surfaces malformed input as
    :class:`~repro.errors.ProtocolError` the moment the violation is
    visible (a bad prefix fails after 12 bytes; nothing waits on a
    length that will never arrive).  After an error the decoder is
    poisoned: the stream position can no longer be trusted.
    """

    def __init__(self) -> None:
        self._buffer = bytearray()
        self._error: ProtocolError | None = None

    @property
    def buffered(self) -> int:
        """Bytes received but not yet consumed by a complete frame."""
        return len(self._buffer)

    def feed(self, data: bytes) -> None:
        """Append transport bytes to the internal buffer."""
        if self._error is not None:
            raise self._error
        self._buffer.extend(data)

    def next_frame(self) -> tuple[dict, bytes] | None:
        """The next complete ``(header, payload)``, or ``None`` if more
        bytes are needed.  Raises on a malformed prefix or header."""
        if self._error is not None:
            raise self._error
        if len(self._buffer) < HEADER_STRUCT.size:
            return None
        try:
            header_len, payload_len = parse_prefix(
                bytes(self._buffer[: HEADER_STRUCT.size])
            )
        except ProtocolError as error:
            self._error = error
            raise
        total = HEADER_STRUCT.size + header_len + payload_len
        if len(self._buffer) < total:
            return None
        header_bytes = bytes(
            self._buffer[HEADER_STRUCT.size : HEADER_STRUCT.size + header_len]
        )
        payload = bytes(self._buffer[HEADER_STRUCT.size + header_len : total])
        del self._buffer[:total]
        try:
            header = decode_header(header_bytes)
        except ProtocolError as error:
            self._error = error
            raise
        return header, payload


async def read_frame(reader: asyncio.StreamReader) -> tuple[dict, bytes] | None:
    """Read one frame from an asyncio stream.

    Returns ``None`` on a clean EOF at a frame boundary; raises
    :class:`~repro.errors.ProtocolError` for garbage or a connection
    dropped mid-frame.
    """
    try:
        prefix = await reader.readexactly(HEADER_STRUCT.size)
    except asyncio.IncompleteReadError as error:
        if not error.partial:
            return None
        raise ProtocolError(
            f"connection closed inside a frame prefix "
            f"({len(error.partial)}/{HEADER_STRUCT.size} bytes)"
        ) from None
    header_len, payload_len = parse_prefix(prefix)
    try:
        header_bytes = await reader.readexactly(header_len)
        payload = await reader.readexactly(payload_len)
    except asyncio.IncompleteReadError as error:
        raise ProtocolError(
            f"connection closed inside a frame body "
            f"(got {len(error.partial)} of {header_len + payload_len} bytes)"
        ) from None
    return decode_header(header_bytes), payload


async def write_frame(
    writer: asyncio.StreamWriter, header: dict, payload: bytes = b""
) -> int:
    """Encode and flush one frame; returns the bytes written."""
    data = encode_frame(header, payload)
    writer.write(data)
    await writer.drain()
    return len(data)


async def drain_exactly(reader: asyncio.StreamReader, count: int) -> bool:
    """Read and discard ``count`` bytes in bounded chunks.

    Used to skip the body of an over-limit frame without ever buffering
    it: the stream stays synchronised, the connection stays usable.
    Returns ``False`` if the peer hung up before ``count`` bytes arrived
    (the caller should then treat the connection as closed).
    """
    remaining = count
    while remaining > 0:
        data = await reader.read(min(remaining, 1 << 16))
        if not data:
            return False
        remaining -= len(data)
    return True


def payload_digest(payload: bytes) -> int:
    """CRC-32 integrity digest carried on response payloads.

    The durable response cache stores it with every entry and the
    server re-verifies on load; responses carry it in the ``crc32``
    header field so the client can verify the payload survived the
    transport hop byte-for-byte (the software analogue of the per-line
    CRC the integrity layer charges to the LAT).
    """
    return zlib.crc32(payload) & 0xFFFFFFFF
