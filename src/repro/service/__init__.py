"""Compression-as-a-service: an async batch front end over the stack.

The paper's CCRP design separates a slow offline compressor from a fast
demand-driven decompress path — a natural client/server split.  This
package is that split made literal: a long-running asyncio server
(:mod:`repro.service.server`) accepts ``compress``, ``decompress``,
``simulate``, and ``stats`` requests over a small length-prefixed
JSON+binary frame protocol (:mod:`repro.service.protocol`) and fans the
work across a pool of warm-started worker processes
(:mod:`repro.service.workers`) that reuse the artifact cache, the
single-flight build machinery, and the fork start-method plumbing of
:mod:`repro.core.sweep`.

Service contract highlights (full spec in ``docs/modeling_notes.md``
sections 14 and 16):

* identical in-flight ``(op, params, payload)`` jobs coalesce onto one
  execution (``service.coalesced``), and completed responses persist in
  a durable CRC-verified cache under the same key
  (``service.cache.hit`` / ``service.cache.miss``) — repeats are
  answered byte-identically, even across a server restart;
* requests may carry a ``deadline_ms`` budget: expired work is refused
  or shed (``service.deadline_exceeded``) instead of computed;
* the client retries transient failures with capped, seed-deterministic
  backoff on fresh connections, and surfaces everything else as typed
  :class:`~repro.errors.ServiceError` values;
* admission is bounded — past ``queue_limit`` pending jobs the server
  answers ``overloaded`` immediately instead of growing memory;
* shutdown drains in-flight work before closing connections; and
* every request is observable through the ``stats`` endpoint
  (per-endpoint counters, queue-depth gauge, p50/p99 latency).

Resilience is tested under fault injection: :mod:`repro.service.chaos`
provides a seed-deterministic proxy that tears frames, resets
connections, delays traffic, and kills workers on a replayable schedule.
"""

from repro.service.chaos import (
    ChaosAction,
    ChaosProxy,
    ChaosSchedule,
    ScriptedSchedule,
    SeededSchedule,
)
from repro.service.client import ServiceClient, parse_address
from repro.service.protocol import FrameDecoder, encode_frame, read_frame, write_frame
from repro.service.server import CompressionServer
from repro.service.workers import WorkerPool

__all__ = [
    "ChaosAction",
    "ChaosProxy",
    "ChaosSchedule",
    "CompressionServer",
    "FrameDecoder",
    "ScriptedSchedule",
    "SeededSchedule",
    "ServiceClient",
    "WorkerPool",
    "encode_frame",
    "parse_address",
    "read_frame",
    "write_frame",
]
