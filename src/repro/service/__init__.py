"""Compression-as-a-service: an async batch front end over the stack.

The paper's CCRP design separates a slow offline compressor from a fast
demand-driven decompress path — a natural client/server split.  This
package is that split made literal: a long-running asyncio server
(:mod:`repro.service.server`) accepts ``compress``, ``decompress``,
``simulate``, and ``stats`` requests over a small length-prefixed
JSON+binary frame protocol (:mod:`repro.service.protocol`) and fans the
work across a pool of warm-started worker processes
(:mod:`repro.service.workers`) that reuse the artifact cache, the
single-flight build machinery, and the fork start-method plumbing of
:mod:`repro.core.sweep`.

Service contract highlights (full spec in ``docs/modeling_notes.md``
section 14):

* identical in-flight ``(op, params, payload)`` jobs coalesce onto one
  execution (``service.coalesced``);
* admission is bounded — past ``queue_limit`` pending jobs the server
  answers ``overloaded`` immediately instead of growing memory;
* shutdown drains in-flight work before closing connections; and
* every request is observable through the ``stats`` endpoint
  (per-endpoint counters, queue-depth gauge, p50/p99 latency).
"""

from repro.service.client import ServiceClient, parse_address
from repro.service.protocol import FrameDecoder, encode_frame, read_frame, write_frame
from repro.service.server import CompressionServer
from repro.service.workers import WorkerPool

__all__ = [
    "CompressionServer",
    "FrameDecoder",
    "ServiceClient",
    "WorkerPool",
    "encode_frame",
    "parse_address",
    "read_frame",
    "write_frame",
]
