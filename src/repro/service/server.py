"""The asyncio compression server.

One :class:`CompressionServer` owns four cooperating pieces:

* a stream listener (TCP or Unix socket) speaking the frame protocol of
  :mod:`repro.service.protocol`, one handler task per connection and
  one task per request, so slow jobs never block the read loop;
* an admission gate — at most ``queue_limit`` jobs may be pending
  (queued or running); past that every new job is answered
  ``overloaded`` immediately, so a traffic burst degrades into fast
  errors instead of unbounded buffering;
* a single-flight table — identical in-flight ``(op, params, payload)``
  jobs coalesce onto one execution and share its result, extending the
  artifact layer's on-disk ``flock`` single-flight to cross-request,
  in-process single-flight (``service.coalesced`` counts the saves);
* a durable response cache — completed job responses persist through
  :class:`~repro.core.artifacts.ResponseCache` under the *same* content
  key, each entry carrying a CRC-32 payload digest verified on load, so
  a repeat request (including after a restart on the same
  ``CCRP_CACHE_DIR``) is answered byte-identically with zero worker
  work (``service.cache.hit`` / ``service.cache.miss``);
* deadline propagation — requests may carry a ``deadline_ms`` budget;
  expired-on-arrival requests are refused, queued jobs whose deadline
  passes are shed at dispatch, and workers shed once more before
  executing (all counted in ``service.deadline_exceeded``);
* a batcher — admitted jobs land on one queue which a background task
  drains into chunks of up to ``batch_max``, each chunk one round trip
  to the :class:`~repro.service.workers.WorkerPool`; a semaphore holds
  concurrent chunks to the worker count.

Shutdown is graceful: :meth:`stop` closes the listener first (new
connections are refused), fails not-yet-admitted jobs with
``shutting_down``, waits for every in-flight job to finish and every
response to be written, then tears down the pool.

The server keeps its *own* :class:`~repro.core.metrics.MetricsRegistry`
(never the process-global one), merging the per-batch snapshots the
workers return, so tests and embedders read an isolated, consistent
view through the ``stats`` endpoint.
"""

from __future__ import annotations

import asyncio
import dataclasses
import hashlib
import json
import time
from concurrent.futures.process import BrokenProcessPool

from repro.core.artifacts import ResponseCache
from repro.core.metrics import MetricsRegistry
from repro.core.sweep import FailureReport
from repro.errors import ProtocolError, ReproError, ServiceError
from repro.service.protocol import (
    FrameTooLarge,
    drain_exactly,
    payload_digest,
    read_frame,
    write_frame,
)
from repro.service.workers import JOB_OPS, WorkerPool

#: Error codes job exceptions map onto (anything else is ``job_failed``).
ERROR_CODES = {
    "ConfigurationError": "bad_request",
    "DeadlineExceeded": "deadline_exceeded",
    "IntegrityError": "integrity",
    "ProtocolError": "bad_request",
}

#: Ops whose completed responses persist in the durable response cache.
#: Deterministic pure functions of the request only — never ``crash``
#: (debug) and never jobs carrying a ``_gate`` rendezvous.
CACHED_OPS = ("compress", "decompress", "simulate")


def _error_code(error_type: str) -> str:
    return ERROR_CODES.get(error_type, "job_failed")


class _Job:
    """One admitted unit of work, possibly shared by coalesced requests."""

    __slots__ = ("key", "op", "params", "payload", "future", "detail", "deadline")

    def __init__(
        self,
        key,
        op: str,
        params: dict,
        payload: bytes,
        detail: str,
        deadline: float | None = None,
    ):
        self.key = key
        self.op = op
        self.params = params
        self.payload = payload
        self.detail = detail
        # Latest monotonic deadline any waiter still cares about; None
        # means at least one waiter has no deadline (never shed).
        self.deadline = deadline
        self.future: asyncio.Future = asyncio.get_running_loop().create_future()


class CompressionServer:
    """Async batch server over the codec/cache/simulation stack.

    Args:
        address: ``"unix:/path/to.sock"`` or ``"host:port"``.
        workers: Worker processes (default: available CPUs).
        queue_limit: Max pending (queued + running) jobs before new
            requests are refused with ``overloaded``.
        batch_max: Max jobs per worker round trip.
        debug: Allow the test-only ``crash`` op and ``_gate`` rendezvous
            params.  Production servers refuse both.
        response_cache: Persist completed responses through the artifact
            layer (keyed identically to the coalescing key, CRC-32
            verified) so repeat requests — including after a server
            restart on the same ``CCRP_CACHE_DIR`` — are answered
            byte-identically without recomputation.  ``False`` restores
            the in-flight-only deduplication of PR 7.
    """

    def __init__(
        self,
        address: str,
        workers: int | None = None,
        queue_limit: int = 64,
        batch_max: int = 8,
        debug: bool = False,
        response_cache: bool = True,
    ) -> None:
        from repro.service.client import parse_address

        self.address = parse_address(address)
        self.pool = WorkerPool(workers)
        self.queue_limit = max(1, queue_limit)
        self.batch_max = max(1, batch_max)
        self.debug = debug
        self.response_cache = ResponseCache() if response_cache else None
        self.metrics = MetricsRegistry()
        self._server: asyncio.base_events.Server | None = None
        self._queue: asyncio.Queue[_Job] = asyncio.Queue()
        self._inflight: dict[tuple, _Job] = {}
        self._pending = 0
        self._closing = False
        self._idle = asyncio.Event()
        self._idle.set()
        self._batcher: asyncio.Task | None = None
        self._pool_ready = asyncio.Event()
        self._restart_lock = asyncio.Lock()
        self._chunk_slots = asyncio.Semaphore(self.pool.workers)
        self._chunk_tasks: set[asyncio.Task] = set()
        self._conn_tasks: set[asyncio.Task] = set()
        self._request_tasks: set[asyncio.Task] = set()
        self._writers: set[asyncio.StreamWriter] = set()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    async def start(self) -> None:
        """Fork the worker pool, then start accepting connections."""
        loop = asyncio.get_running_loop()
        # Fork + warm the workers off-loop so startup never competes
        # with an already-running embedder loop.
        await loop.run_in_executor(None, self.pool.start)
        self._pool_ready.set()
        if self.address[0] == "unix":
            self._server = await asyncio.start_unix_server(
                self._handle, path=self.address[1]
            )
        else:
            self._server = await asyncio.start_server(
                self._handle, host=self.address[1], port=self.address[2]
            )
        self._batcher = asyncio.create_task(self._drain(), name="ccrp-batcher")

    async def stop(self) -> None:
        """Drain in-flight work, then shut everything down.

        Ordering is the graceful-shutdown contract: (1) stop accepting
        connections, (2) refuse not-yet-admitted jobs with
        ``shutting_down``, (3) let every admitted job finish and its
        response reach the client, (4) close connections and the pool.
        """
        self._closing = True
        if self._server is not None:
            # close() stops accepting immediately; wait_closed() is
            # deferred to the end because (since Python 3.12) it also
            # waits for the connection handlers, which only exit once
            # the drain below closes their writers.
            self._server.close()
        if self._pending:
            await self._idle.wait()
        if self._batcher is not None:
            self._batcher.cancel()
            await asyncio.gather(self._batcher, return_exceptions=True)
        await asyncio.gather(*self._chunk_tasks, return_exceptions=True)
        # All jobs are resolved; wait for their responses to flush.
        await asyncio.gather(*self._request_tasks, return_exceptions=True)
        for writer in list(self._writers):
            writer.close()
        await asyncio.gather(*self._conn_tasks, return_exceptions=True)
        if self._server is not None:
            await self._server.wait_closed()
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(None, self.pool.shutdown)

    async def serve_forever(self) -> None:
        """Run until cancelled (the CLI wraps this)."""
        if self._server is None:
            await self.start()
        try:
            await asyncio.Event().wait()
        finally:
            await self.stop()

    # ------------------------------------------------------------------
    # Connections
    # ------------------------------------------------------------------

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        self._conn_tasks.add(task)
        self._writers.add(writer)
        self.metrics.count("service.connections")
        io_lock = asyncio.Lock()
        local_tasks: set[asyncio.Task] = set()
        try:
            while True:
                try:
                    frame = await read_frame(reader)
                except FrameTooLarge as error:
                    # The prefix was well-formed, so the stream is still
                    # synchronised: answer with a structured refusal
                    # naming the limit, discard exactly the declared
                    # body, and keep serving the connection.
                    self.metrics.count("service.too_large")
                    await self._send(
                        writer,
                        io_lock,
                        {
                            "id": None,
                            "ok": False,
                            "error": {
                                "code": "too_large",
                                "message": str(error),
                                "limit": error.limit,
                                "declared": error.declared,
                            },
                        },
                    )
                    if await drain_exactly(reader, error.skip_bytes):
                        continue
                    break
                except ProtocolError as error:
                    # The stream is unsynchronised; report best-effort
                    # and hang up.  Never retry, never hang.
                    self.metrics.count("service.protocol_errors")
                    await self._send(
                        writer,
                        io_lock,
                        {
                            "ok": False,
                            "error": {"code": "protocol", "message": str(error)},
                        },
                    )
                    break
                if frame is None:
                    break
                header, payload = frame
                self.metrics.count("service.bytes_in", len(payload))
                request = asyncio.create_task(
                    self._serve_request(writer, io_lock, header, payload)
                )
                local_tasks.add(request)
                self._request_tasks.add(request)
                request.add_done_callback(local_tasks.discard)
                request.add_done_callback(self._request_tasks.discard)
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            if local_tasks:
                await asyncio.gather(*local_tasks, return_exceptions=True)
            self._writers.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass
            self._conn_tasks.discard(task)

    async def _send(
        self,
        writer: asyncio.StreamWriter,
        io_lock: asyncio.Lock,
        header: dict,
        payload: bytes = b"",
    ) -> None:
        """Write one response frame; concurrent request tasks serialise here."""
        try:
            async with io_lock:
                written = await write_frame(writer, header, payload)
            self.metrics.count("service.bytes_out", written)
        except (ConnectionError, OSError):
            # The client went away; its job results are simply dropped.
            self.metrics.count("service.dropped_responses")

    async def _serve_request(
        self,
        writer: asyncio.StreamWriter,
        io_lock: asyncio.Lock,
        header: dict,
        payload: bytes,
    ) -> None:
        request_id = header.get("id")
        op = header.get("op")
        params = header.get("params", {})
        client = header.get("client", "anon")
        started = time.monotonic()
        response: dict = {"id": request_id}
        out_payload = b""
        if not isinstance(op, str) or not isinstance(params, dict):
            op_label = "invalid"
            response["ok"] = False
            response["error"] = {
                "code": "bad_request",
                "message": "request header needs a string 'op' and a dict 'params'",
            }
        else:
            op_label = op
            self.metrics.count(f"requests.{op}")
            self.metrics.count(f"clients.{client}.requests")
            try:
                deadline = self._parse_deadline(header)
                result, out_payload = await self._dispatch(
                    op, params, payload, deadline
                )
                response["ok"] = True
                response["result"] = result
                if op in JOB_OPS:
                    response["crc32"] = payload_digest(out_payload)
            except ReproError as error:
                code = getattr(error, "code", None) or _error_code(
                    type(error).__name__
                )
                detail: dict = {"code": code, "message": str(error)}
                failure = getattr(error, "failure", None)
                if failure:
                    detail["failure"] = failure
                response["ok"] = False
                response["error"] = detail
                self.metrics.count(f"errors.{code}")
        self.metrics.observe(
            f"latency.{op_label}", (time.monotonic() - started) * 1000.0
        )
        await self._send(writer, io_lock, response, out_payload)

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------

    def _parse_deadline(self, header: dict) -> float | None:
        """Admission half of deadline propagation.

        ``deadline_ms`` in a request header is the client's remaining
        budget.  An already-expired budget is refused here — counted in
        ``service.deadline_exceeded`` — before any dispatch, so the
        server never computes a result nobody is waiting for.  A live
        budget converts to an absolute monotonic deadline carried by
        the job (and shed against in :meth:`_run_chunk` / the worker).
        """
        budget_ms = header.get("deadline_ms")
        if budget_ms is None:
            return None
        if isinstance(budget_ms, bool) or not isinstance(budget_ms, (int, float)):
            raise ProtocolError(f"deadline_ms must be a number, got {budget_ms!r}")
        if budget_ms <= 0:
            self.metrics.count("service.deadline_exceeded")
            raise ServiceError(
                f"deadline budget of {budget_ms} ms had already expired on "
                f"arrival; request was not dispatched",
                code="deadline_exceeded",
            )
        return time.monotonic() + budget_ms / 1000.0

    async def _dispatch(
        self, op: str, params: dict, payload: bytes, deadline: float | None = None
    ) -> tuple[dict, bytes]:
        if op == "ping":
            return {"pong": True}, b""
        if op == "stats":
            return self._stats(), b""
        if op not in JOB_OPS:
            raise ProtocolError(f"unknown op {op!r}")
        if not self.debug and (op == "crash" or "_gate" in params):
            raise ProtocolError(f"op {op!r} with debug params needs a debug server")
        return await self._submit_job(op, params, payload, deadline)

    def _stats(self) -> dict:
        snapshot = self.metrics.snapshot()
        snapshot["server"] = {
            "pending": self._pending,
            "inflight": len(self._inflight),
            "queue_limit": self.queue_limit,
            "batch_max": self.batch_max,
            "workers": self.pool.workers,
            "pool_generation": self.pool.generation,
            "response_cache": self.response_cache is not None,
            "closing": self._closing,
        }
        return snapshot

    def _cacheable(self, op: str, params: dict) -> bool:
        """Whether this job's response may persist in the durable cache."""
        return (
            self.response_cache is not None
            and op in CACHED_OPS
            and "_gate" not in params
        )

    async def _submit_job(
        self, op: str, params: dict, payload: bytes, deadline: float | None = None
    ) -> tuple[dict, bytes]:
        if self._closing:
            raise ServiceError(
                "server is shutting down", code="shutting_down"
            )
        key = (
            op,
            json.dumps(params, sort_keys=True, separators=(",", ":")),
            hashlib.sha256(payload).hexdigest(),
        )
        existing = self._inflight.get(key)
        if existing is not None:
            # Cross-request single-flight: ride the in-flight execution.
            self.metrics.count("service.coalesced")
            if existing.deadline is not None:
                # The shared job must live as long as its most patient
                # waiter: a deadline-free rider pins it, a later
                # deadline extends it.
                existing.deadline = (
                    None if deadline is None else max(existing.deadline, deadline)
                )
            return await asyncio.shield(existing.future)
        if self._cacheable(op, params):
            # Durable single-flight: a completed response with the same
            # content key — possibly from a previous server process on
            # this cache dir — is replayed byte-identically.  The read
            # is deliberately synchronous (like the key's payload hash
            # above) so no identical request can slip past it into a
            # duplicate execution.
            cached = self.response_cache.get(key)
            if cached is not None:
                result, out_payload, _ = cached
                self.metrics.count("service.cache.hit")
                return result, out_payload
            self.metrics.count("service.cache.miss")
        if self._pending >= self.queue_limit:
            self.metrics.count("service.overloaded")
            raise ServiceError(
                f"{self._pending} jobs pending (limit {self.queue_limit}); "
                f"retry later",
                code="overloaded",
            )
        job = _Job(
            key, op, params, payload, detail=f"{op}:{key[1][:80]}", deadline=deadline
        )
        self._inflight[key] = job
        self._pending += 1
        self._idle.clear()
        self.metrics.gauge("service.queue_depth", self._pending)
        self._queue.put_nowait(job)
        return await asyncio.shield(job.future)

    def _resolve(self, job: _Job, result=None, error: Exception | None = None):
        """Finish one job: single-flight table first, then the future."""
        self._inflight.pop(job.key, None)
        self._pending -= 1
        self.metrics.gauge("service.queue_depth", self._pending)
        if not self._pending:
            self._idle.set()
        if not job.future.done():
            if error is not None:
                job.future.set_exception(error)
            else:
                job.future.set_result(result)

    # ------------------------------------------------------------------
    # Batching
    # ------------------------------------------------------------------

    async def _drain(self) -> None:
        """Forever: gather one chunk from the queue, hand it to the pool."""
        while True:
            chunk = [await self._queue.get()]
            while len(chunk) < self.batch_max:
                try:
                    chunk.append(self._queue.get_nowait())
                except asyncio.QueueEmpty:
                    break
            await self._chunk_slots.acquire()
            task = asyncio.create_task(self._run_chunk(chunk))
            self._chunk_tasks.add(task)
            task.add_done_callback(self._chunk_tasks.discard)

    def _shed_expired(self, chunk: list[_Job], now: float) -> list[_Job]:
        """Deadline shedding at dispatch: drop queued jobs nobody waits for.

        A job whose (latest) waiter deadline passed while it sat in the
        queue is resolved with a ``deadline_exceeded`` error instead of
        being sent to a worker — the queue sheds under pressure rather
        than computing results the clients have already abandoned.
        """
        live: list[_Job] = []
        for job in chunk:
            if job.deadline is not None and job.deadline <= now:
                self.metrics.count("service.deadline_exceeded")
                self._resolve(
                    job,
                    error=ServiceError(
                        f"deadline expired while {job.op!r} was queued; "
                        f"job shed before dispatch",
                        code="deadline_exceeded",
                    ),
                )
            else:
                live.append(job)
        return live

    def _store_response(self, job: _Job, result: dict, payload: bytes) -> None:
        """Persist one completed response; failures never fail the job."""
        if not self._cacheable(job.op, job.params):
            return
        try:
            self.response_cache.put(job.key, result, payload)
            self.metrics.count("service.cache.store")
        except Exception:
            # A full disk or unwritable cache dir degrades to
            # recomputation on the next repeat, never to a lost job.
            self.metrics.count("service.cache.store_failures")

    async def _run_chunk(self, chunk: list[_Job]) -> None:
        try:
            now = time.monotonic()
            chunk = self._shed_expired(chunk, now)
            if not chunk:
                return
            self.metrics.count("service.batches")
            self.metrics.count("service.batched_jobs", len(chunk))
            # Hold new chunks while a crashed pool is being replaced, so
            # an innocent batch is never submitted into the rubble.
            await self._pool_ready.wait()
            generation = self.pool.generation
            # Workers live on this host but in other processes, where
            # the monotonic clock origin is shared yet opaque; hand them
            # wall-clock deadlines derived from the same remaining
            # budget instead.
            wall = time.time()
            try:
                pool_future = self.pool.submit(
                    [
                        (
                            job.op,
                            job.params,
                            job.payload,
                            None
                            if job.deadline is None
                            else wall + (job.deadline - now),
                        )
                        for job in chunk
                    ]
                )
                outcomes, worker_metrics = await asyncio.wrap_future(pool_future)
            except BrokenProcessPool:
                self.metrics.count("service.worker_crashes")
                for job in chunk:
                    failure = FailureReport(
                        workload=str(job.params.get("workload", "-")),
                        detail=job.detail,
                        error_type="BrokenProcessPool",
                        message="a worker process died while running this batch",
                        attempts=1,
                    )
                    self._resolve(
                        job,
                        error=ServiceError(
                            failure.render(),
                            code="worker_crash",
                            failure=dataclasses.asdict(failure),
                        ),
                    )
                # Exactly one of the concurrently-failing chunks wins the
                # restart; the fork happens off-loop, behind the gate.
                async with self._restart_lock:
                    if generation == self.pool.generation:
                        self._pool_ready.clear()
                        loop = asyncio.get_running_loop()
                        restarted = await loop.run_in_executor(
                            None, self.pool.restart, generation
                        )
                        self._pool_ready.set()
                        if restarted:
                            self.metrics.count("service.worker_restarts")
                return
            self.metrics.merge(worker_metrics)
            for job, outcome in zip(chunk, outcomes):
                if outcome[0] == "ok":
                    self._store_response(job, outcome[1], outcome[2])
                    self._resolve(job, result=(outcome[1], outcome[2]))
                else:
                    _, error_type, message, worker_traceback = outcome
                    if error_type == "DeadlineExceeded":
                        self.metrics.count("service.deadline_exceeded")
                    failure = FailureReport(
                        workload=str(job.params.get("workload", "-")),
                        detail=job.detail,
                        error_type=error_type,
                        message=message,
                        attempts=1,
                        traceback=worker_traceback,
                    )
                    self._resolve(
                        job,
                        error=ServiceError(
                            f"{error_type}: {message}",
                            code=_error_code(error_type),
                            failure=dataclasses.asdict(failure),
                        ),
                    )
        except Exception as error:
            # Belt and braces: a bug here must never strand a future.
            for job in chunk:
                if job.key in self._inflight:
                    self._resolve(
                        job, error=ServiceError(str(error), code="internal")
                    )
        finally:
            self._chunk_slots.release()
