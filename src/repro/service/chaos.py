"""A seed-deterministic chaos proxy for the compression service.

:class:`ChaosProxy` sits between a :class:`~repro.service.client.ServiceClient`
and a :class:`~repro.service.server.CompressionServer`, relaying the
frame protocol *frame by frame* so faults land at exact, replayable
points in the byte stream:

* ``delay`` — hold a frame for a fixed interval before forwarding
  (injected latency, never used as synchronisation);
* ``truncate`` — forward only the first ``keep_bytes`` bytes of a
  frame, then abort the connection: the receiver sees a torn frame
  mid-body, the canonical "peer died mid-write" failure;
* ``reset`` — drop the frame entirely and abort the connection;
* ``kill_worker`` — before forwarding a request frame, crash one
  worker process through the server's debug ``crash`` op and *wait for
  the crash to be acknowledged*, so the victim request deterministically
  lands on a freshly restarted pool.

What to do to which frame is a :class:`ChaosSchedule` decision keyed by
``(connection, direction, frame_index)`` — pure data, no ambient
randomness.  :class:`ScriptedSchedule` places faults by hand;
:class:`SeededSchedule` derives every decision from a stateless
``random.Random(f"{seed}:{conn}:{direction}:{frame}")`` so the schedule
is a function of the key alone: concurrent relay tasks cannot perturb
it, and two runs with the same seed inject byte-identical fault
sequences.  Every decision is appended to :attr:`ChaosProxy.events`;
:meth:`ChaosProxy.transcript` is the canonical comparison form for
two-run determinism assertions.
"""

from __future__ import annotations

import asyncio
import itertools
import random
from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.service import protocol
from repro.service.protocol import HEADER_STRUCT, encode_frame

#: Relay directions: client→server and server→client.
UP, DOWN = "up", "down"

#: Fault kinds a schedule may return.
KINDS = ("pass", "delay", "truncate", "reset", "kill_worker")


@dataclass(frozen=True)
class ChaosAction:
    """What to do to one relayed frame.

    Attributes:
        kind: One of :data:`KINDS`.
        delay: Seconds to hold the frame (``delay`` only).
        keep_bytes: Bytes of the encoded frame to forward before
            aborting (``truncate`` only); clamped to leave at least one
            byte torn off.
    """

    kind: str = "pass"
    delay: float = 0.0
    keep_bytes: int = 6

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ConfigurationError(f"unknown chaos action kind {self.kind!r}")


PASS = ChaosAction("pass")


class ChaosSchedule:
    """Base schedule: every frame passes untouched."""

    def action(self, conn: int, direction: str, frame: int) -> ChaosAction:
        return PASS


class ScriptedSchedule(ChaosSchedule):
    """Faults placed by hand at exact ``(conn, direction, frame)`` keys.

    Example — tear the first response of the first connection::

        ScriptedSchedule({(0, DOWN, 0): ChaosAction("truncate", keep_bytes=9)})
    """

    def __init__(self, actions: dict[tuple[int, str, int], ChaosAction]) -> None:
        self._actions = dict(actions)

    def action(self, conn: int, direction: str, frame: int) -> ChaosAction:
        return self._actions.get((conn, direction, frame), PASS)


class SeededSchedule(ChaosSchedule):
    """Every decision derived statelessly from ``(seed, conn, direction,
    frame)`` — replayable regardless of task interleaving.

    Args:
        seed: The replay seed; same seed, same schedule, always.
        delay_rate / truncate_rate / reset_rate / kill_rate:
            Independent per-frame fault probabilities (first match in
            that order wins).  ``kill_worker`` only ever fires on the
            ``up`` direction — killing a worker "because of" a response
            frame would be causally meaningless.
        max_delay: Upper bound for injected delays, seconds.
    """

    def __init__(
        self,
        seed: int,
        delay_rate: float = 0.0,
        truncate_rate: float = 0.0,
        reset_rate: float = 0.0,
        kill_rate: float = 0.0,
        max_delay: float = 0.02,
    ) -> None:
        self.seed = seed
        self.delay_rate = delay_rate
        self.truncate_rate = truncate_rate
        self.reset_rate = reset_rate
        self.kill_rate = kill_rate
        self.max_delay = max_delay

    def action(self, conn: int, direction: str, frame: int) -> ChaosAction:
        rng = random.Random(f"{self.seed}:{conn}:{direction}:{frame}")
        draw = rng.random()
        if draw < self.delay_rate:
            return ChaosAction("delay", delay=rng.random() * self.max_delay)
        draw -= self.delay_rate
        if draw < self.truncate_rate:
            # Tear somewhere inside the 12-byte prefix or just past it:
            # always a mid-frame cut, whatever the frame's size.
            return ChaosAction(
                "truncate", keep_bytes=1 + rng.randrange(HEADER_STRUCT.size)
            )
        draw -= self.truncate_rate
        if draw < self.reset_rate:
            return ChaosAction("reset")
        draw -= self.reset_rate
        if direction == UP and draw < self.kill_rate:
            return ChaosAction("kill_worker")
        return PASS


class ChaosProxy:
    """Frame-aware fault-injecting relay in front of a live server.

    Connections are numbered in accept order; each direction counts its
    frames from zero.  The proxy listens on a Unix socket and forwards
    to ``upstream`` (any address :func:`~repro.service.client.parse_address`
    accepts).

    Attributes:
        events: Every schedule decision actually applied, in causal
            order, as ``(conn, direction, frame, kind)`` tuples.
    """

    def __init__(
        self, listen_path: str, upstream: str, schedule: ChaosSchedule
    ) -> None:
        from repro.service.client import parse_address

        self.listen_path = listen_path
        self.address = f"unix:{listen_path}"
        self.upstream = parse_address(upstream)
        self.schedule = schedule
        self.events: list[tuple[int, str, int, str]] = []
        self._conn_ids = itertools.count()
        self._server: asyncio.base_events.Server | None = None
        self._tasks: set[asyncio.Task] = set()

    # -- lifecycle -----------------------------------------------------

    async def start(self) -> None:
        self._server = await asyncio.start_unix_server(
            self._handle, path=self.listen_path
        )

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for task in list(self._tasks):
            task.cancel()
        await asyncio.gather(*self._tasks, return_exceptions=True)

    def transcript(self) -> tuple:
        """Canonical, interleaving-independent form of the event log."""
        return tuple(sorted(self.events))

    # -- relaying ------------------------------------------------------

    async def _connect_upstream(
        self,
    ) -> tuple[asyncio.StreamReader, asyncio.StreamWriter]:
        if self.upstream[0] == "unix":
            return await asyncio.open_unix_connection(self.upstream[1])
        return await asyncio.open_connection(self.upstream[1], self.upstream[2])

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        conn = next(self._conn_ids)
        try:
            up_reader, up_writer = await self._connect_upstream()
        except OSError:
            writer.close()
            return
        aborted = asyncio.Event()
        relays = [
            asyncio.create_task(
                self._relay(conn, UP, reader, up_writer, aborted)
            ),
            asyncio.create_task(
                self._relay(conn, DOWN, up_reader, writer, aborted)
            ),
        ]
        self._tasks.update(relays)
        for task in relays:
            task.add_done_callback(self._tasks.discard)
        await asyncio.gather(*relays, return_exceptions=True)
        for stream in (writer, up_writer):
            stream.close()

    async def _read_frame_bytes(self, reader: asyncio.StreamReader) -> bytes | None:
        """One raw encoded frame, ``None`` on EOF at a frame boundary.

        A peer vanishing mid-frame yields whatever arrived — the partial
        bytes are forwarded verbatim so the other side observes the same
        torn stream it would have seen without the proxy.
        """
        try:
            prefix = await reader.readexactly(HEADER_STRUCT.size)
        except asyncio.IncompleteReadError as error:
            return bytes(error.partial) or None
        try:
            header_len, payload_len = protocol.parse_prefix(prefix)
        except Exception:
            # Garbage prefix: pass it through untouched; the endpoint's
            # own validation is the component under test, not ours.
            return prefix
        try:
            body = await reader.readexactly(header_len + payload_len)
        except asyncio.IncompleteReadError as error:
            return prefix + bytes(error.partial)
        return prefix + body

    async def _kill_one_worker(self) -> None:
        """Crash a worker via the debug op; returns once acknowledged.

        The server answers the ``crash`` request only after it has seen
        the broken pool and begun recovery, so by the time the victim
        frame is forwarded the kill has deterministically happened.
        """
        kill_reader, kill_writer = await self._connect_upstream()
        try:
            kill_writer.write(
                encode_frame({"id": 0, "op": "crash", "params": {}, "client": "chaos"})
            )
            await kill_writer.drain()
            await protocol.read_frame(kill_reader)
        except Exception:
            # The kill is best-effort chaos; a server refusing it (not
            # in debug mode) must not wedge the relay.
            pass
        finally:
            kill_writer.close()

    async def _relay(
        self,
        conn: int,
        direction: str,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        aborted: asyncio.Event,
    ) -> None:
        frame_index = 0
        try:
            while not aborted.is_set():
                frame = await self._read_frame_bytes(reader)
                if frame is None:
                    break
                action = self.schedule.action(conn, direction, frame_index)
                self.events.append((conn, direction, frame_index, action.kind))
                frame_index += 1
                if action.kind == "reset":
                    aborted.set()
                    break
                if action.kind == "truncate":
                    keep = max(1, min(action.keep_bytes, len(frame) - 1))
                    writer.write(frame[:keep])
                    await writer.drain()
                    aborted.set()
                    break
                if action.kind == "delay":
                    await asyncio.sleep(action.delay)
                elif action.kind == "kill_worker":
                    await self._kill_one_worker()
                writer.write(frame)
                await writer.drain()
        except (OSError, ConnectionError, asyncio.CancelledError):
            pass
        finally:
            # Half-close so a clean client EOF propagates upstream (and
            # vice versa) instead of wedging the opposite relay.
            try:
                if aborted.is_set():
                    writer.transport.abort()
                elif writer.can_write_eof():
                    writer.write_eof()
            except (OSError, RuntimeError):
                pass
