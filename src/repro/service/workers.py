"""Process workers for the compression service.

One pool task is one *batch* of jobs (:func:`run_jobs`): the server
drains its queue into worker-sized chunks so a burst of small requests
pays the process round trip once per chunk, not once per request.  Jobs
never take a worker down — each is attempted independently, exceptions
travel back as structured ``("err", type, message, traceback)`` tuples
(the :class:`~repro.core.sweep.FailureReport` discipline), and the
batch returns its :data:`~repro.core.metrics.METRICS` snapshot so the
server can fold worker-side cache counters (``artifacts.build``,
``artifacts.coalesced``, ...) into the live ``stats`` endpoint.

The pool itself (:class:`WorkerPool`) reuses the warm-start machinery of
:mod:`repro.core.sweep`: workers fork (or ``CCRP_POOL_START``-selected
start method) from the server process, share the on-disk artifact cache,
and coalesce concurrent builds of the same artifact through the per-key
``flock`` single-flight of :mod:`repro.core.artifacts`.  Every fresh
worker starts from an empty in-memory study LRU, so cache behaviour is
attributable: the first build of a study in a pool hits the disk cache
or builds it exactly once, visibly.

Debug-only hooks (the server refuses them unless started with
``debug=True``):

* ``params["_gate"] = [ready_fifo, release_fifo]`` — a deterministic
  FIFO rendezvous: the worker signals arrival by opening ``ready`` for
  writing, then blocks until the test opens (and closes) ``release``.
  Concurrency tests synchronise on request state this way instead of
  sleeping.
* ``op == "crash"`` — the worker calls ``os._exit``; the injected death
  exercises the server's broken-pool recovery.
"""

from __future__ import annotations

import os
import time
import traceback
from concurrent.futures import Future, ProcessPoolExecutor

from repro.cache.datacache import DataCacheModel
from repro.ccrp.compressor import ProgramCompressor
from repro.core import artifacts
from repro.core.config import SystemConfig
from repro.core.metrics import METRICS
from repro.core.standard import standard_code
from repro.core.sweep import _pool_context, available_cpus
from repro.errors import ConfigurationError, IntegrityError
from repro.faults.integrity import crc8

#: Ops a worker executes; everything else is a server-side endpoint.
JOB_OPS = ("compress", "decompress", "simulate", "crash")

#: Result fields of one ``simulate`` report (the sweep CSV columns plus
#: the cycle totals the row was computed from).
SIMULATE_FIELDS = (
    "program",
    "memory",
    "cache_bytes",
    "clb_entries",
    "data_cache_miss_rate",
    "miss_rate",
    "relative_execution_time",
    "memory_traffic_ratio",
    "compression_ratio",
)


def _apply_gate(params: dict) -> None:
    """Debug rendezvous: announce arrival, then wait to be released."""
    gate = params.get("_gate")
    if not gate:
        return
    ready, release = gate
    # Opening a FIFO for writing blocks until a reader appears — the
    # test's open(ready) is the "request is now executing" sync point.
    with open(ready, "wb"):
        pass
    # Block until the test opens and closes the release FIFO.
    with open(release, "rb") as handle:
        handle.read()


def _job_compress(params: dict, payload: bytes) -> tuple[dict, bytes]:
    """Compress a text segment with the library's standard code."""
    if not payload:
        raise ConfigurationError("compress needs a non-empty binary payload")
    alignment = int(params.get("alignment", 1))
    integrity = bool(params.get("integrity", False))
    compressor = ProgramCompressor(
        standard_code(), alignment=alignment, integrity=integrity
    )
    image = compressor.compress(payload)
    result = {
        "line_size": image.line_size,
        "line_count": image.line_count,
        "original_size": image.original_size,
        "alignment": alignment,
        "block_sizes": [block.stored_size for block in image.blocks],
        "compressed_flags": [bool(block.is_compressed) for block in image.blocks],
        "compression_ratio": image.compression_ratio,
        "total_ratio_with_lat": image.total_ratio_with_lat,
        "code": artifacts.code_fingerprint(image.code),
        "integrity": integrity,
    }
    if image.line_crcs is not None:
        result["line_crcs"] = image.line_crcs.hex()
    return result, b"".join(block.data for block in image.blocks)


def _job_decompress(params: dict, payload: bytes) -> tuple[dict, bytes]:
    """Expand a stored blob back to the original text segment.

    ``params`` is the metadata a ``compress`` response returned (block
    sizes, compressed flags, line size, original size).  When the
    metadata carries per-line CRCs, every stored block is verified
    before decoding — a mismatch raises
    :class:`~repro.errors.IntegrityError` with the failing line number,
    end-to-end attestation in the spirit of the integrity layer.
    """
    code = standard_code()
    expected_code = params.get("code")
    if expected_code is not None and expected_code != artifacts.code_fingerprint(code):
        raise ConfigurationError(
            f"blob was compressed with code {expected_code}, this decoder "
            f"is wired for {artifacts.code_fingerprint(code)}"
        )
    try:
        line_size = int(params["line_size"])
        original_size = int(params["original_size"])
        block_sizes = [int(size) for size in params["block_sizes"]]
        flags = [bool(flag) for flag in params["compressed_flags"]]
    except (KeyError, TypeError, ValueError) as error:
        raise ConfigurationError(f"bad decompress metadata: {error!r}") from None
    if len(block_sizes) != len(flags):
        raise ConfigurationError(
            f"{len(block_sizes)} block sizes but {len(flags)} compressed flags"
        )
    if sum(block_sizes) != len(payload):
        raise ConfigurationError(
            f"stored blob is {len(payload)} bytes but the block sizes "
            f"sum to {sum(block_sizes)}"
        )
    crcs = bytes.fromhex(params["line_crcs"]) if "line_crcs" in params else None
    if crcs is not None and len(crcs) != len(block_sizes):
        raise ConfigurationError(
            f"{len(crcs)} line CRCs for {len(block_sizes)} blocks"
        )
    slices: list[bytes] = []
    offset = 0
    for size in block_sizes:
        slices.append(payload[offset : offset + size])
        offset += size
    if crcs is not None:
        for line_number, data in enumerate(slices):
            if crc8(data) != crcs[line_number]:
                raise IntegrityError(
                    f"line {line_number}: stored block fails CRC "
                    f"(expected {crcs[line_number]:#04x}, got {crc8(data):#04x})",
                    line_number=line_number,
                )
    decoded = iter(
        code.decode_lines(
            [data for data, flag in zip(slices, flags) if flag], line_size
        )
    )
    text = b"".join(
        next(decoded) if flag else data for data, flag in zip(slices, flags)
    )
    return {
        "original_size": original_size,
        "line_count": len(block_sizes),
    }, text[:original_size]


def _job_simulate(params: dict, payload: bytes) -> tuple[dict, bytes]:
    """One grid point of the paper's design space, via the shared caches."""
    if payload:
        raise ConfigurationError("simulate takes parameters only, no payload")
    workload = params.get("workload")
    if not isinstance(workload, str) or not workload:
        raise ConfigurationError("simulate needs a suite workload name")
    config = SystemConfig(
        cache_bytes=int(params.get("cache_bytes", 1024)),
        memory=params.get("memory", "eprom"),
        clb_entries=int(params.get("clb_entries", 16)),
        data_cache=DataCacheModel(
            miss_rate=float(params.get("data_cache_miss_rate", 1.0))
        ),
    )
    report = artifacts.get_study(workload).metrics(config)
    result = {name: getattr(report, name) for name in SIMULATE_FIELDS}
    result["baseline_cycles"] = report.baseline.total_cycles
    result["ccrp_cycles"] = report.ccrp.total_cycles
    return result, b""


def _run_one(op: str, params: dict, payload: bytes) -> tuple[dict, bytes]:
    _apply_gate(params)
    if op == "compress":
        return _job_compress(params, payload)
    if op == "decompress":
        return _job_decompress(params, payload)
    if op == "simulate":
        return _job_simulate(params, payload)
    if op == "crash":
        os._exit(1)
    raise ConfigurationError(f"unknown worker op {op!r}")


def run_jobs(
    jobs: list[tuple[str, dict, bytes, float | None]]
) -> tuple[list[tuple], dict]:
    """Worker entry point: execute one batch, capture per-job outcomes.

    Mirrors :func:`repro.core.sweep._metrics_chunk`: outcomes are
    ``("ok", result, payload)`` or ``("err", type, message, traceback)``
    per job — one bad request never discards the rest of the batch —
    and the second return value is this batch's metrics snapshot for the
    server to merge.

    Each job carries an optional absolute wall-clock deadline
    (``time.time()`` seconds; server and workers share a host).  A job
    whose deadline passed while the batch waited in the executor queue
    is shed here with a ``DeadlineExceeded`` outcome instead of burning
    a worker on a result nobody is waiting for.
    """
    METRICS.reset()
    outcomes: list[tuple] = []
    for op, params, payload, deadline_unix in jobs:
        if deadline_unix is not None and time.time() >= deadline_unix:
            outcomes.append(
                (
                    "err",
                    "DeadlineExceeded",
                    f"deadline expired before {op!r} ran in a worker",
                    "",
                )
            )
            METRICS.count("service.worker_shed")
            continue
        try:
            result, out_payload = _run_one(op, params, payload)
            outcomes.append(("ok", result, out_payload))
        except Exception as error:
            outcomes.append(
                ("err", type(error).__name__, str(error), traceback.format_exc())
            )
    return outcomes, METRICS.snapshot()


def _worker_init() -> None:
    """Per-worker start-up: attributable caches, clean counters.

    Forked workers inherit the parent's in-memory study LRU copy-on-
    write; clearing it makes every study the pool serves go through the
    *disk* artifact cache, where builds are single-flight and counted.
    """
    artifacts.clear()
    METRICS.reset()


def _warmup() -> int:
    """No-op task used to fork workers before the server starts serving."""
    return os.getpid()


class WorkerPool:
    """A restartable batch-job process pool.

    Thin wrapper over :class:`~concurrent.futures.ProcessPoolExecutor`
    under the sweep layer's warm-start context (``fork`` preferred,
    ``CCRP_POOL_START`` overrides).  A crashed worker breaks the whole
    executor — :meth:`restart` swaps in a fresh one; the generation
    counter keeps concurrent chunk failures from double-restarting.
    """

    def __init__(self, workers: int | None = None) -> None:
        # An explicit count wins even past the CPU count (a service may
        # deliberately oversubscribe); the default sizes to the machine.
        self.workers = max(1, workers) if workers else available_cpus()
        self._executor: ProcessPoolExecutor | None = None
        self.generation = 0

    def start(self) -> None:
        """Create the executor and fork the workers up front."""
        self._executor = ProcessPoolExecutor(
            max_workers=self.workers,
            mp_context=_pool_context(),
            initializer=_worker_init,
        )
        # Touch every worker slot so the forks (and their first imports)
        # happen before the event loop starts multiplexing clients.
        for future in [self._executor.submit(_warmup) for _ in range(self.workers)]:
            future.result()

    def submit(self, jobs: list[tuple[str, dict, bytes, float | None]]) -> Future:
        """Submit one batch; returns the executor's future for it."""
        if self._executor is None:
            raise ConfigurationError("worker pool is not running")
        return self._executor.submit(run_jobs, jobs)

    def restart(self, generation: int) -> bool:
        """Replace a broken executor; no-op if ``generation`` is stale.

        Returns True when this call performed the restart — concurrent
        chunks that all observed the same broken pool race here, and
        exactly one of them wins.
        """
        if generation != self.generation or self._executor is None:
            return False
        self.generation += 1
        broken = self._executor
        self._executor = None
        broken.shutdown(wait=False, cancel_futures=True)
        self.start()
        return True

    def shutdown(self) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=False, cancel_futures=True)
            self._executor = None
