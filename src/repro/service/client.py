"""Blocking client for the compression service.

The client side of the frame protocol needs no asyncio: requests are
synchronous round trips over a plain socket, decoded incrementally with
:class:`~repro.service.protocol.FrameDecoder` so partial reads and
pipelined responses are handled the same way the server handles partial
writes.  Error responses come back as raised
:class:`~repro.errors.ServiceError` (with the server's machine-readable
``code`` and any attached failure report); framing violations raise
:class:`~repro.errors.ProtocolError` and poison the connection.

On top of the raw round trip, :meth:`ServiceClient.request` is a
*resilient* exchange:

* **retry with capped exponential backoff** — transport failures
  (timeouts, refused/reset/broken connections, framing violations on a
  poisoned stream) and transient server refusals (``worker_crash``,
  ``overloaded``, ``unavailable``) are retried up to ``retries`` times
  on a *fresh* connection, with deterministic seedable jitter so tests
  replay byte-for-byte;
* **safe re-send** — every request carries a content-derived
  idempotency key (the same ``(op, params, payload)`` digest the server
  coalesces and caches on), so a re-sent request lands on the in-flight
  execution or the durable response cache instead of duplicating work;
* **deadline propagation** — a ``deadline_ms`` budget is decremented
  across attempts and sent with each one; when it runs out the client
  fails locally with ``deadline_exceeded`` instead of sending a request
  nobody will wait for;
* **typed errors** — raw ``socket.timeout`` / ``ConnectionRefusedError``
  / ``BrokenPipeError`` and friends surface as
  :class:`~repro.errors.ServiceError` carrying the op, the address, and
  the attempt count, never as a bare OS traceback;
* **payload integrity** — responses carrying the server's CRC-32
  digest are verified before being returned; a digest mismatch is a
  transport failure and is retried like one.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import random
import socket
import time

from repro.errors import ConfigurationError, ProtocolError, ServiceError
from repro.service import protocol
from repro.service.protocol import FrameDecoder, encode_frame

#: Bytes per ``recv`` call.
RECV_CHUNK = 1 << 16

#: Server error codes worth retrying: the failure is transient and the
#: request is content-keyed (idempotent), so a re-send is safe.
RETRYABLE_CODES = frozenset({"worker_crash", "overloaded", "unavailable"})


def parse_address(address: str) -> tuple:
    """Parse a service address string.

    ``"unix:/path/to.sock"`` names a Unix socket; ``"host:port"`` (or
    ``":port"`` for localhost) names a TCP endpoint.
    """
    if not isinstance(address, str) or not address:
        raise ConfigurationError(f"bad service address {address!r}")
    if address.startswith("unix:"):
        path = address[len("unix:") :]
        if not path:
            raise ConfigurationError("unix: address needs a socket path")
        return ("unix", path)
    host, separator, port = address.rpartition(":")
    if not separator or not port.isdigit():
        raise ConfigurationError(
            f"bad service address {address!r} (want unix:/path or host:port)"
        )
    return ("tcp", host or "127.0.0.1", int(port))


def format_address(address: tuple) -> str:
    """Render a parsed address back to its string form (for errors)."""
    if address[0] == "unix":
        return f"unix:{address[1]}"
    return f"{address[1]}:{address[2]}"


def idempotency_key(op: str, params: dict, payload: bytes) -> str:
    """Content-derived identity of one request.

    The same digestible material as the server's coalescing / durable
    cache key — ``(op, canonical-JSON params, SHA-256(payload))`` — so
    a re-sent request is recognisably *the same work*, not new work.
    """
    material = "\x1f".join(
        [
            op,
            json.dumps(params, sort_keys=True, separators=(",", ":")),
            hashlib.sha256(payload).hexdigest(),
        ]
    )
    return hashlib.sha256(material.encode()).hexdigest()[:32]


def _transport_code(error: Exception) -> str:
    """Map a transport-layer exception onto a machine-readable code."""
    if isinstance(error, (socket.timeout, TimeoutError)):
        return "timeout"
    if isinstance(error, (ConnectionRefusedError, FileNotFoundError)):
        return "unavailable"
    if isinstance(error, ProtocolError):
        return "protocol"
    return "connection_lost"


class ServiceClient:
    """One connection to a :class:`~repro.service.server.CompressionServer`.

    Usable as a context manager::

        with ServiceClient("unix:/tmp/ccrp.sock", retries=3) as client:
            meta, blob = client.compress(text)
            meta2, back = client.decompress(meta, blob)
            assert back == text

    A client is *not* thread-safe: it issues one request at a time and
    matches responses by id on a single socket.

    Args:
        address: ``"unix:/path/to.sock"`` or ``"host:port"``.
        timeout: Socket timeout per blocking operation, seconds.
        name: Client name reported in server metrics.
        retries: Extra attempts after the first for retryable failures
            (0 keeps the old single-shot behaviour).
        backoff_base: First retry delay, seconds; doubles per attempt.
        backoff_max: Cap on any single backoff delay, seconds.
        backoff_seed: Seeds the jitter RNG — two clients built with the
            same seed sleep the same schedule, so resilience tests
            replay deterministically.  ``None`` uses entropy.
        deadline_ms: Default per-request deadline budget propagated to
            the server and decremented across retries.  ``None`` means
            no deadline.
    """

    def __init__(
        self,
        address: str,
        timeout: float | None = 60.0,
        name: str = "anon",
        retries: int = 0,
        backoff_base: float = 0.05,
        backoff_max: float = 2.0,
        backoff_seed: int | None = None,
        deadline_ms: float | None = None,
    ) -> None:
        self.address = parse_address(address)
        self.name = name
        self.timeout = timeout
        self.retries = max(0, int(retries))
        self.backoff_base = backoff_base
        self.backoff_max = backoff_max
        self.deadline_ms = deadline_ms
        self._rng = random.Random(backoff_seed)
        self._sock: socket.socket | None = None
        self._decoder = FrameDecoder()
        self._ids = itertools.count(1)
        try:
            self._connect()
        except OSError as error:
            # Constructing a client against a dead endpoint is a typed
            # condition, not a raw OS traceback.
            raise ServiceError(
                f"cannot connect to {format_address(self.address)}: {error}",
                code=_transport_code(error),
                op="connect",
                address=format_address(self.address),
                attempts=1,
            ) from error

    # -- connection management ----------------------------------------

    def _connect(self) -> None:
        """(Re)open the socket with a fresh frame decoder."""
        self.close()
        if self.address[0] == "unix":
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.settimeout(self.timeout)
            try:
                sock.connect(self.address[1])
            except BaseException:
                sock.close()
                raise
        else:
            sock = socket.create_connection(self.address[1:], timeout=self.timeout)
            sock.settimeout(self.timeout)
        self._sock = sock
        self._decoder = FrameDecoder()

    def _backoff(self, attempt: int, budget: float | None) -> None:
        """Sleep before retry ``attempt`` (0-based), capped and jittered.

        The jitter is drawn from the client's seeded RNG, so a seeded
        client's whole retry schedule is a deterministic function of
        its constructor arguments.  Never sleeps past the remaining
        deadline budget.
        """
        delay = min(self.backoff_max, self.backoff_base * (2.0**attempt))
        delay *= 0.5 + 0.5 * self._rng.random()
        if budget is not None:
            delay = min(delay, max(0.0, budget))
        if delay > 0:
            time.sleep(delay)

    # -- context management -------------------------------------------

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def close(self) -> None:
        if self._sock is None:
            return
        try:
            self._sock.close()
        except OSError:
            pass
        self._sock = None

    # -- the raw round trip -------------------------------------------

    def send(
        self,
        op: str,
        params: dict | None = None,
        payload: bytes = b"",
        deadline_ms: float | None = None,
    ) -> int:
        """Fire one request without waiting; returns its id.

        Pipelining: several ``send`` calls may be outstanding, with
        :meth:`recv` collecting responses in completion order.  An
        oversized payload is refused *here*, with a typed ``too_large``
        error naming the limit, before any byte reaches the wire — the
        connection stays usable.
        """
        params = params or {}
        if len(payload) > protocol.MAX_PAYLOAD_BYTES:
            raise ServiceError(
                f"payload of {len(payload)} bytes exceeds the "
                f"{protocol.MAX_PAYLOAD_BYTES}-byte frame limit; not sent",
                code="too_large",
                op=op,
                address=format_address(self.address),
                attempts=0,
            )
        if self._sock is None:
            self._connect()
        request_id = next(self._ids)
        header = {
            "id": request_id,
            "op": op,
            "params": params,
            "client": self.name,
            "idempotency": idempotency_key(op, params, payload),
        }
        if deadline_ms is not None:
            header["deadline_ms"] = deadline_ms
        self._sock.sendall(encode_frame(header, payload))
        return request_id

    def recv(self) -> tuple[int, dict, bytes]:
        """The next response frame as ``(id, header, payload)``."""
        while True:
            frame = self._decoder.next_frame()
            if frame is not None:
                header, payload = frame
                return header.get("id"), header, payload
            data = self._sock.recv(RECV_CHUNK)
            if not data:
                raise ProtocolError(
                    "server closed the connection before responding"
                )
            self._decoder.feed(data)

    @staticmethod
    def unwrap(header: dict, payload: bytes) -> tuple[dict, bytes]:
        """Turn a response into ``(result, payload)`` or a raised error."""
        if header.get("ok"):
            return header.get("result", {}), payload
        error = header.get("error") or {}
        raise ServiceError(
            error.get("message", "unspecified server error"),
            code=error.get("code", "internal"),
            failure=error.get("failure"),
        )

    @staticmethod
    def verify_payload(header: dict, payload: bytes) -> None:
        """Check a response payload against its CRC-32 digest, if any.

        A mismatch means the bytes were damaged in flight (or by a
        corrupt cache the server failed to catch): the connection can
        no longer be trusted, so this raises
        :class:`~repro.errors.ProtocolError` — which the retry layer
        treats like any other transport failure.
        """
        digest = header.get("crc32")
        if digest is None or not header.get("ok"):
            return
        actual = protocol.payload_digest(payload)
        if actual != digest:
            raise ProtocolError(
                f"response payload fails its CRC-32 digest "
                f"(expected {digest:#010x}, got {actual:#010x})"
            )

    # -- the resilient exchange ---------------------------------------

    def request(
        self,
        op: str,
        params: dict | None = None,
        payload: bytes = b"",
        deadline_ms: float | None = None,
    ) -> tuple[dict, bytes]:
        """One resilient round trip; raises typed errors, never raw OS ones.

        Retries transport failures and transient server refusals up to
        ``self.retries`` times on a fresh connection, with capped
        exponential backoff and seeded jitter.  The re-send is safe
        because requests are content-keyed: the server coalesces or
        answers from its durable response cache instead of repeating
        work.  ``deadline_ms`` (or the client default) is a total
        budget across all attempts.
        """
        if deadline_ms is None:
            deadline_ms = self.deadline_ms
        deadline = (
            None if deadline_ms is None else time.monotonic() + deadline_ms / 1000.0
        )
        attempts = self.retries + 1
        last_error: Exception | None = None
        for attempt in range(attempts):
            remaining = None
            if deadline is not None:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise ServiceError(
                        f"deadline budget of {deadline_ms} ms exhausted after "
                        f"{attempt} attempt(s)"
                        + (f": {last_error}" if last_error else ""),
                        code="deadline_exceeded",
                        op=op,
                        address=format_address(self.address),
                        attempts=attempt,
                    )
            try:
                if self._sock is None:
                    self._connect()
                request_id = self.send(
                    op,
                    params,
                    payload,
                    deadline_ms=None if remaining is None else remaining * 1000.0,
                )
                response_id, header, out_payload = self.recv()
                if response_id != request_id:
                    raise ProtocolError(
                        f"response id {response_id!r} for request {request_id!r}"
                    )
                self.verify_payload(header, out_payload)
                return self.unwrap(header, out_payload)
            except ServiceError as error:
                last_error = error
                if error.code not in RETRYABLE_CODES or attempt + 1 >= attempts:
                    if error.op is None:
                        error.op = op
                        error.address = format_address(self.address)
                        error.attempts = attempt + 1
                    raise
                # The connection itself is fine after an error response;
                # only the attempt failed.
            except (ProtocolError, OSError) as error:
                last_error = error
                # The stream is unusable (poisoned decoder, torn frame,
                # dead socket): drop it so the next attempt reconnects.
                self.close()
                if attempt + 1 >= attempts:
                    raise ServiceError(
                        f"{op} via {format_address(self.address)} failed after "
                        f"{attempt + 1} attempt(s): {error}",
                        code=_transport_code(error),
                        op=op,
                        address=format_address(self.address),
                        attempts=attempt + 1,
                    ) from error
            budget = None
            if deadline is not None:
                budget = deadline - time.monotonic()
            self._backoff(attempt, budget)
        raise AssertionError("unreachable: retry loop must return or raise")

    # -- convenience wrappers -----------------------------------------

    def ping(self) -> bool:
        result, _ = self.request("ping")
        return bool(result.get("pong"))

    def stats(self) -> dict:
        result, _ = self.request("stats")
        return result

    def compress(
        self, text: bytes, alignment: int = 1, integrity: bool = False
    ) -> tuple[dict, bytes]:
        """Compress ``text``; returns ``(metadata, stored_blob)``."""
        return self.request(
            "compress",
            {"alignment": alignment, "integrity": integrity},
            text,
        )

    def decompress(self, meta: dict, blob: bytes) -> bytes:
        """Expand a ``compress`` result back to the original bytes."""
        params = {
            key: meta[key]
            for key in (
                "line_size",
                "original_size",
                "block_sizes",
                "compressed_flags",
                "code",
                "line_crcs",
            )
            if key in meta
        }
        _, text = self.request("decompress", params, blob)
        return text

    def simulate(self, workload: str, **config) -> dict:
        """One design-space grid point evaluated server-side."""
        result, _ = self.request("simulate", {"workload": workload, **config})
        return result
