"""Blocking client for the compression service.

The client side of the frame protocol needs no asyncio: requests are
synchronous round trips over a plain socket, decoded incrementally with
:class:`~repro.service.protocol.FrameDecoder` so partial reads and
pipelined responses are handled the same way the server handles partial
writes.  Error responses come back as raised
:class:`~repro.errors.ServiceError` (with the server's machine-readable
``code`` and any attached failure report); framing violations raise
:class:`~repro.errors.ProtocolError` and poison the connection.
"""

from __future__ import annotations

import itertools
import socket

from repro.errors import ConfigurationError, ProtocolError, ServiceError
from repro.service.protocol import FrameDecoder, encode_frame

#: Bytes per ``recv`` call.
RECV_CHUNK = 1 << 16


def parse_address(address: str) -> tuple:
    """Parse a service address string.

    ``"unix:/path/to.sock"`` names a Unix socket; ``"host:port"`` (or
    ``":port"`` for localhost) names a TCP endpoint.
    """
    if not isinstance(address, str) or not address:
        raise ConfigurationError(f"bad service address {address!r}")
    if address.startswith("unix:"):
        path = address[len("unix:") :]
        if not path:
            raise ConfigurationError("unix: address needs a socket path")
        return ("unix", path)
    host, separator, port = address.rpartition(":")
    if not separator or not port.isdigit():
        raise ConfigurationError(
            f"bad service address {address!r} (want unix:/path or host:port)"
        )
    return ("tcp", host or "127.0.0.1", int(port))


class ServiceClient:
    """One connection to a :class:`~repro.service.server.CompressionServer`.

    Usable as a context manager::

        with ServiceClient("unix:/tmp/ccrp.sock") as client:
            meta, blob = client.compress(text)
            meta2, back = client.decompress(meta, blob)
            assert back == text

    A client is *not* thread-safe: it issues one request at a time and
    matches responses by id on a single socket.
    """

    def __init__(
        self, address: str, timeout: float | None = 60.0, name: str = "anon"
    ) -> None:
        self.address = parse_address(address)
        self.name = name
        if self.address[0] == "unix":
            self._sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            self._sock.connect(self.address[1])
        else:
            self._sock = socket.create_connection(self.address[1:])
        self._sock.settimeout(timeout)
        self._decoder = FrameDecoder()
        self._ids = itertools.count(1)

    # -- context management -------------------------------------------

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:
            pass

    # -- the round trip -----------------------------------------------

    def send(self, op: str, params: dict | None = None, payload: bytes = b"") -> int:
        """Fire one request without waiting; returns its id.

        Pipelining: several ``send`` calls may be outstanding, with
        :meth:`recv` collecting responses in completion order.
        """
        request_id = next(self._ids)
        frame = encode_frame(
            {
                "id": request_id,
                "op": op,
                "params": params or {},
                "client": self.name,
            },
            payload,
        )
        self._sock.sendall(frame)
        return request_id

    def recv(self) -> tuple[int, dict, bytes]:
        """The next response frame as ``(id, header, payload)``."""
        while True:
            frame = self._decoder.next_frame()
            if frame is not None:
                header, payload = frame
                return header.get("id"), header, payload
            data = self._sock.recv(RECV_CHUNK)
            if not data:
                raise ProtocolError(
                    "server closed the connection before responding"
                )
            self._decoder.feed(data)

    @staticmethod
    def unwrap(header: dict, payload: bytes) -> tuple[dict, bytes]:
        """Turn a response into ``(result, payload)`` or a raised error."""
        if header.get("ok"):
            return header.get("result", {}), payload
        error = header.get("error") or {}
        raise ServiceError(
            error.get("message", "unspecified server error"),
            code=error.get("code", "internal"),
            failure=error.get("failure"),
        )

    def request(
        self, op: str, params: dict | None = None, payload: bytes = b""
    ) -> tuple[dict, bytes]:
        """One synchronous round trip; raises on an error response."""
        request_id = self.send(op, params, payload)
        response_id, header, out_payload = self.recv()
        if response_id != request_id:
            raise ProtocolError(
                f"response id {response_id!r} for request {request_id!r}"
            )
        return self.unwrap(header, out_payload)

    # -- convenience wrappers -----------------------------------------

    def ping(self) -> bool:
        result, _ = self.request("ping")
        return bool(result.get("pong"))

    def stats(self) -> dict:
        result, _ = self.request("stats")
        return result

    def compress(
        self, text: bytes, alignment: int = 1, integrity: bool = False
    ) -> tuple[dict, bytes]:
        """Compress ``text``; returns ``(metadata, stored_blob)``."""
        return self.request(
            "compress",
            {"alignment": alignment, "integrity": integrity},
            text,
        )

    def decompress(self, meta: dict, blob: bytes) -> bytes:
        """Expand a ``compress`` result back to the original bytes."""
        params = {
            key: meta[key]
            for key in (
                "line_size",
                "original_size",
                "block_sizes",
                "compressed_flags",
                "code",
                "line_crcs",
            )
            if key in meta
        }
        _, text = self.request("decompress", params, blob)
        return text

    def simulate(self, workload: str, **config) -> dict:
        """One design-space grid point evaluated server-side."""
        result, _ = self.request("simulate", {"workload": workload, **config})
        return result
