"""Block-bounded compression of cache lines (paper Figure 1).

The CCRP compresses each 32-byte instruction-cache line independently so
that the refill engine can decompress any line in isolation.  Compressed
blocks start on an addressable boundary — byte aligned for the best
compression or word aligned to simplify the fetch hardware — and a line
that does not compress below its original size is stored verbatim (the
paper's two-code scheme where the second "code" is the identity), so no
block ever grows.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import CompressionError
from repro.compression.huffman import HuffmanCode

#: The paper's instruction-cache line size.
DEFAULT_LINE_SIZE = 32

BYTE_ALIGNED = 1
WORD_ALIGNED = 4


@dataclass(frozen=True)
class CompressedBlock:
    """One cache line after block-bounded compression.

    Attributes:
        data: The stored bytes, already padded to the alignment boundary.
        is_compressed: False if the bypass path stored the line verbatim.
        bit_length: Exact number of encoded bits (before padding); for a
            bypass block this is simply 8 × line size.
        symbol_bits: Encoded length in bits of each original byte — the
            refill-decoder timing model replays these.  ``None`` for
            bypass blocks (they skip the decoder).
    """

    data: bytes
    is_compressed: bool
    bit_length: int
    symbol_bits: tuple[int, ...] | None

    @property
    def stored_size(self) -> int:
        """Bytes this block occupies in instruction memory."""
        return len(self.data)


@dataclass(frozen=True)
class BlockArrays:
    """Columnar numpy view of a block sequence for the vectorized kernels.

    Attributes:
        stored_sizes: Stored bytes of every block, in block order.
        compressed: Boolean mask of blocks that went through the encoder.
        symbol_bits: Per-byte encoded bit lengths of the *compressed*
            blocks only, one row per block in block order — rectangular
            because every compressed block covers exactly one full line.
    """

    stored_sizes: np.ndarray
    compressed: np.ndarray
    symbol_bits: np.ndarray


def build_block_arrays(
    blocks: tuple[CompressedBlock, ...] | list[CompressedBlock], line_size: int
) -> BlockArrays | None:
    """Build the columnar view, or ``None`` when blocks are not uniform.

    Block-bounded compression always produces full-line blocks, so the
    ``None`` case (a compressed block whose symbol count differs from the
    line size) only arises for hand-built block lists; callers fall back
    to the scalar per-block loops.
    """
    count = len(blocks)
    stored_sizes = np.fromiter(
        (block.stored_size for block in blocks), dtype=np.int64, count=count
    )
    compressed = np.fromiter(
        (block.is_compressed for block in blocks), dtype=bool, count=count
    )
    rows = [block.symbol_bits for block in blocks if block.is_compressed]
    if any(row is None or len(row) != line_size for row in rows):
        return None
    symbol_bits = (
        np.array(rows, dtype=np.int64)
        if rows
        else np.zeros((0, line_size), dtype=np.int64)
    )
    return BlockArrays(
        stored_sizes=stored_sizes, compressed=compressed, symbol_bits=symbol_bits
    )


class BlockCompressor:
    """Compresses a program text segment line by line.

    Args:
        code: The Huffman code shared by compressor and refill decoder.
        line_size: Cache-line size in bytes (32 in the paper).
        alignment: Boundary compressed blocks are padded to; use
            ``BYTE_ALIGNED`` (1) or ``WORD_ALIGNED`` (4).
    """

    def __init__(
        self,
        code: HuffmanCode,
        line_size: int = DEFAULT_LINE_SIZE,
        alignment: int = BYTE_ALIGNED,
    ) -> None:
        if line_size <= 0 or line_size & (line_size - 1):
            raise CompressionError(f"line size {line_size} is not a power of two")
        if alignment not in (BYTE_ALIGNED, WORD_ALIGNED):
            raise CompressionError(f"alignment must be 1 or 4, got {alignment}")
        self.code = code
        self.line_size = line_size
        self.alignment = alignment

    # ------------------------------------------------------------------
    # Compression
    # ------------------------------------------------------------------

    def compress_line(self, line: bytes) -> CompressedBlock:
        """Compress one full cache line, applying the bypass rule."""
        if len(line) != self.line_size:
            raise CompressionError(
                f"line must be exactly {self.line_size} bytes, got {len(line)}"
            )
        encoded, bit_length = self.code.encode(line)
        stored = self._pad(encoded)
        if len(stored) >= self.line_size:
            return CompressedBlock(
                data=bytes(line),
                is_compressed=False,
                bit_length=8 * self.line_size,
                symbol_bits=None,
            )
        return CompressedBlock(
            data=stored,
            is_compressed=True,
            bit_length=bit_length,
            symbol_bits=tuple(self.code.symbol_bit_lengths(line)),
        )

    def compress_program(self, text: bytes) -> list[CompressedBlock]:
        """Split ``text`` into lines (zero-padding the tail) and compress.

        Padding the final partial line with zero bytes mirrors linkers
        padding a text segment to its alignment; zeros are the most common
        byte in RISC code and compress extremely well.

        All lines are encoded in one vectorized pass; the result is
        identical, line for line, to mapping :meth:`compress_line`.
        """
        line_size = self.line_size
        remainder = len(text) % line_size
        if remainder:
            text = text + bytes(line_size - remainder)
        batch = self.code.encode_lines(text, line_size)
        if batch is None:  # >64-bit code words: scalar per-line fallback
            return [
                self.compress_line(text[offset : offset + line_size])
                for offset in range(0, len(text), line_size)
            ]
        encoded_lines, line_bits = batch
        # One gather for every line's per-byte code lengths.
        all_symbol_bits = self.code.symbol_bit_lengths(text)
        bit_totals = line_bits.tolist()
        blocks: list[CompressedBlock] = []
        for index, encoded in enumerate(encoded_lines):
            start = index * line_size
            line = text[start : start + line_size]
            stored = self._pad(encoded)
            if len(stored) >= line_size:
                blocks.append(
                    CompressedBlock(
                        data=bytes(line),
                        is_compressed=False,
                        bit_length=8 * line_size,
                        symbol_bits=None,
                    )
                )
            else:
                blocks.append(
                    CompressedBlock(
                        data=stored,
                        is_compressed=True,
                        bit_length=bit_totals[index],
                        symbol_bits=tuple(all_symbol_bits[start : start + line_size]),
                    )
                )
        return blocks

    # ------------------------------------------------------------------
    # Decompression (the refill engine's functional path)
    # ------------------------------------------------------------------

    def decompress_block(self, block: CompressedBlock) -> bytes:
        """Expand a block back to the original cache line."""
        if not block.is_compressed:
            return block.data
        return self.code.decode_fast(block.data, self.line_size)

    def decompress_program(self, blocks: list[CompressedBlock]) -> bytes:
        """Expand every block, reconstructing the padded text segment.

        All compressed blocks go through one batch ``decode_lines`` pass;
        bypass blocks are spliced back verbatim.  Output (and the first
        failure, for corrupt streams) is identical to mapping
        :meth:`decompress_block`.
        """
        compressed_blobs = [block.data for block in blocks if block.is_compressed]
        decoded = iter(self.code.decode_lines(compressed_blobs, self.line_size))
        return b"".join(
            next(decoded) if block.is_compressed else block.data for block in blocks
        )

    # ------------------------------------------------------------------
    # Size accounting
    # ------------------------------------------------------------------

    def compressed_size(self, blocks: list[CompressedBlock]) -> int:
        """Instruction-memory bytes occupied by the blocks themselves."""
        return sum(block.stored_size for block in blocks)

    def _pad(self, encoded: bytes) -> bytes:
        if self.alignment == 1 or len(encoded) % self.alignment == 0:
            return encoded
        return encoded + bytes(self.alignment - len(encoded) % self.alignment)
