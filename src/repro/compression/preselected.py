"""Preselected Bounded Huffman codes.

The paper's key practical simplification (Section 2.2): instead of storing
a per-program code table and making the decode hardware programmable, build
one Bounded Huffman code from a corpus of representative programs and
hard-wire it into the refill-engine decoder.  "Since code from a given
architecture often has similar characteristics, such a scheme is feasible."

A preselected code must be able to encode *any* byte value — programs
outside the training corpus may contain bytes the corpus never produced —
so construction smooths the corpus histogram with add-one counts.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.compression.histogram import corpus_histogram
from repro.compression.huffman import HuffmanCode

#: The paper's decoder-hardware bound on code-word length.
DEFAULT_MAX_LENGTH = 16


def build_preselected_code(
    corpus: Iterable[bytes],
    max_length: int = DEFAULT_MAX_LENGTH,
) -> HuffmanCode:
    """Train a Bounded Huffman code on a corpus of program images.

    Args:
        corpus: Text-segment byte strings of the training programs (the
            paper uses the ten programs of Figure 5).
        max_length: Decoder bound on code length (16 in the paper).

    Returns:
        A :class:`HuffmanCode` covering all 256 byte values.
    """
    histogram = corpus_histogram(corpus)
    return HuffmanCode.from_frequencies(
        histogram, max_length=max_length, cover_all_symbols=True
    )
