"""Byte-frequency histograms.

Huffman code construction starts from a frequency-of-occurrence histogram
of program bytes (paper, Section 2.2).  The preselected code merges the
histograms of an entire program corpus.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Iterable


def byte_histogram(data: bytes) -> list[int]:
    """Occurrence count of each byte value 0-255 in ``data``."""
    histogram = [0] * 256
    for value, count in Counter(data).items():
        histogram[value] = count
    return histogram


def merge_histograms(histograms: Iterable[list[int]]) -> list[int]:
    """Element-wise sum of several byte histograms."""
    merged = [0] * 256
    for histogram in histograms:
        if len(histogram) != 256:
            raise ValueError(f"histogram must have 256 entries, got {len(histogram)}")
        for index, count in enumerate(histogram):
            merged[index] += count
    return merged


def corpus_histogram(programs: Iterable[bytes]) -> list[int]:
    """Merged byte histogram of a program corpus (for preselected codes)."""
    return merge_histograms(byte_histogram(program) for program in programs)
