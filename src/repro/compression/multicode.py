"""Multiple-code block compression (paper Section 2.2, last paragraph).

"One possibility is to preselect multiple codes and to use the one that
provides the best compression for each instruction block.  This would
require a small tag that describes which code is used for each block and
that the decode hardware can decompress multiple codes. […] A special
case of the multiple code approach is to use two codes where one is a
Preselected Bounded Huffman code and the other is the original block
encoding."

The CCRP core (:mod:`repro.ccrp`) implements that special case — the
bypass.  This module implements the general scheme: N preselected codes
plus the identity, a per-block tag choosing among them, and a greedy
corpus-partitioning trainer ("the generation of sets of Huffman codes …
is very computationally complex, however … only a good solution, not an
optimal one, is required").
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import CompressionError
from repro.compression.block import DEFAULT_LINE_SIZE
from repro.compression.histogram import byte_histogram, merge_histograms
from repro.compression.huffman import HuffmanCode


@dataclass(frozen=True)
class MultiCodeBlock:
    """One cache line compressed under a code set.

    Attributes:
        code_index: Which code encoded this block; ``None`` marks the
            identity (uncompressed) choice.
        data: Stored bytes (tag excluded; tags live in the LAT-side
            metadata, like the paper's bypass flag).
        bit_length: Exact encoded bits.
    """

    code_index: int | None
    data: bytes
    bit_length: int

    @property
    def stored_size(self) -> int:
        return len(self.data)

    @property
    def is_compressed(self) -> bool:
        return self.code_index is not None


class MultiCodeCompressor:
    """Block compressor choosing the best of several preselected codes.

    Args:
        codes: The decoder's wired-in code set (2-8 codes is realistic
            hardware; the tag needs ``ceil(log2(len(codes) + 1))`` bits
            per block including the identity choice).
        line_size: Cache-line size in bytes.
    """

    def __init__(self, codes: list[HuffmanCode], line_size: int = DEFAULT_LINE_SIZE) -> None:
        if not codes:
            raise CompressionError("need at least one code")
        self.codes = list(codes)
        self.line_size = line_size

    @property
    def tag_bits(self) -> int:
        """Per-block tag width, identity included."""
        return max(1, math.ceil(math.log2(len(self.codes) + 1)))

    # ------------------------------------------------------------------
    # Compression
    # ------------------------------------------------------------------

    def compress_line(self, line: bytes) -> MultiCodeBlock:
        """Encode ``line`` with whichever code stores fewest bytes."""
        if len(line) != self.line_size:
            raise CompressionError(f"line must be {self.line_size} bytes")
        best: MultiCodeBlock | None = None
        for index, code in enumerate(self.codes):
            try:
                bits = code.encoded_bit_length(line)
            except CompressionError:
                continue  # this code cannot express some byte in the line
            stored = (bits + 7) // 8
            if stored < self.line_size and (best is None or stored < best.stored_size):
                encoded, bit_length = code.encode(line)
                best = MultiCodeBlock(code_index=index, data=encoded, bit_length=bit_length)
        if best is None:
            return MultiCodeBlock(
                code_index=None, data=bytes(line), bit_length=8 * self.line_size
            )
        return best

    def compress_program(self, text: bytes) -> list[MultiCodeBlock]:
        """Compress a text segment line by line (zero-padded tail)."""
        remainder = len(text) % self.line_size
        if remainder:
            text = text + bytes(self.line_size - remainder)
        return [
            self.compress_line(text[offset : offset + self.line_size])
            for offset in range(0, len(text), self.line_size)
        ]

    def decompress_block(self, block: MultiCodeBlock) -> bytes:
        if block.code_index is None:
            return block.data
        return self.codes[block.code_index].decode(block.data, self.line_size)

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------

    def compressed_size(self, blocks: list[MultiCodeBlock]) -> int:
        """Stored bytes including the per-block tags (rounded up once)."""
        payload = sum(block.stored_size for block in blocks)
        tags = (len(blocks) * self.tag_bits + 7) // 8
        return payload + tags

    def code_usage(self, blocks: list[MultiCodeBlock]) -> dict[int | None, int]:
        """How many blocks each code won (None = identity/bypass)."""
        usage: dict[int | None, int] = {}
        for block in blocks:
            usage[block.code_index] = usage.get(block.code_index, 0) + 1
        return usage


def train_code_set(
    corpus: list[bytes],
    code_count: int = 2,
    max_length: int = 16,
    line_size: int = DEFAULT_LINE_SIZE,
    refinement_rounds: int = 3,
) -> list[HuffmanCode]:
    """Greedy k-codes training: partition corpus lines among codes.

    A Lloyd-style refinement: start from one global code plus codes
    trained on the worst-compressed lines, then repeatedly (a) assign
    every line to the code that encodes it shortest and (b) retrain each
    code on its assigned lines.  Good, not optimal — per the paper.
    """
    if code_count < 1:
        raise CompressionError("code_count must be at least 1")
    lines: list[bytes] = []
    for text in corpus:
        remainder = len(text) % line_size
        if remainder:
            text = text + bytes(line_size - remainder)
        lines.extend(text[offset : offset + line_size] for offset in range(0, len(text), line_size))
    if not lines:
        raise CompressionError("empty corpus")

    def build(selected: list[bytes]) -> HuffmanCode:
        histogram = merge_histograms([byte_histogram(line) for line in selected] or [byte_histogram(b"\0")])
        return HuffmanCode.from_frequencies(histogram, max_length=max_length, cover_all_symbols=True)

    codes = [build(lines)]
    while len(codes) < code_count:
        # Seed the next code from the lines the current set handles worst.
        worst = sorted(
            lines,
            key=lambda line: min(code.encoded_bit_length(line) for code in codes),
            reverse=True,
        )[: max(1, len(lines) // (len(codes) + 1))]
        codes.append(build(worst))
    for _ in range(refinement_rounds):
        assignments: list[list[bytes]] = [[] for _ in codes]
        for line in lines:
            best = min(range(len(codes)), key=lambda i: codes[i].encoded_bit_length(line))
            assignments[best].append(line)
        codes = [
            build(assigned) if assigned else code
            for code, assigned in zip(codes, assignments)
        ]
    return codes
