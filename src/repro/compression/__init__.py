"""Compression substrate: the paper's four codecs plus block bounding.

The paper evaluates (Figure 5):

* Unix ``compress`` (LZW) — whole-file reference point,
* Traditional Huffman — per-program byte Huffman, unbounded code length,
* Bounded Huffman — per-program, no code longer than 16 bits,
* Preselected Bounded Huffman — one 16-bit-bounded code trained on a
  ten-program corpus and hard-wired into the decoder.

:mod:`repro.compression.block` applies any Huffman code to individual
32-byte cache lines with the paper's bypass rule (a line that does not
compress is stored verbatim), producing the per-line blocks the LAT
indexes.
"""

from repro.compression.bitstream import BitReader, BitWriter
from repro.compression.block import BlockCompressor, CompressedBlock
from repro.compression.histogram import byte_histogram, merge_histograms
from repro.compression.huffman import HuffmanCode
from repro.compression.lzw import lzw_compress, lzw_decompress
from repro.compression.multicode import MultiCodeCompressor, train_code_set
from repro.compression.preselected import build_preselected_code

__all__ = [
    "BitReader",
    "BitWriter",
    "BlockCompressor",
    "CompressedBlock",
    "HuffmanCode",
    "MultiCodeCompressor",
    "build_preselected_code",
    "byte_histogram",
    "lzw_compress",
    "lzw_decompress",
    "merge_histograms",
    "train_code_set",
]
