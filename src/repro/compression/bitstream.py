"""MSB-first bit stream I/O.

The CCRP's refill-engine decoder consumes the compressed stream most
significant bit first, one symbol at a time; these helpers are the software
equivalent used by every Huffman codec in the package.
"""

from __future__ import annotations

from repro.errors import CompressionError


class BitWriter:
    """Accumulates variable-length codes into a byte string, MSB first."""

    def __init__(self) -> None:
        self._chunks = bytearray()
        self._accumulator = 0
        self._filled = 0  # bits currently in the accumulator

    def write(self, code: int, length: int) -> None:
        """Append the ``length`` low bits of ``code``."""
        if length <= 0:
            raise CompressionError(f"code length must be positive, got {length}")
        if code >> length:
            raise CompressionError(f"code {code:#x} does not fit in {length} bits")
        self._accumulator = (self._accumulator << length) | code
        self._filled += length
        while self._filled >= 8:
            self._filled -= 8
            self._chunks.append((self._accumulator >> self._filled) & 0xFF)
        self._accumulator &= (1 << self._filled) - 1

    @property
    def bit_length(self) -> int:
        """Total number of bits written so far."""
        return len(self._chunks) * 8 + self._filled

    def getvalue(self) -> bytes:
        """The stream so far, zero-padded to a whole number of bytes."""
        if self._filled == 0:
            return bytes(self._chunks)
        tail = (self._accumulator << (8 - self._filled)) & 0xFF
        return bytes(self._chunks) + bytes([tail])


class BitReader:
    """Reads bits MSB-first from a byte string."""

    def __init__(self, data: bytes) -> None:
        self._data = data
        self._position = 0  # bit cursor

    @property
    def position(self) -> int:
        """Current bit offset from the start of the stream."""
        return self._position

    @property
    def remaining(self) -> int:
        """Bits left before the end of the underlying bytes."""
        return len(self._data) * 8 - self._position

    def read_bit(self) -> int:
        if self._position >= len(self._data) * 8:
            raise CompressionError("bit stream exhausted")
        byte = self._data[self._position >> 3]
        bit = (byte >> (7 - (self._position & 7))) & 1
        self._position += 1
        return bit

    def read(self, count: int) -> int:
        """Read ``count`` bits as one unsigned integer."""
        if count < 0:
            raise CompressionError(f"cannot read {count} bits")
        value = 0
        for _ in range(count):
            value = (value << 1) | self.read_bit()
        return value
