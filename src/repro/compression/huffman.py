"""Canonical Huffman codes: traditional and length-limited (bounded).

Two construction algorithms are provided behind one class:

* :meth:`HuffmanCode.from_frequencies` with ``max_length=None`` builds the
  classic optimal Huffman code [Huffman52] — code words may grow to 255
  bits in the worst case, which is why the paper calls it impractical to
  decode in hardware.
* With ``max_length=N`` it runs the package–merge algorithm (Larmore &
  Hirschberg) to build the *optimal length-limited* code — the paper's
  "Bounded Huffman" uses N = 16.

Code words are canonical (sorted by length, then symbol), so a decoder
needs only the 256 code lengths — this is the "listing of the selected
Huffman code" the paper stores with each program, and what makes the
hard-wired preselected decoder possible.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

from repro.errors import CompressionError
from repro.compression.bitstream import BitReader, BitWriter

#: Number of symbols: the codecs operate on program bytes.
ALPHABET = 256


def _traditional_lengths(frequencies: list[int]) -> list[int]:
    """Optimal unbounded code lengths via the classic heap algorithm."""
    heap: list[tuple[int, int, tuple[int, ...]]] = []
    for symbol, frequency in enumerate(frequencies):
        if frequency > 0:
            heap.append((frequency, symbol, (symbol,)))
    heapq.heapify(heap)
    if not heap:
        raise CompressionError("cannot build a Huffman code from an empty histogram")
    lengths = [0] * ALPHABET
    if len(heap) == 1:
        lengths[heap[0][1]] = 1
        return lengths
    while len(heap) > 1:
        freq_a, tie_a, symbols_a = heapq.heappop(heap)
        freq_b, tie_b, symbols_b = heapq.heappop(heap)
        for symbol in symbols_a:
            lengths[symbol] += 1
        for symbol in symbols_b:
            lengths[symbol] += 1
        heapq.heappush(heap, (freq_a + freq_b, min(tie_a, tie_b), symbols_a + symbols_b))
    return lengths


def _package_merge(frequencies: list[int], max_length: int) -> list[int]:
    """Optimal length-limited code lengths via package–merge.

    Standard coin-collector formulation: a symbol coded at length ``l``
    contributes coins of denominations 2^-1 … 2^-l; we must buy total
    denomination ``n - 1`` at minimum weight.  Working from the smallest
    denomination (level ``max_length``) upward, each level's items are the
    symbol coins plus pairwise packages from the level below; the answer is
    the 2(n-1) cheapest items at level 1.
    """
    symbols = [(frequency, symbol) for symbol, frequency in enumerate(frequencies) if frequency > 0]
    count = len(symbols)
    if count == 0:
        raise CompressionError("cannot build a Huffman code from an empty histogram")
    lengths = [0] * ALPHABET
    if count == 1:
        lengths[symbols[0][1]] = 1
        return lengths
    if (1 << max_length) < count:
        raise CompressionError(
            f"{count} symbols cannot be coded with max length {max_length}"
        )
    symbols.sort()
    base = [(frequency, (symbol,)) for frequency, symbol in symbols]
    packages: list[tuple[int, tuple[int, ...]]] = []
    for level in range(max_length, 1, -1):
        merged = sorted(base + packages)
        packages = [
            (merged[i][0] + merged[i + 1][0], merged[i][1] + merged[i + 1][1])
            for i in range(0, len(merged) - 1, 2)
        ]
    solution = sorted(base + packages)[: 2 * (count - 1)]
    for _, contained in solution:
        for symbol in contained:
            lengths[symbol] += 1
    return lengths


@dataclass(frozen=True)
class HuffmanCode:
    """A canonical Huffman code over byte symbols.

    Attributes:
        lengths: Code length in bits for each of the 256 symbols
            (0 = symbol has no code and cannot be encoded).
        codes: Canonical code word for each symbol.
    """

    lengths: tuple[int, ...]
    codes: tuple[int, ...]

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def from_frequencies(
        cls,
        frequencies: list[int],
        max_length: int | None = None,
        cover_all_symbols: bool = False,
    ) -> "HuffmanCode":
        """Build a code from a byte histogram.

        Args:
            frequencies: 256 occurrence counts.
            max_length: Bound on code-word length; ``None`` builds the
                traditional unbounded code, ``16`` the paper's Bounded code.
            cover_all_symbols: Give *every* byte value a code even if its
                count is zero (required for preselected codes, which must
                encode programs outside the training corpus).  Implemented
                by add-one smoothing of the histogram.
        """
        if len(frequencies) != ALPHABET:
            raise CompressionError(f"need {ALPHABET} frequencies, got {len(frequencies)}")
        if any(frequency < 0 for frequency in frequencies):
            raise CompressionError("frequencies must be non-negative")
        if cover_all_symbols:
            frequencies = [frequency + 1 for frequency in frequencies]
        if max_length is None:
            lengths = _traditional_lengths(frequencies)
        else:
            lengths = _package_merge(frequencies, max_length)
        return cls.from_lengths(lengths)

    @classmethod
    def from_lengths(cls, lengths: list[int]) -> "HuffmanCode":
        """Assign canonical code words to the given code lengths."""
        if len(lengths) != ALPHABET:
            raise CompressionError(f"need {ALPHABET} lengths, got {len(lengths)}")
        kraft = sum(2.0 ** -length for length in lengths if length > 0)
        if kraft > 1.0 + 1e-9:
            raise CompressionError(f"lengths violate the Kraft inequality ({kraft:.4f} > 1)")
        order = sorted(
            (symbol for symbol in range(ALPHABET) if lengths[symbol] > 0),
            key=lambda symbol: (lengths[symbol], symbol),
        )
        codes = [0] * ALPHABET
        code = 0
        previous_length = 0
        for symbol in order:
            code <<= lengths[symbol] - previous_length
            codes[symbol] = code
            code += 1
            previous_length = lengths[symbol]
        return cls(lengths=tuple(lengths), codes=tuple(codes))

    # ------------------------------------------------------------------
    # Properties
    # ------------------------------------------------------------------

    @property
    def max_length(self) -> int:
        """Longest code word in bits."""
        return max(self.lengths)

    @property
    def table_storage_bytes(self) -> int:
        """Bytes needed to store this code with a program.

        A canonical code is fully described by its 256 code lengths, one
        byte each — the "listing of the selected Huffman code" the paper
        charges against per-program codes.
        """
        return ALPHABET

    def _np_arrays(self) -> tuple[np.ndarray, np.ndarray | None]:
        """Cached ``(lengths, codes)`` arrays for the vectorized paths.

        ``codes`` is ``None`` when any code word exceeds 64 bits (possible
        for degenerate unbounded codes) — those fall back to the scalar
        bit writer.
        """
        cached = getattr(self, "_np_cache", None)
        if cached is None:
            lengths = np.array(self.lengths, dtype=np.int64)
            codes = (
                np.array(self.codes, dtype=np.uint64)
                if self.max_length <= 64
                else None
            )
            cached = (lengths, codes)
            object.__setattr__(self, "_np_cache", cached)
        return cached

    def _first_uncodable(self, symbols: np.ndarray, bit_lengths: np.ndarray) -> int:
        """The first symbol (in data order) whose code length is zero."""
        return int(symbols[np.argmax(bit_lengths == 0)])

    def encoded_bit_length(self, data: bytes) -> int:
        """Exact number of bits ``data`` occupies under this code.

        Vectorized as a histogram/length dot product: the bit total only
        depends on how often each symbol occurs.
        """
        symbols = np.frombuffer(data, dtype=np.uint8)
        if symbols.size == 0:
            return 0
        lengths, _ = self._np_arrays()
        counts = np.bincount(symbols, minlength=ALPHABET)
        if counts[lengths == 0].any():
            value = self._first_uncodable(symbols, lengths[symbols])
            raise CompressionError(f"symbol {value:#04x} has no code")
        return int(counts @ lengths)

    def symbol_bit_lengths(self, data: bytes) -> list[int]:
        """Per-byte encoded lengths (drives the refill-decoder timing)."""
        lengths, _ = self._np_arrays()
        return lengths[np.frombuffer(data, dtype=np.uint8)].tolist()

    # ------------------------------------------------------------------
    # Encode / decode
    # ------------------------------------------------------------------

    def encode(self, data: bytes) -> tuple[bytes, int]:
        """Encode ``data``; returns (padded bytes, exact bit length).

        Vectorized: expands every code word into a flat bit array and
        packs it with :func:`np.packbits` — byte-identical to the scalar
        :class:`BitWriter` path (property-tested), which remains as the
        fallback for codes with words longer than 64 bits.
        """
        lengths_by_symbol, codes_by_symbol = self._np_arrays()
        if codes_by_symbol is None:
            return self._encode_scalar(data)
        symbols = np.frombuffer(data, dtype=np.uint8)
        if symbols.size == 0:
            return b"", 0
        bit_lengths = lengths_by_symbol[symbols]
        if not bit_lengths.all():
            value = self._first_uncodable(symbols, bit_lengths)
            raise CompressionError(f"symbol {value:#04x} has no code")
        ends = np.cumsum(bit_lengths)
        total_bits = int(ends[-1])
        starts = ends - bit_lengths
        # One entry per output bit: which symbol it belongs to and the
        # bit's position within that symbol's code word (0 = MSB).
        owner = np.repeat(np.arange(symbols.size), bit_lengths)
        intra = np.arange(total_bits) - starts[owner]
        shift = (bit_lengths[owner] - 1 - intra).astype(np.uint64)
        bits = ((codes_by_symbol[symbols[owner]] >> shift) & np.uint64(1)).astype(
            np.uint8
        )
        return np.packbits(bits).tobytes(), total_bits

    def _encode_scalar(self, data: bytes) -> tuple[bytes, int]:
        """Reference bit-at-a-time encoder (also the >64-bit fallback)."""
        writer = BitWriter()
        lengths, codes = self.lengths, self.codes
        for value in data:
            length = lengths[value]
            if length == 0:
                raise CompressionError(f"symbol {value:#04x} has no code")
            writer.write(codes[value], length)
        return writer.getvalue(), writer.bit_length

    def encode_lines(
        self, data: bytes, line_size: int
    ) -> tuple[list[bytes], np.ndarray] | None:
        """Encode ``data`` as independent equal-sized lines in one pass.

        Each line is encoded exactly as ``encode(line)`` would — its
        stream starts on a byte boundary and is zero-padded to whole
        bytes — but the bit expansion and packing run once over the whole
        segment instead of once per line.  Returns ``(encoded bytes per
        line, exact bit length per line)``, or ``None`` when the code
        needs the scalar fallback (a code word longer than 64 bits).
        """
        if line_size <= 0:
            raise CompressionError(f"line size must be positive, got {line_size}")
        if len(data) % line_size:
            raise CompressionError(
                f"data length {len(data)} is not a multiple of line size {line_size}"
            )
        lengths_by_symbol, codes_by_symbol = self._np_arrays()
        if codes_by_symbol is None:
            return None
        symbols = np.frombuffer(data, dtype=np.uint8)
        line_count = symbols.size // line_size
        if line_count == 0:
            return [], np.zeros(0, dtype=np.int64)
        bit_lengths = lengths_by_symbol[symbols]
        if not bit_lengths.all():
            value = self._first_uncodable(symbols, bit_lengths)
            raise CompressionError(f"symbol {value:#04x} has no code")
        line_bits = bit_lengths.reshape(line_count, line_size).sum(axis=1)
        stored_bytes = (line_bits + 7) >> 3
        line_byte_starts = np.zeros(line_count, dtype=np.int64)
        np.cumsum(stored_bytes[:-1], out=line_byte_starts[1:])
        total_bits = int(line_byte_starts[-1] + stored_bytes[-1]) * 8
        # Dense per-symbol bit offsets, then shift every line's codes up
        # to its byte-aligned start (the gap bits stay zero = padding).
        ends = np.cumsum(bit_lengths)
        starts = ends - bit_lengths
        rebase = line_byte_starts * 8 - (ends.reshape(line_count, line_size)[:, -1] - line_bits)
        owner = np.repeat(np.arange(symbols.size), bit_lengths)
        intra = np.arange(int(ends[-1])) - starts[owner]
        line_of_symbol = np.repeat(np.arange(line_count), line_size)
        positions = starts[owner] + rebase[line_of_symbol[owner]] + intra
        shift = (bit_lengths[owner] - 1 - intra).astype(np.uint64)
        bits = np.zeros(total_bits, dtype=np.uint8)
        bits[positions] = (codes_by_symbol[symbols[owner]] >> shift) & np.uint64(1)
        packed = np.packbits(bits).tobytes()
        encoded = [
            packed[start : start + size]
            for start, size in zip(line_byte_starts.tolist(), stored_bytes.tolist())
        ]
        return encoded, line_bits

    def __getstate__(self) -> dict:
        """Drop derived decode/encode tables when pickling.

        Every ``_*_cache`` attribute is rebuilt lazily on demand, and the
        full-window table alone is 128 KiB — without this, each pickled
        image artifact would carry every table the code ever built.
        """
        return {
            key: value
            for key, value in self.__dict__.items()
            if not key.endswith("_cache")
        }

    def decode(self, blob: bytes, symbol_count: int) -> bytes:
        """Decode ``symbol_count`` symbols from ``blob``."""
        reader = BitReader(blob)
        decoded = bytearray()
        table = self._decode_table()
        for _ in range(symbol_count):
            code = 0
            length = 0
            while True:
                code = (code << 1) | reader.read_bit()
                length += 1
                symbol = table.get((length, code))
                if symbol is not None:
                    decoded.append(symbol)
                    break
                if length > self.max_length:
                    raise CompressionError("invalid code word in stream")
        return bytes(decoded)

    def _decode_table(self) -> dict[tuple[int, int], int]:
        table = getattr(self, "_table_cache", None)
        if table is None:
            table = {
                (self.lengths[symbol], self.codes[symbol]): symbol
                for symbol in range(ALPHABET)
                if self.lengths[symbol] > 0
            }
            object.__setattr__(self, "_table_cache", table)
        return table

    # ------------------------------------------------------------------
    # Table-driven decoding (the "64K mapping ROM" of paper Section 3.4)
    # ------------------------------------------------------------------

    _FAST_BITS = 10

    def decode_fast(self, blob: bytes, symbol_count: int) -> bytes:
        """Decode ``symbol_count`` symbols with a two-level lookup table.

        The paper suggests implementing the hard-wired decoder as "a 64K
        entry mapping ROM"; this is that idea in software: one table
        indexed by the next ``_FAST_BITS`` bits resolves every short code
        in a single lookup, and the rare longer codes fall back to a
        per-word dictionary.  Produces byte-identical output to
        :meth:`decode` (property-tested) at several times the speed.
        """
        fast_bits = self._FAST_BITS
        fast_symbols, fast_lengths, long_table = self._fast_tables()
        max_length = self.max_length
        # A bit accumulator kept topped up to at least `max_length` bits.
        acc = 0
        acc_bits = 0
        position = 0
        total_bits = len(blob) * 8
        decoded = bytearray()
        data = blob
        for _ in range(symbol_count):
            while acc_bits < max_length and position < total_bits:
                acc = (acc << 8) | data[position >> 3]
                position += 8
                acc_bits += 8
            if acc_bits <= 0:
                raise CompressionError("bit stream exhausted")
            if acc_bits >= fast_bits:
                probe = (acc >> (acc_bits - fast_bits)) & ((1 << fast_bits) - 1)
            else:
                probe = (acc << (fast_bits - acc_bits)) & ((1 << fast_bits) - 1)
            length = fast_lengths[probe]
            if length:
                symbol = fast_symbols[probe]
            else:
                symbol = None
                for length in range(fast_bits + 1, max_length + 1):
                    if acc_bits < length:
                        break
                    code = (acc >> (acc_bits - length)) & ((1 << length) - 1)
                    symbol = long_table.get((length, code))
                    if symbol is not None:
                        break
                if symbol is None:
                    raise CompressionError("invalid code word in stream")
            if acc_bits < length:
                raise CompressionError("bit stream exhausted")
            acc_bits -= length
            acc &= (1 << acc_bits) - 1
            decoded.append(symbol)
        return bytes(decoded)

    def _fast_tables(self) -> tuple[bytearray, bytearray, dict[tuple[int, int], int]]:
        """Flat probe tables: symbol and length per ``_FAST_BITS`` prefix.

        Two parallel ``bytearray``s (length 0 = no short code for this
        prefix, fall back to the long-code dictionary) keep the hot loop
        free of tuple unpacking and ``None`` checks — byte indexing is
        the cheapest lookup CPython offers.
        """
        cached = getattr(self, "_fast_cache", None)
        if cached is None:
            fast_bits = self._FAST_BITS
            fast_symbols = bytearray(1 << fast_bits)
            fast_lengths = bytearray(1 << fast_bits)
            long_table: dict[tuple[int, int], int] = {}
            for symbol in range(ALPHABET):
                length = self.lengths[symbol]
                if length == 0:
                    continue
                if length <= fast_bits:
                    prefix = self.codes[symbol] << (fast_bits - length)
                    for suffix in range(1 << (fast_bits - length)):
                        fast_symbols[prefix | suffix] = symbol
                        fast_lengths[prefix | suffix] = length
                else:
                    long_table[(length, self.codes[symbol])] = symbol
            cached = (fast_symbols, fast_lengths, long_table)
            object.__setattr__(self, "_fast_cache", cached)
        return cached

    # ------------------------------------------------------------------
    # Batch line decoding (vectorized companion to encode_lines)
    # ------------------------------------------------------------------

    #: Widest code the full-window table covers: 2^16 entries is exactly
    #: the paper's "64K entry mapping ROM".  Longer (degenerate unbounded)
    #: codes fall back to per-line decode_fast.
    _WINDOW_LIMIT = 16

    def decode_lines(
        self,
        blobs: list[bytes],
        symbol_count: int,
        errors: str = "raise",
    ) -> list[bytes | None]:
        """Decode many independent encoded lines in one vectorized pass.

        Each blob is decoded exactly as ``decode_fast(blob, symbol_count)``
        would decode it — same output bytes, same error classification —
        but all lines advance together: per decoded symbol one gather
        reads a 3-byte window from every line's packed bit stream and one
        full-window table lookup (the "64K mapping ROM" of paper Section
        3.4, materialised as two numpy arrays) resolves the symbol and
        code length for every line at once.  Lines are zero-padded into a
        rectangular byte matrix, so no window ever reads a neighbouring
        line's bits.

        Args:
            blobs: The encoded lines.  Order is preserved.
            symbol_count: Symbols to decode from every blob (the cache
                line size, for block-compressed programs).
            errors: ``"raise"`` propagates the first failing blob's
                :class:`~repro.errors.CompressionError` (same message and
                blob order as a scalar ``decode_fast`` loop); ``"none"``
                returns ``None`` in that blob's slot instead.
        """
        if errors not in ("raise", "none"):
            raise CompressionError(
                f"errors must be 'raise' or 'none', got {errors!r}"
            )
        if symbol_count < 0:
            raise CompressionError(
                f"symbol count cannot be negative, got {symbol_count}"
            )
        blobs = list(blobs)
        if not blobs:
            return []
        if symbol_count == 0:
            return [b""] * len(blobs)
        if self.max_length > self._WINDOW_LIMIT:
            return self._decode_lines_scalar(blobs, symbol_count, errors)

        window_symbols, window_lengths = self._window_tables()
        window_bits = self.max_length
        fast_bits = self._FAST_BITS
        count = len(blobs)
        sizes = np.fromiter((len(blob) for blob in blobs), dtype=np.int64, count=count)
        # Rectangular zero-padded layout; +3 slack bytes so the 3-byte
        # window gather below stays in bounds even at end of stream.
        width = int(sizes.max()) + 3
        data = np.zeros(count * width, dtype=np.uint8)
        flat = np.frombuffer(b"".join(blobs), dtype=np.uint8)
        if flat.size:
            owner = np.repeat(np.arange(count, dtype=np.int64), sizes)
            column = np.arange(flat.size, dtype=np.int64) - np.repeat(
                np.cumsum(sizes) - sizes, sizes
            )
            data[owner * width + column] = flat

        position = np.zeros(count, dtype=np.int64)
        total_bits = sizes * 8
        out = np.zeros((count, symbol_count), dtype=np.uint8)
        #: 0 = decoding, 1 = bit stream exhausted, 2 = invalid code word.
        status = np.zeros(count, dtype=np.uint8)
        live = np.arange(count, dtype=np.int64)
        for index in range(symbol_count):
            if live.size == 0:
                break
            bit_pos = position[live]
            remaining = total_bits[live] - bit_pos
            base = live * width + (bit_pos >> 3)
            window = (
                (data[base].astype(np.int64) << 16)
                | (data[base + 1].astype(np.int64) << 8)
                | data[base + 2].astype(np.int64)
            ) >> (24 - window_bits - (bit_pos & 7))
            window &= (1 << window_bits) - 1
            length = window_lengths[window].astype(np.int64)
            symbol = window_symbols[window]
            # Error classification matches decode_fast exactly: no bits
            # left is exhaustion; a window matching no code is invalid; a
            # matched code longer than the bits left is exhaustion when
            # the fast table found it, invalid when the long-code scan
            # would have given up before reaching its length.
            exhausted = remaining <= 0
            invalid = ~exhausted & (length == 0)
            overrun = ~exhausted & ~invalid & (length > remaining)
            status[live[exhausted | (overrun & (length <= fast_bits))]] = 1
            status[live[invalid | (overrun & (length > fast_bits))]] = 2
            ok = ~(exhausted | invalid | overrun)
            good = live[ok]
            out[good, index] = symbol[ok]
            position[good] = bit_pos[ok] + length[ok]
            live = good

        if errors == "raise":
            bad = np.nonzero(status)[0]
            if bad.size:
                raise CompressionError(
                    "bit stream exhausted"
                    if status[int(bad[0])] == 1
                    else "invalid code word in stream"
                )
        return [
            out[index].tobytes() if status[index] == 0 else None
            for index in range(count)
        ]

    def _decode_lines_scalar(
        self, blobs: list[bytes], symbol_count: int, errors: str
    ) -> list[bytes | None]:
        """Per-line fallback for codes wider than the window table."""
        results: list[bytes | None] = []
        for blob in blobs:
            try:
                results.append(self.decode_fast(blob, symbol_count))
            except CompressionError:
                if errors == "raise":
                    raise
                results.append(None)
        return results

    def _window_tables(self) -> tuple[np.ndarray, np.ndarray]:
        """Full-window lookup: symbol and length per ``max_length`` prefix.

        One entry per possible ``max_length``-bit window; every code word
        owns the contiguous range of windows it prefixes.  Length 0 marks
        windows no code word matches.
        """
        cached = getattr(self, "_window_cache", None)
        if cached is None:
            window_bits = self.max_length
            symbols = np.zeros(1 << window_bits, dtype=np.uint8)
            lengths = np.zeros(1 << window_bits, dtype=np.uint8)
            for symbol in range(ALPHABET):
                length = self.lengths[symbol]
                if length == 0:
                    continue
                start = self.codes[symbol] << (window_bits - length)
                span = 1 << (window_bits - length)
                symbols[start : start + span] = symbol
                lengths[start : start + span] = length
            cached = (symbols, lengths)
            object.__setattr__(self, "_window_cache", cached)
        return cached
