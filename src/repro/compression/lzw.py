"""LZW compression in the style of Unix ``compress``.

The paper uses ``compress`` [Welch84] as the reference point for whole-file
compression (Figure 5): effective on moderately sized programs but
impractical for a CCRP because it needs far more context than one cache
line.  This is a from-scratch reimplementation of the same algorithm:
variable-width codes growing from 9 to 16 bits, dictionary frozen once
full.  (Real ``compress`` additionally emits a CLEAR code when the ratio
degrades; program text compresses monotonically enough that freezing gives
near-identical sizes, and the simplification is documented here.)

The three-byte magic header of ``compress`` is charged to the output size
for parity with the paper's measurements.
"""

from __future__ import annotations

from repro.errors import CompressionError
from repro.compression.bitstream import BitReader, BitWriter

#: ``compress`` magic number plus the max-bits flag byte.
HEADER_BYTES = 3

MIN_BITS = 9
DEFAULT_MAX_BITS = 16


def lzw_compress(data: bytes, max_bits: int = DEFAULT_MAX_BITS) -> bytes:
    """Compress ``data`` with compress-style variable-width LZW."""
    if not MIN_BITS <= max_bits <= 24:
        raise CompressionError(f"max_bits {max_bits} out of supported range")
    if not data:
        return bytes(HEADER_BYTES)

    table: dict[bytes, int] = {bytes([value]): value for value in range(256)}
    next_code = 256
    width = MIN_BITS
    limit = 1 << max_bits
    writer = BitWriter()

    current = bytes([data[0]])
    for value in data[1:]:
        extended = current + bytes([value])
        if extended in table:
            current = extended
            continue
        writer.write(table[current], width)
        if next_code < limit:
            table[extended] = next_code
            next_code += 1
            if next_code > (1 << width) and width < max_bits:
                width += 1
        current = bytes([value])
    writer.write(table[current], width)
    return bytes(HEADER_BYTES) + writer.getvalue()


def lzw_decompress(blob: bytes, max_bits: int = DEFAULT_MAX_BITS) -> bytes:
    """Invert :func:`lzw_compress`."""
    payload = blob[HEADER_BYTES:]
    if not payload:
        return b""

    table: dict[int, bytes] = {value: bytes([value]) for value in range(256)}
    next_code = 256
    width = MIN_BITS
    limit = 1 << max_bits
    reader = BitReader(payload)

    previous = table[reader.read(width)]
    output = bytearray(previous)
    # Mirror the encoder: a new table entry is created per emitted code, and
    # the width grows when the *encoder's* next_code passes the width limit.
    while reader.remaining >= width:
        if next_code < limit:
            pending = next_code
            next_code += 1
            if next_code > (1 << width) and width < max_bits:
                width += 1
                if reader.remaining < width:
                    break
        else:
            pending = None
        code = reader.read(width)
        if code in table:
            entry = table[code]
        elif code == pending:
            entry = previous + previous[:1]
        else:
            raise CompressionError(f"corrupt LZW stream: code {code}")
        if pending is not None:
            table[pending] = previous + entry[:1]
        output.extend(entry)
        previous = entry
    return bytes(output)


def lzw_compressed_size(data: bytes, max_bits: int = DEFAULT_MAX_BITS) -> int:
    """Size in bytes of the compress-style encoding of ``data``."""
    return len(lzw_compress(data, max_bits))
