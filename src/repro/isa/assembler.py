"""A two-pass MIPS-I assembler.

The workload suite (:mod:`repro.workloads`) writes its kernels in assembly
source; this module turns that source into the binary images the CCRP
compresses and the functional simulator executes.

Supported syntax
----------------

* one instruction, directive, or label per line; ``#`` starts a comment;
* labels: ``name:`` (may share a line with an instruction);
* sections: ``.text`` and ``.data`` (text precedes data in memory);
* data directives: ``.word``, ``.half``, ``.byte``, ``.float``, ``.double``,
  ``.space N``, ``.align N`` (power-of-two byte alignment), ``.asciiz``;
* every real instruction listed in :mod:`repro.isa.opcodes`;
* pseudo-instructions: ``nop``, ``move``, ``li``, ``la``, ``b``, ``beqz``,
  ``bnez``, ``blt``, ``bge``, ``bgt``, ``ble``, ``mul``, ``neg``, ``not``,
  ``l.d``/``s.d`` (double load/store as two word transfers).

Pseudo-instructions expand exactly as classic MIPS assemblers expand them
(using ``$at`` as the assembler temporary), so the emitted byte statistics
match real R2000 output.
"""

from __future__ import annotations

import re
import struct
from dataclasses import dataclass

from repro.errors import AssemblerError
from repro.isa.encoding import encode_bytes
from repro.isa.instruction import Instruction
from repro.isa.opcodes import SPECS_BY_MNEMONIC
from repro.isa.registers import fp_register_number, register_number

#: Default load addresses within the paper's 24-bit physical space.
DEFAULT_TEXT_BASE = 0x000000
DEFAULT_DATA_BASE = 0x400000

_AT = 1  # assembler temporary register ($at)

_LABEL_RE = re.compile(r"^[A-Za-z_.$][\w.$]*$")


@dataclass(frozen=True)
class AssembledProgram:
    """The output of :meth:`Assembler.assemble`.

    Attributes:
        text: Encoded instruction bytes (big-endian words).
        data: Initialised data-segment bytes.
        text_base: Load address of the text segment.
        data_base: Load address of the data segment.
        labels: Label name -> absolute address.
        instructions: The expanded instruction list, index = word offset.
    """

    text: bytes
    data: bytes
    text_base: int
    data_base: int
    labels: dict[str, int]
    instructions: tuple[Instruction, ...]

    @property
    def entry(self) -> int:
        """Program entry point: the ``main`` label if defined, else text_base."""
        return self.labels.get("main", self.text_base)

    @property
    def size(self) -> int:
        """Text-segment size in bytes (the quantity Figure 5 reports)."""
        return len(self.text)


@dataclass
class _Line:
    """One source line after parsing: mnemonic + raw operand string."""

    number: int
    mnemonic: str
    operands: str


@dataclass
class _DataItem:
    """A pending data directive recorded during pass 1."""

    kind: str
    values: list
    address: int


class Assembler:
    """Two-pass assembler producing :class:`AssembledProgram` images.

    Example::

        program = Assembler().assemble('''
            main:   li   $t0, 10
            loop:   addi $t0, $t0, -1
                    bnez $t0, loop
                    nop
                    li   $v0, 10       # exit syscall
                    syscall
        ''')
    """

    def __init__(
        self,
        text_base: int = DEFAULT_TEXT_BASE,
        data_base: int = DEFAULT_DATA_BASE,
    ) -> None:
        if text_base % 4 or data_base % 4:
            raise AssemblerError("segment bases must be word aligned")
        self.text_base = text_base
        self.data_base = data_base

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def assemble(self, source: str) -> AssembledProgram:
        """Assemble ``source`` into a program image."""
        text_lines, data_items, labels = self._pass_one(source)
        instructions = self._pass_two(text_lines, labels)
        data = self._emit_data(data_items, labels)
        text = b"".join(encode_bytes(instruction) for instruction in instructions)
        return AssembledProgram(
            text=text,
            data=data,
            text_base=self.text_base,
            data_base=self.data_base,
            labels=labels,
            instructions=tuple(instructions),
        )

    # ------------------------------------------------------------------
    # Pass 1: layout and label resolution
    # ------------------------------------------------------------------

    def _pass_one(
        self, source: str
    ) -> tuple[list[_Line], list[_DataItem], dict[str, int]]:
        labels: dict[str, int] = {}
        text_lines: list[_Line] = []
        data_items: list[_DataItem] = []
        text_pc = self.text_base
        data_pc = self.data_base
        section = "text"

        for number, raw in enumerate(source.splitlines(), start=1):
            line = raw.split("#", 1)[0].strip()
            while line:
                head, colon, rest = line.partition(":")
                if colon and _LABEL_RE.match(head.strip()) and " " not in head.strip():
                    label = head.strip()
                    if label in labels:
                        raise AssemblerError(f"duplicate label {label!r}", number)
                    labels[label] = text_pc if section == "text" else data_pc
                    line = rest.strip()
                    continue
                break
            if not line:
                continue

            mnemonic, _, operands = line.partition(" ")
            mnemonic = mnemonic.lower()
            operands = operands.strip()

            if mnemonic.startswith("."):
                if mnemonic == ".text":
                    section = "text"
                elif mnemonic == ".data":
                    section = "data"
                elif section == "data":
                    item, data_pc = self._layout_data(mnemonic, operands, data_pc, number)
                    if item is not None:
                        data_items.append(item)
                elif mnemonic == ".align":
                    text_pc = _align(text_pc, 1 << _parse_int(operands, number))
                else:
                    raise AssemblerError(f"directive {mnemonic} not allowed in .text", number)
                continue

            if section != "text":
                raise AssemblerError("instructions must appear in .text", number)
            parsed = _Line(number, mnemonic, operands)
            text_lines.append(parsed)
            text_pc += 4 * self._expansion_size(parsed)

        return text_lines, data_items, labels

    def _layout_data(
        self, directive: str, operands: str, data_pc: int, number: int
    ) -> tuple[_DataItem | None, int]:
        if directive == ".align":
            return None, _align(data_pc, 1 << _parse_int(operands, number))
        if directive == ".space":
            size = _parse_int(operands, number)
            if size < 0:
                raise AssemblerError(".space size must be non-negative", number)
            return _DataItem("space", [size], data_pc), data_pc + size
        if directive == ".word":
            values = _split_operands(operands)
            data_pc = _align(data_pc, 4)
            return _DataItem("word", values, data_pc), data_pc + 4 * len(values)
        if directive == ".half":
            values = _split_operands(operands)
            data_pc = _align(data_pc, 2)
            return _DataItem("half", values, data_pc), data_pc + 2 * len(values)
        if directive == ".byte":
            values = _split_operands(operands)
            return _DataItem("byte", values, data_pc), data_pc + len(values)
        if directive == ".float":
            values = _split_operands(operands)
            data_pc = _align(data_pc, 4)
            return _DataItem("float", values, data_pc), data_pc + 4 * len(values)
        if directive == ".double":
            values = _split_operands(operands)
            data_pc = _align(data_pc, 8)
            return _DataItem("double", values, data_pc), data_pc + 8 * len(values)
        if directive == ".asciiz":
            text = operands.strip()
            if len(text) < 2 or text[0] != '"' or text[-1] != '"':
                raise AssemblerError('.asciiz expects a double-quoted string', number)
            payload = text[1:-1].encode("ascii").decode("unicode_escape").encode("latin-1")
            return _DataItem("bytes", [payload + b"\0"], data_pc), data_pc + len(payload) + 1
        raise AssemblerError(f"unknown data directive {directive}", number)

    def _expansion_size(self, line: _Line) -> int:
        """Number of machine instructions ``line`` expands to."""
        mnemonic = line.mnemonic
        if mnemonic in SPECS_BY_MNEMONIC:
            return 1
        if mnemonic in ("nop", "move", "b", "beqz", "bnez", "neg", "not"):
            return 1
        if mnemonic == "li":
            value = _parse_int(_split_operands(line.operands)[-1], line.number)
            return 1 if -0x8000 <= value <= 0xFFFF else 2
        if mnemonic == "la":
            return 2
        if mnemonic in ("blt", "bge", "bgt", "ble"):
            return 2
        if mnemonic == "mul":
            return 2
        if mnemonic in ("l.d", "s.d"):
            return 2
        raise AssemblerError(f"unknown mnemonic {mnemonic!r}", line.number)

    # ------------------------------------------------------------------
    # Pass 2: instruction emission
    # ------------------------------------------------------------------

    def _pass_two(
        self, lines: list[_Line], labels: dict[str, int]
    ) -> list[Instruction]:
        instructions: list[Instruction] = []
        pc = self.text_base
        for line in lines:
            expanded = self._expand(line, pc, labels)
            instructions.extend(expanded)
            pc += 4 * len(expanded)
        return instructions

    def _expand(
        self, line: _Line, pc: int, labels: dict[str, int]
    ) -> list[Instruction]:
        mnemonic, operands, number = line.mnemonic, line.operands, line.number
        parts = _split_operands(operands)

        # --- pseudo-instructions ---------------------------------------
        if mnemonic == "nop":
            return [Instruction.make("sll")]
        if mnemonic == "move":
            _expect(parts, 2, line)
            return [
                Instruction.make(
                    "addu", rd=register_number(parts[0]), rs=register_number(parts[1])
                )
            ]
        if mnemonic == "li":
            _expect(parts, 2, line)
            rt = register_number(parts[0])
            value = _parse_int(parts[1], number)
            if -0x8000 <= value < 0x8000:
                return [Instruction.make("addiu", rt=rt, rs=0, imm=value)]
            if 0 <= value <= 0xFFFF:
                return [Instruction.make("ori", rt=rt, rs=0, imm=value)]
            value &= 0xFFFFFFFF
            return [
                Instruction.make("lui", rt=rt, imm=(value >> 16) & 0xFFFF),
                Instruction.make("ori", rt=rt, rs=rt, imm=value & 0xFFFF),
            ]
        if mnemonic == "la":
            _expect(parts, 2, line)
            rt = register_number(parts[0])
            address = self._resolve(parts[1], labels, number) & 0xFFFFFFFF
            return [
                Instruction.make("lui", rt=rt, imm=(address >> 16) & 0xFFFF),
                Instruction.make("ori", rt=rt, rs=rt, imm=address & 0xFFFF),
            ]
        if mnemonic == "b":
            _expect(parts, 1, line)
            return [Instruction.make("beq", imm=self._branch_offset(parts[0], pc, labels, number))]
        if mnemonic == "beqz":
            _expect(parts, 2, line)
            return [
                Instruction.make(
                    "beq",
                    rs=register_number(parts[0]),
                    imm=self._branch_offset(parts[1], pc, labels, number),
                )
            ]
        if mnemonic == "bnez":
            _expect(parts, 2, line)
            return [
                Instruction.make(
                    "bne",
                    rs=register_number(parts[0]),
                    imm=self._branch_offset(parts[1], pc, labels, number),
                )
            ]
        if mnemonic in ("blt", "bge", "bgt", "ble"):
            _expect(parts, 3, line)
            rs, rt = register_number(parts[0]), register_number(parts[1])
            if mnemonic in ("bgt", "ble"):
                rs, rt = rt, rs
            branch = "bne" if mnemonic in ("blt", "bgt") else "beq"
            offset = self._branch_offset(parts[2], pc + 4, labels, number)
            return [
                Instruction.make("slt", rd=_AT, rs=rs, rt=rt),
                Instruction.make(branch, rs=_AT, rt=0, imm=offset),
            ]
        if mnemonic == "mul":
            _expect(parts, 3, line)
            return [
                Instruction.make(
                    "mult", rs=register_number(parts[1]), rt=register_number(parts[2])
                ),
                Instruction.make("mflo", rd=register_number(parts[0])),
            ]
        if mnemonic == "neg":
            _expect(parts, 2, line)
            return [
                Instruction.make(
                    "subu", rd=register_number(parts[0]), rs=0, rt=register_number(parts[1])
                )
            ]
        if mnemonic == "not":
            _expect(parts, 2, line)
            return [
                Instruction.make(
                    "nor", rd=register_number(parts[0]), rs=register_number(parts[1]), rt=0
                )
            ]
        if mnemonic in ("l.d", "s.d"):
            _expect(parts, 2, line)
            ft = fp_register_number(parts[0])
            if ft % 2:
                raise AssemblerError("l.d/s.d require an even FP register", number)
            offset, base = _parse_mem_operand(parts[1], number)
            word = "lwc1" if mnemonic == "l.d" else "swc1"
            return [
                Instruction.make(word, rt=ft, rs=base, imm=offset),
                Instruction.make(word, rt=ft + 1, rs=base, imm=offset + 4),
            ]

        # --- real instructions -------------------------------------------
        spec = SPECS_BY_MNEMONIC.get(mnemonic)
        if spec is None:
            raise AssemblerError(f"unknown mnemonic {mnemonic!r}", number)
        return [self._build(spec, parts, pc, labels, line)]

    def _build(self, spec, parts, pc, labels, line: _Line) -> Instruction:
        signature = spec.operands
        number = line.number
        make = lambda **fields: Instruction(spec, **fields)  # noqa: E731

        if signature == "":
            _expect(parts, 0, line)
            return make()
        if signature == "rd,rs,rt":
            _expect(parts, 3, line)
            return make(
                rd=register_number(parts[0]),
                rs=register_number(parts[1]),
                rt=register_number(parts[2]),
            )
        if signature == "rd,rt,sha":
            _expect(parts, 3, line)
            shamt = _parse_int(parts[2], number)
            if not 0 <= shamt < 32:
                raise AssemblerError(f"shift amount {shamt} out of range", number)
            return make(
                rd=register_number(parts[0]), rt=register_number(parts[1]), shamt=shamt
            )
        if signature == "rd,rt,rs":
            _expect(parts, 3, line)
            return make(
                rd=register_number(parts[0]),
                rt=register_number(parts[1]),
                rs=register_number(parts[2]),
            )
        if signature == "rs":
            _expect(parts, 1, line)
            return make(rs=register_number(parts[0]))
        if signature == "rd,rs":
            if len(parts) == 1:  # ``jalr $rs`` defaults rd to $ra
                return make(rd=31, rs=register_number(parts[0]))
            _expect(parts, 2, line)
            return make(rd=register_number(parts[0]), rs=register_number(parts[1]))
        if signature == "rd":
            _expect(parts, 1, line)
            return make(rd=register_number(parts[0]))
        if signature == "rs,rt":
            _expect(parts, 2, line)
            return make(rs=register_number(parts[0]), rt=register_number(parts[1]))
        if signature in ("rt,rs,imm", "rt,rs,uimm"):
            _expect(parts, 3, line)
            imm = _parse_int(parts[2], number)
            _check_imm(imm, signature.endswith("uimm"), number)
            return make(
                rt=register_number(parts[0]), rs=register_number(parts[1]), imm=imm
            )
        if signature == "rt,uimm":
            _expect(parts, 2, line)
            imm = _parse_int(parts[1], number)
            _check_imm(imm, True, number)
            return make(rt=register_number(parts[0]), imm=imm)
        if signature == "rt,off(rs)":
            _expect(parts, 2, line)
            offset, base = _parse_mem_operand(parts[1], number)
            return make(rt=register_number(parts[0]), rs=base, imm=offset)
        if signature == "ft,off(rs)":
            _expect(parts, 2, line)
            offset, base = _parse_mem_operand(parts[1], number)
            return make(rt=fp_register_number(parts[0]), rs=base, imm=offset)
        if signature == "rs,rt,rel":
            _expect(parts, 3, line)
            return make(
                rs=register_number(parts[0]),
                rt=register_number(parts[1]),
                imm=self._branch_offset(parts[2], pc, labels, number),
            )
        if signature == "rs,rel":
            _expect(parts, 2, line)
            return make(
                rs=register_number(parts[0]),
                imm=self._branch_offset(parts[1], pc, labels, number),
            )
        if signature == "rel":
            _expect(parts, 1, line)
            return make(imm=self._branch_offset(parts[0], pc, labels, number))
        if signature == "target":
            _expect(parts, 1, line)
            address = self._resolve(parts[0], labels, number)
            if address % 4:
                raise AssemblerError(f"jump target {address:#x} not word aligned", number)
            return make(target=(address >> 2) & 0x03FF_FFFF)
        if signature == "fd,fs,ft":
            _expect(parts, 3, line)
            return make(
                shamt=fp_register_number(parts[0]),
                rd=fp_register_number(parts[1]),
                rt=fp_register_number(parts[2]),
            )
        if signature == "fd,fs":
            _expect(parts, 2, line)
            return make(
                shamt=fp_register_number(parts[0]), rd=fp_register_number(parts[1])
            )
        if signature == "fs,ft":
            _expect(parts, 2, line)
            return make(rd=fp_register_number(parts[0]), rt=fp_register_number(parts[1]))
        if signature == "rt,fs":
            _expect(parts, 2, line)
            return make(rt=register_number(parts[0]), rd=fp_register_number(parts[1]))
        raise AssemblerError(f"unhandled operand signature {signature!r}", number)

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------

    def _resolve(self, token: str, labels: dict[str, int], number: int) -> int:
        token = token.strip()
        if token in labels:
            return labels[token]
        try:
            return _parse_int(token, number)
        except AssemblerError:
            raise AssemblerError(f"undefined label {token!r}", number) from None

    def _branch_offset(
        self, token: str, pc: int, labels: dict[str, int], number: int
    ) -> int:
        target = self._resolve(token, labels, number)
        delta = target - (pc + 4)
        if delta % 4:
            raise AssemblerError(f"branch target {target:#x} not word aligned", number)
        offset = delta >> 2
        if not -0x8000 <= offset < 0x8000:
            raise AssemblerError(f"branch to {token!r} out of 16-bit range", number)
        return offset

    def _emit_data(self, items: list[_DataItem], labels: dict[str, int]) -> bytes:
        if not items:
            return b""
        end = max(item.address + _data_size(item) for item in items)
        buffer = bytearray(end - self.data_base)
        for item in items:
            offset = item.address - self.data_base
            payload = self._data_payload(item, labels)
            buffer[offset : offset + len(payload)] = payload
        return bytes(buffer)

    def _data_payload(self, item: _DataItem, labels: dict[str, int]) -> bytes:
        if item.kind == "space":
            return bytes(item.values[0])
        if item.kind == "bytes":
            return item.values[0]
        if item.kind == "word":
            return b"".join(
                (self._resolve(str(v), labels, 0) & 0xFFFFFFFF).to_bytes(4, "big")
                for v in item.values
            )
        if item.kind == "half":
            return b"".join(
                (_parse_int(str(v), 0) & 0xFFFF).to_bytes(2, "big") for v in item.values
            )
        if item.kind == "byte":
            return bytes(_parse_int(str(v), 0) & 0xFF for v in item.values)
        if item.kind == "float":
            return b"".join(struct.pack(">f", float(v)) for v in item.values)
        if item.kind == "double":
            return b"".join(struct.pack(">d", float(v)) for v in item.values)
        raise AssemblerError(f"unknown data item kind {item.kind!r}")


# ---------------------------------------------------------------------------
# Module-level parsing helpers
# ---------------------------------------------------------------------------


def _align(value: int, alignment: int) -> int:
    return (value + alignment - 1) & ~(alignment - 1)


def _data_size(item: _DataItem) -> int:
    """Byte size a data item occupies in the data segment."""
    if item.kind == "space":
        return item.values[0]
    if item.kind == "bytes":
        return len(item.values[0])
    width = {"word": 4, "half": 2, "byte": 1, "float": 4, "double": 8}[item.kind]
    return width * len(item.values)


def _split_operands(operands: str) -> list[str]:
    if not operands.strip():
        return []
    return [part.strip() for part in operands.split(",")]


def _parse_int(token: str, line_number: int) -> int:
    token = token.strip()
    try:
        return int(token, 0)
    except ValueError:
        raise AssemblerError(f"expected an integer, got {token!r}", line_number) from None


def _parse_mem_operand(token: str, line_number: int) -> tuple[int, int]:
    """Parse ``offset($base)`` into (offset, base register number)."""
    match = re.match(r"^(-?\w*)\((\$?\w+)\)$", token.strip())
    if not match:
        raise AssemblerError(f"expected offset(base), got {token!r}", line_number)
    offset_text = match.group(1) or "0"
    offset = _parse_int(offset_text, line_number)
    if not -0x8000 <= offset < 0x8000:
        raise AssemblerError(f"memory offset {offset} out of 16-bit range", line_number)
    return offset, register_number(match.group(2))


def _check_imm(value: int, unsigned: bool, line_number: int) -> None:
    low, high = (0, 0xFFFF) if unsigned else (-0x8000, 0x7FFF)
    if not low <= value <= high:
        raise AssemblerError(f"immediate {value} out of range [{low}, {high}]", line_number)


def _expect(parts: list[str], count: int, line: _Line) -> None:
    if len(parts) != count:
        raise AssemblerError(
            f"{line.mnemonic} expects {count} operands, got {len(parts)}", line.number
        )
