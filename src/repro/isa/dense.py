"""Dense-ISA re-encoding analysis (the paper's road not taken).

Section 1: "A possible alternative approach to the problems of code
density in embedded systems would be to design a new RISC or CISC
architecture with a denser instruction set encoding."  The paper rejects
this because it breaks the programmer's model and the toolchain; history
took it anyway (ARM Thumb, MIPS16 — the very designs that supplanted the
CCRP approach).

This module quantifies that alternative for our programs: a Thumb-style
re-encoder that classifies each MIPS-I instruction as expressible in a
16-bit format or not, under the classic constraints (two-address ALU
forms, a low-register file, small immediates and offsets, short
branches).  The resulting size ratio is directly comparable to the CCRP's
Huffman ratio — without any cache-refill machinery, but with a new ISA.

The analysis is static (no execution needed) and conservative: branch
distances are taken from the *original* layout even though re-encoding
would shrink them, so the reported ratio slightly understates the dense
ISA.  The point is the comparison's shape, which is robust to that.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.isa.decoding import decode_program
from repro.isa.instruction import Instruction
from repro.isa.opcodes import Category

#: The dense encoding's "low" register file: $zero plus the hottest seven
#: allocatable registers of the o32 convention (v0, v1, a0, a1, t0-t2).
LOW_REGISTERS = frozenset({0, 2, 3, 4, 5, 8, 9, 10})

#: Two-address ALU operations expressible in 16 bits.
_ALU_2ADDR = frozenset({"addu", "subu", "and", "or", "xor", "nor", "slt", "sltu"})

_SHIFTS = frozenset({"sll", "srl", "sra"})


def _low(*registers: int) -> bool:
    return all(register in LOW_REGISTERS for register in registers)


def is_dense_encodable(instruction: Instruction) -> bool:
    """True if ``instruction`` fits a Thumb-style 16-bit format."""
    mnemonic = instruction.mnemonic
    spec = instruction.spec

    if mnemonic in _ALU_2ADDR:
        # Two-address form: destination doubles as the first source.
        return instruction.rd == instruction.rs and _low(instruction.rd, instruction.rt)
    if mnemonic in _SHIFTS:
        return _low(instruction.rd, instruction.rt)
    if mnemonic == "addiu":
        if instruction.rs == 29 and instruction.rt == 29:  # stack adjust
            return -512 <= instruction.imm_signed <= 508 and instruction.imm_signed % 4 == 0
        if instruction.rs == 0:  # load immediate
            return _low(instruction.rt) and 0 <= instruction.imm_signed <= 255
        return (
            instruction.rt == instruction.rs
            and _low(instruction.rt)
            and -128 <= instruction.imm_signed <= 127
        )
    if mnemonic in ("andi", "ori", "xori"):
        return (
            instruction.rt == instruction.rs
            and _low(instruction.rt)
            and instruction.imm_unsigned <= 255
        )
    if mnemonic in ("slti", "sltiu"):
        return (
            instruction.rt == instruction.rs
            and _low(instruction.rt)
            and 0 <= instruction.imm_signed <= 255
        )
    if mnemonic in ("lw", "sw"):
        offset = instruction.imm_signed
        if instruction.rs == 29:  # sp-relative: 8-bit scaled offset
            return _low(instruction.rt) and 0 <= offset <= 1020 and offset % 4 == 0
        return (
            _low(instruction.rt, instruction.rs)
            and 0 <= offset <= 124
            and offset % 4 == 0
        )
    if mnemonic in ("lb", "lbu", "sb"):
        return _low(instruction.rt, instruction.rs) and 0 <= instruction.imm_signed <= 31
    if mnemonic in ("lh", "lhu", "sh"):
        offset = instruction.imm_signed
        return (
            _low(instruction.rt, instruction.rs)
            and 0 <= offset <= 62
            and offset % 2 == 0
        )
    if spec.category is Category.BRANCH:
        # Conditional short branch: compare-against-zero forms only.
        offset_bytes = instruction.imm_signed * 4
        if mnemonic == "beq" and instruction.rs == 0 and instruction.rt == 0:
            return -2048 <= offset_bytes <= 2046  # unconditional short jump
        if mnemonic in ("beq", "bne") and instruction.rt == 0:
            return _low(instruction.rs) and -256 <= offset_bytes <= 254
        if mnemonic in ("blez", "bgtz", "bltz", "bgez"):
            return _low(instruction.rs) and -256 <= offset_bytes <= 254
        return False
    if mnemonic == "jr":
        return True
    if mnemonic == "mfhi" or mnemonic == "mflo":
        return _low(instruction.rd)
    # Everything else — jal/jalr (BL is 32-bit), lui, COP1, mult/div,
    # wide-register or wide-immediate forms — stays 32-bit.
    return False


@dataclass(frozen=True)
class DenseEncodingReport:
    """Static dense-encoding analysis of one program.

    Attributes:
        instructions: Static instruction count.
        dense_count: Instructions expressible in 16 bits.
        original_bytes: 4 x instructions.
        dense_bytes: 2 x dense + 4 x (rest).
    """

    instructions: int
    dense_count: int

    @property
    def original_bytes(self) -> int:
        return 4 * self.instructions

    @property
    def dense_bytes(self) -> int:
        return 2 * self.dense_count + 4 * (self.instructions - self.dense_count)

    @property
    def dense_fraction(self) -> float:
        return self.dense_count / self.instructions if self.instructions else 0.0

    @property
    def size_ratio(self) -> float:
        """Dense-ISA size over original (1.0 = no benefit)."""
        return self.dense_bytes / self.original_bytes if self.instructions else 1.0


def analyze_dense_encoding(text: bytes) -> DenseEncodingReport:
    """Classify every instruction of a text segment."""
    instructions = decode_program(text)
    dense = sum(1 for instruction in instructions if is_dense_encodable(instruction))
    return DenseEncodingReport(instructions=len(instructions), dense_count=dense)
