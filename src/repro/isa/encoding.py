"""Encode :class:`~repro.isa.instruction.Instruction` objects to 32-bit words.

The CCRP stores and compresses *encoded* machine code, so this encoder is
what ultimately determines the byte statistics seen by the Huffman codecs —
exactly as the R2000's instruction encoding did in the paper.
"""

from __future__ import annotations

from repro.errors import EncodingError
from repro.isa.instruction import Instruction
from repro.isa.opcodes import (
    COP1_BC,
    InstructionFormat,
)


def encode(instruction: Instruction) -> int:
    """Return the 32-bit binary encoding of ``instruction``."""
    spec = instruction.spec
    opcode = spec.opcode << 26
    if spec.format is InstructionFormat.R:
        return (
            opcode
            | (instruction.rs << 21)
            | (instruction.rt << 16)
            | (instruction.rd << 11)
            | (instruction.shamt << 6)
            | spec.funct
        )
    if spec.format is InstructionFormat.I:
        return (
            opcode
            | (instruction.rs << 21)
            | (instruction.rt << 16)
            | (instruction.imm & 0xFFFF)
        )
    if spec.format is InstructionFormat.J:
        return opcode | instruction.target
    if spec.format is InstructionFormat.REGIMM:
        return (
            opcode
            | (instruction.rs << 21)
            | (spec.selector << 16)
            | (instruction.imm & 0xFFFF)
        )
    if spec.format is InstructionFormat.COP1:
        if spec.selector == COP1_BC:
            # bc1f / bc1t: rs field = BC selector, rt bit 0 = true/false.
            condition = 1 if spec.mnemonic == "bc1t" else 0
            return opcode | (COP1_BC << 21) | (condition << 16) | (instruction.imm & 0xFFFF)
        if spec.selector is not None and spec.fmt is None:
            # mfc1 / mtc1: rs field = selector, rt = GPR, rd = FPR.
            return (
                opcode
                | (spec.selector << 21)
                | (instruction.rt << 16)
                | (instruction.rd << 11)
            )
        # FP arithmetic / compare / convert: rs = fmt.
        return (
            opcode
            | (spec.fmt << 21)
            | (instruction.rt << 16)
            | (instruction.rd << 11)
            | (instruction.shamt << 6)
            | spec.funct
        )
    raise EncodingError(f"unsupported format {spec.format!r}")


def encode_bytes(instruction: Instruction) -> bytes:
    """Return the big-endian byte encoding of ``instruction``.

    Big-endian matches the DECstation-era MIPS convention the paper's byte
    histograms were gathered on (opcode bits land in the first byte of each
    word, which is what gives R2000 code its characteristic skew).
    """
    return encode(instruction).to_bytes(4, "big")


def encode_program(instructions: list[Instruction]) -> bytes:
    """Encode a sequence of instructions into a contiguous byte string."""
    return b"".join(encode_bytes(instruction) for instruction in instructions)
