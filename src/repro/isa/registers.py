"""MIPS register numbering and standard ABI names.

The MIPS R2000 has 32 general-purpose integer registers and 32 coprocessor-1
(floating point) registers.  This module provides the canonical ABI names
and helpers to translate between names and register numbers.
"""

from __future__ import annotations

import enum

from repro.errors import AssemblerError


class Register(enum.IntEnum):
    """General-purpose registers with their MIPS o32 ABI names."""

    ZERO = 0
    AT = 1
    V0 = 2
    V1 = 3
    A0 = 4
    A1 = 5
    A2 = 6
    A3 = 7
    T0 = 8
    T1 = 9
    T2 = 10
    T3 = 11
    T4 = 12
    T5 = 13
    T6 = 14
    T7 = 15
    S0 = 16
    S1 = 17
    S2 = 18
    S3 = 19
    S4 = 20
    S5 = 21
    S6 = 22
    S7 = 23
    T8 = 24
    T9 = 25
    K0 = 26
    K1 = 27
    GP = 28
    SP = 29
    FP = 30
    RA = 31


#: ABI name for each register number, index = register number.
REGISTER_NAMES: tuple[str, ...] = tuple(
    member.name.lower() for member in sorted(Register, key=int)
)

#: Registers a called procedure must preserve (o32 convention).
CALLEE_SAVED: tuple[Register, ...] = (
    Register.S0,
    Register.S1,
    Register.S2,
    Register.S3,
    Register.S4,
    Register.S5,
    Register.S6,
    Register.S7,
    Register.FP,
)

#: Registers a caller must assume are clobbered by a call.
CALLER_SAVED: tuple[Register, ...] = (
    Register.V0,
    Register.V1,
    Register.A0,
    Register.A1,
    Register.A2,
    Register.A3,
    Register.T0,
    Register.T1,
    Register.T2,
    Register.T3,
    Register.T4,
    Register.T5,
    Register.T6,
    Register.T7,
    Register.T8,
    Register.T9,
)

_NAME_TO_NUMBER: dict[str, int] = {name: i for i, name in enumerate(REGISTER_NAMES)}
# Numeric aliases ($0 .. $31) and a couple of conventional synonyms.
_NAME_TO_NUMBER.update({str(i): i for i in range(32)})
_NAME_TO_NUMBER["s8"] = int(Register.FP)


def register_number(token: str) -> int:
    """Translate a register token such as ``$t0``, ``t0``, or ``$8`` to 0-31.

    Raises :class:`~repro.errors.AssemblerError` for unknown names.
    """
    name = token.strip().lower().lstrip("$")
    try:
        return _NAME_TO_NUMBER[name]
    except KeyError:
        raise AssemblerError(f"unknown register {token!r}") from None


def fp_register_number(token: str) -> int:
    """Translate an FP register token such as ``$f12`` or ``f0`` to 0-31."""
    name = token.strip().lower().lstrip("$")
    if name.startswith("f") and name[1:].isdigit():
        number = int(name[1:])
        if 0 <= number < 32:
            return number
    raise AssemblerError(f"unknown FP register {token!r}")


def register_name(number: int, *, fp: bool = False) -> str:
    """Render register ``number`` in assembly syntax (``$t0`` / ``$f4``)."""
    if not 0 <= number < 32:
        raise ValueError(f"register number out of range: {number}")
    if fp:
        return f"$f{number}"
    return f"${REGISTER_NAMES[number]}"
